// Quickstart: reach consensus among four simulated processes with
// L-Consensus (Algorithm 1 of the paper), first from unanimous proposals
// (one communication step), then from divergent ones (two steps — the
// zero-degradation guarantee), then with the leader crashed from the start.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/consensus_world.h"

using namespace zdc;

namespace {

void report(const char* title, const sim::ConsensusRunResult& r) {
  std::printf("%s\n", title);
  for (ProcessId p = 0; p < r.outcomes.size(); ++p) {
    const auto& o = r.outcomes[p];
    if (!o.correct && !o.decided) {
      std::printf("  p%u: crashed\n", p);
    } else if (o.decided) {
      std::printf("  p%u: decided \"%s\" after %u step%s (%.2f ms, %s)\n", p,
                  o.decision.c_str(), o.steps, o.steps == 1 ? "" : "s",
                  o.decide_time,
                  o.path == consensus::DecisionPath::kRound
                      ? "own round logic"
                      : "forwarded DECIDE");
    } else {
      std::printf("  p%u: undecided\n", p);
    }
  }
  std::printf("  agreement=%s validity=%s\n\n", r.agreement_ok ? "ok" : "VIOLATED",
              r.validity_ok ? "ok" : "VIOLATED");
}

}  // namespace

int main() {
  std::printf("zdc quickstart: L-Consensus, n=4, f=1, calibrated LAN\n\n");

  // 1. All processes propose the same value: one-step decision. The shared
  //    group/network/seed block is the zdc::RunOptions base of every run
  //    config; the fluent with_*() builders set it in one expression.
  {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(4, 1).with_net(sim::calibrated_lan_2006()).with_seed(1);
    cfg.proposals.assign(4, "commit-tx-1042");
    auto r = sim::run_consensus(cfg, sim::l_consensus_factory());
    report("[1] unanimous proposals (expect 1 step):", r);
  }

  // 2. Divergent proposals: two steps in a stable run (zero-degradation).
  {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(4, 1).with_net(sim::calibrated_lan_2006()).with_seed(2);
    cfg.proposals = {"apply-a", "apply-b", "apply-c", "apply-d"};
    auto r = sim::run_consensus(cfg, sim::l_consensus_factory());
    report("[2] divergent proposals (expect 2 steps):", r);
  }

  // 3. The Ω leader is dead from the start; the failure detector is stable
  //    (suspects exactly the dead process), so the survivors still decide in
  //    two steps — this is what zero-degradation buys.
  {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(4, 1).with_net(sim::calibrated_lan_2006()).with_seed(3);
    cfg.fd.mode = sim::FdMode::kStable;
    cfg.proposals = {"apply-a", "apply-b", "apply-c", "apply-d"};
    sim::CrashSpec crash;
    crash.p = 0;
    crash.initial = true;
    cfg.crashes.push_back(crash);
    auto r = sim::run_consensus(cfg, sim::l_consensus_factory());
    report("[3] initial leader crash, stable run (still 2 steps):", r);
  }
  return 0;
}
