// Space-time view of consensus runs: attach a TraceRecorder to a simulated
// run and print what actually happened, lane by lane — the one-step fast
// path, the zero-degradation two-step path, and a leader crash mid-run.
//
//   ./build/examples/trace_run
#include <cstdio>

#include "sim/consensus_world.h"
#include "sim/trace.h"

using namespace zdc;

namespace {

void run_and_render(const char* title, sim::ConsensusRunConfig cfg,
                    const sim::SimConsensusFactory& factory) {
  sim::TraceRecorder trace;
  cfg.trace = &trace;
  auto r = sim::run_consensus(cfg, factory);
  std::printf("%s\n", title);
  std::printf("%s", trace.render_spacetime(cfg.group.n).c_str());
  std::printf("  -> agreement=%s, causally consistent trace=%s, %zu events\n\n",
              r.agreement_ok ? "ok" : "VIOLATED",
              trace.causally_consistent() ? "yes" : "NO",
              trace.events().size());
}

}  // namespace

int main() {
  std::printf("zdc trace_run: space-time diagrams of simulated runs\n\n");

  {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(4, 1).with_net(sim::calibrated_lan_2006()).with_seed(1);
    cfg.proposals.assign(4, "v");
    run_and_render("[1] L-Consensus, unanimous (one-step fast path):", cfg,
                   sim::l_consensus_factory());
  }
  {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(4, 1).with_net(sim::calibrated_lan_2006()).with_seed(2);
    cfg.proposals = {"a", "b", "c", "d"};
    run_and_render("[2] P-Consensus, divergent (two steps, zero-degradation):",
                   cfg, sim::p_consensus_factory());
  }
  {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(4, 1).with_net(sim::calibrated_lan_2006()).with_seed(3);
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 1.0;
    cfg.proposals = {"a", "b", "c", "d"};
    sim::CrashSpec crash;
    crash.p = 0;
    crash.time = 0.3;  // the Ω leader dies mid-round
    cfg.crashes.push_back(crash);
    run_and_render(
        "[3] L-Consensus, leader crash at 0.3 ms (watch fd-change lanes):",
        cfg, sim::l_consensus_factory());
  }
  return 0;
}
