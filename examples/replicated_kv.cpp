// Replicated key-value store through the rsm service API.
//
// Four replicas run the full service stack — client sessions with
// exactly-once dedup, atomic broadcast for ordering, and the read-index
// lease gate so linearizable GETs skip consensus once the leader's lease is
// established. Concurrent clients hit different home replicas; the
// broadcast total order resolves their write races identically everywhere,
// demonstrated by comparing replica digests at the end.
//
//   ./build/examples/replicated_kv
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/kv_store.h"
#include "obs/run_options.h"
#include "runtime/runtime_node.h"
#include "service/service_group.h"

using namespace zdc;

int main() {
  constexpr std::uint32_t kReplicas = 4;
  constexpr int kWritesPerClient = 25;

  // The whole stack — cluster, durable RSMs, session tables, lease gate —
  // comes up from one options block; no abcast wiring in sight.
  rsm::ServiceGroup svc(
      RunOptions{}
          .with_group(kReplicas, 1)
          .with_seed(2024)
          .with_sessions()
          .with_read_index(),
      [] { return std::make_unique<core::KvStateMachine>(); });
  svc.start();
  std::printf("started %u replicas (sessions + read-index lease reads)\n",
              kReplicas);

  // Concurrent clients, one homed at each replica: every client PUTs the
  // shared keys, so each key's final value is decided purely by the
  // broadcast total order. execute() blocks until the reply is known and
  // retries internally — the session layer makes retries exactly-once.
  std::vector<std::thread> writers;
  for (std::uint32_t c = 0; c < kReplicas; ++c) {
    writers.emplace_back([&svc, c] {
      rsm::Client client = svc.client(/*home=*/c);
      for (int i = 0; i < kWritesPerClient; ++i) {
        client.execute(core::kv_put("shared-" + std::to_string(i),
                                    "written-by-c" + std::to_string(c)));
        client.execute(core::kv_put(
            "own-c" + std::to_string(c) + "-" + std::to_string(i), "v"));
      }
      client.close_session();
    });
  }
  for (std::thread& w : writers) w.join();

  // Linearizable reads: the race winners, identical from any client.
  rsm::Client reader = svc.client();
  std::printf("\nrace winners (identical on every replica):\n");
  for (int i = 0; i < 3; ++i) {
    const std::string key = "shared-" + std::to_string(i);
    std::printf("  %s = %s\n", key.c_str(),
                reader.read(core::kv_get(key)).c_str());
  }
  reader.close_session();

  // Replies come from the lease holder; give the other replicas a moment
  // to apply the tail of the log before comparing digests.
  const bool settled = runtime::RuntimeCluster::wait_until(
      [&] {
        std::uint64_t hi = 0;
        for (ProcessId p = 0; p < kReplicas; ++p) {
          hi = std::max(hi, svc.replicas().applied(p));
        }
        for (ProcessId p = 0; p < kReplicas; ++p) {
          if (svc.replicas().applied(p) < hi) return false;
        }
        return true;
      },
      30'000.0);
  const rsm::ServiceGroup::PathStats stats = svc.stats();
  svc.shutdown();
  if (!settled) {
    std::printf("ERROR: replicas did not settle in time\n");
    return 1;
  }

  bool identical = true;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    const bool same = svc.replicas().digest(p) == svc.replicas().digest(0);
    identical = identical && same;
    std::printf("replica %u: applied=%llu digest %s\n", p,
                static_cast<unsigned long long>(svc.replicas().applied(p)),
                same ? "== reference" : "!= reference (DIVERGED)");
  }
  std::printf(
      "\npaths: writes=%llu fast_reads=%llu ordered_reads=%llu retries=%llu\n",
      static_cast<unsigned long long>(stats.writes),
      static_cast<unsigned long long>(stats.fast_reads),
      static_cast<unsigned long long>(stats.ordered_reads),
      static_cast<unsigned long long>(stats.retries));
  std::printf("%s\n", identical ? "SUCCESS: all replicas converged"
                                : "FAILURE: divergence detected");
  return identical ? 0 : 1;
}
