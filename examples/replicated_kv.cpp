// Replicated key-value store on the threaded runtime.
//
// Four replicas run C-Abcast over P-Consensus (the paper's ◇P stack) above a
// heartbeat failure detector and an in-process network with injected delays.
// Concurrent writers hit different replicas; atomic broadcast gives every
// replica the same command order, so all four KV state machines converge to
// byte-identical state — demonstrated by comparing snapshots at the end.
//
//   ./build/examples/replicated_kv
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/kv_store.h"
#include "core/rsm.h"
#include "runtime/runtime_node.h"

using namespace zdc;

int main() {
  constexpr std::uint32_t kReplicas = 4;
  constexpr int kWritesPerReplica = 25;

  // One ReplicatedStateMachine + KvStateMachine per replica.
  std::vector<std::unique_ptr<core::ReplicatedStateMachine>> rsms;
  for (std::uint32_t i = 0; i < kReplicas; ++i) {
    rsms.push_back(std::make_unique<core::ReplicatedStateMachine>(
        std::make_unique<core::KvStateMachine>()));
  }

  // The shared group/seed block comes from zdc::RunOptions; runtime-only
  // knobs (protocol kind, inproc delay range) are set on the mapped config.
  auto cfg = runtime::RuntimeCluster::Config::from_options(
      RunOptions{}.with_group(kReplicas, 1).with_seed(2024));
  cfg.kind = runtime::ProtocolKind::kCAbcastP;
  cfg.net.min_delay_ms = 0.05;
  cfg.net.max_delay_ms = 0.5;

  runtime::RuntimeCluster cluster(
      cfg, [&rsms](ProcessId p, const abcast::AppMessage& m) {
        rsms[p]->on_delivered(m);
      });
  for (ProcessId p = 0; p < kReplicas; ++p) {
    rsms[p]->bind_submit([&cluster, p](std::string cmd) {
      cluster.node(p).a_broadcast(std::move(cmd));
    });
  }
  cluster.start();
  std::printf("started %u replicas (C-Abcast over P-Consensus, heartbeat ◇P)\n",
              kReplicas);

  // Concurrent writers: every replica issues PUTs against shared keys, so the
  // final value of each key is decided purely by the broadcast total order.
  for (int i = 0; i < kWritesPerReplica; ++i) {
    for (ProcessId p = 0; p < kReplicas; ++p) {
      rsms[p]->submit(core::kv_put("shared-" + std::to_string(i),
                                   "written-by-p" + std::to_string(p)));
      rsms[p]->submit(core::kv_put(
          "own-p" + std::to_string(p) + "-" + std::to_string(i), "v"));
    }
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWritesPerReplica) * kReplicas * 2;
  const bool done = runtime::RuntimeCluster::wait_until(
      [&] {
        for (const auto& rsm : rsms) {
          if (rsm->applied_count() < expected) return false;
        }
        return true;
      },
      30'000.0);
  cluster.shutdown();

  if (!done) {
    std::printf("ERROR: replicas did not converge in time\n");
    return 1;
  }

  const std::string reference = rsms[0]->machine().snapshot();
  bool identical = true;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    const auto& kv = static_cast<const core::KvStateMachine&>(rsms[p]->machine());
    const bool same = rsms[p]->machine().snapshot() == reference;
    identical = identical && same;
    std::printf("replica %u: applied=%llu keys=%zu snapshot %s\n", p,
                static_cast<unsigned long long>(rsms[p]->applied_count()),
                kv.size(), same ? "== reference" : "!= reference (DIVERGED)");
  }

  // The shared keys show the total order in action: every replica resolved
  // the write races identically.
  const auto& kv0 = static_cast<const core::KvStateMachine&>(rsms[0]->machine());
  std::printf("\nrace winners (identical on every replica):\n");
  for (int i = 0; i < 3; ++i) {
    const std::string key = "shared-" + std::to_string(i);
    std::printf("  %s = %s\n", key.c_str(), kv0.lookup(key)->c_str());
  }
  std::printf("\n%s\n", identical ? "SUCCESS: all replicas converged"
                                  : "FAILURE: divergence detected");
  return identical ? 0 : 1;
}
