// A replicated bank ledger with a custom state machine — shows how to extend
// the rsm service API beyond the shipped KV store, including the
// apply_read() hook that lets the service answer balance queries through
// the read-index fast path (no consensus round) while transfers replicate
// through the total order.
//
// The LedgerStateMachine applies `transfer from to amount` commands with a
// no-overdraft rule. Conflicting transfers race from different replicas;
// the atomic-broadcast total order makes every replica accept/reject
// exactly the same subset, so balances match everywhere and the global sum
// is conserved (the classic state-machine-replication invariant demo).
//
//   ./build/examples/ordered_ledger
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "core/rsm.h"
#include "obs/run_options.h"
#include "runtime/runtime_node.h"
#include "service/service_group.h"

using namespace zdc;

namespace {

/// Commands: [u8 op] op=1 open(account, amount); op=2 transfer(from, to, amt).
std::string cmd_open(const std::string& account, std::int64_t amount) {
  common::Encoder enc;
  enc.put_u8(1);
  enc.put_string(account);
  enc.put_u64(static_cast<std::uint64_t>(amount));
  return enc.take();
}

std::string cmd_transfer(const std::string& from, const std::string& to,
                         std::int64_t amount) {
  common::Encoder enc;
  enc.put_u8(2);
  enc.put_string(from);
  enc.put_string(to);
  enc.put_u64(static_cast<std::uint64_t>(amount));
  return enc.take();
}

class LedgerStateMachine final : public core::StateMachine {
 public:
  std::string apply(const std::string& command) override {
    common::Decoder dec(command);
    const std::uint8_t op = dec.get_u8();
    if (op == 1) {
      const std::string account = dec.get_string();
      const auto amount = static_cast<std::int64_t>(dec.get_u64());
      if (!dec.done()) return "malformed";
      balances_[account] += amount;
      return "opened";
    }
    if (op == 2) {
      const std::string from = dec.get_string();
      const std::string to = dec.get_string();
      const auto amount = static_cast<std::int64_t>(dec.get_u64());
      if (!dec.done()) return "malformed";
      auto it = balances_.find(from);
      if (it == balances_.end() || it->second < amount) {
        ++rejected_;
        return "rejected:insufficient";
      }
      it->second -= amount;
      balances_[to] += amount;
      ++accepted_;
      return "ok";
    }
    return "malformed";
  }

  /// Text queries served by Client::read — via the lease gate when it
  /// holds, or as an ordered consensus read when it does not; both paths
  /// land here, so the client sees one answer either way.
  [[nodiscard]] std::string apply_read(
      const std::string& query) const override {
    if (query == "total") return std::to_string(total());
    if (query.rfind("balance:", 0) == 0) {
      return std::to_string(balance(query.substr(8)));
    }
    return "error:unsupported_read";
  }

  [[nodiscard]] std::string snapshot() const override {
    common::Encoder enc;
    enc.put_u64(balances_.size());
    for (const auto& [account, balance] : balances_) {
      enc.put_string(account);
      enc.put_u64(static_cast<std::uint64_t>(balance));
    }
    return enc.take();
  }

  [[nodiscard]] std::string serialize() const override {
    common::Encoder enc;
    enc.put_u64(balances_.size());
    for (const auto& [account, balance] : balances_) {
      enc.put_string(account);
      enc.put_u64(static_cast<std::uint64_t>(balance));
    }
    enc.put_u64(accepted_);
    enc.put_u64(rejected_);
    return enc.take();
  }

  [[nodiscard]] bool restore(const std::string& image) override {
    common::Decoder dec(image);
    const std::uint64_t count = dec.get_u64();
    std::map<std::string, std::int64_t> next;
    for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
      std::string account = dec.get_string();
      const auto balance = static_cast<std::int64_t>(dec.get_u64());
      if (!dec.ok()) break;
      next.emplace(std::move(account), balance);
    }
    const std::uint64_t accepted = dec.get_u64();
    const std::uint64_t rejected = dec.get_u64();
    if (!dec.done() || next.size() != count) return false;
    balances_ = std::move(next);
    accepted_ = accepted;
    rejected_ = rejected;
    return true;
  }

  [[nodiscard]] std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [account, balance] : balances_) sum += balance;
    return sum;
  }
  [[nodiscard]] std::int64_t balance(const std::string& account) const {
    auto it = balances_.find(account);
    return it == balances_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::int64_t> balances_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace

int main() {
  constexpr std::uint32_t kReplicas = 4;
  constexpr std::int64_t kOpening = 100;
  constexpr int kConflictWaves = 5;

  rsm::ServiceGroup svc(
      RunOptions{}
          .with_group(kReplicas, 1)
          .with_seed(7)
          .with_sessions()
          .with_read_index(),
      [] { return std::make_unique<LedgerStateMachine>(); });
  svc.start();

  // Open three accounts, then fire deliberately conflicting transfers from
  // clients homed at every replica: alice holds 100, and each client tries
  // to move 60 out of alice — at most one spend per refill wave can be
  // accepted, and which one wins is decided by the total order alone.
  {
    rsm::Client setup = svc.client();
    setup.execute(cmd_open("alice", kOpening));
    setup.execute(cmd_open("bob", kOpening));
    setup.execute(cmd_open("carol", kOpening));
    setup.close_session();
  }

  std::vector<std::thread> racers;
  for (std::uint32_t c = 0; c < kReplicas; ++c) {
    racers.emplace_back([&svc, c] {
      rsm::Client client = svc.client(/*home=*/c);
      for (int wave = 0; wave < kConflictWaves; ++wave) {
        client.execute(
            cmd_transfer("alice", c % 2 == 0 ? "bob" : "carol", 60));
      }
      client.close_session();
    });
  }
  racers.emplace_back([&svc] {
    // Refills so later waves have something to fight over.
    rsm::Client client = svc.client(/*home=*/1);
    for (int wave = 0; wave < kConflictWaves; ++wave) {
      client.execute(cmd_transfer("bob", "alice", 30));
      client.execute(cmd_transfer("carol", "alice", 30));
    }
    client.close_session();
  });
  for (std::thread& racer : racers) racer.join();

  // Linearizable queries through apply_read — fast (no consensus) once the
  // lease holds, ordered otherwise; the answer is the same either way.
  rsm::Client reader = svc.client();
  const std::string alice = reader.read("balance:alice");
  const std::string total = reader.read("total");
  reader.close_session();

  // Replies come from the lease holder; give the other replicas a moment
  // to apply the tail of the log before comparing digests.
  const bool settled = runtime::RuntimeCluster::wait_until(
      [&] {
        std::uint64_t hi = 0;
        for (ProcessId p = 0; p < kReplicas; ++p) {
          hi = std::max(hi, svc.replicas().applied(p));
        }
        for (ProcessId p = 0; p < kReplicas; ++p) {
          if (svc.replicas().applied(p) < hi) return false;
        }
        return true;
      },
      30'000.0);
  const rsm::ServiceGroup::PathStats stats = svc.stats();
  svc.shutdown();
  if (!settled) {
    std::printf("ERROR: ledger did not settle in time\n");
    return 1;
  }

  bool identical = true;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    const bool same = svc.replicas().digest(p) == svc.replicas().digest(0);
    identical = identical && same;
    std::printf("replica %u: applied=%llu digest %s\n", p,
                static_cast<unsigned long long>(svc.replicas().applied(p)),
                same ? "== reference" : "!= reference (DIVERGED)");
  }

  const bool conserved = total == std::to_string(3 * kOpening);
  std::printf("\nalice=%s total=%s (opened %lld); money conserved: %s\n",
              alice.c_str(), total.c_str(),
              static_cast<long long>(3 * kOpening), conserved ? "yes" : "NO");
  std::printf("paths: writes=%llu fast_reads=%llu ordered_reads=%llu\n",
              static_cast<unsigned long long>(stats.writes),
              static_cast<unsigned long long>(stats.fast_reads),
              static_cast<unsigned long long>(stats.ordered_reads));
  std::printf("%s\n", identical && conserved
                          ? "SUCCESS: identical ledgers, invariant holds"
                          : "FAILURE");
  return identical && conserved ? 0 : 1;
}
