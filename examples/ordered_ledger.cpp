// A replicated bank ledger with a custom state machine — shows how to extend
// the public API beyond the shipped KV store.
//
// The LedgerStateMachine applies `transfer from to amount` commands with a
// no-overdraft rule. Conflicting transfers race from different replicas; the
// atomic-broadcast total order makes every replica accept/reject exactly the
// same subset, so balances match everywhere and the global sum is conserved
// (the classic state-machine-replication invariant demo).
//
//   ./build/examples/ordered_ledger
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/codec.h"
#include "core/rsm.h"
#include "runtime/runtime_node.h"

using namespace zdc;

namespace {

/// Commands: [u8 op] op=1 open(account, amount); op=2 transfer(from, to, amt).
std::string cmd_open(const std::string& account, std::int64_t amount) {
  common::Encoder enc;
  enc.put_u8(1);
  enc.put_string(account);
  enc.put_u64(static_cast<std::uint64_t>(amount));
  return enc.take();
}

std::string cmd_transfer(const std::string& from, const std::string& to,
                         std::int64_t amount) {
  common::Encoder enc;
  enc.put_u8(2);
  enc.put_string(from);
  enc.put_string(to);
  enc.put_u64(static_cast<std::uint64_t>(amount));
  return enc.take();
}

class LedgerStateMachine final : public core::StateMachine {
 public:
  std::string apply(const std::string& command) override {
    common::Decoder dec(command);
    const std::uint8_t op = dec.get_u8();
    if (op == 1) {
      const std::string account = dec.get_string();
      const auto amount = static_cast<std::int64_t>(dec.get_u64());
      if (!dec.done()) return "malformed";
      balances_[account] += amount;
      return "opened";
    }
    if (op == 2) {
      const std::string from = dec.get_string();
      const std::string to = dec.get_string();
      const auto amount = static_cast<std::int64_t>(dec.get_u64());
      if (!dec.done()) return "malformed";
      auto it = balances_.find(from);
      if (it == balances_.end() || it->second < amount) {
        ++rejected_;
        return "rejected:insufficient";
      }
      it->second -= amount;
      balances_[to] += amount;
      ++accepted_;
      return "ok";
    }
    return "malformed";
  }

  [[nodiscard]] std::string snapshot() const override {
    common::Encoder enc;
    enc.put_u64(balances_.size());
    for (const auto& [account, balance] : balances_) {
      enc.put_string(account);
      enc.put_u64(static_cast<std::uint64_t>(balance));
    }
    return enc.take();
  }

  [[nodiscard]] std::string serialize() const override {
    common::Encoder enc;
    enc.put_u64(balances_.size());
    for (const auto& [account, balance] : balances_) {
      enc.put_string(account);
      enc.put_u64(static_cast<std::uint64_t>(balance));
    }
    enc.put_u64(accepted_);
    enc.put_u64(rejected_);
    return enc.take();
  }

  [[nodiscard]] bool restore(const std::string& image) override {
    common::Decoder dec(image);
    const std::uint64_t count = dec.get_u64();
    std::map<std::string, std::int64_t> next;
    for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
      std::string account = dec.get_string();
      const auto balance = static_cast<std::int64_t>(dec.get_u64());
      if (!dec.ok()) break;
      next.emplace(std::move(account), balance);
    }
    const std::uint64_t accepted = dec.get_u64();
    const std::uint64_t rejected = dec.get_u64();
    if (!dec.done() || next.size() != count) return false;
    balances_ = std::move(next);
    accepted_ = accepted;
    rejected_ = rejected;
    return true;
  }

  [[nodiscard]] std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [account, balance] : balances_) sum += balance;
    return sum;
  }
  [[nodiscard]] std::int64_t balance(const std::string& account) const {
    auto it = balances_.find(account);
    return it == balances_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  std::map<std::string, std::int64_t> balances_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace

int main() {
  constexpr std::uint32_t kReplicas = 4;
  constexpr std::int64_t kOpening = 100;

  std::vector<core::ReplicatedStateMachine*> views;
  std::vector<std::unique_ptr<core::ReplicatedStateMachine>> rsms;
  for (std::uint32_t i = 0; i < kReplicas; ++i) {
    rsms.push_back(std::make_unique<core::ReplicatedStateMachine>(
        std::make_unique<LedgerStateMachine>()));
    views.push_back(rsms.back().get());
  }

  auto cfg = runtime::RuntimeCluster::Config::from_options(
      RunOptions{}.with_group(kReplicas, 1).with_seed(7));
  cfg.kind = runtime::ProtocolKind::kCAbcastL;  // the paper's Ω stack

  runtime::RuntimeCluster cluster(
      cfg, [&views](ProcessId p, const abcast::AppMessage& m) {
        views[p]->on_delivered(m);
      });
  for (ProcessId p = 0; p < kReplicas; ++p) {
    rsms[p]->bind_submit([&cluster, p](std::string cmd) {
      cluster.node(p).a_broadcast(std::move(cmd));
    });
  }
  cluster.start();

  // Open three accounts, then fire deliberately conflicting transfers from
  // every replica: alice holds 100, and each replica tries to move 60 out of
  // alice — at most one of the four can be accepted per "round" of spends.
  rsms[0]->submit(cmd_open("alice", kOpening));
  rsms[1]->submit(cmd_open("bob", kOpening));
  rsms[2]->submit(cmd_open("carol", kOpening));

  constexpr int kConflictWaves = 5;
  for (int wave = 0; wave < kConflictWaves; ++wave) {
    for (ProcessId p = 0; p < kReplicas; ++p) {
      rsms[p]->submit(cmd_transfer("alice", p % 2 == 0 ? "bob" : "carol", 60));
    }
    // Refill so later waves have something to fight over.
    rsms[0]->submit(cmd_transfer("bob", "alice", 30));
    rsms[1]->submit(cmd_transfer("carol", "alice", 30));
  }

  const std::uint64_t expected =
      3 + static_cast<std::uint64_t>(kConflictWaves) * (kReplicas + 2);
  const bool done = runtime::RuntimeCluster::wait_until(
      [&] {
        for (const auto& rsm : rsms) {
          if (rsm->applied_count() < expected) return false;
        }
        return true;
      },
      30'000.0);
  cluster.shutdown();
  if (!done) {
    std::printf("ERROR: ledger did not settle in time\n");
    return 1;
  }

  const std::string reference = rsms[0]->machine().snapshot();
  bool identical = true;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    const auto& ledger =
        static_cast<const LedgerStateMachine&>(rsms[p]->machine());
    const bool same = rsms[p]->machine().snapshot() == reference;
    identical = identical && same;
    std::printf(
        "replica %u: alice=%lld bob=%lld carol=%lld total=%lld "
        "(accepted=%llu rejected=%llu) %s\n",
        p, static_cast<long long>(ledger.balance("alice")),
        static_cast<long long>(ledger.balance("bob")),
        static_cast<long long>(ledger.balance("carol")),
        static_cast<long long>(ledger.total()),
        static_cast<unsigned long long>(ledger.accepted()),
        static_cast<unsigned long long>(ledger.rejected()),
        same ? "" : "DIVERGED");
  }

  const auto& ledger0 =
      static_cast<const LedgerStateMachine&>(rsms[0]->machine());
  const bool conserved = ledger0.total() == 3 * kOpening;
  std::printf("\nmoney conserved: %s (total %lld, opened %lld)\n",
              conserved ? "yes" : "NO", static_cast<long long>(ledger0.total()),
              static_cast<long long>(3 * kOpening));
  std::printf("%s\n", identical && conserved
                          ? "SUCCESS: identical ledgers, invariant holds"
                          : "FAILURE");
  return identical && conserved ? 0 : 1;
}
