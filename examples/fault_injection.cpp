// Fault injection on the threaded runtime: partition the cluster down the
// middle, heal it, then crash the Ω leader — and watch the heartbeat failure
// detector, leader hand-off and total order hold throughout.
//
// Prints a small timeline: writes land through all replicas; a {0,1}|{2,3}
// partition leaves neither side with a majority, so replication stalls until
// the heal re-injects the parked protocol traffic; then p0 (the leader) is
// killed, the survivors' ◇P modules detect the silence, Ω moves to p1, and
// replication resumes without losing, duplicating or reordering anything.
//
//   ./build/examples/fault_injection
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/kv_store.h"
#include "core/rsm.h"
#include "fault/link_policy.h"
#include "runtime/runtime_node.h"

using namespace zdc;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  constexpr std::uint32_t kReplicas = 4;

  std::vector<std::unique_ptr<core::ReplicatedStateMachine>> rsms;
  for (std::uint32_t i = 0; i < kReplicas; ++i) {
    rsms.push_back(std::make_unique<core::ReplicatedStateMachine>(
        std::make_unique<core::KvStateMachine>()));
  }

  auto cfg = runtime::RuntimeCluster::Config::from_options(
      RunOptions{}.with_group(kReplicas, 1).with_seed(99));
  cfg.kind = runtime::ProtocolKind::kCAbcastL;
  cfg.fd.interval_ms = 5.0;
  cfg.fd.initial_timeout_ms = 50.0;

  runtime::RuntimeCluster cluster(
      cfg, [&rsms](ProcessId p, const abcast::AppMessage& m) {
        rsms[p]->on_delivered(m);
      });
  for (ProcessId p = 0; p < kReplicas; ++p) {
    rsms[p]->bind_submit([&cluster, p](std::string cmd) {
      cluster.node(p).a_broadcast(std::move(cmd));
    });
  }
  const auto start = std::chrono::steady_clock::now();
  cluster.start();
  std::printf("[%7.1f ms] cluster up: n=%u, f=1, protocol=C-Abcast/L\n",
              ms_since(start), kReplicas);

  // Phase 1: normal operation, every replica writes.
  for (int i = 0; i < 15; ++i) {
    for (ProcessId p = 0; p < kReplicas; ++p) {
      rsms[p]->submit(core::kv_put(
          "pre/" + std::to_string(p) + "/" + std::to_string(i), "x"));
    }
  }
  const std::uint64_t phase1 = 15 * kReplicas;
  if (!runtime::RuntimeCluster::wait_until(
          [&] {
            for (const auto& rsm : rsms) {
              if (rsm->applied_count() < phase1) return false;
            }
            return true;
          },
          30'000.0)) {
    std::printf("ERROR: phase 1 stalled\n");
    return 1;
  }
  std::printf("[%7.1f ms] phase 1 done: %llu commands applied on every replica\n",
              ms_since(start), static_cast<unsigned long long>(phase1));

  // Phase 2: split the cluster {0,1} | {2,3}. With n=4, f=1 a majority is 3,
  // so neither side can order anything — writes submitted now stall. The
  // protocol channel has TCP semantics (connections stall, they do not drop),
  // so the heal releases the parked traffic and every write still lands.
  cluster.network().links().partition({0, 1});
  std::printf("[%7.1f ms] >>> partitioned {0,1} | {2,3}: no majority side <<<\n",
              ms_since(start));
  for (ProcessId p = 0; p < kReplicas; ++p) {
    rsms[p]->submit(core::kv_put("mid/" + std::to_string(p), "z"));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  bool stalled = true;
  for (const auto& rsm : rsms) {
    stalled = stalled && rsm->applied_count() == phase1;
  }
  std::printf("[%7.1f ms] 150 ms later: replication %s\n", ms_since(start),
              stalled ? "stalled, as it must" : "UNEXPECTEDLY PROGRESSED");
  cluster.network().links().heal();
  const std::uint64_t phase2 = phase1 + kReplicas;
  if (!runtime::RuntimeCluster::wait_until(
          [&] {
            for (const auto& rsm : rsms) {
              if (rsm->applied_count() < phase2) return false;
            }
            return true;
          },
          30'000.0)) {
    std::printf("ERROR: the healed cluster never caught up\n");
    return 1;
  }
  std::printf("[%7.1f ms] healed: the parked writes landed on every replica\n",
              ms_since(start));

  // Phase 3: kill the leader.
  cluster.crash(0);
  std::printf("[%7.1f ms] >>> crashed p0 (the Omega leader) <<<\n",
              ms_since(start));

  // Wait for detection at the survivors.
  runtime::RuntimeCluster::wait_until(
      [&] {
        return cluster.node(1).failure_detector().suspects(0) &&
               cluster.node(2).failure_detector().suspects(0) &&
               cluster.node(3).failure_detector().suspects(0);
      },
      30'000.0);
  std::printf("[%7.1f ms] all survivors suspect p0; new leader: p%u\n",
              ms_since(start),
              cluster.node(1).failure_detector().omega().leader());

  // Phase 4: writes through the survivors.
  for (int i = 0; i < 15; ++i) {
    for (ProcessId p = 1; p < kReplicas; ++p) {
      rsms[p]->submit(core::kv_put(
          "post/" + std::to_string(p) + "/" + std::to_string(i), "y"));
    }
  }
  const std::uint64_t min_total = phase2 + 15 * (kReplicas - 1);
  if (!runtime::RuntimeCluster::wait_until(
          [&] {
            for (ProcessId p = 1; p < kReplicas; ++p) {
              if (rsms[p]->applied_count() < min_total) return false;
            }
            return rsms[1]->applied_count() == rsms[2]->applied_count() &&
                   rsms[2]->applied_count() == rsms[3]->applied_count();
          },
          30'000.0)) {
    std::printf("ERROR: replication stalled after the leader crash\n");
    return 1;
  }
  std::printf("[%7.1f ms] failover done: survivors each applied %llu commands\n",
              ms_since(start),
              static_cast<unsigned long long>(rsms[1]->applied_count()));
  cluster.shutdown();

  const std::string reference = rsms[1]->machine().snapshot();
  const bool identical = rsms[2]->machine().snapshot() == reference &&
                         rsms[3]->machine().snapshot() == reference;
  std::printf("[%7.1f ms] survivor snapshots identical: %s\n", ms_since(start),
              identical ? "yes" : "NO");
  std::printf("%s\n", identical ? "SUCCESS: failover preserved the total order"
                                : "FAILURE");
  return identical ? 0 : 1;
}
