file(REMOVE_RECURSE
  "CMakeFiles/zdc_explore.dir/zdc_explore.cpp.o"
  "CMakeFiles/zdc_explore.dir/zdc_explore.cpp.o.d"
  "zdc_explore"
  "zdc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
