# Empty compiler generated dependencies file for zdc_explore.
# This may be replaced when dependencies are built.
