# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(zdc_explore_consensus "/root/repo/build/tools/zdc_explore" "consensus" "--protocol" "l" "--proposals" "a,a,a,a" "--trace")
set_tests_properties(zdc_explore_consensus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(zdc_explore_abcast "/root/repo/build/tools/zdc_explore" "abcast" "--protocol" "c-p" "--throughput" "200" "--messages" "50")
set_tests_properties(zdc_explore_abcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(zdc_explore_sequence "/root/repo/build/tools/zdc_explore" "sequence" "--protocol" "p" "--instances" "4")
set_tests_properties(zdc_explore_sequence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(zdc_explore_crash_flags "/root/repo/build/tools/zdc_explore" "consensus" "--protocol" "p" "--fd" "track" "--crash" "0@0.5")
set_tests_properties(zdc_explore_crash_flags PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(zdc_explore_help "/root/repo/build/tools/zdc_explore" "--help")
set_tests_properties(zdc_explore_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
