# Empty dependencies file for fast_ef_unit_test.
# This may be replaced when dependencies are built.
