file(REMOVE_RECURSE
  "CMakeFiles/fast_ef_unit_test.dir/fast_ef_unit_test.cpp.o"
  "CMakeFiles/fast_ef_unit_test.dir/fast_ef_unit_test.cpp.o.d"
  "fast_ef_unit_test"
  "fast_ef_unit_test.pdb"
  "fast_ef_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_ef_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
