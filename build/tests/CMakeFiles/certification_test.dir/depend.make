# Empty dependencies file for certification_test.
# This may be replaced when dependencies are built.
