file(REMOVE_RECURSE
  "CMakeFiles/certification_test.dir/certification_test.cpp.o"
  "CMakeFiles/certification_test.dir/certification_test.cpp.o.d"
  "certification_test"
  "certification_test.pdb"
  "certification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
