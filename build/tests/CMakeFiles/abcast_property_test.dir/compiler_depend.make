# Empty compiler generated dependencies file for abcast_property_test.
# This may be replaced when dependencies are built.
