file(REMOVE_RECURSE
  "CMakeFiles/abcast_property_test.dir/abcast_property_test.cpp.o"
  "CMakeFiles/abcast_property_test.dir/abcast_property_test.cpp.o.d"
  "abcast_property_test"
  "abcast_property_test.pdb"
  "abcast_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
