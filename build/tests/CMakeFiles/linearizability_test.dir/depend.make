# Empty dependencies file for linearizability_test.
# This may be replaced when dependencies are built.
