file(REMOVE_RECURSE
  "CMakeFiles/linearizability_test.dir/linearizability_test.cpp.o"
  "CMakeFiles/linearizability_test.dir/linearizability_test.cpp.o.d"
  "linearizability_test"
  "linearizability_test.pdb"
  "linearizability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearizability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
