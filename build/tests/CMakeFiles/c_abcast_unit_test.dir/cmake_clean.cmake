file(REMOVE_RECURSE
  "CMakeFiles/c_abcast_unit_test.dir/c_abcast_unit_test.cpp.o"
  "CMakeFiles/c_abcast_unit_test.dir/c_abcast_unit_test.cpp.o.d"
  "c_abcast_unit_test"
  "c_abcast_unit_test.pdb"
  "c_abcast_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c_abcast_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
