# Empty dependencies file for c_abcast_unit_test.
# This may be replaced when dependencies are built.
