file(REMOVE_RECURSE
  "CMakeFiles/consensus_property_test.dir/consensus_property_test.cpp.o"
  "CMakeFiles/consensus_property_test.dir/consensus_property_test.cpp.o.d"
  "consensus_property_test"
  "consensus_property_test.pdb"
  "consensus_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
