# Empty compiler generated dependencies file for consensus_property_test.
# This may be replaced when dependencies are built.
