file(REMOVE_RECURSE
  "CMakeFiles/l_p_unit_test.dir/l_p_unit_test.cpp.o"
  "CMakeFiles/l_p_unit_test.dir/l_p_unit_test.cpp.o.d"
  "l_p_unit_test"
  "l_p_unit_test.pdb"
  "l_p_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l_p_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
