# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for l_p_unit_test.
