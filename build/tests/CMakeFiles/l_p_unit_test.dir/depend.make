# Empty dependencies file for l_p_unit_test.
# This may be replaced when dependencies are built.
