# Empty dependencies file for table1_regression_test.
# This may be replaced when dependencies are built.
