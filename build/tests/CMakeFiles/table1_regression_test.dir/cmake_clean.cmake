file(REMOVE_RECURSE
  "CMakeFiles/table1_regression_test.dir/table1_regression_test.cpp.o"
  "CMakeFiles/table1_regression_test.dir/table1_regression_test.cpp.o.d"
  "table1_regression_test"
  "table1_regression_test.pdb"
  "table1_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
