file(REMOVE_RECURSE
  "CMakeFiles/replicated_log_test.dir/replicated_log_test.cpp.o"
  "CMakeFiles/replicated_log_test.dir/replicated_log_test.cpp.o.d"
  "replicated_log_test"
  "replicated_log_test.pdb"
  "replicated_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
