# Empty dependencies file for replicated_log_test.
# This may be replaced when dependencies are built.
