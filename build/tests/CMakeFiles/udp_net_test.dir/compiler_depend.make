# Empty compiler generated dependencies file for udp_net_test.
# This may be replaced when dependencies are built.
