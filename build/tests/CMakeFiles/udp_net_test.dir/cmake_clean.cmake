file(REMOVE_RECURSE
  "CMakeFiles/udp_net_test.dir/udp_net_test.cpp.o"
  "CMakeFiles/udp_net_test.dir/udp_net_test.cpp.o.d"
  "udp_net_test"
  "udp_net_test.pdb"
  "udp_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
