file(REMOVE_RECURSE
  "CMakeFiles/runtime_workload_test.dir/runtime_workload_test.cpp.o"
  "CMakeFiles/runtime_workload_test.dir/runtime_workload_test.cpp.o.d"
  "runtime_workload_test"
  "runtime_workload_test.pdb"
  "runtime_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
