file(REMOVE_RECURSE
  "CMakeFiles/sequence_test.dir/sequence_test.cpp.o"
  "CMakeFiles/sequence_test.dir/sequence_test.cpp.o.d"
  "sequence_test"
  "sequence_test.pdb"
  "sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
