# Empty compiler generated dependencies file for sequence_test.
# This may be replaced when dependencies are built.
