# Empty compiler generated dependencies file for paxos_abcast_unit_test.
# This may be replaced when dependencies are built.
