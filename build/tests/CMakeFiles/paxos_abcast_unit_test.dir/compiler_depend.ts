# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for paxos_abcast_unit_test.
