file(REMOVE_RECURSE
  "CMakeFiles/paxos_abcast_unit_test.dir/paxos_abcast_unit_test.cpp.o"
  "CMakeFiles/paxos_abcast_unit_test.dir/paxos_abcast_unit_test.cpp.o.d"
  "paxos_abcast_unit_test"
  "paxos_abcast_unit_test.pdb"
  "paxos_abcast_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxos_abcast_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
