# Empty compiler generated dependencies file for kv_rsm_test.
# This may be replaced when dependencies are built.
