file(REMOVE_RECURSE
  "CMakeFiles/kv_rsm_test.dir/kv_rsm_test.cpp.o"
  "CMakeFiles/kv_rsm_test.dir/kv_rsm_test.cpp.o.d"
  "kv_rsm_test"
  "kv_rsm_test.pdb"
  "kv_rsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_rsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
