
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lower_bound_test.cpp" "tests/CMakeFiles/lower_bound_test.dir/lower_bound_test.cpp.o" "gcc" "tests/CMakeFiles/lower_bound_test.dir/lower_bound_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/zdc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/abcast/CMakeFiles/zdc_abcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/zdc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zdc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
