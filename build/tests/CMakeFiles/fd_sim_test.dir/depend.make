# Empty dependencies file for fd_sim_test.
# This may be replaced when dependencies are built.
