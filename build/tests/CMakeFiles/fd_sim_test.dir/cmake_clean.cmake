file(REMOVE_RECURSE
  "CMakeFiles/fd_sim_test.dir/fd_sim_test.cpp.o"
  "CMakeFiles/fd_sim_test.dir/fd_sim_test.cpp.o.d"
  "fd_sim_test"
  "fd_sim_test.pdb"
  "fd_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
