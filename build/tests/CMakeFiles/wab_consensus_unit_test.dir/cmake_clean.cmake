file(REMOVE_RECURSE
  "CMakeFiles/wab_consensus_unit_test.dir/wab_consensus_unit_test.cpp.o"
  "CMakeFiles/wab_consensus_unit_test.dir/wab_consensus_unit_test.cpp.o.d"
  "wab_consensus_unit_test"
  "wab_consensus_unit_test.pdb"
  "wab_consensus_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wab_consensus_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
