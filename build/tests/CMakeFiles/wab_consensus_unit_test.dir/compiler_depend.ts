# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wab_consensus_unit_test.
