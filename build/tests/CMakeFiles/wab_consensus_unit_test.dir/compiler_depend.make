# Empty compiler generated dependencies file for wab_consensus_unit_test.
# This may be replaced when dependencies are built.
