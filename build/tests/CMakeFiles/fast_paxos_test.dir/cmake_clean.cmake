file(REMOVE_RECURSE
  "CMakeFiles/fast_paxos_test.dir/fast_paxos_test.cpp.o"
  "CMakeFiles/fast_paxos_test.dir/fast_paxos_test.cpp.o.d"
  "fast_paxos_test"
  "fast_paxos_test.pdb"
  "fast_paxos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_paxos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
