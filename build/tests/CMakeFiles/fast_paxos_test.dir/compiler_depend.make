# Empty compiler generated dependencies file for fast_paxos_test.
# This may be replaced when dependencies are built.
