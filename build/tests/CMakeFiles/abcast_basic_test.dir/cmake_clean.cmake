file(REMOVE_RECURSE
  "CMakeFiles/abcast_basic_test.dir/abcast_basic_test.cpp.o"
  "CMakeFiles/abcast_basic_test.dir/abcast_basic_test.cpp.o.d"
  "abcast_basic_test"
  "abcast_basic_test.pdb"
  "abcast_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
