# Empty compiler generated dependencies file for abcast_basic_test.
# This may be replaced when dependencies are built.
