# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for abcast_basic_test.
