file(REMOVE_RECURSE
  "CMakeFiles/msgset_test.dir/msgset_test.cpp.o"
  "CMakeFiles/msgset_test.dir/msgset_test.cpp.o.d"
  "msgset_test"
  "msgset_test.pdb"
  "msgset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
