# Empty dependencies file for msgset_test.
# This may be replaced when dependencies are built.
