# Empty compiler generated dependencies file for consensus_basic_test.
# This may be replaced when dependencies are built.
