file(REMOVE_RECURSE
  "CMakeFiles/consensus_basic_test.dir/consensus_basic_test.cpp.o"
  "CMakeFiles/consensus_basic_test.dir/consensus_basic_test.cpp.o.d"
  "consensus_basic_test"
  "consensus_basic_test.pdb"
  "consensus_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
