file(REMOVE_RECURSE
  "CMakeFiles/ct_ef_test.dir/ct_ef_test.cpp.o"
  "CMakeFiles/ct_ef_test.dir/ct_ef_test.cpp.o.d"
  "ct_ef_test"
  "ct_ef_test.pdb"
  "ct_ef_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_ef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
