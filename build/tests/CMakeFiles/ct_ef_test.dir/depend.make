# Empty dependencies file for ct_ef_test.
# This may be replaced when dependencies are built.
