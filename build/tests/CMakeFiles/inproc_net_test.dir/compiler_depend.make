# Empty compiler generated dependencies file for inproc_net_test.
# This may be replaced when dependencies are built.
