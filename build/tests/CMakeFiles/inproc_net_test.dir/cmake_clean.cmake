file(REMOVE_RECURSE
  "CMakeFiles/inproc_net_test.dir/inproc_net_test.cpp.o"
  "CMakeFiles/inproc_net_test.dir/inproc_net_test.cpp.o.d"
  "inproc_net_test"
  "inproc_net_test.pdb"
  "inproc_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inproc_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
