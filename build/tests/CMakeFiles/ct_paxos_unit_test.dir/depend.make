# Empty dependencies file for ct_paxos_unit_test.
# This may be replaced when dependencies are built.
