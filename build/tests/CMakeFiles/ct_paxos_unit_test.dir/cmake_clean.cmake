file(REMOVE_RECURSE
  "CMakeFiles/ct_paxos_unit_test.dir/ct_paxos_unit_test.cpp.o"
  "CMakeFiles/ct_paxos_unit_test.dir/ct_paxos_unit_test.cpp.o.d"
  "ct_paxos_unit_test"
  "ct_paxos_unit_test.pdb"
  "ct_paxos_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_paxos_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
