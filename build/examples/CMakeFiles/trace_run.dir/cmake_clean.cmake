file(REMOVE_RECURSE
  "CMakeFiles/trace_run.dir/trace_run.cpp.o"
  "CMakeFiles/trace_run.dir/trace_run.cpp.o.d"
  "trace_run"
  "trace_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
