# Empty dependencies file for trace_run.
# This may be replaced when dependencies are built.
