# Empty dependencies file for replicated_kv.
# This may be replaced when dependencies are built.
