file(REMOVE_RECURSE
  "CMakeFiles/replicated_kv.dir/replicated_kv.cpp.o"
  "CMakeFiles/replicated_kv.dir/replicated_kv.cpp.o.d"
  "replicated_kv"
  "replicated_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
