# Empty compiler generated dependencies file for ordered_ledger.
# This may be replaced when dependencies are built.
