file(REMOVE_RECURSE
  "CMakeFiles/ordered_ledger.dir/ordered_ledger.cpp.o"
  "CMakeFiles/ordered_ledger.dir/ordered_ledger.cpp.o.d"
  "ordered_ledger"
  "ordered_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
