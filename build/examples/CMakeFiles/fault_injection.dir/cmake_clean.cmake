file(REMOVE_RECURSE
  "CMakeFiles/fault_injection.dir/fault_injection.cpp.o"
  "CMakeFiles/fault_injection.dir/fault_injection.cpp.o.d"
  "fault_injection"
  "fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
