# Empty dependencies file for fault_injection.
# This may be replaced when dependencies are built.
