# Empty compiler generated dependencies file for bench_onestep.
# This may be replaced when dependencies are built.
