
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_onestep.cpp" "bench/CMakeFiles/bench_onestep.dir/bench_onestep.cpp.o" "gcc" "bench/CMakeFiles/bench_onestep.dir/bench_onestep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/zdc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/abcast/CMakeFiles/zdc_abcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
