file(REMOVE_RECURSE
  "CMakeFiles/bench_onestep.dir/bench_onestep.cpp.o"
  "CMakeFiles/bench_onestep.dir/bench_onestep.cpp.o.d"
  "bench_onestep"
  "bench_onestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_onestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
