file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_qos.dir/bench_fd_qos.cpp.o"
  "CMakeFiles/bench_fd_qos.dir/bench_fd_qos.cpp.o.d"
  "bench_fd_qos"
  "bench_fd_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
