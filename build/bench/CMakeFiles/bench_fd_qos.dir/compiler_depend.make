# Empty compiler generated dependencies file for bench_fd_qos.
# This may be replaced when dependencies are built.
