file(REMOVE_RECURSE
  "CMakeFiles/bench_wan.dir/bench_wan.cpp.o"
  "CMakeFiles/bench_wan.dir/bench_wan.cpp.o.d"
  "bench_wan"
  "bench_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
