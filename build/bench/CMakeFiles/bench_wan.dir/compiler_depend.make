# Empty compiler generated dependencies file for bench_wan.
# This may be replaced when dependencies are built.
