# Empty compiler generated dependencies file for bench_ablation_batch.
# This may be replaced when dependencies are built.
