file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batch.dir/bench_ablation_batch.cpp.o"
  "CMakeFiles/bench_ablation_batch.dir/bench_ablation_batch.cpp.o.d"
  "bench_ablation_batch"
  "bench_ablation_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
