# Empty compiler generated dependencies file for bench_ablation_resilience.
# This may be replaced when dependencies are built.
