file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resilience.dir/bench_ablation_resilience.cpp.o"
  "CMakeFiles/bench_ablation_resilience.dir/bench_ablation_resilience.cpp.o.d"
  "bench_ablation_resilience"
  "bench_ablation_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
