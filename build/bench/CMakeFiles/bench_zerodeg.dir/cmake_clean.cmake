file(REMOVE_RECURSE
  "CMakeFiles/bench_zerodeg.dir/bench_zerodeg.cpp.o"
  "CMakeFiles/bench_zerodeg.dir/bench_zerodeg.cpp.o.d"
  "bench_zerodeg"
  "bench_zerodeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zerodeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
