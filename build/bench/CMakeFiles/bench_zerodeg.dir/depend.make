# Empty dependencies file for bench_zerodeg.
# This may be replaced when dependencies are built.
