# Empty dependencies file for bench_ablation_collisions.
# This may be replaced when dependencies are built.
