file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collisions.dir/bench_ablation_collisions.cpp.o"
  "CMakeFiles/bench_ablation_collisions.dir/bench_ablation_collisions.cpp.o.d"
  "bench_ablation_collisions"
  "bench_ablation_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
