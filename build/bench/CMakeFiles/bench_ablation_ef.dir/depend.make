# Empty dependencies file for bench_ablation_ef.
# This may be replaced when dependencies are built.
