file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ef.dir/bench_ablation_ef.cpp.o"
  "CMakeFiles/bench_ablation_ef.dir/bench_ablation_ef.cpp.o.d"
  "bench_ablation_ef"
  "bench_ablation_ef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
