# Empty dependencies file for bench_runtime_validation.
# This may be replaced when dependencies are built.
