file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_validation.dir/bench_runtime_validation.cpp.o"
  "CMakeFiles/bench_runtime_validation.dir/bench_runtime_validation.cpp.o.d"
  "bench_runtime_validation"
  "bench_runtime_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
