# Empty compiler generated dependencies file for zdc_core.
# This may be replaced when dependencies are built.
