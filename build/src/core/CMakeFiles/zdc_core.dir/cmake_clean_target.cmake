file(REMOVE_RECURSE
  "libzdc_core.a"
)
