file(REMOVE_RECURSE
  "CMakeFiles/zdc_core.dir/kv_store.cpp.o"
  "CMakeFiles/zdc_core.dir/kv_store.cpp.o.d"
  "CMakeFiles/zdc_core.dir/linearizability.cpp.o"
  "CMakeFiles/zdc_core.dir/linearizability.cpp.o.d"
  "CMakeFiles/zdc_core.dir/replicated_log.cpp.o"
  "CMakeFiles/zdc_core.dir/replicated_log.cpp.o.d"
  "CMakeFiles/zdc_core.dir/rsm.cpp.o"
  "CMakeFiles/zdc_core.dir/rsm.cpp.o.d"
  "libzdc_core.a"
  "libzdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
