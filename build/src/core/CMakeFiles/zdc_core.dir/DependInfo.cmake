
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/kv_store.cpp" "src/core/CMakeFiles/zdc_core.dir/kv_store.cpp.o" "gcc" "src/core/CMakeFiles/zdc_core.dir/kv_store.cpp.o.d"
  "/root/repo/src/core/linearizability.cpp" "src/core/CMakeFiles/zdc_core.dir/linearizability.cpp.o" "gcc" "src/core/CMakeFiles/zdc_core.dir/linearizability.cpp.o.d"
  "/root/repo/src/core/replicated_log.cpp" "src/core/CMakeFiles/zdc_core.dir/replicated_log.cpp.o" "gcc" "src/core/CMakeFiles/zdc_core.dir/replicated_log.cpp.o.d"
  "/root/repo/src/core/rsm.cpp" "src/core/CMakeFiles/zdc_core.dir/rsm.cpp.o" "gcc" "src/core/CMakeFiles/zdc_core.dir/rsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/abcast/CMakeFiles/zdc_abcast.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/zdc_consensus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
