# Empty compiler generated dependencies file for zdc_common.
# This may be replaced when dependencies are built.
