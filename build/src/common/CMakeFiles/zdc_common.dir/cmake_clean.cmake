file(REMOVE_RECURSE
  "CMakeFiles/zdc_common.dir/codec.cpp.o"
  "CMakeFiles/zdc_common.dir/codec.cpp.o.d"
  "CMakeFiles/zdc_common.dir/log.cpp.o"
  "CMakeFiles/zdc_common.dir/log.cpp.o.d"
  "CMakeFiles/zdc_common.dir/stats.cpp.o"
  "CMakeFiles/zdc_common.dir/stats.cpp.o.d"
  "libzdc_common.a"
  "libzdc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
