file(REMOVE_RECURSE
  "libzdc_common.a"
)
