file(REMOVE_RECURSE
  "libzdc_consensus.a"
)
