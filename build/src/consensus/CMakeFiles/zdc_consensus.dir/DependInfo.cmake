
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/brasileiro.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/brasileiro.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/brasileiro.cpp.o.d"
  "/root/repo/src/consensus/chandra_toueg.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/chandra_toueg.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/chandra_toueg.cpp.o.d"
  "/root/repo/src/consensus/consensus.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/consensus.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/consensus.cpp.o.d"
  "/root/repo/src/consensus/ef_consensus.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/ef_consensus.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/ef_consensus.cpp.o.d"
  "/root/repo/src/consensus/fast_paxos.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/fast_paxos.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/fast_paxos.cpp.o.d"
  "/root/repo/src/consensus/l_consensus.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/l_consensus.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/l_consensus.cpp.o.d"
  "/root/repo/src/consensus/p_consensus.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/p_consensus.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/p_consensus.cpp.o.d"
  "/root/repo/src/consensus/paxos.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/paxos.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/paxos.cpp.o.d"
  "/root/repo/src/consensus/recovering_paxos.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/recovering_paxos.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/recovering_paxos.cpp.o.d"
  "/root/repo/src/consensus/wab_consensus.cpp" "src/consensus/CMakeFiles/zdc_consensus.dir/wab_consensus.cpp.o" "gcc" "src/consensus/CMakeFiles/zdc_consensus.dir/wab_consensus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
