file(REMOVE_RECURSE
  "CMakeFiles/zdc_consensus.dir/brasileiro.cpp.o"
  "CMakeFiles/zdc_consensus.dir/brasileiro.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/chandra_toueg.cpp.o"
  "CMakeFiles/zdc_consensus.dir/chandra_toueg.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/consensus.cpp.o"
  "CMakeFiles/zdc_consensus.dir/consensus.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/ef_consensus.cpp.o"
  "CMakeFiles/zdc_consensus.dir/ef_consensus.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/fast_paxos.cpp.o"
  "CMakeFiles/zdc_consensus.dir/fast_paxos.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/l_consensus.cpp.o"
  "CMakeFiles/zdc_consensus.dir/l_consensus.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/p_consensus.cpp.o"
  "CMakeFiles/zdc_consensus.dir/p_consensus.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/paxos.cpp.o"
  "CMakeFiles/zdc_consensus.dir/paxos.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/recovering_paxos.cpp.o"
  "CMakeFiles/zdc_consensus.dir/recovering_paxos.cpp.o.d"
  "CMakeFiles/zdc_consensus.dir/wab_consensus.cpp.o"
  "CMakeFiles/zdc_consensus.dir/wab_consensus.cpp.o.d"
  "libzdc_consensus.a"
  "libzdc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
