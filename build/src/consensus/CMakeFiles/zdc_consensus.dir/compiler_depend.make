# Empty compiler generated dependencies file for zdc_consensus.
# This may be replaced when dependencies are built.
