file(REMOVE_RECURSE
  "CMakeFiles/zdc_sim.dir/abcast_world.cpp.o"
  "CMakeFiles/zdc_sim.dir/abcast_world.cpp.o.d"
  "CMakeFiles/zdc_sim.dir/consensus_world.cpp.o"
  "CMakeFiles/zdc_sim.dir/consensus_world.cpp.o.d"
  "CMakeFiles/zdc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/zdc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/zdc_sim.dir/fd_sim.cpp.o"
  "CMakeFiles/zdc_sim.dir/fd_sim.cpp.o.d"
  "CMakeFiles/zdc_sim.dir/lan_model.cpp.o"
  "CMakeFiles/zdc_sim.dir/lan_model.cpp.o.d"
  "CMakeFiles/zdc_sim.dir/sequence_world.cpp.o"
  "CMakeFiles/zdc_sim.dir/sequence_world.cpp.o.d"
  "CMakeFiles/zdc_sim.dir/trace.cpp.o"
  "CMakeFiles/zdc_sim.dir/trace.cpp.o.d"
  "libzdc_sim.a"
  "libzdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
