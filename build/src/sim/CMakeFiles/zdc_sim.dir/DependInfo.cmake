
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/abcast_world.cpp" "src/sim/CMakeFiles/zdc_sim.dir/abcast_world.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/abcast_world.cpp.o.d"
  "/root/repo/src/sim/consensus_world.cpp" "src/sim/CMakeFiles/zdc_sim.dir/consensus_world.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/consensus_world.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/zdc_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/fd_sim.cpp" "src/sim/CMakeFiles/zdc_sim.dir/fd_sim.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/fd_sim.cpp.o.d"
  "/root/repo/src/sim/lan_model.cpp" "src/sim/CMakeFiles/zdc_sim.dir/lan_model.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/lan_model.cpp.o.d"
  "/root/repo/src/sim/sequence_world.cpp" "src/sim/CMakeFiles/zdc_sim.dir/sequence_world.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/sequence_world.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/zdc_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/zdc_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/zdc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/abcast/CMakeFiles/zdc_abcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
