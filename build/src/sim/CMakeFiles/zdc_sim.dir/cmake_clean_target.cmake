file(REMOVE_RECURSE
  "libzdc_sim.a"
)
