# Empty compiler generated dependencies file for zdc_sim.
# This may be replaced when dependencies are built.
