file(REMOVE_RECURSE
  "CMakeFiles/zdc_abcast.dir/abcast.cpp.o"
  "CMakeFiles/zdc_abcast.dir/abcast.cpp.o.d"
  "CMakeFiles/zdc_abcast.dir/c_abcast.cpp.o"
  "CMakeFiles/zdc_abcast.dir/c_abcast.cpp.o.d"
  "CMakeFiles/zdc_abcast.dir/paxos_abcast.cpp.o"
  "CMakeFiles/zdc_abcast.dir/paxos_abcast.cpp.o.d"
  "libzdc_abcast.a"
  "libzdc_abcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_abcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
