# Empty dependencies file for zdc_abcast.
# This may be replaced when dependencies are built.
