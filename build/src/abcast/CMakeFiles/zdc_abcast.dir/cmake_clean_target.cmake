file(REMOVE_RECURSE
  "libzdc_abcast.a"
)
