
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abcast/abcast.cpp" "src/abcast/CMakeFiles/zdc_abcast.dir/abcast.cpp.o" "gcc" "src/abcast/CMakeFiles/zdc_abcast.dir/abcast.cpp.o.d"
  "/root/repo/src/abcast/c_abcast.cpp" "src/abcast/CMakeFiles/zdc_abcast.dir/c_abcast.cpp.o" "gcc" "src/abcast/CMakeFiles/zdc_abcast.dir/c_abcast.cpp.o.d"
  "/root/repo/src/abcast/paxos_abcast.cpp" "src/abcast/CMakeFiles/zdc_abcast.dir/paxos_abcast.cpp.o" "gcc" "src/abcast/CMakeFiles/zdc_abcast.dir/paxos_abcast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/zdc_consensus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
