file(REMOVE_RECURSE
  "libzdc_runtime.a"
)
