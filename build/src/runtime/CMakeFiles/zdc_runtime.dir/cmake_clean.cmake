file(REMOVE_RECURSE
  "CMakeFiles/zdc_runtime.dir/heartbeat_fd.cpp.o"
  "CMakeFiles/zdc_runtime.dir/heartbeat_fd.cpp.o.d"
  "CMakeFiles/zdc_runtime.dir/inproc_net.cpp.o"
  "CMakeFiles/zdc_runtime.dir/inproc_net.cpp.o.d"
  "CMakeFiles/zdc_runtime.dir/runtime_node.cpp.o"
  "CMakeFiles/zdc_runtime.dir/runtime_node.cpp.o.d"
  "CMakeFiles/zdc_runtime.dir/udp_net.cpp.o"
  "CMakeFiles/zdc_runtime.dir/udp_net.cpp.o.d"
  "CMakeFiles/zdc_runtime.dir/workload.cpp.o"
  "CMakeFiles/zdc_runtime.dir/workload.cpp.o.d"
  "libzdc_runtime.a"
  "libzdc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
