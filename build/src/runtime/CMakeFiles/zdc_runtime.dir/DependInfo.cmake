
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/heartbeat_fd.cpp" "src/runtime/CMakeFiles/zdc_runtime.dir/heartbeat_fd.cpp.o" "gcc" "src/runtime/CMakeFiles/zdc_runtime.dir/heartbeat_fd.cpp.o.d"
  "/root/repo/src/runtime/inproc_net.cpp" "src/runtime/CMakeFiles/zdc_runtime.dir/inproc_net.cpp.o" "gcc" "src/runtime/CMakeFiles/zdc_runtime.dir/inproc_net.cpp.o.d"
  "/root/repo/src/runtime/runtime_node.cpp" "src/runtime/CMakeFiles/zdc_runtime.dir/runtime_node.cpp.o" "gcc" "src/runtime/CMakeFiles/zdc_runtime.dir/runtime_node.cpp.o.d"
  "/root/repo/src/runtime/udp_net.cpp" "src/runtime/CMakeFiles/zdc_runtime.dir/udp_net.cpp.o" "gcc" "src/runtime/CMakeFiles/zdc_runtime.dir/udp_net.cpp.o.d"
  "/root/repo/src/runtime/workload.cpp" "src/runtime/CMakeFiles/zdc_runtime.dir/workload.cpp.o" "gcc" "src/runtime/CMakeFiles/zdc_runtime.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/zdc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/abcast/CMakeFiles/zdc_abcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
