# Empty compiler generated dependencies file for zdc_runtime.
# This may be replaced when dependencies are built.
