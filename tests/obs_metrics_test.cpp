// MetricsRegistry semantics (family identity, label points, histogram
// bucketing) plus the concurrent-hammer test that gives TSan a real
// multi-writer/snapshot workload to chew on.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace zdc::obs {
namespace {

TEST(MetricsRegistry, SameNameAndLabelsIsSameCounter) {
  MetricsRegistry reg;
  Counter& a = reg.counter("requests_total", {{"process", "0"}});
  Counter& b = reg.counter("requests_total", {{"process", "0"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.counter("m", {{"x", "1"}, {"y", "2"}});
  Counter& b = reg.counter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctPoints) {
  MetricsRegistry reg;
  reg.counter("m", {{"process", "0"}}).inc(5);
  reg.counter("m", {{"process", "1"}}).inc(7);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].points.size(), 2u);
  EXPECT_EQ(snap[0].points[0].counter, 5u);
  EXPECT_EQ(snap[0].points[1].counter, 7u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(4.0);
  g.add(1.5);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(MetricsRegistry, HistogramBucketsAndMoments) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(5.0);   // bucket 1
  h.observe(99.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
}

TEST(MetricsRegistry, EmptyBoundsGetDefaultLatencyBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {});
  EXPECT_EQ(h.bounds(), default_latency_buckets_ms());
}

TEST(MetricsRegistry, SnapshotIsSortedByFamilyName) {
  MetricsRegistry reg;
  reg.counter("zebra");
  reg.gauge("alpha");
  reg.histogram("midway", {1.0});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "midway");
  EXPECT_EQ(snap[2].name, "zebra");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].kind, MetricKind::kCounter);
}

// The TSan workload: many writer threads hammering a shared counter, a
// per-thread counter and a shared histogram while another thread repeatedly
// snapshots. Exact final counts prove no increment was lost.
TEST(MetricsRegistry, ConcurrentHammerExactCounts) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;

  MetricsRegistry reg;
  Counter& shared = reg.counter("hammer_shared_total");
  Histogram& hist = reg.histogram("hammer_lat", {0.5});

  std::atomic<bool> stop{false};
  std::thread snapshotter([&reg, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)reg.snapshot();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, &shared, &hist, t] {
      Counter& mine =
          reg.counter("hammer_per_thread_total", {{"t", std::to_string(t)}});
      for (int i = 0; i < kIncrements; ++i) {
        shared.inc();
        mine.inc();
        hist.observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_EQ(shared.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(hist.bucket(0),
            static_cast<std::uint64_t>(kThreads) * (kIncrements / 2));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        reg.counter("hammer_per_thread_total", {{"t", std::to_string(t)}})
            .value(),
        static_cast<std::uint64_t>(kIncrements));
  }
}

}  // namespace
}  // namespace zdc::obs
