// Deterministic whole-service simulation tests: the session/read-index
// stack run at scale through the modeled consensus fabric, with the
// built-in exactly-once and linearizability checkers as the oracle.
//
// The acceptance run (ISSUE: >= 1e5 client sessions, crash/restart
// nemesis, zero dedup violations, zero linearizability violations) lives
// here as AcceptanceHundredThousandSessions.
#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "service/service_sim.h"

namespace zdc::rsm {
namespace {

void expect_clean(const ServiceSimReport& r) {
  EXPECT_TRUE(r.completed) << "sessions done " << r.sessions_completed;
  EXPECT_EQ(r.double_applies, 0u) << r.first_violation;
  EXPECT_EQ(r.lin_violations, 0u) << r.first_violation;
  EXPECT_TRUE(r.digests_converged) << r.first_violation;
}

TEST(ServiceSim, ClosedLoopSmoke) {
  ServiceSimConfig cfg;
  cfg.sessions = 300;
  cfg.concurrency = 32;
  cfg.seed = 7;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  EXPECT_EQ(r.sessions_completed, 300u);
  EXPECT_EQ(r.writes_acked, 300u * cfg.writes_per_session);
  EXPECT_EQ(r.reads_acked, 300u * cfg.reads_per_session);
  // In a quiet cluster the lease gate serves nearly every read fast, and
  // uncontended submissions commit one-step (the paper's fast path).
  EXPECT_GT(r.fast_reads, 0u);
  EXPECT_GT(r.one_step_commits, 0u);
  EXPECT_GT(r.write_mean_ms, 0.0);
}

TEST(ServiceSim, DeterministicAcrossRuns) {
  ServiceSimConfig cfg;
  cfg.sessions = 200;
  cfg.concurrency = 16;
  cfg.crashes = 1;
  cfg.seed = 42;
  const ServiceSimReport a = run_service_sim(cfg);
  const ServiceSimReport b = run_service_sim(cfg);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.fast_reads, b.fast_reads);
  EXPECT_EQ(a.ordered_reads, b.ordered_reads);
  EXPECT_EQ(a.one_step_commits, b.one_step_commits);
  EXPECT_EQ(a.two_step_commits, b.two_step_commits);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.sim_ms, b.sim_ms);
}

TEST(ServiceSim, ReadIndexOffOrdersEveryRead) {
  ServiceSimConfig cfg;
  cfg.sessions = 200;
  cfg.concurrency = 16;
  cfg.read_index = false;
  cfg.seed = 3;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  EXPECT_EQ(r.fast_reads, 0u);
  EXPECT_EQ(r.ordered_reads, 200u * cfg.reads_per_session);
}

TEST(ServiceSim, OpenLoopPoissonArrivals) {
  ServiceSimConfig cfg;
  cfg.sessions = 300;
  cfg.open_loop = true;
  cfg.arrivals_per_ms = 2.0;
  cfg.seed = 11;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  EXPECT_EQ(r.sessions_completed, 300u);
}

TEST(ServiceSim, NemesisCrashRestartKeepsExactlyOnce) {
  ServiceSimConfig cfg;
  cfg.sessions = 600;
  cfg.concurrency = 48;
  cfg.crashes = 3;
  cfg.crash_start_ms = 20.0;
  cfg.crash_every_ms = 250.0;
  cfg.downtime_ms = 100.0;
  cfg.seed = 5;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  EXPECT_EQ(r.crash_events, 3u);
  EXPECT_EQ(r.restart_events, 3u);
  // Crashing replicas force client retries; the dedup layer must be
  // absorbing duplicates for the zero-double-applies result to be earned.
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u);
}

TEST(ServiceSim, GcBoundsDedupTableUnderChurn) {
  ServiceSimConfig cfg;
  cfg.sessions = 2000;
  cfg.concurrency = 64;
  cfg.writes_per_session = 1;
  cfg.reads_per_session = 1;
  cfg.gc_window = 256;
  cfg.seed = 9;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  // 2000 sessions churn through, but the table peak stays near the
  // concurrency window plus the tombstones inside one GC window — far
  // below the total session count.
  EXPECT_LT(r.max_open_sessions, cfg.concurrency + cfg.gc_window + 64);
}

TEST(ServiceSim, LatencyHistogramsExported) {
  obs::MetricsRegistry metrics;
  ServiceSimConfig cfg;
  cfg.sessions = 100;
  cfg.concurrency = 16;
  cfg.seed = 2;
  cfg.metrics = &metrics;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  const std::string dump = obs::to_prometheus(metrics.snapshot());
  EXPECT_NE(dump.find("zdc_service_client_latency_ms"), std::string::npos);
  EXPECT_NE(dump.find("path=\"write\""), std::string::npos);
}

// The ISSUE acceptance gate: 10^5 sessions, closed loop, crash/restart
// nemesis in the middle, zero dedup violations, zero linearizability
// violations, converged digests, and a live fast-read path.
TEST(ServiceSim, AcceptanceHundredThousandSessions) {
  ServiceSimConfig cfg;
  cfg.sessions = 100000;
  cfg.concurrency = 512;
  cfg.writes_per_session = 2;
  cfg.reads_per_session = 2;
  // 10^5 sessions at this concurrency sustain a few seconds of simulated
  // traffic; space the crashes so every one lands mid-workload (two of the
  // four victims are the acting leader).
  cfg.crashes = 4;
  cfg.crash_start_ms = 200.0;
  cfg.crash_every_ms = 1000.0;
  cfg.downtime_ms = 120.0;
  // Time out faster than a failover completes (detect + settle), so a
  // leader crash forces real client retries through the dedup tables.
  cfg.client_timeout_ms = 12.0;
  cfg.snapshot_every = 8192;
  cfg.log_window = 16384;
  cfg.time_limit_ms = 4.0e6;
  cfg.seed = 20260808;
  const ServiceSimReport r = run_service_sim(cfg);
  expect_clean(r);
  EXPECT_EQ(r.sessions_completed, 100000u);
  EXPECT_EQ(r.writes_acked, 200000u);
  EXPECT_EQ(r.reads_acked, 200000u);
  EXPECT_GT(r.fast_reads, r.reads_acked / 2);  // fast path dominates
  EXPECT_GT(r.one_step_commits, 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u);  // nemesis exercised dedup
  EXPECT_EQ(r.crash_events, 4u);
  EXPECT_EQ(r.restart_events, 4u);
  EXPECT_LT(r.max_open_sessions, 100000u / 10);  // GC keeps the table small
}

}  // namespace
}  // namespace zdc::rsm
