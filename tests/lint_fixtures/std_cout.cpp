// Fixture: hygiene rule `std-cout` — stdout printing from library code.
#include <iostream>

void bad() {
  std::cout << "decided\n";  // line 5: std-cout
}

void fine() {
  // "std::cout" inside a string literal is not a use:
  const char* doc = "redirect std::cout before calling";
  std::cerr << doc;
}
