// Fixture: a file that is clean under every rule, including the tokenizer
// traps — banned names inside comments, strings and raw strings, identifiers
// that merely contain a banned substring, and ordered-container iteration.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// rand() and std::cout in a comment are not uses; neither is time( here.
const char* kHelp = "seed defaults to time(nullptr); pipe std::cout to a file";
const char* kRaw = R"(assert(x) and steady_clock belong to the caller)";

struct Sample {
  double timestamp = 0;
  double randomness = 0;  // identifier contains "random"
};

int ordered_walk(const std::map<int, std::string>& m) {
  int n = 0;
  for (const auto& [k, v] : m) n += k;  // std::map: deterministic order
  return n;
}

bool lookup(const std::unordered_map<int, Sample>& idx) {
  return idx.find(3) != idx.end();  // lookup on unordered is fine
}

std::vector<int> numbers() { return {1, 2, 3}; }
