// Fixture: determinism rule `wall-time` — C time calls; member functions and
// identifiers that merely *end* in "time" must not trip it.
#include <ctime>

struct Msg {
  double arrival = 0;
  double time() const { return arrival; }
};

long bad_time() {
  return ::time(nullptr);  // line 11: wall-time
}

long bad_clock() {
  return clock();  // line 15: wall-time
}

double fine(const Msg& m) {
  double arrival_time(0);       // own identifier, not time(
  arrival_time += m.time();     // member call, not the C function
  return arrival_time;
}
