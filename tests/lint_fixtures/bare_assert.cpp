// Fixture: hygiene rule `bare-assert` — assert() instead of ZDC_ASSERT.
#include <cassert>

void bad(int x) {
  assert(x > 0);  // line 5: bare-assert
}

// Mentioning assert( in a comment must not trip the rule, nor must
// static_assert or a member named assert.
static_assert(sizeof(int) >= 4, "ok");

struct Checker {
  void assert(bool) {}
};

void fine(Checker& c) { c.assert(true); }
