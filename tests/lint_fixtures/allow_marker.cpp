// Fixture: allow-marker behavior.
#include <cstdlib>
#include <ctime>

// Same-line suppression with justification: no violation.
long seeded_from_wall() {
  return ::time(nullptr);  // zdc-lint: allow(wall-time): CLI default seed only
}

// Line-above suppression: no violation.
// zdc-lint: allow(raw-random): fixture exercises previous-line form
int previous_line() { return rand(); }

// Missing justification: allow-needs-reason AND the underlying violation
// still fires (the marker is void).
long bad_marker() {
  return ::time(nullptr);  // zdc-lint: allow(wall-time)
}

// Unknown rule name: unknown-allow, and the suppression is void.
int bad_rule() {
  return rand();  // zdc-lint: allow(walltime): typo in the rule name
}

// A marker only suppresses its own rule, not others on the same line.
long wrong_rule() {
  return ::time(nullptr);  // zdc-lint: allow(raw-random): suppresses nothing
}
