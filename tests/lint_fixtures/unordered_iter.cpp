// Fixture: determinism rule `unordered-iter` — iterating an unordered
// container. Lookups (find/count/operator[]) are fine; walks are not.
#include <string>
#include <unordered_map>
#include <unordered_set>

int bad_range_for(const std::unordered_map<int, std::string>& pending) {
  int n = 0;
  for (const auto& [k, v] : pending) {  // line 9: unordered-iter
    n += k;
  }
  return n;
}

int bad_begin() {
  std::unordered_set<int> seen;
  return *seen.begin();  // line 17: unordered-iter
}

bool fine_lookup(const std::unordered_map<int, std::string>& pending) {
  return pending.count(7) != 0;  // lookup, not iteration
}
