// Fixture: determinism rule `wall-clock` — chrono clock types.
#include <chrono>

double bad_now() {
  auto t = std::chrono::steady_clock::now();  // line 5: wall-clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_epoch() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 10
}
