// Fixture: determinism rule `raw-random` — unseeded/global randomness.
#include <cstdlib>
#include <random>

int bad_device() {
  std::random_device rd;  // line 6: raw-random
  return static_cast<int>(rd());
}

int bad_engine() {
  std::mt19937 gen(42);  // line 11: raw-random (engine must come via Rng)
  return static_cast<int>(gen());
}

int bad_rand() {
  return rand();  // line 16: raw-random
}
