// Full bounded-space exhaustion — the paper's universally-quantified step
// claims checked over *every* delivery schedule (slow; opt-in via
// -DZDC_SLOW_TESTS=ON, `scripts/check.sh --explore`).
//
// For L-Consensus and P-Consensus at n=4/f=1 with equal proposals, the DFS
// must exhaust the complete delivery-schedule space with zero violations:
// agreement/validity/integrity everywhere, decision in exactly 1 step on the
// round path (one-step, Definition 1), and termination at quiescence. Paxos
// at n=3/f=1 exhausts the unequal-proposal space as the safety baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/system.h"

namespace zdc::check {
namespace {

ScenarioSpec consensus_spec(std::string protocol,
                            std::vector<Value> proposals) {
  ScenarioSpec spec;
  spec.kind = "consensus";
  spec.protocol = std::move(protocol);
  spec.group = GroupParams{static_cast<std::uint32_t>(proposals.size()), 1};
  spec.proposals = std::move(proposals);
  return spec;
}

void exhaust(const ScenarioSpec& spec) {
  const ExploreResult res = explore(make_system_factory(spec, {}), {});
  EXPECT_TRUE(res.complete) << spec.protocol;
  EXPECT_EQ(res.depth_cutoffs, 0u) << spec.protocol;
  EXPECT_FALSE(res.violation.has_value())
      << spec.protocol << ": " << res.violation->invariant << " — "
      << res.violation->detail;
  EXPECT_GT(res.paths, 0u);
}

TEST(ExploreExhaustive, LConsensusEqualProposalSpaceIsClean) {
  exhaust(consensus_spec("l", {"v", "v", "v", "v"}));
}

TEST(ExploreExhaustive, PConsensusEqualProposalSpaceIsClean) {
  exhaust(consensus_spec("p", {"v", "v", "v", "v"}));
}

TEST(ExploreExhaustive, PaxosUnequalProposalSpaceIsClean) {
  exhaust(consensus_spec("paxos", {"a", "b", "c"}));
}

}  // namespace
}  // namespace zdc::check
