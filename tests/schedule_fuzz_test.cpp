// Randomized message-level schedule adversary: unlike the simulator worlds
// (which follow a timing model), this adversary picks *any* pending edge or
// oracle datagram at every step, uniformly at random — covering interleavings
// a physical network model would never produce (unbounded reordering between
// processes, arbitrarily stale deliveries, starving one edge for the whole
// run). Safety must survive every schedule; termination must hold once the
// adversary eventually delivers everything (which the drain phase forces).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "common/rng.h"
#include "consensus/brasileiro.h"
#include "consensus/chandra_toueg.h"
#include "consensus/fast_paxos.h"
#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "consensus/paxos.h"
#include "consensus/wab_consensus.h"
#include "direct_abcast_harness.h"
#include "direct_harness.h"

#include "abcast/c_abcast.h"
#include "abcast/paxos_abcast.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

void deliver_oracle(DirectNet& net, ProcessId from,
                    const std::vector<ProcessId>* targets);
void deliver_oracle(DirectAbcastNet& net, ProcessId from,
                    const std::vector<ProcessId>* targets);

/// One adversary step: deliver a uniformly random pending message (transport
/// edge or oracle datagram). Returns false when nothing is pending.
template <typename Net>
bool random_step(Net& net, common::Rng& rng, std::uint32_t n) {
  struct Choice {
    bool wab;
    ProcessId from;
    ProcessId to;
  };
  std::vector<Choice> choices;
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (net.pending(from, to) > 0) choices.push_back({false, from, to});
    }
    if (net.pending_wab(from) > 0) choices.push_back({true, from, 0});
  }
  if (choices.empty()) return false;
  const Choice& c = choices[rng.next_below(choices.size())];
  if (c.wab) {
    // Half the time, the oracle datagram reaches only a random subset.
    if (rng.chance(0.5)) {
      std::vector<ProcessId> targets;
      for (ProcessId t = 0; t < n; ++t) {
        if (rng.chance(0.7)) targets.push_back(t);
      }
      deliver_oracle(net, c.from, &targets);
    } else {
      deliver_oracle(net, c.from, nullptr);
    }
  } else {
    net.deliver_one(c.from, c.to);
  }
  return true;
}

void deliver_oracle(DirectNet& net, ProcessId from,
                    const std::vector<ProcessId>* targets) {
  if (targets != nullptr) {
    net.deliver_wab_to(from, *targets);
  } else {
    net.deliver_wab_broadcast(from);
  }
}

void deliver_oracle(DirectAbcastNet& net, ProcessId from,
                    const std::vector<ProcessId>* targets) {
  net.deliver_wab(from, targets);
}

/// Snapshot of the direct-drive net in the shared invariant library's terms.
/// Random (possibly wrong) FD outputs mean no stability claim, so only the
/// safety invariants (agreement/validity/integrity) apply — exactly what an
/// adversarial-schedule run is allowed to promise.
check::ConsensusObs observe(const DirectNet& net,
                            const std::vector<Value>& proposals) {
  check::ConsensusObs obs;
  obs.group = net.group();
  obs.proposals = proposals;
  obs.procs.resize(net.group().n);
  for (ProcessId p = 0; p < net.group().n; ++p) {
    obs.procs[p].proposed = true;
    obs.procs[p].decided = net.decided(p);
    if (net.decided(p)) obs.procs[p].decision = net.decision(p);
    obs.procs[p].decision_deliveries = net.decision_deliveries(p);
  }
  obs.stable = false;
  return obs;
}

struct NamedFactory {
  const char* name;
  DirectNet::Factory factory;
  bool oracle_terminating;  ///< termination needs cooperative oracle delivery
};

std::vector<NamedFactory> protocol_zoo() {
  auto l = [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
              const fd::OmegaView& o, const fd::SuspectView&) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::LConsensus>(s, g, h, o));
  };
  auto p = [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
              const fd::OmegaView&, const fd::SuspectView& sv) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::PConsensus>(s, g, h, sv));
  };
  auto paxos = [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
                  const fd::OmegaView& o, const fd::SuspectView&) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::PaxosConsensus>(s, g, h, o));
  };
  auto ct = [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
               const fd::OmegaView&, const fd::SuspectView& sv) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::CtConsensus>(s, g, h, sv));
  };
  auto fp = [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
               const fd::OmegaView& o, const fd::SuspectView&) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::FastPaxosConsensus>(s, g, h, o));
  };
  auto wab = [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
                const fd::OmegaView&, const fd::SuspectView&) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::WabConsensus>(s, g, h));
  };
  return {{"l", l, false},      {"p", p, false},   {"paxos", paxos, false},
          {"ct", ct, false},    {"fast-paxos", fp, false},
          {"wab", wab, true}};
}

TEST(ScheduleFuzz, ConsensusSafetyUnderArbitraryInterleavings) {
  const std::vector<std::string> values = {"a", "b", "c"};
  for (const NamedFactory& nf : protocol_zoo()) {
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      common::Rng rng(seed * 48611 + 7);
      DirectNet net(kGroup, nf.factory);
      // Random (possibly wrong, but constant) FD outputs per process: the
      // indulgent protocols may stall but must stay safe; a drain with good
      // FD output afterwards must then terminate them.
      for (ProcessId p = 0; p < 4; ++p) {
        net.fd(p).omega.value = static_cast<ProcessId>(rng.next_below(4));
        for (ProcessId q = 0; q < 4; ++q) {
          net.fd(p).suspects.flags[q] = (q != p) && rng.chance(0.2);
        }
      }
      std::vector<Value> proposals(4);
      for (ProcessId p = 0; p < 4; ++p) {
        proposals[p] = values[rng.next_below(values.size())];
        net.propose(p, proposals[p]);
      }

      // Adversarial phase: bounded random steps.
      for (int step = 0; step < 400; ++step) {
        if (!random_step(net, rng, 4)) break;
      }
      // Safety check mid-flight, via the shared invariant library: the same
      // agreement/validity/integrity predicates the model checker applies.
      if (const auto v = check::check_consensus(observe(net, proposals), {})) {
        FAIL() << nf.name << " seed " << seed << ": " << v->invariant << " — "
               << v->detail;
      }

      // Stabilization: consistent correct FD everywhere, then drain fully
      // (including cooperative oracle broadcasts).
      for (ProcessId p = 0; p < 4; ++p) {
        net.fd(p).omega.value = 0;
        net.fd(p).suspects.flags.assign(4, false);
      }
      net.notify_fd_change_all();
      for (int guard = 0; guard < 100'000; ++guard) {
        bool progressed = net.pending_total() > 0;
        net.deliver_all();
        for (ProcessId p = 0; p < 4; ++p) {
          while (net.deliver_wab_broadcast(p)) progressed = true;
        }
        if (!progressed) break;
      }
      for (ProcessId p = 0; p < 4; ++p) {
        ASSERT_TRUE(net.decided(p))
            << nf.name << " did not terminate after stabilization, seed "
            << seed;
      }
      if (const auto v = check::check_consensus(observe(net, proposals), {})) {
        FAIL() << nf.name << " seed " << seed << ": " << v->invariant << " — "
               << v->detail;
      }
    }
  }
}

TEST(ScheduleFuzz, AbcastSafetyUnderArbitraryInterleavings) {
  const std::vector<std::pair<const char*, DirectAbcastNet::Factory>>
      factories = {
          {"c-abcast-l",
           [](ProcessId s, GroupParams g, abcast::AbcastHost& h,
              const fd::OmegaView& o, const fd::SuspectView&) {
             return std::unique_ptr<abcast::AtomicBroadcast>(
                 abcast::make_c_abcast_l(s, g, h, o));
           }},
          {"c-abcast-p",
           [](ProcessId s, GroupParams g, abcast::AbcastHost& h,
              const fd::OmegaView&, const fd::SuspectView& sv) {
             return std::unique_ptr<abcast::AtomicBroadcast>(
                 abcast::make_c_abcast_p(s, g, h, sv));
           }},
          {"paxos-abcast",
           [](ProcessId s, GroupParams g, abcast::AbcastHost& h,
              const fd::OmegaView& o, const fd::SuspectView&) {
             return std::unique_ptr<abcast::AtomicBroadcast>(
                 std::make_unique<abcast::PaxosAbcast>(s, g, h, o));
           }},
      };

  for (const auto& [name, factory] : factories) {
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      common::Rng rng(seed * 92821 + 3);
      DirectAbcastNet net(kGroup, factory);
      // Interleave submissions with adversarial delivery.
      std::uint32_t submitted = 0;
      for (int step = 0; step < 600; ++step) {
        if (submitted < 10 && rng.chance(0.05)) {
          net.a_broadcast(static_cast<ProcessId>(rng.next_below(4)),
                          "m" + std::to_string(submitted));
          ++submitted;
        }
        random_step(net, rng, 4);
        if (step % 50 == 0) {
          ASSERT_TRUE(net.total_order_ok())
              << name << " order violated mid-run, seed " << seed;
        }
      }
      while (submitted < 10) {
        net.a_broadcast(static_cast<ProcessId>(rng.next_below(4)),
                        "m" + std::to_string(submitted));
        ++submitted;
      }
      net.settle();
      // Full uniform-abcast invariant set: total order, no duplicates, and
      // no created messages (every delivered id was really a-broadcast).
      if (const auto v = check::check_abcast(net.histories(),
                                             net.submitted())) {
        FAIL() << name << " seed " << seed << ": " << v->invariant << " — "
               << v->detail;
      }
      for (ProcessId p = 0; p < 4; ++p) {
        ASSERT_EQ(net.delivered(p).size(), 10u)
            << name << " p" << p << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace zdc::testing
