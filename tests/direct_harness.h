// Direct-drive test harness: run consensus protocol instances with *manual*
// message delivery, so a test controls exactly which process receives which
// round message in which order — the level of control the paper's Figure-1
// run constructions assume.
//
// The implementation moved to src/check/direct_net.h so the schedule-space
// model checker (src/check) can drive the same harness; this header keeps
// the historical zdc::testing spelling for the test suites.
#pragma once

#include "check/direct_net.h"

namespace zdc::testing {

using StubFd = check::StubFd;
using DirectNet = check::DirectNet;

}  // namespace zdc::testing
