// Randomized atomic-broadcast runs with crash injection: total order,
// integrity and (for the FD-based stacks) agreement must hold across seeds,
// throughputs and crash schedules.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "sim/abcast_world.h"

namespace zdc::sim {
namespace {

class AbcastWithCrashes : public ::testing::TestWithParam<std::string> {};

TEST_P(AbcastWithCrashes, SafeAndLiveAcrossSeeds) {
  const std::string& proto = GetParam();
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    common::Rng rng(seed * 31337);
    AbcastRunConfig cfg;
    cfg.group = proto == "paxos" ? GroupParams{3, 1} : GroupParams{4, 1};
    cfg.seed = seed;
    cfg.message_count = 120;
    cfg.throughput_per_s = rng.uniform(50.0, 400.0);
    cfg.net.jitter_mean_ms = rng.uniform(0.01, 0.1);
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = rng.uniform(1.0, 10.0);

    if (rng.chance(0.6)) {
      CrashSpec c;
      c.p = static_cast<ProcessId>(rng.next_below(cfg.group.n));
      if (rng.chance(0.3)) {
        c.initial = true;
      } else {
        // Mid-workload crash.
        c.time = rng.uniform(5.0, 500.0);
      }
      cfg.crashes.push_back(c);
    }

    auto r = run_abcast(cfg, abcast_factory_by_name(proto));
    ASSERT_TRUE(r.total_order_ok) << proto << " total order, seed " << seed;
    ASSERT_TRUE(r.integrity_ok) << proto << " integrity, seed " << seed;
    if (proto != "wabcast") {
      // FD-based stacks must also terminate: every expected message reaches
      // every correct process.
      ASSERT_TRUE(r.agreement_ok) << proto << " agreement, seed " << seed;
      ASSERT_EQ(r.undelivered, 0u) << proto << " liveness, seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, AbcastWithCrashes,
                         ::testing::Values("c-l", "c-p", "wabcast", "paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Leader crash under load: the workhorse failover scenario, checked across
// several crash instants for both paper stacks and Paxos.
class LeaderCrashSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(LeaderCrashSweep, FailoverPreservesEverything) {
  const std::string& proto = GetParam();
  for (double crash_at : {2.0, 20.0, 100.0}) {
    AbcastRunConfig cfg;
    cfg.group = proto == "paxos" ? GroupParams{3, 1} : GroupParams{4, 1};
    cfg.seed = 5150;
    cfg.message_count = 150;
    cfg.throughput_per_s = 200.0;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 4.0;
    CrashSpec c;
    c.p = 0;  // the initial Ω leader
    c.time = crash_at;
    cfg.crashes.push_back(c);

    auto r = run_abcast(cfg, abcast_factory_by_name(proto));
    ASSERT_TRUE(r.total_order_ok) << proto << " at " << crash_at;
    ASSERT_TRUE(r.integrity_ok) << proto << " at " << crash_at;
    ASSERT_TRUE(r.agreement_ok) << proto << " at " << crash_at;
    ASSERT_EQ(r.undelivered, 0u) << proto << " at " << crash_at;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, LeaderCrashSweep,
                         ::testing::Values("c-l", "c-p", "paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace zdc::sim
