// Integration tests on the threaded runtime: real worker threads, heartbeat
// failure detectors, injected delays — the closest analogue of the paper's
// cluster deployment. Replicas run the replicated KV state machine and must
// converge to identical state, including across a leader crash.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/kv_store.h"
#include "core/rsm.h"
#include "runtime/runtime_node.h"

namespace zdc::runtime {
namespace {

/// One replicated KV replica per process, with delivery counts.
struct KvFleet {
  explicit KvFleet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      rsms.push_back(std::make_unique<core::ReplicatedStateMachine>(
          std::make_unique<core::KvStateMachine>()));
    }
  }

  void attach(RuntimeCluster& cluster) {
    for (ProcessId p = 0; p < rsms.size(); ++p) {
      rsms[p]->bind_submit([&cluster, p](std::string cmd) {
        cluster.node(p).a_broadcast(std::move(cmd));
      });
    }
  }

  void deliver(ProcessId p, const abcast::AppMessage& m) {
    rsms[p]->on_delivered(m);
    ++applied_total;
  }

  [[nodiscard]] bool all_applied(std::uint64_t expect,
                                 const std::vector<bool>& alive) const {
    for (ProcessId p = 0; p < rsms.size(); ++p) {
      if (alive[p] && rsms[p]->applied_count() < expect) return false;
    }
    return true;
  }

  std::vector<std::unique_ptr<core::ReplicatedStateMachine>> rsms;
  std::atomic<std::uint64_t> applied_total{0};
};

RuntimeCluster::Config fast_config(ProtocolKind kind, std::uint32_t n,
                                   std::uint32_t f) {
  RuntimeCluster::Config cfg;
  cfg.group = GroupParams{n, f};
  cfg.kind = kind;
  cfg.net.seed = 12345;
  cfg.net.min_delay_ms = 0.02;
  cfg.net.max_delay_ms = 0.2;
  cfg.fd.interval_ms = 5.0;
  cfg.fd.initial_timeout_ms = 40.0;
  return cfg;
}

class RuntimeProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RuntimeProtocols, ReplicasConvergeOnConcurrentWrites) {
  const std::uint32_t n = GetParam() == ProtocolKind::kPaxos ? 3 : 4;
  const std::uint32_t f = 1;
  KvFleet fleet(n);
  RuntimeCluster cluster(fast_config(GetParam(), n, f),
                         [&fleet](ProcessId p, const abcast::AppMessage& m) {
                           fleet.deliver(p, m);
                         });
  fleet.attach(cluster);
  cluster.start();

  constexpr int kWritesPerNode = 30;
  for (int i = 0; i < kWritesPerNode; ++i) {
    for (ProcessId p = 0; p < n; ++p) {
      fleet.rsms[p]->submit(core::kv_put(
          "key-" + std::to_string(p) + "-" + std::to_string(i),
          "value-" + std::to_string(i)));
    }
  }

  const std::uint64_t expected = static_cast<std::uint64_t>(kWritesPerNode) * n;
  std::vector<bool> alive(n, true);
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] { return fleet.all_applied(expected, alive); }, 30'000.0));
  cluster.shutdown();  // joins workers; state is now safe to read

  const std::string reference = fleet.rsms[0]->machine().snapshot();
  for (ProcessId p = 1; p < n; ++p) {
    EXPECT_EQ(fleet.rsms[p]->machine().snapshot(), reference)
        << "replica " << p << " diverged";
    EXPECT_EQ(fleet.rsms[p]->applied_count(), expected);
  }
  const auto& kv =
      static_cast<const core::KvStateMachine&>(fleet.rsms[0]->machine());
  EXPECT_EQ(kv.size(), expected);  // all keys distinct
}

INSTANTIATE_TEST_SUITE_P(Kinds, RuntimeProtocols,
                         ::testing::Values(ProtocolKind::kCAbcastL,
                                           ProtocolKind::kCAbcastP,
                                           ProtocolKind::kWabcast,
                                           ProtocolKind::kPaxos),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ProtocolKind::kCAbcastL: return "c_abcast_l";
                             case ProtocolKind::kCAbcastP: return "c_abcast_p";
                             case ProtocolKind::kWabcast: return "wabcast";
                             case ProtocolKind::kPaxos: return "paxos";
                           }
                           return "unknown";
                         });

// Leader crash mid-stream: the heartbeat ◇P detects it, Ω moves on, and the
// surviving replicas keep ordering and converge (n=4, f=1).
TEST(RuntimeFailover, SurvivesLeaderCrash) {
  const std::uint32_t n = 4;
  KvFleet fleet(n);
  RuntimeCluster cluster(fast_config(ProtocolKind::kCAbcastL, n, 1),
                         [&fleet](ProcessId p, const abcast::AppMessage& m) {
                           fleet.deliver(p, m);
                         });
  fleet.attach(cluster);
  cluster.start();

  // Phase 1: writes through all nodes, wait for them to land everywhere.
  for (int i = 0; i < 10; ++i) {
    for (ProcessId p = 0; p < n; ++p) {
      fleet.rsms[p]->submit(core::kv_put("pre-" + std::to_string(p) + "-" +
                                             std::to_string(i),
                                         "x"));
    }
  }
  std::vector<bool> all_alive(n, true);
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] { return fleet.all_applied(10 * n, all_alive); }, 30'000.0));

  // Crash the (initial) leader p0.
  cluster.crash(0);

  // Phase 2: writes through the survivors only.
  for (int i = 0; i < 10; ++i) {
    for (ProcessId p = 1; p < n; ++p) {
      fleet.rsms[p]->submit(core::kv_put("post-" + std::to_string(p) + "-" +
                                             std::to_string(i),
                                         "y"));
    }
  }
  std::vector<bool> alive = {false, true, true, true};
  // Survivors must apply everything that landed pre-crash plus phase 2; the
  // exact count can exceed this if p0's in-flight traffic completed.
  const std::uint64_t min_expected = 10 * n + 10 * (n - 1);
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 1; p < n; ++p) {
          if (fleet.rsms[p]->applied_count() < min_expected) return false;
        }
        return true;
      },
      30'000.0))
      << "survivors did not converge after the leader crash";
  // Let the tail settle so all three survivors reach the same count.
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        return fleet.rsms[1]->applied_count() ==
                   fleet.rsms[2]->applied_count() &&
               fleet.rsms[2]->applied_count() == fleet.rsms[3]->applied_count();
      },
      30'000.0));
  cluster.shutdown();

  const std::string reference = fleet.rsms[1]->machine().snapshot();
  EXPECT_EQ(fleet.rsms[2]->machine().snapshot(), reference);
  EXPECT_EQ(fleet.rsms[3]->machine().snapshot(), reference);
  EXPECT_GE(fleet.rsms[1]->applied_count(), min_expected);
}

// The heartbeat FD itself: silence from a crashed process must be detected;
// live processes must (eventually) not be suspected.
TEST(HeartbeatFdTest, DetectsCrashAndStaysAccurate) {
  InprocNetwork::Config net_cfg;
  net_cfg.n = 3;
  net_cfg.seed = 5;
  InprocNetwork net(net_cfg);

  std::vector<std::unique_ptr<HeartbeatFd>> fds;
  HeartbeatFd::Config fd_cfg;
  fd_cfg.interval_ms = 5.0;
  fd_cfg.initial_timeout_ms = 30.0;
  for (ProcessId p = 0; p < 3; ++p) {
    fds.push_back(std::make_unique<HeartbeatFd>(p, net, fd_cfg, nullptr));
  }
  for (ProcessId p = 0; p < 3; ++p) {
    HeartbeatFd* fd = fds[p].get();
    net.set_handler(p, [fd](const Delivery& d) {
      if (d.channel == Channel::kHeartbeat) fd->on_heartbeat(d.from);
    });
  }
  net.start();
  for (auto& fd : fds) fd->start();

  // Settle: nobody suspected, leader is p0 everywhere.
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        for (ProcessId obs = 0; obs < 3; ++obs) {
          for (ProcessId p = 0; p < 3; ++p) {
            if (fds[obs]->suspects(p)) return false;
          }
          if (fds[obs]->omega().leader() != 0) return false;
        }
        return true;
      },
      10'000.0));

  net.crash(0);
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        return fds[1]->suspects(0) && fds[2]->suspects(0) &&
               fds[1]->omega().leader() == 1 && fds[2]->omega().leader() == 1;
      },
      10'000.0))
      << "crash of p0 was not detected";
  EXPECT_FALSE(fds[1]->suspects(2));
  EXPECT_FALSE(fds[2]->suspects(1));
  net.shutdown();
}

}  // namespace
}  // namespace zdc::runtime
