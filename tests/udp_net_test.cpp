// Tests for the loopback-UDP transport: basic delivery, the ARQ reliable
// channel under artificial datagram loss, crash semantics, and a full
// replicated-KV cluster running over real sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/kv_store.h"
#include "core/rsm.h"
#include "runtime/runtime_node.h"
#include "runtime/udp_net.h"

namespace zdc::runtime {
namespace {

UdpNetwork::Config udp_config(std::uint32_t n, double drop = 0.0) {
  UdpNetwork::Config cfg;
  cfg.n = n;
  cfg.seed = 77;
  cfg.retransmit_interval_ms = 5.0;
  cfg.drop_prob = drop;
  return cfg;
}

TEST(UdpNet, BindsDistinctLoopbackPorts) {
  UdpNetwork net(udp_config(4));
  std::set<std::uint16_t> ports;
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_GT(net.port(p), 0);
    ports.insert(net.port(p));
  }
  EXPECT_EQ(ports.size(), 4u);
}

TEST(UdpNet, ReliableUnicastArrives) {
  UdpNetwork net(udp_config(2));
  std::atomic<int> got{0};
  std::string received;
  std::mutex mu;
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&](const Delivery& d) {
    std::lock_guard<std::mutex> lock(mu);
    received = d.bytes;
    ++got;
  });
  net.start();
  net.send(Channel::kProtocol, 0, 1, "over-the-wire");
  ASSERT_TRUE(RuntimeCluster::wait_until([&] { return got == 1; }, 10'000.0));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(received, "over-the-wire");
  net.shutdown();
}

TEST(UdpNet, ReliableChannelSurvivesHeavyLoss) {
  // 40% of all inbound datagrams (data AND acks) are dropped; the ARQ must
  // still deliver every reliable message exactly once.
  UdpNetwork net(udp_config(2, 0.4));
  constexpr int kMessages = 60;
  std::mutex mu;
  std::vector<std::string> received;
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&](const Delivery& d) {
    if (d.channel != Channel::kProtocol) return;
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(d.bytes);
  });
  net.start();
  for (int i = 0; i < kMessages; ++i) {
    net.send(Channel::kProtocol, 0, 1, "msg-" + std::to_string(i));
  }
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return received.size() >= kMessages;
      },
      30'000.0))
      << "ARQ failed to push messages through 40% loss";
  // Exactly once: no duplicates despite retransmissions.
  std::lock_guard<std::mutex> lock(mu);
  std::set<std::string> unique(received.begin(), received.end());
  EXPECT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kMessages));
  EXPECT_GT(net.retransmissions(), 0u) << "loss must have forced retransmits";
  net.shutdown();
}

TEST(UdpNet, BestEffortChannelsDoNotRetransmit) {
  UdpNetwork net(udp_config(2, 1.0));  // everything inbound dropped
  std::atomic<int> got{0};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&](const Delivery&) { ++got; });
  net.start();
  for (int i = 0; i < 10; ++i) {
    net.send(Channel::kWab, 0, 1, "oracle", 7);
    net.send(Channel::kHeartbeat, 0, 1, "");
  }
  // Give the stack a moment; nothing may arrive and nothing may queue up
  // for retransmission (best-effort channels carry no ARQ state).
  RuntimeCluster::wait_until([&] { return false; }, 100.0);
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.retransmissions(), 0u);
  net.shutdown();
}

TEST(UdpNet, BroadcastReachesAllIncludingSelf) {
  UdpNetwork net(udp_config(3));
  std::vector<std::atomic<int>> got(3);
  for (ProcessId p = 0; p < 3; ++p) {
    net.set_handler(p, [&got, p](const Delivery&) { ++got[p]; });
  }
  net.start();
  net.broadcast(Channel::kProtocol, 1, "to-everyone");
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] { return got[0] == 1 && got[1] == 1 && got[2] == 1; }, 10'000.0));
  net.shutdown();
}

TEST(UdpNet, TimersFire) {
  UdpNetwork net(udp_config(2));
  std::atomic<bool> fired{false};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [](const Delivery&) {});
  net.start();
  net.schedule(0, 5.0, [&fired] { fired = true; });
  ASSERT_TRUE(
      RuntimeCluster::wait_until([&] { return fired.load(); }, 10'000.0));
  net.shutdown();
}

TEST(UdpNet, CrashStopsTraffic) {
  UdpNetwork net(udp_config(2));
  std::atomic<int> got{0};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&](const Delivery&) { ++got; });
  net.start();
  net.crash(1);
  net.send(Channel::kProtocol, 0, 1, "into-the-void");
  RuntimeCluster::wait_until([&] { return false; }, 100.0);
  EXPECT_EQ(got, 0);
  EXPECT_TRUE(net.crashed(1));
  net.shutdown();
}

// The whole stack over real sockets: 4 replicas, C-Abcast/L, heartbeat ◇P,
// replicated KV — convergence to identical snapshots, even with datagram
// loss underneath the ARQ.
TEST(UdpCluster, ReplicatedKvConvergesOverRealSockets) {
  std::vector<std::unique_ptr<core::ReplicatedStateMachine>> rsms;
  for (int i = 0; i < 4; ++i) {
    rsms.push_back(std::make_unique<core::ReplicatedStateMachine>(
        std::make_unique<core::KvStateMachine>()));
  }
  RuntimeCluster::Config cfg;
  cfg.group = GroupParams{4, 1};
  cfg.transport = RuntimeCluster::TransportKind::kUdp;
  cfg.udp.retransmit_interval_ms = 5.0;
  cfg.udp.drop_prob = 0.05;  // a little real pain for the ARQ
  cfg.kind = ProtocolKind::kCAbcastL;
  cfg.fd.interval_ms = 10.0;
  cfg.fd.initial_timeout_ms = 200.0;  // loss-tolerant heartbeat timeout
  RuntimeCluster cluster(cfg,
                         [&rsms](ProcessId p, const abcast::AppMessage& m) {
                           rsms[p]->on_delivered(m);
                         });
  for (ProcessId p = 0; p < 4; ++p) {
    rsms[p]->bind_submit([&cluster, p](std::string cmd) {
      cluster.node(p).a_broadcast(std::move(cmd));
    });
  }
  cluster.start();

  constexpr int kWrites = 10;
  for (int i = 0; i < kWrites; ++i) {
    for (ProcessId p = 0; p < 4; ++p) {
      rsms[p]->submit(core::kv_put(
          "udp-" + std::to_string(p) + "-" + std::to_string(i), "v"));
    }
  }
  const std::uint64_t expected = kWrites * 4;
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        for (const auto& rsm : rsms) {
          if (rsm->applied_count() < expected) return false;
        }
        return true;
      },
      60'000.0))
      << "replicas did not converge over UDP";
  cluster.shutdown();

  const std::string reference = rsms[0]->machine().snapshot();
  for (int p = 1; p < 4; ++p) {
    EXPECT_EQ(rsms[p]->machine().snapshot(), reference) << "replica " << p;
  }
}

}  // namespace
}  // namespace zdc::runtime
