// Unit tests for the replicated-state-machine glue and the KV state machine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/kv_store.h"
#include "core/rsm.h"

namespace zdc::core {
namespace {

TEST(KvStateMachine, PutGetDel) {
  KvStateMachine kv;
  EXPECT_EQ(kv.apply(kv_put("k", "v1")), "ok");
  EXPECT_EQ(kv.apply(kv_get("k")), "value:v1");
  EXPECT_EQ(kv.apply(kv_put("k", "v2")), "ok");
  EXPECT_EQ(kv.apply(kv_get("k")), "value:v2");
  EXPECT_EQ(kv.apply(kv_del("k")), "ok");
  EXPECT_EQ(kv.apply(kv_get("k")), "not_found");
  EXPECT_EQ(kv.apply(kv_del("k")), "not_found");
}

TEST(KvStateMachine, CasSemantics) {
  KvStateMachine kv;
  EXPECT_EQ(kv.apply(kv_cas("k", "x", "y")), "not_found");
  kv.apply(kv_put("k", "a"));
  EXPECT_EQ(kv.apply(kv_cas("k", "b", "c")), "mismatch");
  EXPECT_EQ(*kv.lookup("k"), "a");
  EXPECT_EQ(kv.apply(kv_cas("k", "a", "b")), "ok");
  EXPECT_EQ(*kv.lookup("k"), "b");
}

TEST(KvStateMachine, BinaryKeysAndValues) {
  KvStateMachine kv;
  const std::string key("\x00\x01\xff key", 8);
  const std::string value("\x00value\x00", 7);
  EXPECT_EQ(kv.apply(kv_put(key, value)), "ok");
  ASSERT_TRUE(kv.lookup(key).has_value());
  EXPECT_EQ(*kv.lookup(key), value);
}

TEST(KvStateMachine, MalformedCommandRejected) {
  KvStateMachine kv;
  EXPECT_EQ(kv.apply("garbage"), "error:malformed");
  EXPECT_EQ(kv.apply(""), "error:malformed");
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStateMachine, UnknownOpRejected) {
  common::Encoder enc;
  enc.put_u8(99);
  enc.put_string("k");
  enc.put_string("");
  enc.put_string("");
  KvStateMachine kv;
  EXPECT_EQ(kv.apply(enc.take()), "error:unknown_op");
}

// The full reply grammar documented in kv_store.h, pinned in one place so a
// drift in either direction (code or doc) fails here. Clients parse these
// strings; "value:<bytes>" vs a bare "" for misses is a wire contract, not
// an implementation detail.
TEST(KvStateMachine, ReplyGrammarPinned) {
  KvStateMachine kv;
  EXPECT_EQ(kv.apply(kv_put("k", "v")), "ok");
  EXPECT_EQ(kv.apply(kv_get("k")), "value:v");
  EXPECT_EQ(kv.apply(kv_get("absent")), "not_found");
  EXPECT_EQ(kv.apply(kv_put("empty", "")), "ok");
  EXPECT_EQ(kv.apply(kv_get("empty")), "value:")
      << "an empty value is \"value:\" — distinguishable from not_found";
  EXPECT_EQ(kv.apply(kv_del("k")), "ok");
  EXPECT_EQ(kv.apply(kv_del("k")), "not_found");
  EXPECT_EQ(kv.apply(kv_cas("absent", "a", "b")), "not_found");
  kv.apply(kv_put("c", "x"));
  EXPECT_EQ(kv.apply(kv_cas("c", "wrong", "y")), "mismatch");
  EXPECT_EQ(kv.apply(kv_cas("c", "x", "y")), "ok");
  EXPECT_EQ(kv.apply("not-a-command"), "error:malformed");
  common::Encoder enc;
  enc.put_u8(42);
  enc.put_string("k");
  enc.put_string("");
  enc.put_string("");
  EXPECT_EQ(kv.apply(enc.take()), "error:unknown_op");
}

TEST(KvStateMachine, SnapshotEqualityTracksState) {
  KvStateMachine a, b;
  EXPECT_EQ(a.snapshot(), b.snapshot());
  a.apply(kv_put("k", "v"));
  EXPECT_NE(a.snapshot(), b.snapshot());
  b.apply(kv_put("k", "v"));
  EXPECT_EQ(a.snapshot(), b.snapshot());
  a.apply(kv_del("k"));
  EXPECT_NE(a.snapshot(), b.snapshot());
}

TEST(KvStateMachine, DeterministicUnderSameCommandStream) {
  // The RSM correctness core: identical command sequences produce identical
  // state, regardless of which replica executes them.
  common::Rng rng(99);
  std::vector<std::string> commands;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(20));
    switch (rng.next_below(3)) {
      case 0: commands.push_back(kv_put(key, std::to_string(i))); break;
      case 1: commands.push_back(kv_del(key)); break;
      default: commands.push_back(kv_cas(key, std::to_string(i - 3),
                                         std::to_string(i))); break;
    }
  }
  KvStateMachine a, b;
  for (const auto& cmd : commands) a.apply(cmd);
  for (const auto& cmd : commands) b.apply(cmd);
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(Rsm, AppliesAndCounts) {
  ReplicatedStateMachine rsm(std::make_unique<KvStateMachine>());
  std::vector<std::string> submitted;
  rsm.bind_submit([&submitted](std::string cmd) {
    submitted.push_back(std::move(cmd));
  });
  rsm.submit(kv_put("a", "1"));
  rsm.submit(kv_put("b", "2"));
  ASSERT_EQ(submitted.size(), 2u);
  EXPECT_EQ(rsm.applied_count(), 0u);  // submission is not application

  abcast::AppMessage m;
  m.id = abcast::MsgId{0, 1};
  m.payload = submitted[0];
  rsm.on_delivered(m);
  m.id = abcast::MsgId{0, 2};
  m.payload = submitted[1];
  rsm.on_delivered(m);
  EXPECT_EQ(rsm.applied_count(), 2u);

  const auto& kv = static_cast<const KvStateMachine&>(rsm.machine());
  EXPECT_EQ(*kv.lookup("a"), "1");
  EXPECT_EQ(*kv.lookup("b"), "2");
}

TEST(Rsm, AppliedHookSeesIdCommandResult) {
  ReplicatedStateMachine rsm(std::make_unique<KvStateMachine>());
  abcast::MsgId seen_id;
  std::string seen_result;
  rsm.set_on_applied([&](const abcast::MsgId& id, const std::string& cmd,
                         const std::string& result) {
    seen_id = id;
    (void)cmd;
    seen_result = result;
  });
  abcast::AppMessage m;
  m.id = abcast::MsgId{3, 7};
  m.payload = kv_put("x", "y");
  rsm.on_delivered(m);
  EXPECT_EQ(seen_id, (abcast::MsgId{3, 7}));
  EXPECT_EQ(seen_result, "ok");
}

TEST(RsmDeath, SubmitWithoutBindingAborts) {
  ReplicatedStateMachine rsm(std::make_unique<KvStateMachine>());
  EXPECT_DEATH(rsm.submit(kv_put("a", "b")), "bind_submit");
}

}  // namespace
}  // namespace zdc::core
