// Unit tests for the bounds-checked binary codec.
#include "common/codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace zdc::common {
namespace {

TEST(Codec, RoundTripsScalars) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u16(0xbeef);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_bool(true);
  enc.put_bool(false);
  enc.put_f64(3.25);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u16(), 0xbeef);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_DOUBLE_EQ(dec.get_f64(), 3.25);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, RoundTripsStrings) {
  Encoder enc;
  enc.put_string("");
  enc.put_string("hello");
  enc.put_string(std::string("\0\x01\xff", 3));  // embedded NUL and high bytes

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), std::string("\0\x01\xff", 3));
  EXPECT_TRUE(dec.done());
}

TEST(Codec, LittleEndianLayout) {
  Encoder enc;
  enc.put_u32(0x01020304);
  const std::string& b = enc.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(Codec, UnderflowPoisonsDecoder) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 0u);  // needs 4 bytes, only 2 available
  EXPECT_FALSE(dec.ok());
  // Every further read keeps returning zero values without touching memory.
  EXPECT_EQ(dec.get_u64(), 0u);
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_FALSE(dec.done());
}

TEST(Codec, StringLengthBeyondBufferPoisons) {
  Encoder enc;
  enc.put_u32(1000);  // claims a 1000-byte string
  enc.put_raw("abc");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, DoneDetectsTrailingGarbage) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 1);
  EXPECT_TRUE(dec.ok());
  EXPECT_FALSE(dec.done());  // one byte left over
}

TEST(Codec, GetRestConsumesRemainder) {
  Encoder enc;
  enc.put_u8(9);
  enc.put_raw("tail-bytes");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 9);
  EXPECT_EQ(dec.get_rest(), "tail-bytes");
  EXPECT_TRUE(dec.done());
}

TEST(Codec, StringListRoundTrip) {
  std::vector<std::string> items = {"a", "", "longer value", "z"};
  Encoder enc;
  encode_string_list(enc, items);
  Decoder dec(enc.bytes());
  EXPECT_EQ(decode_string_list(dec), items);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, StringListHostileCountDoesNotOverAllocate) {
  Encoder enc;
  enc.put_u32(0xffffffff);  // absurd element count, no payload
  Decoder dec(enc.bytes());
  EXPECT_TRUE(decode_string_list(dec).empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, StringListTruncatedCountPrefixPoisons) {
  // Only 2 of the 4 count-prefix bytes present.
  Decoder dec(std::string_view("\x05\x00", 2));
  EXPECT_TRUE(decode_string_list(dec).empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, StringListCountExceedingRemainingPoisonsBeforeAllocation) {
  // A count that is structurally impossible (each element needs >= 4 bytes of
  // length prefix) but small enough that the old clamp-to-remaining guard
  // would have started allocating and parsing: must poison immediately.
  Encoder enc;
  enc.put_u32(1000);       // claims 1000 elements
  enc.put_string("only");  // 8 bytes of actual payload
  Decoder dec(enc.bytes());
  EXPECT_TRUE(decode_string_list(dec).empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, StringListElementLengthBeyondRemainingPoisons) {
  Encoder enc;
  enc.put_u32(2);           // two elements claimed
  enc.put_u32(0x7fffffff);  // first element claims a 2 GB body
  enc.put_raw("abc");
  Decoder dec(enc.bytes());
  EXPECT_TRUE(decode_string_list(dec).empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, StringListTrailingGarbageDetectedByDone) {
  Encoder enc;
  encode_string_list(enc, {"a", "b"});
  enc.put_u8(0xcc);  // trailing garbage after a well-formed list
  Decoder dec(enc.bytes());
  EXPECT_EQ(decode_string_list(dec), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(dec.ok());     // the list itself parsed fine...
  EXPECT_FALSE(dec.done());  // ...but the frame has leftover bytes
}

TEST(Codec, ExplicitPoisonLatches) {
  Encoder enc;
  enc.put_u32(7);
  Decoder dec(enc.bytes());
  dec.poison();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.get_u32(), 0u);  // reads after poison return zero values
  EXPECT_FALSE(dec.done());
}

TEST(Codec, EncoderReserveAndClearPreserveFormat) {
  Encoder plain;
  plain.put_u32(0xdeadbeef);
  plain.put_string("payload");

  Encoder reused(128);  // pre-sized
  reused.put_u64(1);    // scribble, then reuse the buffer
  reused.clear();
  reused.put_u32(0xdeadbeef);
  reused.put_string("payload");
  EXPECT_EQ(plain.bytes(), reused.bytes());
}

// Truncation fuzz: every proper prefix of a valid message must decode to a
// poisoned decoder, never crash or read OOB.
TEST(Codec, EveryTruncationIsDetected) {
  Encoder enc;
  enc.put_u8(3);
  enc.put_u64(0x1122334455667788ULL);
  enc.put_string("payload");
  enc.put_u32(42);
  const std::string full = enc.bytes();

  for (std::size_t len = 0; len < full.size(); ++len) {
    Decoder dec(std::string_view(full.data(), len));
    dec.get_u8();
    dec.get_u64();
    dec.get_string();
    dec.get_u32();
    EXPECT_FALSE(dec.done()) << "prefix length " << len;
  }
  Decoder dec(full);
  dec.get_u8();
  dec.get_u64();
  dec.get_string();
  dec.get_u32();
  EXPECT_TRUE(dec.done());
}

}  // namespace
}  // namespace zdc::common
