// Tests for the run-trace recorder: completeness of the captured events,
// the causal-consistency checker (including its ability to fail), and the
// space-time rendering.
#include <gtest/gtest.h>

#include <string>

#include "sim/abcast_world.h"
#include "sim/consensus_world.h"
#include "sim/trace.h"

namespace zdc::sim {
namespace {

TEST(Trace, ConsensusRunProducesConsistentTrace) {
  TraceRecorder trace;
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 5;
  cfg.proposals = {"a", "b", "c", "d"};
  cfg.trace = &trace;
  auto r = run_consensus(cfg, l_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);

  EXPECT_EQ(trace.count(TraceKind::kPropose), 4u);
  EXPECT_EQ(trace.count(TraceKind::kDecide), 4u);
  EXPECT_GT(trace.count(TraceKind::kSend), 0u);
  EXPECT_GT(trace.count(TraceKind::kDeliver), 0u);
  // The network invents nothing: every delivery matches an earlier send.
  EXPECT_TRUE(trace.causally_consistent());
  // Deliveries never exceed sends (crashes and in-flight tails allowed).
  EXPECT_LE(trace.count(TraceKind::kDeliver), trace.count(TraceKind::kSend));

  // Events are time-ordered as recorded.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].time, trace.events()[i].time);
  }
}

TEST(Trace, CrashAndFdChangeAreRecorded) {
  TraceRecorder trace;
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 6;
  cfg.fd.mode = FdMode::kCrashTracking;
  cfg.fd.detection_delay_ms = 1.0;
  cfg.proposals = {"a", "b", "c", "d"};
  CrashSpec c;
  c.p = 0;
  c.time = 0.2;
  cfg.crashes.push_back(c);
  cfg.trace = &trace;
  auto r = run_consensus(cfg, l_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);

  EXPECT_EQ(trace.count(TraceKind::kCrash), 1u);
  EXPECT_GE(trace.count(TraceKind::kFdChange), 3u);  // three survivors notice
  EXPECT_TRUE(trace.causally_consistent());
}

TEST(Trace, AbcastRunRecordsOracleTraffic) {
  TraceRecorder trace;
  AbcastRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 7;
  cfg.message_count = 10;
  cfg.throughput_per_s = 100.0;
  cfg.trace = &trace;
  auto r = run_abcast(cfg, abcast_factory_by_name("c-l"));
  ASSERT_EQ(r.undelivered, 0u);

  EXPECT_EQ(trace.count(TraceKind::kPropose), 10u);
  EXPECT_EQ(trace.count(TraceKind::kDecide), 40u);  // 10 messages × 4 replicas
  EXPECT_GT(trace.count(TraceKind::kWabSend), 0u);
  EXPECT_GT(trace.count(TraceKind::kWabDeliver), 0u);
  EXPECT_TRUE(trace.causally_consistent());
}

TEST(Trace, CausalCheckerRejectsInventedDelivery) {
  TraceRecorder trace;
  trace.record(1.0, TraceKind::kSend, 0, 1);
  trace.record(2.0, TraceKind::kDeliver, 1, 0);  // fine
  EXPECT_TRUE(trace.causally_consistent());
  trace.record(3.0, TraceKind::kDeliver, 2, 0);  // no send on edge 0->2
  EXPECT_FALSE(trace.causally_consistent());
}

TEST(Trace, CausalCheckerRejectsDuplication) {
  TraceRecorder trace;
  trace.record(1.0, TraceKind::kSend, 0, 1);
  trace.record(2.0, TraceKind::kDeliver, 1, 0);
  trace.record(2.5, TraceKind::kDeliver, 1, 0);  // one send, two deliveries
  EXPECT_FALSE(trace.causally_consistent());
}

TEST(Trace, CausalCheckerRejectsTimeTravel) {
  TraceRecorder trace;
  trace.record(5.0, TraceKind::kSend, 0, 1);
  trace.record(4.0, TraceKind::kDeliver, 1, 0);  // delivered before sent
  EXPECT_FALSE(trace.causally_consistent());
}

TEST(Trace, SpacetimeRenderingShowsLanes) {
  TraceRecorder trace;
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 8;
  cfg.proposals.assign(4, "v");
  cfg.trace = &trace;
  run_consensus(cfg, p_consensus_factory());

  const std::string art = trace.render_spacetime(4);
  EXPECT_NE(art.find("p0"), std::string::npos);
  EXPECT_NE(art.find("p3"), std::string::npos);
  EXPECT_NE(art.find("propose"), std::string::npos);
  EXPECT_NE(art.find("decide"), std::string::npos);
  // Unanimous stable P-Consensus: header + 4 FD initializations + 4
  // proposals + 4 decisions.
  std::size_t lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 13u);
}

TEST(Trace, SpacetimeTruncatesLongRuns) {
  TraceRecorder trace;
  for (int i = 0; i < 500; ++i) {
    trace.record(i, TraceKind::kDecide, 0);
  }
  const std::string art = trace.render_spacetime(1, 10);
  EXPECT_NE(art.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace zdc::sim
