// Nemesis fault-injection tests: the fault library itself (plan text form,
// generator, link-policy semantics), the simulator worlds under scripted and
// seeded-random fault schedules (safety always, liveness once the plan
// settles, byte-identical determinism), and the threaded runtime under
// wall-clock fault replay (partition/heal and crash/restart on both the
// mailbox and the UDP fabric).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stable_storage.h"
#include "consensus/recovering_paxos.h"
#include "fault/corrupt.h"
#include "fault/fault_plan.h"
#include "fault/link_policy.h"
#include "check/invariants.h"
#include "fault/nemesis.h"
#include "runtime/consensus_runner.h"
#include "runtime/inproc_net.h"
#include "runtime/udp_net.h"
#include "sim/abcast_world.h"
#include "sim/consensus_world.h"
#include "sim/trace.h"
#include "test_sync.h"

namespace zdc {
namespace {

// ---------------------------------------------------------------------------
// Fault library: text form, generator, link policy.

TEST(FaultPlanText, RoundTripsThroughTextForm) {
  const std::string text =
      "# a plan exercising every action kind\n"
      "@0 partition 0 1 | 2 3\n"
      "@2.5 link 1 2 drop=0.25 delay=1.5\n"
      "@3 pause 3\n"
      "@5 isolate 2\n"
      "@6 resume 3\n"
      "@7 crash 1\n"
      "@8 restart 1\n"
      "@10 heal\n";
  fault::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan(text, &plan, &err)) << err;
  ASSERT_EQ(plan.actions.size(), 8u);
  EXPECT_TRUE(plan.has(fault::FaultKind::kPartition));
  EXPECT_TRUE(plan.has(fault::FaultKind::kLink));
  EXPECT_TRUE(plan.has(fault::FaultKind::kRestart));
  EXPECT_TRUE(plan.settles());
  EXPECT_TRUE(plan.crashed_at_end().empty()) << "crash 1 is restarted";

  // print -> parse -> print must be a fixed point.
  const std::string printed = fault::to_string(plan);
  fault::FaultPlan again;
  ASSERT_TRUE(fault::parse_fault_plan(printed, &again, &err)) << err;
  EXPECT_EQ(fault::to_string(again), printed);
  ASSERT_EQ(again.actions.size(), plan.actions.size());
  EXPECT_EQ(again.actions[1].drop_prob, 0.25);
  EXPECT_EQ(again.actions[1].extra_delay_ms, 1.5);
}

TEST(FaultPlanText, CorruptionGrammarRoundTrips) {
  const std::string text =
      "@1 flip 0 2 count=3 byte=4 bit=7\n"
      "@2 equivocate 1 count=2\n"
      "@3 scorrupt 2\n";
  fault::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan(text, &plan, &err)) << err;
  ASSERT_EQ(plan.actions.size(), 3u);
  EXPECT_TRUE(plan.has(fault::FaultKind::kFlip));
  EXPECT_TRUE(plan.has(fault::FaultKind::kEquivocate));
  EXPECT_TRUE(plan.has(fault::FaultKind::kStateCorrupt));
  // Corruption budgets are transient by construction: they drain on delivery
  // and never leave a standing disturbance behind, so the plan settles.
  EXPECT_TRUE(plan.settles());
  EXPECT_EQ(plan.actions[0].count, 3u);
  EXPECT_EQ(plan.actions[0].byte, 4u);
  EXPECT_EQ(plan.actions[0].bit, 7u);
  EXPECT_EQ(plan.actions[1].count, 2u);
  // Defaults: count=1, byte=middle sentinel, bit=0.
  EXPECT_EQ(plan.actions[2].count, 1u);
  EXPECT_EQ(plan.actions[2].byte, fault::kMiddleByte);
  EXPECT_EQ(plan.actions[2].bit, 0u);

  const std::string printed = fault::to_string(plan);
  fault::FaultPlan again;
  ASSERT_TRUE(fault::parse_fault_plan(printed, &again, &err)) << err;
  EXPECT_EQ(fault::to_string(again), printed);
}

TEST(FaultPlanText, RejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "@x heal",            // unparsable time
      "heal",               // missing @time
      "@5 bogus 1",         // unknown action
      "@1 link 0",          // missing 'to'
      "@1 partition 0 1",   // missing the '|' separator
      "@1 pause",           // missing process
      "@1 link 0 1 drop=2nonsense",
      "@1 flip 0",                 // missing 'to'
      "@1 equivocate 0 byte=2",    // the fabric picks the divergent bytes
      "@1 equivocate 0 bit=3",
      "@1 scorrupt",               // missing process
  };
  for (const std::string& text : bad) {
    fault::FaultPlan plan;
    std::string err;
    EXPECT_FALSE(fault::parse_fault_plan(text, &plan, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(NemesisGenerator, DeterministicAndSurvivable) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    fault::NemesisConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.disturbances = 1 + seed % 4;
    cfg.allow_restart = (seed % 2 == 0);
    const fault::FaultPlan a = fault::random_fault_plan(cfg, seed);
    const fault::FaultPlan b = fault::random_fault_plan(cfg, seed);
    EXPECT_EQ(fault::to_string(a), fault::to_string(b))
        << "same (config, seed) must yield the same plan";
    EXPECT_TRUE(a.settles()) << "settle=true plans must settle, seed " << seed;
    EXPECT_LE(a.crashed_at_end().size(), cfg.f) << "seed " << seed;
    for (const fault::FaultAction& act : a.actions) {
      if (act.p != kNoProcess) {
        EXPECT_LT(act.p, cfg.n);
      }
      if (act.q != kNoProcess) {
        EXPECT_LT(act.q, cfg.n);
      }
      for (ProcessId m : act.group) {
        EXPECT_LT(m, cfg.n);
      }
    }
  }
}

TEST(LinkPolicy, PartitionHealAndPauseSemantics) {
  fault::LinkPolicy policy(4);
  EXPECT_FALSE(policy.ever_faulted());

  policy.partition({0, 1});
  EXPECT_TRUE(policy.ever_faulted());
  EXPECT_TRUE(policy.link(0, 2).blocked);
  EXPECT_TRUE(policy.link(2, 0).blocked);
  EXPECT_FALSE(policy.link(0, 1).blocked) << "intra-side links stay up";
  EXPECT_FALSE(policy.link(2, 3).blocked);
  EXPECT_TRUE(policy.link(2, 2).clean()) << "self-links are never faulted";

  policy.pause(2);
  policy.heal();
  EXPECT_TRUE(policy.link(0, 2).clean());
  EXPECT_TRUE(policy.paused(2)) << "heal mends links, not processes";
  policy.resume(2);
  EXPECT_FALSE(policy.paused(2));
}

TEST(LinkPolicy, CorruptionBudgetsDrainOnDelivery) {
  fault::LinkPolicy policy(4);
  fault::CorruptSpec spec;
  EXPECT_FALSE(policy.consume_corruption(0, 1, &spec));

  policy.corrupt_link(0, 1, 2, fault::CorruptSpec{5, 3});
  EXPECT_TRUE(policy.ever_faulted());
  ASSERT_TRUE(policy.consume_corruption(0, 1, &spec));
  EXPECT_EQ(spec.byte, 5u);
  EXPECT_EQ(spec.bit, 3u);
  EXPECT_TRUE(policy.consume_corruption(0, 1, &spec));
  EXPECT_FALSE(policy.consume_corruption(0, 1, &spec)) << "budget of 2 drained";
  EXPECT_FALSE(policy.consume_corruption(1, 0, &spec)) << "direction matters";

  // Inbound (scorrupt) budgets catch frames from any sender...
  policy.corrupt_inbound(2, 1, fault::CorruptSpec{});
  EXPECT_TRUE(policy.consume_corruption(3, 2, &spec));
  EXPECT_FALSE(policy.consume_corruption(0, 2, &spec));
  // ...but self-links are never faulted.
  policy.corrupt_inbound(3, 1, fault::CorruptSpec{});
  EXPECT_FALSE(policy.consume_corruption(3, 3, &spec));
  EXPECT_TRUE(policy.consume_corruption(0, 3, &spec));

  policy.equivocate(1, 1);
  EXPECT_TRUE(policy.consume_equivocation(1));
  EXPECT_FALSE(policy.consume_equivocation(1)) << "budget of 1 drained";
  EXPECT_FALSE(policy.consume_equivocation(0));
}

TEST(SimCorruption, SettledCorruptionPlanIsDetectableDropOnly) {
  // Byte-flips, inbound corruption and equivocation against a deciding run:
  // with frame checksums on, every corrupted frame (and every per-receiver
  // divergent equivocation copy) must surface as a CRC drop — and the clean
  // retransmissions keep the run safe and live.
  for (const char* protocol : {"p", "paxos"}) {
    sim::ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 11;
    cfg.proposals = {"alpha", "alpha", "alpha", "alpha"};
    // Propose after the budgets arm, so every corruption window sees traffic.
    cfg.propose_times = {0.5, 0.5, 0.5, 0.5};
    std::string err;
    ASSERT_TRUE(fault::parse_fault_plan("@0.1 flip 0 1 count=2\n"
                                        "@0.1 flip 1 0 count=1 byte=0 bit=5\n"
                                        "@0.2 scorrupt 2 count=2\n"
                                        "@0.3 equivocate 3 count=1\n",
                                        &cfg.fault_plan, &err))
        << err;
    const auto r = sim::run_consensus(
        cfg, sim::consensus_factory_by_name(protocol));
    EXPECT_TRUE(r.safe()) << protocol;
    EXPECT_TRUE(r.all_correct_decided) << protocol;
    EXPECT_GT(r.frames_corrupted, 0u) << protocol;
    EXPECT_GT(r.equivocations, 0u) << protocol;
    // The run stops at all-decided, not at quiescence, so a corrupted copy
    // can still be in flight — the drop ledger may lag the injection ledger
    // but can never exceed it (that would be a frame dropped twice or a
    // clean frame rejected). The model checker asserts exact equality at
    // true quiescence (check_corruption, tests/check_test.cpp).
    EXPECT_GT(r.corrupt_frames_dropped, 0u) << protocol;
    EXPECT_LE(r.corrupt_frames_dropped, r.frames_corrupted + r.equivocations)
        << protocol << ": more drops than injections";
  }
}

TEST(SimCorruption, CorruptedRunsStayDeterministic) {
  sim::ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 23;
  cfg.proposals = {"a", "b", "a", "b"};
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan(
      "@0.1 flip 0 1 count=3\n@0.2 equivocate 2 count=2\n", &cfg.fault_plan,
      &err))
      << err;
  const auto r1 = sim::run_consensus(cfg, sim::p_consensus_factory());
  const auto r2 = sim::run_consensus(cfg, sim::p_consensus_factory());
  EXPECT_EQ(r1.frames_corrupted, r2.frames_corrupted);
  EXPECT_EQ(r1.equivocations, r2.equivocations);
  EXPECT_EQ(r1.corrupt_frames_dropped, r2.corrupt_frames_dropped);
  EXPECT_EQ(r1.last_decision_time, r2.last_decision_time);
  EXPECT_EQ(r1.events_executed, r2.events_executed);
}

TEST(SimCorruption, ConvergenceOracleHoldsAfterBurst) {
  // Self-stabilization: after the last transient corruption, the run must be
  // back in a legal state (everyone decided, safely) within a bounded number
  // of further events. The sim is quiescent at run end, so the oracle reduces
  // to "the burst did not wedge the run" — checked through the real
  // check_convergence predicate rather than ad-hoc assertions.
  sim::ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 5;
  cfg.proposals = {"v", "v", "v", "v"};
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan("@0.05 flip 0 1 count=4\n"
                                      "@0.05 scorrupt 1 count=3\n"
                                      "@0.1 equivocate 0 count=2\n",
                                      &cfg.fault_plan, &err))
      << err;
  const auto r = sim::run_consensus(cfg, sim::p_consensus_factory());
  check::ConvergenceObs obs;
  obs.corrupt_injected = r.frames_corrupted + r.equivocations;
  ASSERT_GT(obs.corrupt_injected, 0u);
  obs.steps_since_last_injection = r.events_executed;
  obs.step_bound = 64;  // generous: the burst is over within a few events
  obs.legal_state = r.safe() && r.all_correct_decided;
  EXPECT_EQ(check::check_convergence(obs), std::nullopt)
      << "run did not converge after the corruption burst";
}

TEST(SimCorruption, RandomCorruptionPlansStaySafeAndLive) {
  // allow_corrupt mixes flip/equivocate/scorrupt windows into the generator's
  // draw (the bench_nemesis corruption table rides this); corruption budgets
  // drain on delivery, so every plan is survivable by construction and both
  // safety and settle-liveness must hold unconditionally.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    sim::ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.proposals = {"a", "b", "a", "b"};
    for (std::uint32_t p = 0; p < cfg.group.n; ++p) {
      cfg.propose_times.push_back(0.25 * static_cast<double>(p));
    }
    fault::NemesisConfig ncfg;
    ncfg.n = 4;
    ncfg.f = 1;
    ncfg.horizon_ms = 15.0;
    ncfg.disturbances = 3;
    ncfg.allow_corrupt = true;
    cfg.fault_plan = fault::random_fault_plan(ncfg, seed * 271 + 5);

    const auto r = sim::run_consensus(cfg, sim::l_consensus_factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed << "\n"
                          << fault::to_string(cfg.fault_plan);
    ASSERT_TRUE(r.all_correct_decided)
        << "seed " << seed << "\n" << fault::to_string(cfg.fault_plan);
    EXPECT_LE(r.corrupt_frames_dropped, r.frames_corrupted + r.equivocations)
        << "seed " << seed;
  }
}


// ---------------------------------------------------------------------------
// Simulator sweeps: >= 50 seeded random plans per protocol; safety must hold
// unconditionally, liveness once the plan settles.

const std::vector<std::string> kValuePool = {"alpha", "beta", "gamma"};

class SimNemesisSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SimNemesisSweep, SafeAlwaysLiveWhenSettled) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    common::Rng rng(seed * 6151);
    sim::ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = rng.uniform(0.5, 6.0);
    for (std::uint32_t p = 0; p < cfg.group.n; ++p) {
      cfg.proposals.push_back(kValuePool[rng.next_below(kValuePool.size())]);
      cfg.propose_times.push_back(rng.uniform(0.0, 3.0));
    }

    fault::NemesisConfig ncfg;
    ncfg.n = cfg.group.n;
    ncfg.f = cfg.group.f;
    ncfg.horizon_ms = rng.uniform(10.0, 40.0);
    ncfg.disturbances = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    ncfg.settle = !rng.chance(0.25);  // a quarter of the plans never heal
    cfg.fault_plan = fault::random_fault_plan(ncfg, seed * 31 + 7);

    auto r = sim::run_consensus(cfg,
                                sim::consensus_factory_by_name(GetParam()));
    ASSERT_TRUE(r.agreement_ok) << GetParam() << " agreement, seed " << seed
                                << "\n" << fault::to_string(cfg.fault_plan);
    ASSERT_TRUE(r.validity_ok) << GetParam() << " validity, seed " << seed
                               << "\n" << fault::to_string(cfg.fault_plan);
    if (cfg.fault_plan.settles()) {
      ASSERT_TRUE(r.all_correct_decided)
          << GetParam() << " liveness after settle, seed " << seed << "\n"
          << fault::to_string(cfg.fault_plan);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, SimNemesisSweep,
                         ::testing::Values("l", "p"));

/// Per-process stable storage owned outside the world so it survives
/// plan-driven restarts (same pattern as tests/recovery_test.cpp).
struct RecoveringFleet {
  explicit RecoveringFleet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      storages.push_back(std::make_unique<common::InMemoryStableStorage>());
    }
  }
  sim::SimConsensusFactory factory() {
    return [this](ProcessId self, GroupParams group,
                  consensus::ConsensusHost& host, const fd::OmegaView& omega,
                  const fd::SuspectView&) {
      return std::make_unique<consensus::RecoveringPaxosConsensus>(
          self, group, host, omega, *storages[self]);
    };
  }
  std::vector<std::unique_ptr<common::InMemoryStableStorage>> storages;
};

TEST(SimNemesisSweep, RecPaxosSurvivesCrashRestartPlans) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    common::Rng rng(seed * 7727);
    RecoveringFleet fleet(4);
    sim::ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = rng.uniform(0.5, 6.0);
    for (std::uint32_t p = 0; p < cfg.group.n; ++p) {
      cfg.proposals.push_back(kValuePool[rng.next_below(kValuePool.size())]);
      cfg.propose_times.push_back(rng.uniform(0.0, 3.0));
    }

    fault::NemesisConfig ncfg;
    ncfg.n = 4;
    ncfg.f = 1;
    ncfg.horizon_ms = rng.uniform(15.0, 40.0);
    ncfg.disturbances = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    ncfg.allow_restart = true;  // safe: the protocol is storage-backed
    cfg.fault_plan = fault::random_fault_plan(ncfg, seed * 131 + 3);

    auto r = sim::run_consensus(cfg, fleet.factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed << "\n"
                          << fault::to_string(cfg.fault_plan);

    // Liveness for every process the plan never crashed. (A restarted
    // process may legitimately stay undecided when the stable leader never
    // needs it — same contract as the CrashSpec-driven recovery tests.)
    std::set<ProcessId> ever_crashed;
    for (const fault::FaultAction& a : cfg.fault_plan.actions) {
      if (a.kind == fault::FaultKind::kCrash) ever_crashed.insert(a.p);
    }
    for (ProcessId p = 0; p < cfg.group.n; ++p) {
      if (ever_crashed.count(p) != 0) continue;
      ASSERT_TRUE(r.outcomes[p].decided)
          << "p" << p << " undecided, seed " << seed << "\n"
          << fault::to_string(cfg.fault_plan);
    }
  }
}

TEST(AbcastNemesis, CAbcastStaysSafeAndConvergesUnderRandomPlans) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    common::Rng rng(seed * 4111);
    sim::AbcastRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 2.0;
    cfg.throughput_per_s = 2000.0;
    cfg.message_count = 120;
    cfg.payload_bytes = 32;

    fault::NemesisConfig ncfg;
    ncfg.n = 4;
    ncfg.f = 1;
    ncfg.horizon_ms = 40.0;
    ncfg.disturbances = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    ncfg.allow_crash = rng.chance(0.5);
    cfg.fault_plan = fault::random_fault_plan(ncfg, seed * 53 + 11);

    auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name("c-l"));
    ASSERT_TRUE(r.safe()) << "seed " << seed << "\n"
                          << fault::to_string(cfg.fault_plan);
    ASSERT_TRUE(r.agreement_ok) << "seed " << seed << "\n"
                                << fault::to_string(cfg.fault_plan);
    ASSERT_EQ(r.undelivered, 0u) << "seed " << seed << "\n"
                                 << fault::to_string(cfg.fault_plan);
  }
}

// ---------------------------------------------------------------------------
// Determinism: same seed + same plan => byte-identical trace and decisions.

TEST(NemesisDeterminism, SameSeedAndPlanReproduceTheRunExactly) {
  // A scripted plan whose disturbances all land *before* a decision is
  // possible (the partition at 0.2ms stalls both sides until the heal), so
  // every fault provably executes inside the traced run.
  fault::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan("@0.2 partition 0 1 | 2 3\n"
                                      "@0.6 link 0 2 drop=0.5 delay=1\n"
                                      "@1 pause 3\n"
                                      "@6 resume 3\n"
                                      "@8 heal",
                                      &plan, &err))
      << err;

  auto run = [&plan](sim::TraceRecorder& trace) {
    sim::ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 99;
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 2.0;
    cfg.proposals = {"a", "b", "b", "c"};
    cfg.propose_times = {0.0, 0.5, 1.0, 1.5};
    cfg.fault_plan = plan;
    cfg.trace = &trace;
    return sim::run_consensus(cfg, sim::consensus_factory_by_name("l"));
  };

  sim::TraceRecorder t1;
  sim::TraceRecorder t2;
  const auto r1 = run(t1);
  const auto r2 = run(t2);

  EXPECT_GT(t1.count(sim::TraceKind::kFault), 0u);
  EXPECT_TRUE(t1.causally_consistent());
  ASSERT_EQ(t1.events().size(), t2.events().size());
  for (std::size_t i = 0; i < t1.events().size(); ++i) {
    const sim::TraceEvent& a = t1.events()[i];
    const sim::TraceEvent& b = t2.events()[i];
    ASSERT_EQ(a.time, b.time) << "event " << i;
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.subject, b.subject) << "event " << i;
    ASSERT_EQ(a.peer, b.peer) << "event " << i;
    ASSERT_EQ(a.detail, b.detail) << "event " << i;
  }
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t p = 0; p < r1.outcomes.size(); ++p) {
    EXPECT_EQ(r1.outcomes[p].decided, r2.outcomes[p].decided);
    EXPECT_EQ(r1.outcomes[p].decision, r2.outcomes[p].decision);
    EXPECT_EQ(r1.outcomes[p].decide_time, r2.outcomes[p].decide_time);
  }
}

TEST(NemesisDeterminism, FaultFreePlanDoesNotPerturbTheSchedule) {
  // Injecting a no-op fault plan (or none) must not consume randomness:
  // the runs must be identical event for event.
  auto run = [](bool with_noop_plan, sim::TraceRecorder& trace) {
    sim::ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 7;
    cfg.proposals = {"a", "a", "b", "b"};
    cfg.trace = &trace;
    if (with_noop_plan) {
      fault::FaultAction heal;
      heal.time = 1.0;
      heal.kind = fault::FaultKind::kHeal;
      cfg.fault_plan.actions.push_back(heal);
    }
    return sim::run_consensus(cfg, sim::consensus_factory_by_name("l"));
  };
  sim::TraceRecorder t1;
  sim::TraceRecorder t2;
  run(false, t1);
  run(true, t2);
  // The only difference may be the kFault trace line itself.
  std::vector<sim::TraceEvent> e2;
  for (const sim::TraceEvent& e : t2.events()) {
    if (e.kind != sim::TraceKind::kFault) e2.push_back(e);
  }
  ASSERT_EQ(t1.events().size(), e2.size());
  for (std::size_t i = 0; i < e2.size(); ++i) {
    ASSERT_EQ(t1.events()[i].time, e2[i].time) << "event " << i;
    ASSERT_EQ(t1.events()[i].kind, e2[i].kind) << "event " << i;
    ASSERT_EQ(t1.events()[i].detail, e2[i].detail) << "event " << i;
  }
}

// ---------------------------------------------------------------------------
// Threaded runtime: wall-clock fault replay over real transports.

runtime::HeartbeatFd::Config fast_fd() {
  runtime::HeartbeatFd::Config fd;
  fd.interval_ms = 5.0;
  fd.initial_timeout_ms = 40.0;
  return fd;
}

TEST(RuntimeNemesis, InprocPartitionBlocksThenHealDecides) {
  runtime::InprocNetwork::Config ncfg;
  ncfg.n = 4;
  ncfg.seed = 17;
  ncfg.min_delay_ms = 0.02;
  ncfg.max_delay_ms = 0.2;
  runtime::InprocNetwork net(ncfg);
  runtime::ConsensusRunner runner(GroupParams{4, 1}, net, fast_fd());
  runner.start();

  // 2|2 split: no majority on either side, so nobody can decide.
  fault::FaultPlan cut;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan("@0 partition 0 1 | 2 3", &cut, &err))
      << err;
  ASSERT_TRUE(fault::apply_to_policy(cut.actions[0], net.links()));

  for (ProcessId p = 0; p < 4; ++p) {
    runner.propose(p, "v" + std::to_string(p));
  }
  // Watch the whole window instead of sleeping through it: a decision that
  // appears at any point during the partition is a violation, even one a
  // later state change would mask.
  EXPECT_FALSE(testing::ever_within(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (runner.decided(p)) return true;
        }
        return false;
      },
      std::chrono::milliseconds(150)))
      << "a process decided across a majority-less partition";

  fault::FaultPlan healPlan;
  ASSERT_TRUE(fault::parse_fault_plan("@0 heal", &healPlan, &err)) << err;
  runtime::NemesisDriver healer(net, healPlan);
  healer.run();

  ASSERT_TRUE(runner.wait_decided({0, 1, 2, 3}, 15000.0))
      << "no decision after heal";
  EXPECT_FALSE(runner.agreement_violated());
  const Value v = runner.decision(0);
  std::set<std::string> proposals = {"v0", "v1", "v2", "v3"};
  EXPECT_EQ(proposals.count(v), 1u) << "validity: " << v;
  for (ProcessId p = 1; p < 4; ++p) EXPECT_EQ(runner.decision(p), v);
}

TEST(RuntimeNemesis, InprocLeaderCrashRestartRejoinsAndDecides) {
  runtime::InprocNetwork::Config ncfg;
  ncfg.n = 3;
  ncfg.seed = 23;
  runtime::InprocNetwork net(ncfg);
  runtime::ConsensusRunner runner(GroupParams{3, 1}, net, fast_fd());
  runner.start();
  for (ProcessId p = 0; p < 3; ++p) {
    runner.propose(p, "w" + std::to_string(p));
  }

  fault::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(
      fault::parse_fault_plan("@2 crash 0\n@250 restart 0", &plan, &err))
      << err;
  runtime::NemesisDriver driver(
      net, plan, [&runner](ProcessId p) { runner.crash(p); },
      [&runner](ProcessId p) { runner.restart(p); });
  driver.run();

  // Survivors decide around the dead leader; the restarted leader reloads
  // its storage, drives a fresh ballot and converges on the same value.
  ASSERT_TRUE(runner.wait_decided({0, 1, 2}, 15000.0));
  EXPECT_FALSE(runner.agreement_violated());
  EXPECT_EQ(runner.decision(0), runner.decision(1));
  EXPECT_EQ(runner.decision(1), runner.decision(2));
}

TEST(RuntimeNemesis, UdpCrashRestartWithLossyLinkConverges) {
  runtime::UdpNetwork::Config ncfg;
  ncfg.n = 3;
  ncfg.seed = 31;
  ncfg.retransmit_interval_ms = 10.0;
  runtime::UdpNetwork net(ncfg);
  runtime::ConsensusRunner runner(GroupParams{3, 1}, net, fast_fd());
  runner.start();
  for (ProcessId p = 0; p < 3; ++p) {
    runner.propose(p, "u" + std::to_string(p));
  }

  fault::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan(
                  "@0 link 1 2 drop=0.3\n@2 crash 0\n@250 restart 0\n@400 heal",
                  &plan, &err))
      << err;
  runtime::NemesisDriver driver(
      net, plan, [&runner](ProcessId p) { runner.crash(p); },
      [&runner](ProcessId p) { runner.restart(p); });
  driver.run();

  ASSERT_TRUE(runner.wait_decided({0, 1, 2}, 20000.0));
  EXPECT_FALSE(runner.agreement_violated());
  const Value v = runner.decision(0);
  EXPECT_EQ(runner.decision(1), v);
  EXPECT_EQ(runner.decision(2), v);
  // The write-ahead acceptors must have synced something on the way.
  std::uint64_t syncs = 0;
  for (ProcessId p = 0; p < 3; ++p) syncs += runner.storage(p).sync_count();
  EXPECT_GE(syncs, 1u);
}

TEST(RuntimeNemesis, InprocPauseCausesFalseSuspicionAndRecovers) {
  runtime::InprocNetwork::Config ncfg;
  ncfg.n = 3;
  ncfg.seed = 41;
  runtime::InprocNetwork net(ncfg);
  runtime::ConsensusRunner runner(GroupParams{3, 1}, net, fast_fd());
  runner.start();

  // Pause the leader before anyone proposes: ~P must falsely suspect it,
  // the group must make progress without it, and the resumed leader (slow,
  // not dead — full state intact) must still learn the decision.
  fault::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_plan("@0 pause 0\n@300 resume 0", &plan, &err))
      << err;
  runtime::NemesisDriver driver(net, plan);

  std::thread nemesis([&driver] { driver.run(); });
  // Proposals must not race the pause: wait until the link policy really
  // shows p0 paused rather than guessing a sleep long enough. (Assert only
  // after joining — bailing out with a live thread would terminate.)
  const bool paused = testing::poll_until([&] { return net.links().paused(0); });
  for (ProcessId p = 0; p < 3; ++p) {
    runner.propose(p, "q" + std::to_string(p));
  }
  nemesis.join();
  ASSERT_TRUE(paused) << "nemesis never applied the pause";

  ASSERT_TRUE(runner.wait_decided({0, 1, 2}, 15000.0));
  EXPECT_FALSE(runner.agreement_violated());
  EXPECT_EQ(runner.decision(0), runner.decision(1));
  EXPECT_EQ(runner.decision(1), runner.decision(2));
}

}  // namespace
}  // namespace zdc
