// Unit tests for the simulated failure detectors (stable / crash-tracking /
// scripted) and the Ω-from-◇P reduction.
#include <gtest/gtest.h>

#include <vector>

#include "fd/failure_detector.h"
#include "sim/fd_sim.h"

namespace zdc::sim {
namespace {

TEST(FdSimStable, SuspectsExactlyInitialCrashesFromTimeZero) {
  EventQueue events;
  int changes = 0;
  FdConfig cfg;
  cfg.mode = FdMode::kStable;
  FdSim fd(cfg, 4, events, [&changes](ProcessId) { ++changes; });
  fd.initialize({true, false, false, false});

  for (ProcessId obs = 1; obs < 4; ++obs) {
    EXPECT_TRUE(fd.suspect_view(obs).suspects(0));
    EXPECT_FALSE(fd.suspect_view(obs).suspects(1));
    EXPECT_FALSE(fd.suspect_view(obs).suspects(2));
    // The leader is the lowest initially-correct process.
    EXPECT_EQ(fd.omega_view(obs).leader(), 1u);
  }
  // A stable run's FD never changes mid-run: crashes are ignored.
  fd.on_crash(2);
  while (events.run_next()) {
  }
  EXPECT_FALSE(fd.suspect_view(1).suspects(2));
}

TEST(FdSimStable, ConfiguredLeaderWins) {
  EventQueue events;
  FdConfig cfg;
  cfg.mode = FdMode::kStable;
  cfg.stable_leader = 2;
  FdSim fd(cfg, 4, events, nullptr);
  fd.initialize(std::vector<bool>(4, false));
  EXPECT_EQ(fd.omega_view(0).leader(), 2u);
  EXPECT_EQ(fd.omega_view(3).leader(), 2u);
}

TEST(FdSimCrashTracking, DetectsAfterConfiguredDelay) {
  EventQueue events;
  std::vector<ProcessId> changed;
  FdConfig cfg;
  cfg.mode = FdMode::kCrashTracking;
  cfg.detection_delay_ms = 5.0;
  FdSim fd(cfg, 3, events, [&changed](ProcessId p) { changed.push_back(p); });
  fd.initialize(std::vector<bool>(3, false));
  EXPECT_EQ(fd.omega_view(1).leader(), 0u);

  events.at(10.0, [&fd] { fd.on_crash(0); });
  events.run(14.9, 1'000'000);
  EXPECT_FALSE(fd.suspect_view(1).suspects(0)) << "too early";
  events.run(15.1, 1'000'000);
  EXPECT_TRUE(fd.suspect_view(1).suspects(0));
  EXPECT_TRUE(fd.suspect_view(2).suspects(0));
  // Ω recomputes to the lowest non-suspected id at every observer.
  EXPECT_EQ(fd.omega_view(1).leader(), 1u);
  EXPECT_EQ(fd.omega_view(2).leader(), 1u);
  // Every observer got a change notification.
  EXPECT_GE(changed.size(), 3u);
}

TEST(FdSimCrashTracking, InitialCrashesDetectedAfterDelayToo) {
  EventQueue events;
  FdConfig cfg;
  cfg.mode = FdMode::kCrashTracking;
  cfg.detection_delay_ms = 2.0;
  FdSim fd(cfg, 3, events, nullptr);
  fd.initialize({true, false, false});
  // Recovery-run shape: at t=0 nothing is suspected yet.
  EXPECT_FALSE(fd.suspect_view(1).suspects(0));
  EXPECT_EQ(fd.omega_view(1).leader(), 0u);
  events.run(3.0, 1'000'000);
  EXPECT_TRUE(fd.suspect_view(1).suspects(0));
  EXPECT_EQ(fd.omega_view(1).leader(), 1u);
}

TEST(FdSimScripted, PerObserverAndGlobalEvents) {
  EventQueue events;
  FdConfig cfg;
  cfg.mode = FdMode::kScripted;
  FdScriptEvent only_p2;
  only_p2.time = 1.0;
  only_p2.observer = 2;
  only_p2.leader = 3;
  only_p2.suspected = {0, 1};
  cfg.script.push_back(only_p2);
  FdScriptEvent everyone;
  everyone.time = 2.0;
  everyone.observer = kNoProcess;
  everyone.leader = 1;
  cfg.script.push_back(everyone);

  FdSim fd(cfg, 4, events, nullptr);
  fd.initialize(std::vector<bool>(4, false));
  EXPECT_EQ(fd.omega_view(2).leader(), 0u);  // pre-script default

  events.run(1.5, 1'000'000);
  EXPECT_EQ(fd.omega_view(2).leader(), 3u);
  EXPECT_TRUE(fd.suspect_view(2).suspects(0));
  EXPECT_EQ(fd.omega_view(0).leader(), 0u);  // other observers untouched

  events.run(2.5, 1'000'000);
  for (ProcessId obs = 0; obs < 4; ++obs) {
    EXPECT_EQ(fd.omega_view(obs).leader(), 1u);
    EXPECT_FALSE(fd.suspect_view(obs).suspects(0));
  }
}

TEST(FdSimScripted, ChangeCallbackOnlyOnRealChanges) {
  EventQueue events;
  int changes = 0;
  FdConfig cfg;
  cfg.mode = FdMode::kScripted;
  FdScriptEvent same;
  same.time = 1.0;
  same.observer = kNoProcess;
  same.leader = 0;  // identical to the default output
  cfg.script.push_back(same);
  FdSim fd(cfg, 3, events, [&changes](ProcessId) { ++changes; });
  fd.initialize(std::vector<bool>(3, false));
  const int after_init = changes;
  while (events.run_next()) {
  }
  EXPECT_EQ(changes, after_init) << "no-op script event must not notify";
}

TEST(OmegaFromSuspects, PicksLowestNonSuspected) {
  struct Stub final : fd::SuspectView {
    [[nodiscard]] bool suspects(ProcessId p) const override {
      return p < flags.size() && flags[p];
    }
    std::vector<bool> flags;
  };
  Stub stub;
  stub.flags = {true, true, false, false};
  fd::OmegaFromSuspects omega(stub, 4);
  EXPECT_EQ(omega.leader(), 2u);
  stub.flags = {false, true, false, false};
  EXPECT_EQ(omega.leader(), 0u);
  stub.flags = {true, true, true, true};
  EXPECT_EQ(omega.leader(), kNoProcess);
}

}  // namespace
}  // namespace zdc::sim
