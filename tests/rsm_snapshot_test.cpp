// Round-trip property tests for StateMachine::serialize()/restore() — the
// contract in core/rsm.h that snapshot transfer and durable checkpoints
// (src/recovery) both lean on: restore(serialize()) on a fresh machine must
// reproduce an equal snapshot() digest AND equal results for every
// subsequent apply, and the encoding is canonical (equal state <=> equal
// bytes). Both shipped machines are exercised over seeded command streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "core/kv_store.h"
#include "core/replicated_log.h"

namespace zdc::core {
namespace {

std::vector<std::string> random_kv_commands(std::uint64_t seed, int count) {
  common::Rng rng(seed);
  std::vector<std::string> commands;
  commands.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(16));
    switch (rng.next_below(4)) {
      case 0: commands.push_back(kv_put(key, "v" + std::to_string(i))); break;
      case 1: commands.push_back(kv_del(key)); break;
      case 2: commands.push_back(kv_get(key)); break;
      default:
        commands.push_back(
            kv_cas(key, "v" + std::to_string(i - 2), "v" + std::to_string(i)));
        break;
    }
  }
  return commands;
}

std::vector<std::string> random_log_commands(std::uint64_t seed, int count) {
  common::Rng rng(seed);
  std::vector<std::string> commands;
  commands.reserve(static_cast<std::size_t>(count));
  std::uint64_t appended = 0;
  for (int i = 0; i < count; ++i) {
    switch (rng.next_below(5)) {
      case 0:
      case 1:
        commands.push_back(log_append("data-" + std::to_string(i)));
        ++appended;
        break;
      case 2: commands.push_back(log_read(rng.next_below(appended + 2))); break;
      case 3: commands.push_back(log_len()); break;
      default:
        // Trim somewhere inside (or just past) the current content.
        commands.push_back(log_trim(rng.next_below(appended + 1)));
        break;
    }
  }
  return commands;
}

// The round-trip property for one machine pair: drive `original` with
// `history`, restore its image into `fresh`, then check equal digests and
// equal replies for the whole `probes` tail applied to both.
template <typename Machine>
void expect_round_trip(const std::vector<std::string>& history,
                       const std::vector<std::string>& probes) {
  Machine original;
  for (const auto& cmd : history) original.apply(cmd);

  Machine fresh;
  ASSERT_TRUE(fresh.restore(original.serialize()));
  EXPECT_EQ(fresh.snapshot(), original.snapshot())
      << "restore(serialize()) must reproduce the digest";

  for (const auto& cmd : probes) {
    EXPECT_EQ(fresh.apply(cmd), original.apply(cmd))
        << "post-restore applies must be indistinguishable";
  }
  EXPECT_EQ(fresh.snapshot(), original.snapshot());
}

TEST(RsmSnapshot, KvRoundTripOverSeededStreams) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_round_trip<KvStateMachine>(random_kv_commands(seed, 200),
                                      random_kv_commands(seed + 100, 60));
  }
}

TEST(RsmSnapshot, ReplicatedLogRoundTripOverSeededStreams) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_round_trip<ReplicatedLogStateMachine>(
        random_log_commands(seed, 200), random_log_commands(seed + 100, 60));
  }
}

TEST(RsmSnapshot, EmptyMachinesRoundTrip) {
  expect_round_trip<KvStateMachine>({}, random_kv_commands(7, 40));
  expect_round_trip<ReplicatedLogStateMachine>({}, random_log_commands(7, 40));
}

// The log's serialized image must carry the index *frame*, not just the
// bytes: a trimmed log and an untrimmed log with the same live entries are
// different states.
TEST(RsmSnapshot, LogImageCarriesTheIndexFrame) {
  ReplicatedLogStateMachine trimmed;
  for (int i = 0; i < 5; ++i) trimmed.apply(log_append("e" + std::to_string(i)));
  trimmed.apply(log_trim(3));

  ReplicatedLogStateMachine fresh;
  ASSERT_TRUE(fresh.restore(trimmed.serialize()));
  EXPECT_EQ(fresh.first_index(), 3u);
  EXPECT_EQ(fresh.end_index(), 5u);
  EXPECT_EQ(fresh.apply(log_len()), "len:5");
  EXPECT_EQ(fresh.apply(log_read(2)), "out_of_range");
  EXPECT_EQ(fresh.apply(log_read(3)), "data:e3");
  EXPECT_EQ(fresh.apply(log_append("e5")), "idx:5");
}

// Canonical encoding: machines that reached equal state along different
// command paths serialize to equal bytes (snapshot digests may prove state
// equality, but snapshot *transfer* additionally wants byte determinism so
// checkpoints and wire images are comparable).
TEST(RsmSnapshot, EqualStateSerializesToEqualBytes) {
  KvStateMachine a, b;
  a.apply(kv_put("x", "1"));
  a.apply(kv_put("y", "2"));
  a.apply(kv_del("x"));
  b.apply(kv_put("y", "wrong"));
  b.apply(kv_put("y", "2"));
  ASSERT_EQ(a.snapshot(), b.snapshot());
  EXPECT_EQ(a.serialize(), b.serialize());

  ReplicatedLogStateMachine c, d;
  for (int i = 0; i < 4; ++i) {
    c.apply(log_append("e" + std::to_string(i)));
    d.apply(log_append("e" + std::to_string(i)));
  }
  c.apply(log_trim(2));
  d.apply(log_trim(1));
  d.apply(log_trim(2));
  ASSERT_EQ(c.snapshot(), d.snapshot());
  EXPECT_EQ(c.serialize(), d.serialize());
}

// Malformed images are corruption, not state: restore() returns false. A
// failed restore on a *fresh* machine leaves it unusable by contract
// (state unspecified), so each probe uses a new instance.
TEST(RsmSnapshot, MalformedImagesRejected) {
  KvStateMachine reference;
  reference.apply(kv_put("k", "v"));
  const std::string image = reference.serialize();

  const auto reject_kv = [](const std::string& bad) {
    KvStateMachine m;
    EXPECT_FALSE(m.restore(bad)) << "image of " << bad.size() << " bytes";
  };
  reject_kv(image.substr(0, image.size() - 1));  // truncated
  reject_kv(image + "x");                        // trailing garbage
  reject_kv(std::string("\xff\xff\xff", 3));     // junk header

  // A count field larger than the payload must not allocate-and-trust.
  common::Encoder enc;
  enc.put_u64(1000000);
  enc.put_string("k");
  enc.put_string("v");
  reject_kv(enc.take());

  ReplicatedLogStateMachine log;
  log.apply(log_append("a"));
  const std::string log_image = log.serialize();
  const auto reject_log = [](const std::string& bad) {
    ReplicatedLogStateMachine m;
    EXPECT_FALSE(m.restore(bad));
  };
  reject_log(log_image.substr(0, log_image.size() - 1));
  reject_log(log_image + "x");

  // An inverted window (next < first) is structurally valid but semantic
  // nonsense; restore must refuse it.
  common::Encoder frame;
  frame.put_u64(5);  // first_index
  frame.put_u64(2);  // next_index < first_index
  reject_log(frame.take());
}

// restore() replaces state wholesale — pre-existing content must not bleed
// through into the restored image.
TEST(RsmSnapshot, RestoreReplacesExistingState) {
  KvStateMachine source;
  source.apply(kv_put("only", "this"));

  KvStateMachine target;
  target.apply(kv_put("stale", "gone"));
  target.apply(kv_put("only", "overwritten"));
  ASSERT_TRUE(target.restore(source.serialize()));
  EXPECT_EQ(target.snapshot(), source.snapshot());
  EXPECT_EQ(target.apply(kv_get("stale")), "not_found");
  EXPECT_EQ(target.apply(kv_get("only")), "value:this");
}

}  // namespace
}  // namespace zdc::core
