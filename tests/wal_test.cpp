// WAL edge cases (src/storage/wal.h): empty log, torn final record,
// corrupt-CRC mid-segment (must fail loudly, not truncate), rollover at
// boundary sizes — plus a seeded write/kill/reopen fuzz loop over FaultyEnv
// proving the durability contract: synced records always replay, recovered
// records are always a prefix of what was appended. Rounds/seed come from
// ZDC_WAL_FUZZ_ROUNDS / ZDC_WAL_FUZZ_SEED (scripts/check.sh pins them).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/storage_fault.h"
#include "storage/env.h"
#include "storage/faulty_env.h"
#include "storage/wal.h"

namespace zdc::storage {
namespace {

constexpr char kDir[] = "db";

/// Opens the log collecting every replayed payload; asserts ok.
std::unique_ptr<Wal> open_collecting(Env& env, WalOptions options,
                                     std::vector<std::string>* records,
                                     WalRecoveryInfo* info = nullptr) {
  std::unique_ptr<Wal> wal;
  const Status s = Wal::open(
      env, kDir, options, 0,
      [records](std::uint64_t, std::string_view payload) {
        records->push_back(std::string(payload));
        return Status::ok();
      },
      &wal, info);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  return wal;
}

Status open_status(Env& env, WalOptions options,
                   std::vector<std::string>* records) {
  std::unique_ptr<Wal> wal;
  return Wal::open(
      env, kDir, options, 0,
      [records](std::uint64_t, std::string_view payload) {
        records->push_back(std::string(payload));
        return Status::ok();
      },
      &wal);
}

TEST(Wal, EmptyLogOpensCleanAndRoundTrips) {
  MemEnv env;
  std::vector<std::string> records;
  WalRecoveryInfo info;
  auto wal = open_collecting(env, {}, &records, &info);
  ASSERT_NE(wal, nullptr);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_FALSE(info.tail_truncated);

  ASSERT_TRUE(wal->append("alpha").is_ok());
  ASSERT_TRUE(wal->append("").is_ok());  // empty payloads are legal records
  ASSERT_TRUE(wal->append("gamma").is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  wal.reset();

  records.clear();
  wal = open_collecting(env, {}, &records, &info);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha", "", "gamma"}));
  EXPECT_EQ(info.records_replayed, 3u);
  EXPECT_FALSE(info.tail_truncated);
}

TEST(Wal, SyncIsGroupCommitAndIdleSyncIsFree) {
  MemEnv env;
  std::vector<std::string> records;
  auto wal = open_collecting(env, {}, &records);
  ASSERT_NE(wal, nullptr);
  EXPECT_TRUE(wal->sync().is_ok());  // nothing unsynced: not a real fsync
  EXPECT_EQ(wal->syncs(), 0u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal->append("r" + std::to_string(i)).is_ok());
  }
  ASSERT_TRUE(wal->sync().is_ok());
  EXPECT_EQ(wal->syncs(), 1u) << "ten appends must ride one fsync";
  EXPECT_TRUE(wal->sync().is_ok());
  EXPECT_EQ(wal->syncs(), 1u);
}

TEST(Wal, TornFinalRecordIsTruncatedNotFatal) {
  MemEnv env;
  std::vector<std::string> records;
  auto wal = open_collecting(env, {}, &records);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->append("kept-1").is_ok());
  ASSERT_TRUE(wal->append("kept-2").is_ok());
  ASSERT_TRUE(wal->append("torn-away").is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  wal.reset();

  // Slice the final frame mid-payload — what an interrupted append leaves.
  const std::string path = join_path(kDir, Wal::segment_name(0));
  std::string contents;
  ASSERT_TRUE(env.read_file(path, &contents).is_ok());
  const std::uint64_t intact =
      Wal::encode_frame("kept-1").size() + Wal::encode_frame("kept-2").size();
  ASSERT_TRUE(env.truncate_file(path, contents.size() - 4).is_ok());

  records.clear();
  WalRecoveryInfo info;
  wal = open_collecting(env, {}, &records, &info);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(records, (std::vector<std::string>{"kept-1", "kept-2"}));
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_EQ(info.torn_bytes_dropped,
            contents.size() - 4 - intact);

  // The tail was truncated away, so appending resumes cleanly.
  ASSERT_TRUE(wal->append("after-recovery").is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  wal.reset();
  records.clear();
  wal = open_collecting(env, {}, &records);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(records,
            (std::vector<std::string>{"kept-1", "kept-2", "after-recovery"}));
}

TEST(Wal, CorruptCrcMidSegmentFailsLoudly) {
  MemEnv env;
  std::vector<std::string> records;
  auto wal = open_collecting(env, {}, &records);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->append("first").is_ok());
  ASSERT_TRUE(wal->append("second").is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  wal.reset();

  // Flip a payload byte of the *first* frame: a complete valid frame follows,
  // so this is mid-segment damage — silently truncating it would drop the
  // durable "second". Recovery must refuse.
  const std::string path = join_path(kDir, Wal::segment_name(0));
  std::string contents;
  ASSERT_TRUE(env.read_file(path, &contents).is_ok());
  contents[8] ^= 0x01;  // first payload byte (crc:4 + len:4 precede it)
  std::unique_ptr<WritableFile> rewrite;
  ASSERT_TRUE(env.new_writable(path, /*truncate=*/true, &rewrite).is_ok());
  ASSERT_TRUE(rewrite->append(contents).is_ok());
  rewrite.reset();

  records.clear();
  const Status s = open_status(env, {}, &records);
  EXPECT_EQ(s.code(), Status::Code::kCorruption) << s.to_string();
}

TEST(Wal, DamageInNonFinalSegmentFailsLoudly) {
  MemEnv env;
  std::vector<std::string> records;
  auto wal = open_collecting(env, {}, &records);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->append("seg0-record").is_ok());
  ASSERT_TRUE(wal->roll().is_ok());  // seg0 synced, writer now on seg1
  ASSERT_TRUE(wal->append("seg1-record").is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  wal.reset();

  // Tearing the *non-final* segment can never be a crash artifact (roll
  // synced it), so even a would-be torn tail is corruption there.
  const std::string path = join_path(kDir, Wal::segment_name(0));
  std::string contents;
  ASSERT_TRUE(env.read_file(path, &contents).is_ok());
  ASSERT_TRUE(env.truncate_file(path, contents.size() - 1).is_ok());

  records.clear();
  const Status s = open_status(env, {}, &records);
  EXPECT_EQ(s.code(), Status::Code::kCorruption) << s.to_string();
}

TEST(Wal, RollsAtSegmentBoundaryAndNeverSplitsFrames) {
  MemEnv env;
  WalOptions options;
  options.segment_bytes = 64;
  std::vector<std::string> records;
  auto wal = open_collecting(env, options, &records);
  ASSERT_NE(wal, nullptr);

  // Frame size is 8 + payload. Two 24-byte payloads fill a segment exactly;
  // the third must land whole in the next segment, not straddle the edge.
  const std::string p1(24, 'a');
  const std::string p2(24, 'b');
  const std::string p3(24, 'c');
  ASSERT_TRUE(wal->append(p1).is_ok());
  ASSERT_TRUE(wal->append(p2).is_ok());
  EXPECT_EQ(wal->current_segment(), 0u);
  ASSERT_TRUE(wal->append(p3).is_ok());
  EXPECT_EQ(wal->current_segment(), 1u);
  ASSERT_TRUE(wal->sync().is_ok());

  std::string seg0;
  ASSERT_TRUE(
      env.read_file(join_path(kDir, Wal::segment_name(0)), &seg0).is_ok());
  EXPECT_EQ(seg0.size(), 64u);
  std::string seg1;
  ASSERT_TRUE(
      env.read_file(join_path(kDir, Wal::segment_name(1)), &seg1).is_ok());
  EXPECT_EQ(seg1.size(), 32u);

  // An over-sized record still goes down in one piece (its own segment may
  // exceed segment_bytes; frames are never split).
  const std::string big(200, 'z');
  ASSERT_TRUE(wal->append(big).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  wal.reset();

  records.clear();
  WalRecoveryInfo info;
  wal = open_collecting(env, options, &records, &info);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(records, (std::vector<std::string>{p1, p2, p3, big}));
  EXPECT_GE(info.segments_scanned, 3u);
}

TEST(Wal, SegmentNamesRoundTripAndSortByIndex) {
  EXPECT_EQ(Wal::segment_name(0), "wal-000000.log");
  std::uint64_t index = 99;
  ASSERT_TRUE(Wal::parse_segment_name(Wal::segment_name(1234567), &index));
  EXPECT_EQ(index, 1234567u);
  EXPECT_FALSE(Wal::parse_segment_name("snap-000001", &index));
  EXPECT_FALSE(Wal::parse_segment_name("wal-xyz.log", &index));
  // Zero-padded decimal: lexicographic file order == numeric replay order.
  EXPECT_LT(Wal::segment_name(9), Wal::segment_name(10));
}

// --- seeded write/kill/reopen fuzz ---

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

TEST(WalFuzz, WriteKillReopenNeverLosesASyncedRecord) {
  const std::uint64_t rounds = env_u64("ZDC_WAL_FUZZ_ROUNDS", 64);
  const std::uint64_t seed_base = env_u64("ZDC_WAL_FUZZ_SEED", 1);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    common::Rng rng(common::mix_seed(seed_base, "wal_fuzz", 0.0, round));
    MemEnv mem;
    FaultyEnv env(mem);
    WalOptions options;
    options.segment_bytes = 96;  // small: rollovers happen constantly

    std::vector<std::string> written;  // every append, in order
    std::size_t synced = 0;            // prefix guaranteed durable

    std::vector<std::string> records;
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(Wal::open(
                    env, kDir, options, 0,
                    [&records](std::uint64_t, std::string_view payload) {
                      records.push_back(std::string(payload));
                      return Status::ok();
                    },
                    &wal)
                    .is_ok());

    const std::uint64_t kills = 1 + rng.next_below(3);
    for (std::uint64_t kill = 0; kill < kills; ++kill) {
      const std::uint64_t ops = 1 + rng.next_below(12);
      for (std::uint64_t op = 0; op < ops; ++op) {
        const std::uint64_t dice = rng.next_below(10);
        if (dice < 7) {
          std::string payload(rng.next_below(40), ' ');
          for (char& c : payload) {
            c = static_cast<char>('a' + rng.next_below(26));
          }
          ASSERT_TRUE(wal->append(payload).is_ok());
          written.push_back(std::move(payload));
        } else if (dice < 9) {
          ASSERT_TRUE(wal->sync().is_ok());
          synced = written.size();
        } else {
          ASSERT_TRUE(wal->roll().is_ok());  // roll syncs the old segment...
          // ...but records already staged on the *new* segment (none, the
          // roll happens at a record boundary) stay unsynced; everything
          // up to the roll is durable.
          synced = written.size();
        }
      }

      // kill -9 / power cut: slice the unsynced tail three different ways.
      const std::uint64_t mode = rng.next_below(3);
      if (mode == 0) {
        env.crash_now(fault::CrashKeep::kNone);
      } else if (mode == 1) {
        env.crash_now(fault::CrashKeep::kTorn, rng.next_below(64));
      } else {
        env.crash_now(fault::CrashKeep::kAll);
        synced = written.size();  // the page cache happened to be flushed
      }
      wal.reset();
      env.recover();

      records.clear();
      ASSERT_TRUE(Wal::open(
                      env, kDir, options, 0,
                      [&records](std::uint64_t, std::string_view payload) {
                        records.push_back(std::string(payload));
                        return Status::ok();
                      },
                      &wal)
                      .is_ok())
          << "round " << round << " kill " << kill;

      // The durability contract: nothing synced is lost, nothing is
      // invented or reordered — recovered records are a prefix of written.
      ASSERT_GE(records.size(), synced) << "round " << round;
      ASSERT_LE(records.size(), written.size()) << "round " << round;
      for (std::size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(records[i], written[i])
            << "round " << round << " record " << i;
      }
      // Survivors are the new history; unsynced appends that died stay dead.
      written.resize(records.size());
      synced = written.size();
    }
  }
}

}  // namespace
}  // namespace zdc::storage
