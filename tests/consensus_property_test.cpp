// Property-based safety and liveness tests for all consensus protocols.
//
// Three adversaries, each swept over many seeds:
//   1. RandomizedCrashRuns — random proposals, propose times, network timing
//      and up to f crashes (timed or mid-broadcast-truncated) under an
//      eventually-perfect (crash-tracking) failure detector. Both safety and
//      termination must hold.
//   2. HostileFailureDetector — a scripted FD that flaps leaders/suspicions
//      asymmetrically and never stabilizes. Termination is not required
//      (indulgent protocols may be delayed forever), but safety must survive
//      *any* FD behaviour — this is the paper's correctness core (Lemmas 2, 4).
//   3. PartialBroadcastCrash — a proposer crashes mid-broadcast so that only
//      a chosen subset receives its round message; the classic adversarial
//      schedule behind the quorum-intersection arguments.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/consensus_world.h"

namespace zdc::sim {
namespace {

const std::vector<std::string> kValuePool = {"alpha", "beta", "gamma", "delta"};

NetworkConfig random_net(common::Rng& rng) {
  NetworkConfig net;
  net.base_delay_ms = rng.uniform(0.02, 0.3);
  net.jitter_mean_ms = rng.uniform(0.0, 0.4);
  net.cpu_send_ms = rng.uniform(0.001, 0.05);
  net.cpu_recv_ms = rng.uniform(0.001, 0.05);
  return net;
}

std::vector<Value> random_proposals(common::Rng& rng, std::uint32_t n) {
  std::vector<Value> proposals;
  for (std::uint32_t i = 0; i < n; ++i) {
    // Bias towards few distinct values so that near-unanimity (the one-step
    // edge) is exercised often.
    const std::size_t pool = 1 + rng.next_below(kValuePool.size());
    proposals.push_back(kValuePool[rng.next_below(pool)]);
  }
  return proposals;
}

std::vector<CrashSpec> random_crashes(common::Rng& rng, GroupParams g) {
  std::vector<CrashSpec> crashes;
  const std::uint32_t count = rng.next_below(g.f + 1);  // 0..f crashes
  std::vector<bool> used(g.n, false);
  for (std::uint32_t i = 0; i < count; ++i) {
    CrashSpec c;
    do {
      c.p = static_cast<ProcessId>(rng.next_below(g.n));
    } while (used[c.p]);
    used[c.p] = true;
    const std::uint64_t kind = rng.next_below(3);
    if (kind == 0) {
      c.initial = true;
    } else if (kind == 1) {
      c.time = rng.uniform(0.0, 5.0);
    } else {
      // Crash during the k-th broadcast, reaching a random strict subset.
      c.truncate_broadcast_index = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      for (ProcessId t = 0; t < g.n; ++t) {
        if (rng.chance(0.5)) c.partial_targets.push_back(t);
      }
    }
    crashes.push_back(std::move(c));
  }
  return crashes;
}

class RandomizedCrashRuns : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomizedCrashRuns, SafeAndLiveUnderEventuallyPerfectFd) {
  const bool termination_guaranteed = GetParam() != "wab";  // WAB is oracle-based
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    common::Rng rng(seed * 7919);
    ConsensusRunConfig cfg;
    cfg.group = rng.chance(0.3) ? GroupParams{7, 2} : GroupParams{4, 1};
    cfg.seed = seed;
    cfg.net = random_net(rng);
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = rng.uniform(0.5, 8.0);
    cfg.proposals = random_proposals(rng, cfg.group.n);
    for (std::uint32_t p = 0; p < cfg.group.n; ++p) {
      cfg.propose_times.push_back(rng.uniform(0.0, 3.0));
    }
    cfg.crashes = random_crashes(rng, cfg.group);

    auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
    ASSERT_TRUE(r.agreement_ok) << GetParam() << " agreement, seed " << seed;
    ASSERT_TRUE(r.validity_ok) << GetParam() << " validity, seed " << seed;
    if (termination_guaranteed) {
      ASSERT_TRUE(r.all_correct_decided)
          << GetParam() << " termination, seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, RandomizedCrashRuns,
                         ::testing::Values("l", "p", "paxos", "brasileiro-l",
                                           "brasileiro-paxos", "wab", "ct",
                                           "rec-paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class HostileFailureDetector : public ::testing::TestWithParam<std::string> {};

TEST_P(HostileFailureDetector, SafetyHoldsUnderArbitraryFdOutput) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    common::Rng rng(seed * 104729);
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.net = random_net(rng);
    cfg.proposals = random_proposals(rng, cfg.group.n);
    cfg.crashes = random_crashes(rng, cfg.group);

    // A never-stabilizing FD script: every observer keeps being fed fresh,
    // mutually inconsistent leaders and suspicions.
    cfg.fd.mode = FdMode::kScripted;
    for (int i = 0; i < 40; ++i) {
      FdScriptEvent ev;
      ev.time = rng.uniform(0.0, 20.0);
      ev.observer = rng.chance(0.3)
                        ? kNoProcess
                        : static_cast<ProcessId>(rng.next_below(cfg.group.n));
      ev.leader = static_cast<ProcessId>(rng.next_below(cfg.group.n));
      for (ProcessId p = 0; p < cfg.group.n; ++p) {
        if (rng.chance(0.25)) ev.suspected.push_back(p);
      }
      cfg.fd.script.push_back(std::move(ev));
    }
    // Bound the run: termination is not expected, safety is.
    cfg.time_limit_ms = 500.0;
    cfg.event_limit = 400'000;

    auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
    ASSERT_TRUE(r.agreement_ok) << GetParam() << " agreement, seed " << seed;
    ASSERT_TRUE(r.validity_ok) << GetParam() << " validity, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, HostileFailureDetector,
                         ::testing::Values("l", "p", "paxos", "brasileiro-l", "ct",
                                           "rec-paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The classic adversarial schedule: the first-round proposer with the pivotal
// value crashes while broadcasting, reaching only a subset. Whatever the
// subset, agreement must hold and the survivors must decide.
class PartialBroadcastCrash : public ::testing::TestWithParam<std::string> {};

TEST_P(PartialBroadcastCrash, EverySubsetIsSafe) {
  // Enumerate all subsets of receivers for the crashing process p0.
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 1234 + mask;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 2.0;
    // p0 proposes the odd one out; whether the others see it decides whether
    // its value can win.
    cfg.proposals = {"x", "y", "y", "y"};
    CrashSpec c;
    c.p = 0;
    c.truncate_broadcast_index = 1;
    for (ProcessId t = 0; t < 4; ++t) {
      if ((mask & (1u << t)) != 0) c.partial_targets.push_back(t);
    }
    cfg.crashes.push_back(std::move(c));

    auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
    ASSERT_TRUE(r.agreement_ok) << GetParam() << " mask " << mask;
    ASSERT_TRUE(r.validity_ok) << GetParam() << " mask " << mask;
    ASSERT_TRUE(r.all_correct_decided) << GetParam() << " mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, PartialBroadcastCrash,
                         ::testing::Values("l", "p", "paxos", "brasileiro-l",
                                           "brasileiro-paxos", "ct",
                                           "rec-paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace zdc::sim
