// Regression net under the Table-1 bench: the measured message complexity
// and step-derived latency of every atomic-broadcast stack must stay inside
// the analytically justified bands (see bench_table1.cpp for the bands'
// derivation; measured counts include the DECIDE flood the paper's
// analytical figures omit).
#include <gtest/gtest.h>

#include <string>

#include "sim/abcast_world.h"

namespace zdc::sim {
namespace {

AbcastRunResult trickle_run(const std::string& proto) {
  AbcastRunConfig cfg;
  cfg.group = proto == "paxos" ? GroupParams{3, 1} : GroupParams{4, 1};
  cfg.net = calibrated_lan_2006();
  cfg.seed = 4;
  cfg.throughput_per_s = 20.0;  // no collisions: one message in flight
  cfg.message_count = 150;
  if (proto == "paxos") cfg.workload_senders = {1, 2};
  return run_abcast(cfg, abcast_factory_by_name(proto));
}

// Paxos: exactly n²+n+1 = 13 messages per a-broadcast, and 3δ latency.
TEST(Table1Regression, PaxosMessageCountIsExact) {
  auto r = trickle_run("paxos");
  ASSERT_EQ(r.undelivered, 0u);
  EXPECT_NEAR(r.messages_per_abcast(), 13.0, 0.2);
}

TEST(Table1Regression, PaxosLatencyIsThreeDelta) {
  auto r = trickle_run("paxos");
  const NetworkConfig net = calibrated_lan_2006();
  const double delta =
      net.base_delay_ms + net.jitter_mean_ms + net.cpu_send_ms + net.cpu_recv_ms;
  EXPECT_NEAR(r.latency_ms.mean() / delta, 3.0, 0.25);
}

// One-step stacks without collisions: n (oracle, counted once) + n² (PROP)
// + n² (DECIDE flood) = 36 for n=4; latency 2δ plus the oracle's disorder
// jitter (≈ 0.5–0.7δ extra on the calibrated profile).
TEST(Table1Regression, OneStepStacksMessageBand) {
  for (const char* proto : {"c-l", "c-p", "wabcast"}) {
    auto r = trickle_run(proto);
    ASSERT_EQ(r.undelivered, 0u) << proto;
    EXPECT_NEAR(r.messages_per_abcast(), 36.0, 2.5) << proto;
  }
}

TEST(Table1Regression, OneStepStacksLatencyBand) {
  const NetworkConfig net = calibrated_lan_2006();
  const double delta =
      net.base_delay_ms + net.jitter_mean_ms + net.cpu_send_ms + net.cpu_recv_ms;
  for (const char* proto : {"c-l", "c-p", "wabcast"}) {
    auto r = trickle_run(proto);
    const double steps = r.latency_ms.mean() / delta;
    EXPECT_GT(steps, 2.0) << proto;   // 2δ is the floor
    EXPECT_LT(steps, 3.1) << proto;   // well under Paxos + margin
  }
}

// The one-step stacks must beat Paxos end-to-end in this regime — the
// Figure-3 low-load ordering as a hard regression.
TEST(Table1Regression, OneStepStacksBeatPaxosAtTrickleRate) {
  const double paxos = trickle_run("paxos").latency_ms.mean();
  for (const char* proto : {"c-l", "c-p"}) {
    EXPECT_LT(trickle_run(proto).latency_ms.mean(), paxos) << proto;
  }
}

// Collision regime: L/P may at most double their message cost (second round
// of n²) — the 2n²+n band; Paxos stays exactly where it was.
TEST(Table1Regression, CollisionRegimeBands) {
  for (const char* proto : {"c-l", "c-p"}) {
    AbcastRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.net = calibrated_lan_2006();
    cfg.seed = 4;
    cfg.throughput_per_s = 500.0;
    cfg.message_count = 400;
    auto r = run_abcast(cfg, abcast_factory_by_name(proto));
    ASSERT_EQ(r.undelivered, 0u) << proto;
    // Batching can push per-message cost below the single-message analytic;
    // the hard bound is the 2n²+n ceiling plus flood.
    EXPECT_LT(r.messages_per_abcast(), 55.0) << proto;
    EXPECT_GT(r.messages_per_abcast(), 15.0) << proto;
  }
  AbcastRunConfig cfg;
  cfg.group = GroupParams{3, 1};
  cfg.net = calibrated_lan_2006();
  cfg.seed = 4;
  cfg.throughput_per_s = 500.0;
  cfg.message_count = 400;
  cfg.workload_senders = {1, 2};
  auto r = run_abcast(cfg, abcast_factory_by_name("paxos"));
  EXPECT_LT(r.messages_per_abcast(), 14.0);
}

}  // namespace
}  // namespace zdc::sim
