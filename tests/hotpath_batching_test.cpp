// Property tests for the hot-path batching knobs (docs/PERF.md).
//
// Two independent mechanisms are exercised:
//
//   * BatchingOptions::paxos_pipeline_window — caps proposed-but-undecided
//     slots; surplus client messages accumulate and batch into the next
//     freed slot.
//   * BatchingOptions::c_abcast_max_batch — caps how much of the pending
//     estimate one consensus round proposes.
//
// Batching must never buy throughput with correctness: total order,
// integrity, agreement and per-sender FIFO have to hold at every cap value,
// under clean runs and under nemesis fault plans (partitions + crash; this
// world is crash-stop, so restarts stay disabled).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "abcast/batching.h"
#include "abcast/paxos_abcast.h"
#include "common/rng.h"
#include "direct_abcast_harness.h"
#include "fault/fault_plan.h"
#include "fault/nemesis.h"
#include "sim/abcast_world.h"

namespace zdc::testing {
namespace {

/// Seqs of each sender must appear in strictly increasing order.
bool per_sender_fifo(const std::vector<abcast::MsgId>& history) {
  std::map<ProcessId, std::uint64_t> last;
  for (const abcast::MsgId& id : history) {
    std::uint64_t& prev = last[id.sender];
    if (id.seq <= prev) return false;
    prev = id.seq;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pipeline window, message level: the window genuinely batches (few slots for
// many messages) and never reorders.

DirectAbcastNet::Factory paxos_factory() {
  return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<abcast::PaxosAbcast>(self, group, host, omega);
  };
}

TEST(HotpathBatching, PipelineWindowCoalescesBackloggedMessages) {
  constexpr GroupParams kGroup{3, 1};
  DirectAbcastNet net(kGroup, paxos_factory());
  auto* leader = dynamic_cast<abcast::PaxosAbcast*>(&net.protocol(0));
  ASSERT_NE(leader, nullptr);
  abcast::configure_batching(*leader,
                             abcast::BatchingOptions{.paxos_pipeline_window = 2});

  // The leader sequences its own submissions immediately, so the first two
  // fill the window; the remaining 18 pile up in pending_ until slots free.
  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    net.a_broadcast(0, "m" + std::to_string(i));
  }
  EXPECT_EQ(leader->proposed_slots(), 2u);  // window full, backlog waiting
  net.settle();

  // Everything delivered, in submission order, everywhere — and the backlog
  // went out as batches, not one slot per message.
  for (ProcessId p = 0; p < kGroup.n; ++p) {
    ASSERT_EQ(net.delivered(p).size(), static_cast<std::size_t>(kMessages));
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(net.delivered(p)[i].payload, "m" + std::to_string(i));
    }
  }
  EXPECT_TRUE(net.total_order_ok());
  EXPECT_LT(leader->proposed_slots(), static_cast<std::uint64_t>(kMessages));
}

TEST(HotpathBatching, WindowZeroKeepsLegacyOneSlotPerMessage) {
  constexpr GroupParams kGroup{3, 1};
  DirectAbcastNet net(kGroup, paxos_factory());
  auto* leader = dynamic_cast<abcast::PaxosAbcast*>(&net.protocol(0));
  ASSERT_NE(leader, nullptr);  // window defaults to 0 = unlimited

  constexpr int kMessages = 10;
  for (int i = 0; i < kMessages; ++i) {
    net.a_broadcast(0, "m" + std::to_string(i));
  }
  EXPECT_EQ(leader->proposed_slots(), static_cast<std::uint64_t>(kMessages));
  net.settle();
  for (ProcessId p = 0; p < kGroup.n; ++p) {
    EXPECT_EQ(net.delivered(p).size(), static_cast<std::size_t>(kMessages));
  }
}

// ---------------------------------------------------------------------------
// End-to-end sweeps: every batching configuration preserves the full abcast
// contract; the window also measurably reduces transport traffic under load.

sim::AbcastRunConfig loaded_config(std::uint64_t seed) {
  sim::AbcastRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.net = sim::calibrated_lan_2006();
  cfg.seed = seed;
  cfg.throughput_per_s = 4000.0;  // far above one-slot-per-decide capacity
  cfg.message_count = 120;
  for (ProcessId p = 1; p < cfg.group.n; ++p) {
    cfg.workload_senders.push_back(p);
  }
  return cfg;
}

TEST(HotpathBatching, PaxosWindowSafeAndCheaperUnderLoad) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    std::uint64_t legacy_sent = 0;
    for (std::uint32_t window : {0u, 1u, 4u}) {
      sim::AbcastRunConfig cfg = loaded_config(seed);
      cfg.batching.paxos_pipeline_window = window;
      auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name("paxos"));
      ASSERT_TRUE(r.safe()) << "window " << window << " seed " << seed;
      ASSERT_TRUE(r.agreement_ok) << "window " << window << " seed " << seed;
      ASSERT_EQ(r.undelivered, 0u) << "window " << window << " seed " << seed;
      // No per-sender FIFO assertion here: Paxos-Abcast never guaranteed it
      // (client messages reorder on the way to the leader and land in
      // different slots), batched or not. FIFO is a C-Abcast property.
      if (window == 0) {
        legacy_sent = r.totals.transport.messages_sent;
      } else {
        // Batching several client messages per slot must cut the per-slot
        // 2a/2b traffic relative to one-slot-per-message.
        EXPECT_LT(r.totals.transport.messages_sent, legacy_sent)
            << "window " << window << " seed " << seed;
      }
    }
  }
}

TEST(HotpathBatching, BatchedCAbcastSurvivesNemesisPlans) {
  // Identical plans and network to AbcastNemesis.CAbcastStaysSafeAndConverges
  // (known-survivable schedules); the only new variable is the batch cap, so
  // a failure here implicates batching, not the fault plan.
  for (const char* protocol : {"c-l", "c-p"}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      common::Rng rng(seed * 4111);
      fault::NemesisConfig ncfg;
      ncfg.n = 4;
      ncfg.f = 1;
      ncfg.horizon_ms = 40.0;
      ncfg.disturbances = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      // Crash-stop world: partitions, pauses and crashes, no restarts.
      ncfg.allow_crash = rng.chance(0.5);
      const fault::FaultPlan plan = fault::random_fault_plan(ncfg, seed * 53 + 11);

      for (std::size_t max_batch : {std::size_t{0}, std::size_t{3}}) {
        sim::AbcastRunConfig cfg;
        cfg.group = GroupParams{4, 1};
        cfg.seed = seed;
        // Crashes must be detectable or the group stalls on a dead peer.
        cfg.fd.mode = sim::FdMode::kCrashTracking;
        cfg.fd.detection_delay_ms = 2.0;
        cfg.throughput_per_s = 2000.0;
        cfg.message_count = 120;
        cfg.payload_bytes = 32;
        cfg.batching.c_abcast_max_batch = max_batch;
        cfg.fault_plan = plan;

        auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(protocol));
        const std::string tag = std::string(protocol) + " batch " +
                                std::to_string(max_batch) + " seed " +
                                std::to_string(seed);
        ASSERT_TRUE(r.safe()) << tag << "\n" << fault::to_string(plan);
        ASSERT_TRUE(r.agreement_ok) << tag << "\n" << fault::to_string(plan);
        ASSERT_EQ(r.undelivered, 0u) << tag << "\n" << fault::to_string(plan);
        for (const auto& history : r.histories) {
          EXPECT_TRUE(per_sender_fifo(history)) << tag;
        }
      }
    }
  }
}

}  // namespace
}  // namespace zdc::testing
