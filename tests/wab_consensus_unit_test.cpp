// Message-level unit tests for WabConsensus (the WABCast voting core),
// driven directly so the oracle's behaviour — cooperative or adversarial —
// is fully under test control.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "consensus/wab_consensus.h"
#include "direct_harness.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

DirectNet::Factory wab_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView&, const fd::SuspectView&) {
    return std::make_unique<consensus::WabConsensus>(self, group, host);
  };
}

void propose_all(DirectNet& net, const std::vector<Value>& proposals) {
  for (ProcessId p = 0; p < proposals.size(); ++p) {
    net.propose(p, proposals[p]);
  }
}

/// Drains regular traffic and oracle datagrams with spontaneous order intact
/// (every datagram reaches everyone, in sender order).
void settle(DirectNet& net) {
  for (int guard = 0; guard < 10'000; ++guard) {
    bool progressed = false;
    if (net.pending_total() > 0) {
      net.deliver_all();
      progressed = true;
    }
    for (ProcessId p = 0; p < kGroup.n; ++p) {
      while (net.deliver_wab_broadcast(p)) progressed = true;
    }
    if (!progressed) return;
  }
  FAIL() << "settle() did not quiesce";
}

TEST(WabConsensusUnit, UnanimousDecidesInOneStepWithoutOracle) {
  DirectNet net(kGroup, wab_factory());
  propose_all(net, {"v", "v", "v", "v"});
  net.deliver_all();  // votes only; no oracle traffic needed
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), "v");
    EXPECT_EQ(net.protocol(p).decision_steps(), 1u);
  }
  // The fast path consulted no oracle.
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(net.pending_wab(p), 0u);
}

TEST(WabConsensusUnit, DivergentProposalsRecoverViaOracle) {
  DirectNet net(kGroup, wab_factory());
  propose_all(net, {"a", "b", "a", "b"});
  net.deliver_all();  // stage 1 votes: 2-2 split, nobody decides
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_FALSE(net.decided(p));
    // Every process moved to stage 2 and asked the oracle.
    EXPECT_EQ(net.pending_wab(p), 1u);
  }
  settle(net);  // spontaneous order: everyone sees p0's estimate first
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), net.decision(0));
  }
}

TEST(WabConsensusUnit, AdversarialOracleSplitsButNeverViolatesAgreement) {
  // Engineer a genuine estimate split after stage 1: each process evaluates
  // at its first n−f = 3 votes, and we choose the quorums so that p0/p1
  // adopt "a" while p2/p3 adopt "b".
  DirectNet net(kGroup, wab_factory());
  propose_all(net, {"a", "a", "b", "b"});
  for (ProcessId from : {0u, 1u, 2u}) net.deliver_one(from, 0);  // a,a,b
  for (ProcessId from : {0u, 1u, 3u}) net.deliver_one(from, 1);  // a,a,b
  for (ProcessId from : {2u, 3u, 0u}) net.deliver_one(from, 2);  // b,b,a
  for (ProcessId from : {2u, 3u, 1u}) net.deliver_one(from, 3);  // b,b,a
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_FALSE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.pending_wab(p), 1u) << "stage 2 must consult the oracle";
  }

  // Collision: the oracle shows p0's "a" first to p0/p1 but p3's "b" first
  // to p2/p3 — the split persists through stage 2, yet whatever decisions
  // ever happen must agree.
  net.deliver_wab_to(0, {0, 1});
  net.deliver_wab_to(3, {2, 3});
  net.deliver_all();
  const Value* first_decision = nullptr;
  for (ProcessId p = 0; p < 4; ++p) {
    if (!net.decided(p)) continue;
    if (first_decision == nullptr) {
      first_decision = &net.decision(p);
    } else {
      EXPECT_EQ(net.decision(p), *first_decision) << "agreement violated";
    }
  }

  // Once the oracle behaves, everyone terminates on one value.
  settle(net);
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), net.decision(0));
  }
}

TEST(WabConsensusUnit, MajorityAdoptionForcesTheDominantValue) {
  // Three processes vote "a", one votes "b". A process observing all four
  // stage-1 votes decides "a" outright; one that advanced after seeing only
  // {a, a, b} has adopted "a" (strict majority) — so "a" is the only value
  // that can ever be decided.
  DirectNet net(kGroup, wab_factory());
  propose_all(net, {"a", "a", "a", "b"});
  // p3 advances on quorum {0, 1, 3}: a, a, b → adopts "a", stage 2.
  net.deliver_one(0, 3);
  net.deliver_one(1, 3);
  net.deliver_one(3, 3);
  EXPECT_FALSE(net.decided(3));
  // p0 sees all of {0, 1, 2}: a, a, a → one-step decision.
  net.deliver_one(0, 0);
  net.deliver_one(1, 0);
  net.deliver_one(2, 0);
  ASSERT_TRUE(net.decided(0));
  EXPECT_EQ(net.decision(0), "a");
  EXPECT_EQ(net.protocol(0).decision_steps(), 1u);

  settle(net);
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "a");
  }
}

TEST(WabConsensusUnit, ValidityHoldsAcrossStages) {
  DirectNet net(kGroup, wab_factory());
  propose_all(net, {"a", "b", "c", "d"});
  settle(net);
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    const Value& d = net.decision(p);
    EXPECT_TRUE(d == "a" || d == "b" || d == "c" || d == "d") << d;
  }
}

TEST(WabConsensusUnit, MalformedMessagesAreCountedAndIgnored) {
  DirectNet net(kGroup, wab_factory());
  propose_all(net, {"v", "v", "v", "v"});
  auto& proto = net.protocol(0);
  proto.on_message(1, common::seal_frame(""));                        // empty
  proto.on_message(1, common::seal_frame(std::string("\x07", 1)));    // unknown tag
  proto.on_message(2, common::seal_frame(std::string("\x01\x00", 2)));  // truncated vote
  EXPECT_EQ(proto.malformed_messages(), 3u);
  EXPECT_FALSE(proto.decided());
  net.deliver_all();
  EXPECT_TRUE(proto.decided());
}

}  // namespace
}  // namespace zdc::testing
