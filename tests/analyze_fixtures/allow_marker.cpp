// Suppression grammar. A justified allow on the line above suppresses the
// finding; a marker without a justification reports allow-needs-reason AND
// leaves the underlying finding live; an unknown rule name reports
// unknown-allow; a marker for a *different* rule suppresses nothing.
namespace zdc {

struct Status {
  static Status ok();
  bool is_ok() const;
};

Status make();

void suppressed() {
  // zdc-analyze: allow(discarded-status): fixture exercises the marker
  make();
}

void live() {
  make();
}

void reasonless() {
  // zdc-analyze: allow(discarded-status)
  make();
}

void unknown_rule() {
  // zdc-analyze: allow(no-such-rule): the rule name is checked
  make();
}

void wrong_rule() {
  // zdc-analyze: allow(recursive-lock): wrong family, suppresses nothing
  make();
}

}  // namespace zdc
