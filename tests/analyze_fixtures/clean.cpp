// True negatives across all three families: banned names confined to
// comments, strings and raw strings; a consistent single-mutex class; every
// Status consumed; ordered iteration feeding an Encoder.
namespace zdc {

struct Status {
  static Status ok();
  bool is_ok() const;
};

class Encoder {
 public:
  void put_u32(unsigned v);
};

class Store {
 public:
  // fsync( and std::mt19937 in a comment must not fire.
  Status put(int k, int v) {
    common::MutexLock lock(mu_);
    data_[k] = v;
    return Status::ok();
  }
  const char* banner() const {
    return R"(raw string: fsync( mt19937 system_clock)";
  }
  std::string describe() const { return "call fsync( later"; }
  void encode(Encoder& enc) const {
    common::MutexLock lock(mu_);
    for (const auto& kv : data_) {
      enc.put_u32(static_cast<unsigned>(kv.second));
    }
  }

 private:
  mutable common::Mutex mu_;
  std::map<int, int> data_;
};

void use(Store& store) {
  const Status s = store.put(1, 2);
  if (!s.is_ok()) return;
}

}  // namespace zdc
