// True positive: A::step acquires A::mu_ then B::mu_ (via poke); B::kick
// acquires B::mu_ then A::mu_ (via jab). The two edges close a cycle.
namespace zdc {

class B;

class A {
 public:
  explicit A(B& b) : b_(b) {}
  void step();
  void jab() {
    common::MutexLock lock(mu_);
    ++hits_;
  }

 private:
  common::Mutex mu_;
  int hits_ = 0;
  B& b_;
};

class B {
 public:
  explicit B(A& a) : a_(a) {}
  void poke() {
    common::MutexLock lock(mu_);
    ++hits_;
  }
  void kick() {
    common::MutexLock lock(mu_);
    a_.jab();
  }

 private:
  common::Mutex mu_;
  int hits_ = 0;
  A& a_;
};

void A::step() {
  common::MutexLock lock(mu_);
  b_.poke();
}

}  // namespace zdc
