// True positive: wait_two enters cv_.wait() with both a_ and b_ held — the
// wait releases only its own mutex, so the other stays locked while the
// thread sleeps. wait_one holds a single lock: the normal pattern, silent.
namespace zdc {

class Box {
 public:
  void wait_two() {
    common::MutexLock first(a_);
    common::MutexLock second(b_);
    cv_.wait(second.inner());
  }
  void wait_one() {
    common::MutexLock lock(a_);
    cv_.wait(lock.inner());
  }

 private:
  common::Mutex a_;
  common::Mutex b_;
  std::condition_variable cv_;
};

}  // namespace zdc
