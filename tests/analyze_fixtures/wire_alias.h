// Header half of the cross-file alias test: the banned ground types hide
// behind aliases declared here, in a *different* file from their uses.
namespace zdc {

using WireClock = std::chrono::system_clock;
using WireTable = std::unordered_map<int, int>;

}  // namespace zdc
