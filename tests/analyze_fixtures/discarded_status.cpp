// Discarded-error family. Fires: a bare Status-returning call in statement
// position (careless) and a wrapper whose own Status is dropped even though
// the inner call's is consumed (the second latch in wrap). Silent:
// assignment, (void) cast, use inside a condition, `return`, and a void
// method reached through a receiver whose static type resolves the call to
// the void variant (quiet).
namespace zdc {

struct Status {
  static Status ok();
  bool is_ok() const;
};

class Wal {
 public:
  Status sync();
  void careless() { sync(); }
  void careful() {
    const Status s = sync();
    if (!s.is_ok()) return;
    (void)sync();
    if (!sync().is_ok()) return;
  }
  Status forward() { return sync(); }
};

Status latch(Status s);

void wrap(Wal& wal) {
  const Status kept = latch(wal.sync());
  (void)kept;
  latch(wal.sync());
}

class QuietStore {
 public:
  void sync();
};

void quiet(QuietStore& store) {
  store.sync();
}

}  // namespace zdc
