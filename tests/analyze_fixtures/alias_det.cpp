// Determinism-flow family, alias resolution. In a deterministic file the
// alias *uses* fire; the alias declarations themselves are exempt (even the
// chained `using Ticker = Clock;`), as is the direct std::mt19937 spelling
// (that literal token is zdc_lint's job, not the alias resolver's).
namespace zdc {

using Clock = std::chrono::steady_clock;
using Ticker = Clock;
typedef std::mt19937 LegacyRng;

class Sampler {
 public:
  long stamp() { return Clock::now().time_since_epoch().count(); }
  long stamp_twice() {
    // Two banned uses on one line dedupe to a single finding.
    return Ticker::now().count() + Ticker::now().count();
  }
  unsigned draw() {
    LegacyRng rng(seed_);
    return static_cast<unsigned>(rng());
  }
  unsigned draw_direct() {
    std::mt19937 rng(seed_);
    return static_cast<unsigned>(rng());
  }

 private:
  unsigned seed_ = 42;
};

}  // namespace zdc
