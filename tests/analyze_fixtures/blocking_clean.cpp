// True negatives: the guard lives in an inner scope that closes before the
// fsync; a *comment* and a *string* mentioning fsync( under a lock; and a
// member function merely *named* fsync-ish called under the lock (blocking
// calls match exact names, and fsync_meta itself never blocks). None of
// these may fire.
namespace zdc {

class QuietLog {
 public:
  void write_then_sync() {
    {
      common::MutexLock lock(mu_);
      bytes_ += 1;
    }
    fsync(fd_);
  }
  void log_about_it() {
    common::MutexLock lock(mu_);
    // calling fsync( here would be a bug
    note_ = "would fsync(fd) next";
  }
  void fsync_meta() { bytes_ += 1; }
  void tidy() {
    common::MutexLock lock(mu_);
    fsync_meta();
  }

 private:
  common::Mutex mu_;
  int fd_ = -1;
  int bytes_ = 0;
  const char* note_ = "";
};

}  // namespace zdc
