// True positives: a direct re-acquisition in one scope (twice) and a
// re-acquisition through a call (outer holds mu_ when it calls helper, which
// acquires mu_ again). The sibling() call is fine: outer's guard lives in an
// inner scope that has closed by then.
namespace zdc {

class R {
 public:
  void twice() {
    common::MutexLock a(mu_);
    common::MutexLock b(mu_);
  }
  void helper() {
    common::MutexLock lock(mu_);
    ++count_;
  }
  void outer() {
    {
      common::MutexLock lock(mu_);
      helper();
    }
    sibling();
  }
  void sibling() {
    common::MutexLock lock(mu_);
    --count_;
  }

 private:
  common::Mutex mu_;
  int count_ = 0;
};

}  // namespace zdc
