// Unordered-container flow. In a deterministic file, a range-for over an
// *alias* of an unordered container fires unordered-alias-iter (walk_alias);
// the direct spelling is zdc_lint's unordered-iter domain and stays silent
// here (walk_direct). Feeding an Encoder or a fingerprint from inside the
// loop fires unordered-encode-flow in every file, deterministic or not
// (encode_unordered, fingerprint_unordered); an ordered map feeding the same
// Encoder, or an unordered walk feeding a plain counter, stays silent
// (encode_ordered, count_unordered).
namespace zdc {

using Table = std::unordered_map<int, int>;

class Encoder {
 public:
  void put_u32(unsigned v);
};

void walk_alias(Table& t) {
  long n = 0;
  for (auto& kv : t) n += kv.second;
}

void walk_direct(std::unordered_map<int, int>& m) {
  long n = 0;
  for (auto& kv : m) n += kv.second;
}

void encode_unordered(std::unordered_map<int, int>& m, Encoder& enc) {
  for (auto& kv : m) {
    enc.put_u32(static_cast<unsigned>(kv.second));
  }
}

void encode_ordered(std::map<int, int>& m, Encoder& enc) {
  for (auto& kv : m) {
    enc.put_u32(static_cast<unsigned>(kv.second));
  }
}

void update_fingerprint(int v);

void fingerprint_unordered(std::unordered_set<int>& s) {
  for (int v : s) update_fingerprint(v);
}

void count_unordered(std::unordered_set<int>& s) {
  long n = 0;
  for (int v : s) n += v;
}

}  // namespace zdc
