// True negative: same two-class shape as lock_cycle.cpp but every path
// acquires Lo::mu_ strictly before Hi::mu_ — a consistent order, no cycle.
// (Distinct class names from lock_cycle.cpp: the analyzer merges same-named
// classes across files, and these fixtures are analyzed together by the
// directory-walk test.)
namespace zdc {

class Hi {
 public:
  void poke() {
    common::MutexLock lock(mu_);
    ++hits_;
  }

 private:
  common::Mutex mu_;
  int hits_ = 0;
};

class Lo {
 public:
  explicit Lo(Hi& hi) : hi_(hi) {}
  void step() {
    common::MutexLock lock(mu_);
    hi_.poke();
  }
  void stride() {
    common::MutexLock lock(mu_);
    hi_.poke();
  }

 private:
  common::Mutex mu_;
  Hi& hi_;
};

}  // namespace zdc
