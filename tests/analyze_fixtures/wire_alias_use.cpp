// Source half of the cross-file alias test: both uses resolve through the
// aliases declared in wire_alias.h, so neither banned type appears literally
// in this (deterministic) file.
namespace zdc {

long stamp() {
  return WireClock::now().time_since_epoch().count();
}

long walk(WireTable& t) {
  long n = 0;
  for (auto& kv : t) n += kv.second;
  return n;
}

}  // namespace zdc
