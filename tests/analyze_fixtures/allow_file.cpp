// zdc-analyze: allow-file(discarded-status): whole-file marker — every drop in this fixture is deliberate
namespace zdc {

struct Status {
  static Status ok();
  bool is_ok() const;
};

Status make();

void first() {
  make();
}

void second() {
  make();
}

}  // namespace zdc
