// True positives: fsync directly under a guard (write_direct) and through a
// callee (write_both holds mu_ when it calls flush, which reaches fsync).
namespace zdc {

class Log {
 public:
  void flush() { fsync(fd_); }
  void write_direct() {
    common::MutexLock lock(mu_);
    fsync(fd_);
  }
  void write_both() {
    common::MutexLock lock(mu_);
    flush();
  }

 private:
  common::Mutex mu_;
  int fd_ = -1;
};

}  // namespace zdc
