// Crash-recovery tests: the write-ahead acceptor (RecoveringPaxosConsensus)
// makes restarts safe, and — the converse demonstration — an amnesiac
// restart (plain volatile Paxos brought back with fresh state) reneges on
// its promise and is driven, deterministically, into an agreement violation
// across incarnations. The last section replays the same story on the
// threaded runtime: real worker threads, heartbeat ◇P, and a transport-level
// crash/restart through ConsensusRunner.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stable_storage.h"
#include "consensus/paxos.h"
#include "consensus/recovering_paxos.h"
#include "direct_harness.h"
#include "runtime/consensus_runner.h"
#include "runtime/inproc_net.h"
#include "sim/consensus_world.h"
#include "test_sync.h"

namespace zdc::sim {
namespace {

/// One stable-storage object per process, owned outside the harness so it
/// survives simulated restarts.
struct RecoveringFleet {
  explicit RecoveringFleet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      storages.push_back(std::make_unique<common::InMemoryStableStorage>());
    }
  }

  SimConsensusFactory sim_factory() {
    return [this](ProcessId self, GroupParams group,
                  consensus::ConsensusHost& host, const fd::OmegaView& omega,
                  const fd::SuspectView&) {
      return std::make_unique<consensus::RecoveringPaxosConsensus>(
          self, group, host, omega, *storages[self]);
    };
  }

  testing::DirectNet::Factory direct_factory() {
    return [this](ProcessId self, GroupParams group,
                  consensus::ConsensusHost& host, const fd::OmegaView& omega,
                  const fd::SuspectView&) {
      return std::unique_ptr<consensus::Consensus>(
          std::make_unique<consensus::RecoveringPaxosConsensus>(
              self, group, host, omega, *storages[self]));
    };
  }

  std::vector<std::unique_ptr<common::InMemoryStableStorage>> storages;
};

testing::DirectNet::Factory amnesiac_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::PaxosConsensus>(self, group, host, omega));
  };
}

TEST(RecoveringPaxos, WorksAsPlainPaxosWithoutCrashes) {
  RecoveringFleet fleet(3);
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{3, 1};
  cfg.seed = 1;
  cfg.proposals = {"a", "b", "c"};
  auto r = run_consensus(cfg, fleet.sim_factory());
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
  // Write-ahead pricing: every acceptor synced at least its acceptance.
  for (const auto& storage : fleet.storages) {
    EXPECT_GE(storage->sync_count(), 1u);
  }
}

TEST(RecoveringPaxos, AcceptorBounceStaysSafeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RecoveringFleet fleet(3);
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{3, 1};
    cfg.seed = seed;
    cfg.fd.mode = FdMode::kStable;  // leader p0 never crashes here
    cfg.proposals = {"a", "b", "c"};
    common::Rng rng(seed);
    CrashSpec c;
    c.p = 1;  // an acceptor bounces mid-run
    c.time = rng.uniform(0.0, 1.0);
    c.restart_time = c.time + rng.uniform(0.5, 2.0);
    cfg.crashes.push_back(c);

    auto r = run_consensus(cfg, fleet.sim_factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed;
    EXPECT_TRUE(r.outcomes[0].decided) << "seed " << seed;
    EXPECT_TRUE(r.outcomes[2].decided) << "seed " << seed;
  }
}

// The deterministic two-incarnation schedule both variants run:
//   1. p0 (leader to p0/p1) drives ballot 0: p0 and p1 accept "zero"; their
//      2bs reach p0, which DECIDES "zero". p2 sees none of it (its inbound
//      edges stay undelivered), then p0 goes silent and p1 crashes.
//   2. p1 restarts (same storage object for the recovering variant, fresh
//      state for the amnesiac one).
//   3. p2 — whose Ω says p2 — drives ballot 2: phase 1 reads {p1, p2}.
// With write-ahead state, p1's 1b carries ("zero", ballot 0) and p2 is
// forced to re-propose "zero". With amnesia, p1 denies everything and p2
// freely decides "two" — contradicting p0's decision.
template <typename MakeRestartFactory>
void run_incarnation_schedule(testing::DirectNet& net,
                              MakeRestartFactory restart_factory,
                              bool& zero_decided_at_p0) {
  net.fd(0).omega.value = 0;
  net.fd(1).omega.value = 0;
  net.fd(2).omega.value = 2;

  net.propose(0, "zero");
  net.propose(1, "one");
  // p2 does not propose yet: its ballot-2 phase 1 must start only after the
  // restart, as in a real recovery timeline.

  // Ballot 0: 2a to p0 and p1 only (p2's inbound edges stay parked).
  ASSERT_TRUE(net.deliver_one(0, 0));  // 2a -> p0 (self): accepts, 2b out
  ASSERT_TRUE(net.deliver_one(0, 1));  // 2a -> p1: accepts, 2b out
  ASSERT_TRUE(net.deliver_one(0, 0));  // own 2b -> p0
  ASSERT_TRUE(net.deliver_one(1, 0));  // p1's 2b -> p0: majority, decide
  ASSERT_TRUE(net.decided(0));
  ASSERT_EQ(net.decision(0), "zero");
  zero_decided_at_p0 = true;

  // p0 goes silent with its remaining traffic unsent; p1 bounces. Traffic
  // addressed to the down processes is lost with them (empty socket buffers
  // on restart), and p1's first-incarnation 2b never escapes to p2.
  net.crash(0);
  net.crash(1);
  net.drop_edge(0, 1);
  net.drop_edge(0, 2);
  net.drop_edge(1, 1);
  net.drop_edge(1, 2);
  net.replace_protocol(1, restart_factory());
  net.propose(1, "one");

  // Incarnation 2: p2 drives ballot 2 against {p1, p2}.
  net.propose(2, "two");
  net.deliver_all();
}

TEST(RecoveringPaxos, RecoveredPromiseForcesTheDecidedValue) {
  RecoveringFleet fleet(3);
  testing::DirectNet net(GroupParams{3, 1}, fleet.direct_factory());
  bool zero_decided = false;
  run_incarnation_schedule(
      net, [&fleet] { return fleet.direct_factory(); }, zero_decided);
  ASSERT_TRUE(zero_decided);
  ASSERT_TRUE(net.decided(2));
  EXPECT_EQ(net.decision(2), "zero")
      << "phase 1 must surface the recovered acceptance";
  EXPECT_EQ(net.decision(2), net.decision(0)) << "agreement across incarnations";
}

TEST(AmnesiacRestart, ViolatesAgreementWithoutStableStorage) {
  testing::DirectNet net(GroupParams{3, 1}, amnesiac_factory());
  bool zero_decided = false;
  run_incarnation_schedule(net, [] { return amnesiac_factory(); },
                           zero_decided);
  ASSERT_TRUE(zero_decided);
  ASSERT_TRUE(net.decided(2));
  // The hazard this test pins down: volatile restart => p1 denies its vote
  // => p2 decides its own value, disagreeing with p0's earlier decision.
  EXPECT_EQ(net.decision(2), "two");
  EXPECT_NE(net.decision(2), net.decision(0))
      << "if this starts agreeing, the schedule no longer witnesses the "
         "amnesia hazard and needs re-tuning";
}

// ---------------------------------------------------------------------------
// Threaded runtime: the same write-ahead story on real threads.

runtime::HeartbeatFd::Config runtime_fd() {
  runtime::HeartbeatFd::Config fd;
  fd.interval_ms = 5.0;
  fd.initial_timeout_ms = 40.0;
  return fd;
}

TEST(RecoveringPaxosRuntime, AcceptorBounceOnRealThreadsStaysSafe) {
  runtime::InprocNetwork::Config ncfg;
  ncfg.n = 3;
  ncfg.seed = 99;
  runtime::InprocNetwork net(ncfg);
  runtime::ConsensusRunner runner(GroupParams{3, 1}, net, runtime_fd());
  runner.start();
  for (ProcessId p = 0; p < 3; ++p) {
    runner.propose(p, "r" + std::to_string(p));
  }
  // The bounce must land mid-run: wait for evidence the ballot is moving (a
  // write-ahead sync at the target acceptor) instead of sleeping a fixed
  // pre-crash interval and hoping the schedule cooperates.
  testing::poll_until(
      [&] { return runner.storage(1).sync_count() > 0 || runner.decided(0); });
  runner.crash(1);  // an acceptor bounces mid-run
  ASSERT_TRUE(runner.wait_decided({0, 2}, 15000.0));
  runner.restart(1);
  // The restarted acceptor may or may not learn the decision (the stable
  // leader never needs it again): a bounded catch-up window, ending early
  // the moment it does decide.
  testing::poll_until([&] { return runner.decided(1); },
                      std::chrono::milliseconds(100));

  // The restarted acceptor may stay undecided (the stable leader never needs
  // it again) but safety must hold across its incarnations.
  EXPECT_FALSE(runner.agreement_violated());
  EXPECT_EQ(runner.decision(0), runner.decision(2));
}

TEST(RecoveringPaxosRuntime, LeaderBounceOnRealThreadsRejoinsAndDecides) {
  runtime::InprocNetwork::Config ncfg;
  ncfg.n = 3;
  ncfg.seed = 101;
  runtime::InprocNetwork net(ncfg);
  runtime::ConsensusRunner runner(GroupParams{3, 1}, net, runtime_fd());
  runner.start();
  for (ProcessId p = 0; p < 3; ++p) {
    runner.propose(p, "s" + std::to_string(p));
  }
  // Let the leader drive ballot 0 into the write-ahead log before killing
  // it, so the restart really has promises to reload.
  testing::poll_until(
      [&] { return runner.storage(0).sync_count() > 0 || runner.decided(1); });
  runner.crash(0);
  // The survivors suspect the dead leader and decide without it.
  ASSERT_TRUE(runner.wait_decided({1, 2}, 15000.0));
  runner.restart(0);
  // The recovered leader reloads its promises, drives a fresh ballot and
  // must converge on the already-decided value.
  ASSERT_TRUE(runner.wait_decided({0, 1, 2}, 15000.0));
  EXPECT_FALSE(runner.agreement_violated());
  EXPECT_EQ(runner.decision(0), runner.decision(1));
  EXPECT_EQ(runner.decision(1), runner.decision(2));
}

}  // namespace
}  // namespace zdc::sim
