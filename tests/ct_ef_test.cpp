// Tests for the two extension protocols: Chandra-Toueg ◇S consensus (the
// classic baseline) and Lamport's (e, f) generalized fast consensus.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/consensus_world.h"

namespace zdc::sim {
namespace {

// --- Chandra-Toueg ---

TEST(CtConsensus, DecidesInStableRun) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 1;
  cfg.proposals = {"a", "b", "c", "d"};
  auto r = run_consensus(cfg, ct_consensus_factory());
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
}

TEST(CtConsensus, CoordinatorDecidesInThreeSteps) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 2;
  cfg.proposals = {"a", "b", "c", "d"};
  auto r = run_consensus(cfg, ct_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);
  // The round-1 coordinator (p0) decides via its own round logic in exactly
  // three steps; everyone else learns through the DECIDE flood — CT is never
  // one-step and never two-step, which is why the paper's protocols beat it.
  EXPECT_EQ(r.outcomes[0].path, consensus::DecisionPath::kRound);
  EXPECT_EQ(r.outcomes[0].steps, 3u);
}

TEST(CtConsensus, NeverOneStepEvenOnUnanimity) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 3;
  cfg.proposals.assign(4, "same");
  auto r = run_consensus(cfg, ct_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_GE(o.steps, 3u);
    }
  }
}

TEST(CtConsensus, SurvivesCoordinatorCrash) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 4;
  cfg.fd.mode = FdMode::kCrashTracking;
  cfg.fd.detection_delay_ms = 2.0;
  cfg.proposals = {"a", "b", "c", "d"};
  CrashSpec c;
  c.p = 0;  // the round-1 coordinator
  c.initial = true;
  cfg.crashes.push_back(c);
  auto r = run_consensus(cfg, ct_consensus_factory());
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
}

TEST(CtConsensus, WorksWithMinorityResilience) {
  // n=5, f=2: beyond the one-step protocols' f < n/3 bound.
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{5, 2};
  cfg.seed = 5;
  cfg.fd.mode = FdMode::kCrashTracking;
  cfg.fd.detection_delay_ms = 2.0;
  cfg.proposals = {"a", "b", "c", "d", "e"};
  for (ProcessId p : {0u, 1u}) {
    CrashSpec c;
    c.p = p;
    c.initial = true;
    cfg.crashes.push_back(c);
  }
  auto r = run_consensus(cfg, ct_consensus_factory());
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
}

TEST(CtConsensus, SafeUnderRandomizedCrashes) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    common::Rng rng(seed * 2411);
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{5, 2};
    cfg.seed = seed;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = rng.uniform(0.5, 6.0);
    for (ProcessId p = 0; p < 5; ++p) {
      cfg.proposals.push_back("v" + std::to_string(rng.next_below(3)));
      cfg.propose_times.push_back(rng.uniform(0.0, 2.0));
    }
    const std::uint64_t crash_count = rng.next_below(3);
    for (std::uint64_t i = 0; i < crash_count; ++i) {
      CrashSpec c;
      c.p = static_cast<ProcessId>((i * 2 + 1) % 5);
      c.time = rng.uniform(0.0, 4.0);
      cfg.crashes.push_back(c);
    }
    auto r = run_consensus(cfg, ct_consensus_factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed;
    ASSERT_TRUE(r.all_correct_decided) << "seed " << seed;
  }
}

TEST(CtConsensus, SafetyUnderHostileFd) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    common::Rng rng(seed * 7907);
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.proposals = {"a", "b", "a", "b"};
    cfg.fd.mode = FdMode::kScripted;
    for (int i = 0; i < 30; ++i) {
      FdScriptEvent ev;
      ev.time = rng.uniform(0.0, 15.0);
      ev.observer = static_cast<ProcessId>(rng.next_below(4));
      ev.leader = static_cast<ProcessId>(rng.next_below(4));
      for (ProcessId p = 0; p < 4; ++p) {
        if (rng.chance(0.3)) ev.suspected.push_back(p);
      }
      cfg.fd.script.push_back(std::move(ev));
    }
    cfg.time_limit_ms = 300.0;
    cfg.event_limit = 200'000;
    auto r = run_consensus(cfg, ct_consensus_factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed;
  }
}

// --- (e, f) generalized fast consensus ---

struct EfCase {
  std::uint32_t n, e, f;
};

class EfSweep : public ::testing::TestWithParam<EfCase> {};

TEST_P(EfSweep, FastPathFiresExactlyUpToECrashes) {
  const EfCase c = GetParam();
  for (std::uint32_t crashes = 0; crashes <= c.f; ++crashes) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{c.n, c.f};
    cfg.seed = 100 + crashes;
    cfg.fd.mode = FdMode::kStable;
    cfg.proposals.assign(c.n, "same");
    for (std::uint32_t i = 0; i < crashes; ++i) {
      CrashSpec spec;
      spec.p = i;
      spec.initial = true;
      cfg.crashes.push_back(spec);
    }
    auto r = run_consensus(cfg, ef_consensus_factory(c.e, "paxos"));
    ASSERT_TRUE(r.all_correct_decided)
        << "n=" << c.n << " e=" << c.e << " f=" << c.f << " c=" << crashes;
    ASSERT_TRUE(r.safe());
    for (const auto& o : r.outcomes) {
      if (!o.decided || o.path != consensus::DecisionPath::kRound) continue;
      if (crashes <= c.e) {
        EXPECT_EQ(o.steps, 1u) << "fast path must fire for c <= e";
      } else {
        EXPECT_GT(o.steps, 1u) << "fast path must not fire for c > e";
      }
    }
  }
}

TEST_P(EfSweep, SafeOnDivergentProposals) {
  const EfCase c = GetParam();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    common::Rng rng(seed * 13007);
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{c.n, c.f};
    cfg.seed = seed;
    cfg.fd.mode = FdMode::kCrashTracking;
    for (ProcessId p = 0; p < c.n; ++p) {
      cfg.proposals.push_back("v" + std::to_string(rng.next_below(2)));
    }
    if (rng.chance(0.5) && c.f > 0) {
      CrashSpec spec;
      spec.p = static_cast<ProcessId>(rng.next_below(c.n));
      spec.time = rng.uniform(0.0, 3.0);
      cfg.crashes.push_back(spec);
    }
    auto r = run_consensus(cfg, ef_consensus_factory(c.e, "paxos"));
    ASSERT_TRUE(r.safe()) << "seed " << seed;
    ASSERT_TRUE(r.all_correct_decided) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EfSweep,
                         ::testing::Values(EfCase{4, 1, 1}, EfCase{5, 1, 2},
                                           EfCase{6, 2, 1}, EfCase{7, 2, 2}),
                         [](const auto& param_info) {
                           const EfCase& c = param_info.param;
                           return "n" + std::to_string(c.n) + "e" +
                                  std::to_string(c.e) + "f" +
                                  std::to_string(c.f);
                         });

// Partial-broadcast crash of the odd proposer: the quorum-intersection
// argument for the generalized thresholds.
TEST(EfConsensus, PartialBroadcastCrashStaysSafe) {
  for (std::uint32_t mask = 0; mask < 32; ++mask) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{5, 2};
    cfg.seed = 500 + mask;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 2.0;
    cfg.proposals = {"x", "y", "y", "y", "y"};
    CrashSpec c;
    c.p = 0;
    c.truncate_broadcast_index = 1;
    for (ProcessId t = 0; t < 5; ++t) {
      if ((mask & (1u << t)) != 0) c.partial_targets.push_back(t);
    }
    cfg.crashes.push_back(std::move(c));
    auto r = run_consensus(cfg, ef_consensus_factory(1, "paxos"));
    ASSERT_TRUE(r.safe()) << "mask " << mask;
    ASSERT_TRUE(r.all_correct_decided) << "mask " << mask;
  }
}

TEST(EfConsensusDeath, RejectsInvalidParameters) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{5, 1};
  cfg.seed = 1;
  cfg.proposals.assign(5, "v");
  // e=2, f=1 needs n > 2*2+1 = 5: rejected at n=5.
  EXPECT_DEATH(run_consensus(cfg, ef_consensus_factory(2, "l")),
               "n > max");
}

}  // namespace
}  // namespace zdc::sim
