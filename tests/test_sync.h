// Shared polling helpers for the threaded suites: wait on a *predicate* with
// a deadline instead of sleeping a fixed interval. A bare sleep_for is a bet
// against the scheduler — too short flakes under sanitizers and on loaded
// CI, too long pads every run. These helpers poll, so a healthy run moves on
// at the first true poll and the (generous) deadline only bounds failure.
#pragma once

#include <chrono>
#include <thread>

namespace zdc::testing {

/// Polls `done` (~1ms apart) until it returns true or `timeout` expires;
/// returns the predicate's final value. Pick a timeout far above the
/// expected wait — it is a failure bound, not a pace.
template <typename Predicate>
bool poll_until(Predicate&& done, std::chrono::milliseconds timeout =
                                      std::chrono::milliseconds(15000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (done()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return done();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Negative-condition window: polls for the whole `window` and reports
/// whether `event` ever held. Equivalent to sleeping the window and checking
/// once at the end — except the violation is caught at the poll where it
/// happens, not masked by later state changes.
template <typename Predicate>
bool ever_within(Predicate&& event, std::chrono::milliseconds window) {
  const auto deadline = std::chrono::steady_clock::now() + window;
  while (std::chrono::steady_clock::now() < deadline) {
    if (event()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return event();
}

}  // namespace zdc::testing
