// Robustness fuzzing: every protocol must survive arbitrary byte garbage on
// its message and oracle inputs — drop (and count) malformed traffic, never
// crash, never read out of bounds, and still work afterwards.
//
// Also: harness self-tests — the atomic-broadcast property checkers must
// actually *catch* a protocol that mis-orders or duplicates deliveries
// (a checker that can't fail is not a checker).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "common/rng.h"
#include "direct_abcast_harness.h"
#include "direct_harness.h"

#include "abcast/c_abcast.h"
#include "abcast/paxos_abcast.h"
#include "consensus/brasileiro.h"
#include "consensus/chandra_toueg.h"
#include "consensus/fast_paxos.h"
#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "consensus/paxos.h"
#include "consensus/wab_consensus.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

std::string random_bytes(common::Rng& rng, std::size_t max_len) {
  std::string out;
  const std::size_t len = rng.next_below(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.next_below(256)));
  }
  return out;
}

std::vector<DirectNet::Factory> consensus_factories() {
  return {
      [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
         const fd::OmegaView& o, const fd::SuspectView&) {
        return std::unique_ptr<consensus::Consensus>(
            std::make_unique<consensus::LConsensus>(s, g, h, o));
      },
      [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
         const fd::OmegaView&, const fd::SuspectView& sv) {
        return std::unique_ptr<consensus::Consensus>(
            std::make_unique<consensus::PConsensus>(s, g, h, sv));
      },
      [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
         const fd::OmegaView& o, const fd::SuspectView&) {
        return std::unique_ptr<consensus::Consensus>(
            std::make_unique<consensus::PaxosConsensus>(s, g, h, o));
      },
      [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
         const fd::OmegaView&, const fd::SuspectView& sv) {
        return std::unique_ptr<consensus::Consensus>(
            std::make_unique<consensus::CtConsensus>(s, g, h, sv));
      },
      [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
         const fd::OmegaView& o, const fd::SuspectView&) {
        return std::unique_ptr<consensus::Consensus>(
            std::make_unique<consensus::FastPaxosConsensus>(s, g, h, o));
      },
      [](ProcessId s, GroupParams g, consensus::ConsensusHost& h,
         const fd::OmegaView&, const fd::SuspectView&) {
        return std::unique_ptr<consensus::Consensus>(
            std::make_unique<consensus::WabConsensus>(s, g, h));
      },
  };
}

TEST(Fuzz, ConsensusProtocolsSurviveGarbageAndStillDecide) {
  common::Rng rng(0xf22);
  for (const auto& factory : consensus_factories()) {
    DirectNet net(kGroup, factory);
    net.propose(0, "v");
    // 500 random messages from random (valid) senders before real traffic.
    for (int i = 0; i < 500; ++i) {
      net.protocol(0).on_message(
          static_cast<ProcessId>(rng.next_below(kGroup.n)),
          random_bytes(rng, 64));
    }
    // The protocol still works: drive a unanimous run to completion.
    for (ProcessId p = 1; p < 4; ++p) net.propose(p, "v");
    net.deliver_all();
    for (ProcessId p = 0; p < 4; ++p) {
      while (net.deliver_wab_broadcast(p)) {
      }
    }
    net.deliver_all();
    EXPECT_TRUE(net.decided(1)) << net.protocol(1).name();
    EXPECT_EQ(net.decision(1), "v") << net.protocol(1).name();
  }
}

TEST(Fuzz, AbcastProtocolsSurviveGarbage) {
  common::Rng rng(0xabcd);
  const std::vector<DirectAbcastNet::Factory> factories = {
      [](ProcessId s, GroupParams g, abcast::AbcastHost& h,
         const fd::OmegaView& o, const fd::SuspectView&) {
        return std::unique_ptr<abcast::AtomicBroadcast>(
            abcast::make_c_abcast_l(s, g, h, o));
      },
      [](ProcessId s, GroupParams g, abcast::AbcastHost& h,
         const fd::OmegaView& o, const fd::SuspectView&) {
        return std::unique_ptr<abcast::AtomicBroadcast>(
            std::make_unique<abcast::PaxosAbcast>(s, g, h, o));
      },
  };
  for (const auto& factory : factories) {
    DirectAbcastNet net(kGroup, factory);
    for (int i = 0; i < 500; ++i) {
      net.protocol(0).on_message(
          static_cast<ProcessId>(rng.next_below(kGroup.n)),
          random_bytes(rng, 80));
      net.protocol(0).on_w_deliver(rng.next_u64(), 1, random_bytes(rng, 80));
    }
    net.a_broadcast(1, "after-the-storm");
    net.settle();
    EXPECT_EQ(net.delivered(1).size(), 1u) << net.protocol(1).name();
    EXPECT_TRUE(net.total_order_ok());
  }
}

TEST(Fuzz, BrasileiroInnerWrappingSurvivesGarbage) {
  DirectNet net(kGroup, [](ProcessId s, GroupParams g,
                           consensus::ConsensusHost& h, const fd::OmegaView& o,
                           const fd::SuspectView&) {
    const fd::OmegaView* op = &o;
    consensus::ConsensusFactory inner =
        [op](ProcessId si, GroupParams gi, consensus::ConsensusHost& hi) {
          return std::make_unique<consensus::LConsensus>(si, gi, hi, *op);
        };
    return std::unique_ptr<consensus::Consensus>(
        std::make_unique<consensus::BrasileiroConsensus>(s, g, h,
                                                         std::move(inner)));
  });
  common::Rng rng(31u);
  net.propose(0, "v");
  for (int i = 0; i < 300; ++i) {
    // Garbage wrapped as inner-module traffic (tag 2) exercises the nested
    // decoder path.
    std::string bytes = std::string("\x02", 1) + random_bytes(rng, 48);
    net.protocol(0).on_message(1, bytes);
  }
  for (ProcessId p = 1; p < 4; ++p) net.propose(p, "v");
  net.deliver_all();
  EXPECT_TRUE(net.decided(0));
  EXPECT_EQ(net.decision(0), "v");
}

// --- Harness self-tests: the checkers must catch broken protocols ---

/// Deliberately broken abcast: delivers immediately on submit (no ordering)
/// and re-delivers everything it hears twice.
class BrokenAbcast final : public abcast::AtomicBroadcast {
 public:
  using AtomicBroadcast::AtomicBroadcast;
  void on_message(ProcessId from, std::string_view bytes) override {
    abcast::AppMessage m;
    m.id.sender = from;
    m.id.seq = ++seq_;
    m.payload = std::string(bytes);
    deliver(m);
    deliver(m);  // Integrity violation: duplicate
  }
  [[nodiscard]] std::string name() const override { return "Broken"; }

 protected:
  void submit(abcast::AppMessage m) override {
    deliver(m);                       // local-first: breaks total order
    host_.broadcast(m.payload);
  }

 private:
  std::uint64_t seq_ = 1000;
};

TEST(HarnessSelfTest, TotalOrderCheckerCatchesBrokenProtocol) {
  DirectAbcastNet net(kGroup, [](ProcessId s, GroupParams g,
                                 abcast::AbcastHost& h, const fd::OmegaView&,
                                 const fd::SuspectView&) {
    return std::unique_ptr<abcast::AtomicBroadcast>(
        std::make_unique<BrokenAbcast>(s, g, h));
  });
  net.a_broadcast(0, "m0");
  net.a_broadcast(1, "m1");
  net.settle();
  EXPECT_FALSE(net.total_order_ok())
      << "a broken protocol must be caught by the checker";
  // The shared invariant library (check/invariants.h) must agree with the
  // harness's built-in probe on the same histories.
  EXPECT_TRUE(check::check_abcast(net.histories(), net.submitted()).has_value())
      << "check_abcast missed a violation total_order_ok() caught";
}

TEST(HarnessSelfTest, StepBoundCheckersRejectFabricatedThreeStepRun) {
  // Fabricated observation of a "stable" unanimous run in which p0 took 3
  // communication steps to a round-path decision. No real protocol produced
  // it — the point is that the one-step checker (Definition 1: exactly 1
  // step on equal proposals) and the zero-degradation checker (Definition 2:
  // at most 2 steps in a stable run) must both flag it, for every protocol
  // that makes the corresponding claim.
  check::ConsensusObs obs;
  obs.group = kGroup;
  obs.proposals = {"v", "v", "v", "v"};
  obs.procs.resize(4);
  for (auto& p : obs.procs) p.proposed = true;
  obs.procs[0].decided = true;
  obs.procs[0].decision = "v";
  obs.procs[0].steps = 3;
  obs.procs[0].path = consensus::DecisionPath::kRound;
  obs.procs[0].decision_deliveries = 1;
  obs.stable = true;

  for (const char* protocol : {"l", "p"}) {
    const check::StepBounds bounds = check::step_bounds_for(protocol);
    const auto one_step = check::check_one_step(obs, bounds);
    ASSERT_TRUE(one_step.has_value())
        << protocol << ": a checker that can't fail is not a checker";
    EXPECT_EQ(one_step->invariant, "one-step") << protocol;
    const auto zero_degradation = check::check_zero_degradation(obs, bounds);
    ASSERT_TRUE(zero_degradation.has_value()) << protocol;
    EXPECT_EQ(zero_degradation->invariant, "zero-degradation") << protocol;
  }
  // Paxos claims zero-degradation but not one-step: 3 steps still violates
  // the former, and a legitimate 2-step decision violates nothing.
  const check::StepBounds paxos = check::step_bounds_for("paxos");
  EXPECT_FALSE(check::check_one_step(obs, paxos).has_value());
  EXPECT_TRUE(check::check_zero_degradation(obs, paxos).has_value());
  obs.procs[0].steps = 2;
  EXPECT_FALSE(check::check_zero_degradation(obs, paxos).has_value());
}

}  // namespace
}  // namespace zdc::testing
