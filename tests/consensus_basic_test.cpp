// Basic end-to-end checks for every consensus protocol on the simulator:
// stable failure-free runs with unanimous and divergent proposals must decide,
// agree and satisfy validity; the paper's headline step counts must hold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/consensus_world.h"

namespace zdc::sim {
namespace {

ConsensusRunConfig base_config(std::uint32_t n, std::uint32_t f) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{n, f};
  cfg.seed = 99;
  cfg.proposals.assign(n, "v");
  return cfg;
}

void expect_all_decide_same(const ConsensusRunResult& r) {
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.agreement_ok);
  EXPECT_TRUE(r.validity_ok);
}

class AllProtocols : public ::testing::TestWithParam<std::string> {};

TEST_P(AllProtocols, UnanimousStableRunDecides) {
  ConsensusRunConfig cfg = base_config(4, 1);
  auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
  expect_all_decide_same(r);
  for (const auto& o : r.outcomes) {
    EXPECT_TRUE(o.decided);
    EXPECT_EQ(o.decision, "v");
  }
}

TEST_P(AllProtocols, DivergentProposalsStableRunDecides) {
  ConsensusRunConfig cfg = base_config(4, 1);
  cfg.proposals = {"a", "b", "c", "d"};
  auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
  expect_all_decide_same(r);
}

TEST_P(AllProtocols, StaggeredProposalTimesDecide) {
  ConsensusRunConfig cfg = base_config(4, 1);
  cfg.proposals = {"a", "a", "b", "b"};
  cfg.propose_times = {0.0, 5.0, 1.0, 10.0};
  auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
  expect_all_decide_same(r);
}

TEST_P(AllProtocols, LargerGroupDecides) {
  ConsensusRunConfig cfg = base_config(7, 2);
  cfg.proposals = {"a", "b", "a", "c", "b", "a", "c"};
  auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
  expect_all_decide_same(r);
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols,
                         ::testing::Values("l", "p", "paxos", "brasileiro-l",
                                           "brasileiro-paxos", "wab", "ct",
                                           "rec-paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Paper claims: step counts ---

// L-Consensus: one step when all proposals are equal and the run is stable.
TEST(LConsensusSteps, OneStepOnUnanimityInStableRun) {
  ConsensusRunConfig cfg = base_config(4, 1);
  auto r = run_consensus(cfg, l_consensus_factory());
  expect_all_decide_same(r);
  int one_step = 0;
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 1u);
      ++one_step;
    }
  }
  EXPECT_GE(one_step, 1);
}

// L-Consensus: two steps in stable runs with divergent proposals
// (zero-degradation, Def. 3).
TEST(LConsensusSteps, TwoStepsOnDivergenceInStableRun) {
  ConsensusRunConfig cfg = base_config(4, 1);
  cfg.proposals = {"a", "b", "c", "d"};
  auto r = run_consensus(cfg, l_consensus_factory());
  expect_all_decide_same(r);
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_LE(o.steps, 2u);
    }
  }
}

// P-Consensus: same two headline claims.
TEST(PConsensusSteps, OneStepOnUnanimityInStableRun) {
  ConsensusRunConfig cfg = base_config(4, 1);
  auto r = run_consensus(cfg, p_consensus_factory());
  expect_all_decide_same(r);
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 1u);
    }
  }
}

TEST(PConsensusSteps, TwoStepsOnDivergenceInStableRun) {
  ConsensusRunConfig cfg = base_config(4, 1);
  cfg.proposals = {"a", "b", "c", "d"};
  auto r = run_consensus(cfg, p_consensus_factory());
  expect_all_decide_same(r);
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_LE(o.steps, 2u);
    }
  }
}

// Brasileiro: one step on unanimity, but >= 3 steps on divergence — the
// overhead the paper's protocols eliminate.
TEST(BrasileiroSteps, OneStepOnUnanimity) {
  ConsensusRunConfig cfg = base_config(4, 1);
  auto r = run_consensus(cfg, brasileiro_factory("l"));
  expect_all_decide_same(r);
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 1u);
    }
  }
}

TEST(BrasileiroSteps, ThreeStepsOnDivergence) {
  ConsensusRunConfig cfg = base_config(4, 1);
  cfg.proposals = {"a", "b", "c", "d"};
  auto r = run_consensus(cfg, brasileiro_factory("l"));
  expect_all_decide_same(r);
  bool some_three = false;
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_GE(o.steps, 3u);
      some_three = true;
    }
  }
  EXPECT_TRUE(some_three);
}

// Paxos with leader p0: two steps in the stable run regardless of proposals
// (zero-degrading, never one-step).
TEST(PaxosSteps, TwoStepsInStableRun) {
  ConsensusRunConfig cfg = base_config(3, 1);
  cfg.proposals = {"a", "b", "c"};
  auto r = run_consensus(cfg, paxos_factory());
  expect_all_decide_same(r);
  for (const auto& o : r.outcomes) {
    if (o.decided && o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 2u);
    }
  }
}

}  // namespace
}  // namespace zdc::sim
