// Tests for the zdc_analyze semantic analyzer (tools/analyze_core.*): the
// lexer's contract on comments, raw strings, preprocessor lines and
// multi-char punctuation; each check family against a fixture with seeded
// violations plus near-misses that must stay silent; the lock-order graph
// itself; cross-file alias resolution; and the suppression grammar
// (allow / allow-file, mandatory justification, unknown rule names).
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze_core.h"

namespace zdc::analyze {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ANALYZE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using Hits = std::vector<std::pair<int, std::string>>;

/// Analyzes one fixture as a whole program and returns (line, rule) pairs,
/// sorted. `deterministic` turns on the determinism-flow rules, mirroring a
/// file living under one of the replay-bit-for-bit directories.
Hits hits(const std::string& name, bool deterministic = false,
          LockGraph* graph = nullptr) {
  const std::vector<SourceFile> files = {
      {name, read_fixture(name), deterministic}};
  Hits out;
  for (const Finding& f : analyze(files, graph)) {
    EXPECT_EQ(f.file, name);
    out.emplace_back(f.line, f.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Lexer.

TEST(AnalyzeLex, CommentsAreConsumedAndLinesTracked) {
  const auto t = lex("int a; // fsync(\n/* span\nlines */ int b;\n");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].text, "int");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[1].text, "a");
  EXPECT_EQ(t[3].text, "int");
  EXPECT_EQ(t[3].line, 3);  // the block comment spanned two newlines
  EXPECT_EQ(t[4].text, "b");
  EXPECT_EQ(t[4].line, 3);
}

TEST(AnalyzeLex, RawStringsDropContentsAndCountLines) {
  // The raw string swallows a fake fsync( call and one newline; tokens after
  // it must land on the right lines and its contents must not leak.
  const auto t = lex("auto s = R\"zz(line one\nfsync( two)zz\";\nint z;");
  ASSERT_EQ(t.size(), 8u);
  EXPECT_EQ(t[3].kind, Tok::kString);
  EXPECT_EQ(t[3].text, "");
  EXPECT_EQ(t[3].line, 1);
  EXPECT_EQ(t[4].text, ";");
  EXPECT_EQ(t[4].line, 2);
  EXPECT_EQ(t[5].text, "int");
  EXPECT_EQ(t[5].line, 3);
}

TEST(AnalyzeLex, PreprocessorLinesAreSkippedIncludingContinuations) {
  const auto t = lex("#define FSYNC fsync \\\n  fsync(fd)\nint q;");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].text, "int");
  EXPECT_EQ(t[0].line, 3);  // the continuation consumed line 2
  EXPECT_EQ(t[1].text, "q");
}

TEST(AnalyzeLex, QualificationPunctuationIsOneToken) {
  const auto t = lex("p->q::r");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[1].text, "->");
  EXPECT_EQ(t[1].kind, Tok::kPunct);
  EXPECT_EQ(t[3].text, "::");
  EXPECT_EQ(t[3].kind, Tok::kPunct);
}

TEST(AnalyzeLex, NumbersAndCharLiterals) {
  // Digit separators, exponent suffixes and hex stay one token; a char
  // literal's contents are dropped like a string's.
  const auto t = lex("1'000'000 1e9f 0x1Fu 'x'");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].kind, Tok::kNumber);
  EXPECT_EQ(t[0].text, "1'000'000");
  EXPECT_EQ(t[1].text, "1e9f");
  EXPECT_EQ(t[2].text, "0x1Fu");
  EXPECT_EQ(t[3].kind, Tok::kChar);
  EXPECT_EQ(t[3].text, "");
}

// ---------------------------------------------------------------------------
// Lock-graph family.

TEST(AnalyzeTest, LockOrderCycle) {
  LockGraph graph;
  EXPECT_EQ(hits("lock_cycle.cpp", false, &graph),
            (Hits{{42, "lock-order-cycle"}}));
  // Both inconsistent edges are in the graph, each via the call that closes
  // the window from one class's mutex into the other's.
  ASSERT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(graph.edges[0].from, "A::mu_");
  EXPECT_EQ(graph.edges[0].to, "B::mu_");
  EXPECT_EQ(graph.edges[0].via, "poke");
  EXPECT_EQ(graph.edges[1].from, "B::mu_");
  EXPECT_EQ(graph.edges[1].to, "A::mu_");
  EXPECT_EQ(graph.edges[1].via, "jab");
}

TEST(AnalyzeTest, ConsistentOrderIsClean) {
  LockGraph graph;
  EXPECT_TRUE(hits("lock_cycle_clean.cpp", false, &graph).empty());
  // The two call sites (step, stride) collapse into one deduplicated edge.
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "Lo::mu_");
  EXPECT_EQ(graph.edges[0].to, "Hi::mu_");
  EXPECT_EQ(graph.edges[0].via, "poke");
  EXPECT_EQ(graph.mutexes,
            (std::vector<std::string>{"Hi::mu_", "Lo::mu_"}));
}

TEST(AnalyzeTest, RecursiveLock) {
  // Direct re-acquisition in one scope, and re-acquisition through a call
  // while the first guard is still live. The sibling() call after the inner
  // scope closes stays silent.
  EXPECT_EQ(hits("recursive_lock.cpp"),
            (Hits{{11, "recursive-lock"}, {20, "recursive-lock"}}));
}

TEST(AnalyzeTest, BlockingUnderLock) {
  // fsync directly under the guard, and through the flush() callee.
  EXPECT_EQ(hits("blocking_under_lock.cpp"),
            (Hits{{10, "blocking-under-lock"}, {14, "blocking-under-lock"}}));
}

TEST(AnalyzeTest, BlockingNearMissesAreSilent) {
  // Guard scope closed before fsync; fsync( in comments and strings; a
  // method merely named fsync_meta called under the lock.
  EXPECT_TRUE(hits("blocking_clean.cpp").empty());
}

TEST(AnalyzeTest, CvWaitWithMultipleLocks) {
  // wait_two holds a_ and b_ across cv_.wait(); wait_one's single-lock wait
  // is the normal pattern and stays silent.
  EXPECT_EQ(hits("cv_wait.cpp"), (Hits{{11, "cv-wait-multi-lock"}}));
}

// ---------------------------------------------------------------------------
// Discarded-error family.

TEST(AnalyzeTest, DiscardedStatus) {
  // The bare sync() in careless() and the outer latch(wal.sync()) in wrap()
  // fire; assignment, (void), condition use, return-forwarding and the void
  // QuietStore::sync() stay silent.
  EXPECT_EQ(hits("discarded_status.cpp"),
            (Hits{{17, "discarded-status"}, {32, "discarded-status"}}));
}

// ---------------------------------------------------------------------------
// Determinism-flow family.

TEST(AnalyzeTest, AliasResolvedClockAndRandom) {
  // Uses fire (two on one line dedupe); the alias declarations themselves
  // and the literal std::mt19937 spelling (zdc_lint's domain) stay silent.
  EXPECT_EQ(hits("alias_det.cpp", /*deterministic=*/true),
            (Hits{{13, "wall-clock-alias"},
                  {16, "wall-clock-alias"},
                  {19, "raw-random-alias"}}));
}

TEST(AnalyzeTest, AliasRulesAreScopedToDeterministicFiles) {
  EXPECT_TRUE(hits("alias_det.cpp", /*deterministic=*/false).empty());
}

TEST(AnalyzeTest, UnorderedFlow) {
  // Alias-hidden unordered iteration fires only in deterministic files; the
  // encode/fingerprint flow fires everywhere. Direct unordered spelling,
  // ordered containers and plain counters stay silent.
  EXPECT_EQ(hits("unordered_flow.cpp", /*deterministic=*/true),
            (Hits{{20, "unordered-alias-iter"},
                  {30, "unordered-encode-flow"},
                  {43, "unordered-encode-flow"}}));
  EXPECT_EQ(hits("unordered_flow.cpp", /*deterministic=*/false),
            (Hits{{30, "unordered-encode-flow"},
                  {43, "unordered-encode-flow"}}));
}

TEST(AnalyzeTest, CrossFileAliasResolution) {
  // The aliases live in wire_alias.h; the deterministic .cpp never spells
  // the banned types. Both uses still resolve and fire.
  const std::vector<SourceFile> files = {
      {"wire_alias.h", read_fixture("wire_alias.h"), false},
      {"wire_alias_use.cpp", read_fixture("wire_alias_use.cpp"), true}};
  Hits out;
  for (const Finding& f : analyze(files)) {
    EXPECT_EQ(f.file, "wire_alias_use.cpp");
    out.emplace_back(f.line, f.rule);
  }
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (Hits{{7, "wall-clock-alias"}, {12, "unordered-alias-iter"}}));
}

// ---------------------------------------------------------------------------
// Suppression grammar.

TEST(AnalyzeTest, AllowMarkers) {
  // A justified allow suppresses (suppressed()); no marker leaves the
  // finding live (live()); a reasonless marker reports allow-needs-reason
  // AND leaves the finding live (reasonless()); an unknown rule name reports
  // unknown-allow likewise (unknown_rule()); a marker for a different rule
  // suppresses nothing (wrong_rule()).
  EXPECT_EQ(hits("allow_marker.cpp"),
            (Hits{{20, "discarded-status"},
                  {24, "allow-needs-reason"},
                  {25, "discarded-status"},
                  {29, "unknown-allow"},
                  {30, "discarded-status"},
                  {35, "discarded-status"}}));
}

TEST(AnalyzeTest, AllowFileMarker) {
  // One justified allow-file(discarded-status) covers every drop in the file.
  EXPECT_TRUE(hits("allow_file.cpp").empty());
}

// ---------------------------------------------------------------------------
// Negative corpus, formatting, directory walk.

TEST(AnalyzeTest, CleanFile) {
  // Banned names confined to comments/strings/raw strings, a consistent
  // single-mutex class, every Status consumed, ordered iteration feeding an
  // Encoder: nothing fires, under either rule scope.
  EXPECT_TRUE(hits("clean.cpp", /*deterministic=*/true).empty());
  EXPECT_TRUE(hits("clean.cpp", /*deterministic=*/false).empty());
}

TEST(AnalyzeTest, FormatIsStable) {
  const Finding f{"src/storage/wal.cpp", 7, "discarded-status", "boom"};
  EXPECT_EQ(format(f), "src/storage/wal.cpp:7: [discarded-status] boom");
}

TEST(AnalyzeTest, RunWalksFixtureTree) {
  // Drive the directory walker over the fixture dir as one whole program:
  // the seeded lock-order cycle is found, and with no det_dirs configured
  // none of the determinism-only rules fire.
  RunConfig cfg;
  cfg.root = ANALYZE_FIXTURE_DIR;
  cfg.analyze_dirs = {"."};
  cfg.det_dirs = {};
  std::set<std::string> rules;
  std::set<std::string> files;
  for (const Finding& f : run(cfg)) {
    rules.insert(f.rule);
    files.insert(f.file);
  }
  EXPECT_EQ(rules.count("lock-order-cycle"), 1u) << "seeded cycle not found";
  EXPECT_EQ(rules.count("wall-clock-alias"), 0u)
      << "determinism rule fired without det_dirs";
  EXPECT_EQ(rules.count("raw-random-alias"), 0u);
  EXPECT_EQ(rules.count("unordered-alias-iter"), 0u);
  bool saw_blocking = false;
  for (const std::string& f : files) {
    saw_blocking |= f.find("blocking_under_lock.cpp") != std::string::npos;
  }
  EXPECT_TRUE(saw_blocking) << "walker missed blocking_under_lock.cpp";
}

}  // namespace
}  // namespace zdc::analyze
