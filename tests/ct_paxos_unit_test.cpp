// Message-level unit tests for Chandra-Toueg and single-decree Paxos: the
// phase mechanics the whole-run tests cannot isolate.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "consensus/chandra_toueg.h"
#include "consensus/paxos.h"
#include "direct_harness.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

DirectNet::Factory ct_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView&, const fd::SuspectView& suspects) {
    return std::make_unique<consensus::CtConsensus>(self, group, host,
                                                    suspects);
  };
}

DirectNet::Factory paxos_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::PaxosConsensus>(self, group, host,
                                                       omega);
  };
}

// --- Chandra-Toueg phases ---

TEST(CtUnit, CoordinatorWaitsForMajorityEstimates) {
  DirectNet net(kGroup, ct_factory());
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v" + std::to_string(p));
  // Round-1 coordinator is p0. One estimate (its own) is not a majority.
  net.deliver_edge(0, 0);
  EXPECT_EQ(net.pending(0, 1), 0u) << "no proposal may be out yet";
  net.deliver_edge(1, 0);  // second estimate
  // Majority (3 of 4) reached with the third estimate: the proposal goes out.
  net.deliver_edge(2, 0);
  EXPECT_GE(net.pending(0, 1), 1u) << "PROPOSE must be broadcast";
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), net.decision(0));
  }
}

TEST(CtUnit, CoordinatorPicksHighestTimestampEstimate) {
  DirectNet net(kGroup, ct_factory());
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v" + std::to_string(p));
  // Round 1 dies with its coordinator before proposing anything.
  net.crash(0);
  for (ProcessId to = 0; to < 4; ++to) net.drop_edge(0, to);

  // Hand-craft round-2 estimates arriving early at the round-2 coordinator
  // p1: p2 claims it adopted "locked" in round 1 (ts = 1), p3 reports a
  // fresh value. The phase-2 pick must be the highest-timestamp "locked".
  // (Round 1 never proposed, so the claimed lock conflicts with nothing.)
  auto est = [](std::uint64_t round, const std::string& v, std::uint64_t ts) {
    common::Encoder enc;
    enc.put_u8(1);  // kEstTag
    enc.put_u64(round);
    enc.put_string(v);
    enc.put_u64(ts);
    return common::seal_frame(enc.take());
  };
  net.protocol(1).on_message(2, est(2, "locked", 1));
  net.protocol(1).on_message(3, est(2, "stale", 0));

  // The survivors suspect p0, nack round 1 and enter round 2.
  for (ProcessId p = 1; p < 4; ++p) {
    net.fd(p).suspects.flags[0] = true;
    net.notify_fd_change(p);
  }
  net.deliver_all();
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), "locked")
        << "the highest-ts estimate must win phase 2";
  }
}

TEST(CtUnit, NackAdvancesRoundWithoutCoordinator) {
  DirectNet net(kGroup, ct_factory());
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "w");
  net.crash(0);  // round-1 coordinator dead, its outbound traffic lost
  net.drop_edge(0, 1);
  net.drop_edge(0, 2);
  net.drop_edge(0, 3);
  for (ProcessId p = 1; p < 4; ++p) {
    net.fd(p).suspects.flags[0] = true;
    net.notify_fd_change(p);
  }
  net.deliver_all();
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), "w");
  }
}

TEST(CtUnit, MalformedMessagesCounted) {
  DirectNet net(kGroup, ct_factory());
  net.propose(1, "v");
  auto& proto = net.protocol(1);
  proto.on_message(0, common::seal_frame(""));
  proto.on_message(0, common::seal_frame(std::string("\x01\x02", 2)));  // truncated EST
  proto.on_message(0, common::seal_frame(std::string("\x09" "xxxxxxxx", 9)));
  EXPECT_EQ(proto.malformed_messages(), 3u);
}

// --- Single-decree Paxos mechanics ---

TEST(PaxosUnit, BallotZeroSkipsPhaseOne) {
  DirectNet net(kGroup, paxos_factory());
  net.set_leader_everywhere(0);
  net.propose(0, "val");
  net.propose(1, "other1");
  net.propose(2, "other2");
  net.propose(3, "other3");
  // p0's very first outbound traffic must be a 2a (tag 3), not a 1a (tag 2):
  // only the leader generates traffic at all, and without phase 1.
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(net.pending(p, 0), 0u) << "non-leaders must stay silent";
  }
  ASSERT_GE(net.pending(0, 1), 1u);
  net.deliver_one(0, 1);
  // p1 (acceptor) answers a 2a with a broadcast 2b — visible as outbound
  // traffic to everybody.
  EXPECT_GE(net.pending(1, 2), 1u);
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "val");
    EXPECT_EQ(net.protocol(p).decision_steps(), 2u);
  }
}

TEST(PaxosUnit, NonZeroLeaderRunsPhaseOne) {
  DirectNet net(kGroup, paxos_factory());
  net.set_leader_everywhere(2);
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "x" + std::to_string(p));
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    // Leader p2's lowest owned ballot is 2 > 0: full phase 1 + 2 = 4 steps.
    EXPECT_EQ(net.protocol(p).decision_steps(), 4u);
    EXPECT_EQ(net.decision(p), "x2") << "free choice is the leader's value";
  }
}

TEST(PaxosUnit, HigherBallotAdoptsAcceptedValue) {
  DirectNet net(kGroup, paxos_factory());
  net.set_leader_everywhere(0);
  net.propose(0, "first");
  net.propose(1, "second");
  net.propose(2, "second");
  net.propose(3, "second");
  // p0's 2a(0, "first") reaches only p1 before p0 dies.
  net.deliver_one(0, 1);
  net.crash(0);
  for (ProcessId to = 1; to < 4; ++to) net.drop_edge(0, to);
  // Drop p1's 2b fan-out as well: only p1 itself knows it accepted "first"...
  // keep it: realistic is fine — deliver everything after failover.
  net.set_leader_everywhere(1);
  net.notify_fd_change_all();
  net.deliver_all();
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    // p1's phase 1 surfaces the accepted "first"; the new leader must adopt
    // it (choosing "second" could split history if p0's 2b had reached a
    // learner).
    EXPECT_EQ(net.decision(p), "first");
  }
}

TEST(PaxosUnit, StaleBallotGetsNackedAndRetries) {
  DirectNet net(kGroup, paxos_factory());
  // p2 leads first: establishes ballot 2 promises everywhere.
  net.set_leader_everywhere(2);
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "y" + std::to_string(p));
  net.deliver_all();
  ASSERT_TRUE(net.decided(0));
  EXPECT_EQ(net.decision(0), "y2");
}

TEST(PaxosUnit, MalformedMessagesCounted) {
  DirectNet net(kGroup, paxos_factory());
  net.propose(0, "v");
  auto& proto = net.protocol(0);
  proto.on_message(1, common::seal_frame(std::string("\x03\x01", 2)));  // truncated 2a
  proto.on_message(1, common::seal_frame(std::string("\x2a", 1)));      // unknown tag
  EXPECT_EQ(proto.malformed_messages(), 2u);
}

}  // namespace
}  // namespace zdc::testing
