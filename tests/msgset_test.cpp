// Unit tests for the atomic-broadcast message-batch codec — the canonical
// serialization whose byte-equality the one-step fast path depends on.
#include <gtest/gtest.h>

#include <string>

#include "abcast/abcast.h"

namespace zdc::abcast {
namespace {

TEST(MsgSet, EmptyRoundTrip) {
  MsgSet out;
  EXPECT_TRUE(decode_msg_set(encode_msg_set({}), out));
  EXPECT_TRUE(out.empty());
}

TEST(MsgSet, RoundTripPreservesEntries) {
  MsgSet set;
  set.emplace(MsgId{2, 5}, "payload-a");
  set.emplace(MsgId{0, 1}, "payload-b");
  set.emplace(MsgId{2, 4}, std::string("\x00\x01", 2));
  MsgSet out;
  ASSERT_TRUE(decode_msg_set(encode_msg_set(set), out));
  EXPECT_EQ(out, set);
}

TEST(MsgSet, CanonicalOrderMakesEqualSetsByteIdentical) {
  // Insert in different orders; std::map canonicalizes, so the encodings —
  // and hence the consensus proposals — must be byte-identical.
  MsgSet a, b;
  a.emplace(MsgId{1, 1}, "x");
  a.emplace(MsgId{0, 9}, "y");
  a.emplace(MsgId{3, 2}, "z");
  b.emplace(MsgId{3, 2}, "z");
  b.emplace(MsgId{1, 1}, "x");
  b.emplace(MsgId{0, 9}, "y");
  EXPECT_EQ(encode_msg_set(a), encode_msg_set(b));
}

TEST(MsgSet, OrderedBySenderThenSeq) {
  MsgSet set;
  set.emplace(MsgId{1, 2}, "");
  set.emplace(MsgId{0, 7}, "");
  set.emplace(MsgId{1, 1}, "");
  auto it = set.begin();
  EXPECT_EQ(it->first, (MsgId{0, 7}));
  ++it;
  EXPECT_EQ(it->first, (MsgId{1, 1}));
  ++it;
  EXPECT_EQ(it->first, (MsgId{1, 2}));
}

TEST(MsgSet, TruncationDetected) {
  MsgSet set;
  set.emplace(MsgId{0, 1}, "some payload");
  set.emplace(MsgId{1, 2}, "other payload");
  const std::string full = encode_msg_set(set);
  for (std::size_t len = 0; len < full.size(); ++len) {
    MsgSet out;
    EXPECT_FALSE(decode_msg_set(std::string_view(full.data(), len), out))
        << "prefix " << len;
    EXPECT_TRUE(out.empty());
  }
}

TEST(MsgSet, TrailingGarbageDetected) {
  MsgSet set;
  set.emplace(MsgId{0, 1}, "p");
  std::string bytes = encode_msg_set(set);
  bytes += "junk";
  MsgSet out;
  EXPECT_FALSE(decode_msg_set(bytes, out));
}

TEST(MsgSet, HostileCountRejected) {
  common::Encoder enc;
  enc.put_u32(0x7fffffff);  // claims ~2B entries
  MsgSet out;
  EXPECT_FALSE(decode_msg_set(enc.bytes(), out));
  EXPECT_TRUE(out.empty());
}

TEST(MsgId, OrderingAndEquality) {
  EXPECT_LT((MsgId{0, 5}), (MsgId{1, 0}));
  EXPECT_LT((MsgId{1, 1}), (MsgId{1, 2}));
  EXPECT_EQ((MsgId{2, 3}), (MsgId{2, 3}));
  EXPECT_NE((MsgId{2, 3}), (MsgId{2, 4}));
}

}  // namespace
}  // namespace zdc::abcast
