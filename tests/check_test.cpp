// Tests for the schedule-space model checker (src/check): the choice-token
// and replay-file formats, the shared invariant library, the sleep-set DFS
// explorer, the ddmin shrinker, seeded swarm mode — and the committed golden
// counterexample fixtures under tests/check_fixtures/, which must stay
// byte-identically canonical and keep reproducing their recorded violation.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/choice.h"
#include "check/consensus_system.h"
#include "check/explorer.h"
#include "check/invariants.h"
#include "check/replay.h"
#include "check/shrink.h"
#include "check/system.h"

namespace zdc::check {
namespace {

ScenarioSpec consensus_spec(std::string protocol, std::vector<Value> proposals,
                            std::string mutant = "") {
  ScenarioSpec spec;
  spec.kind = "consensus";
  spec.protocol = std::move(protocol);
  spec.group = GroupParams{static_cast<std::uint32_t>(proposals.size()), 1};
  spec.proposals = std::move(proposals);
  spec.mutant = std::move(mutant);
  return spec;
}

// --- choice tokens ---

TEST(ChoiceFormat, RoundtripsEveryKind) {
  const std::vector<Choice> samples = {
      {ChoiceKind::kDeliver, 2, 3, 0},    {ChoiceKind::kOracle, 1, 0, 0},
      {ChoiceKind::kOracleSubset, 0, 0, 11}, {ChoiceKind::kCrash, 3, 0, 0},
      {ChoiceKind::kLeaderFlip, 1, 2, 0}, {ChoiceKind::kSuspectFlip, 0, 3, 0},
      {ChoiceKind::kCrashDeliver, 0, 2, 0},
      {ChoiceKind::kCrashDeliver, 1, 0, 3},
      {ChoiceKind::kFlip, 0, 1, 2},
      {ChoiceKind::kFlip, 2, 0, 0},
      {ChoiceKind::kEquivocate, 1, 2, 0},
  };
  for (const Choice& c : samples) {
    const std::string token = format_choice(c);
    const auto parsed = parse_choice(token);
    ASSERT_TRUE(parsed.has_value()) << token;
    EXPECT_EQ(*parsed, c) << token;
    EXPECT_EQ(format_choice(*parsed), token);
  }
  // kSubmit's `b` (the submitting process) is derived from the scenario's
  // submission table, deliberately not serialized.
  const auto submit = parse_choice(format_choice({ChoiceKind::kSubmit, 4, 1, 0}));
  ASSERT_TRUE(submit.has_value());
  EXPECT_EQ(submit->kind, ChoiceKind::kSubmit);
  EXPECT_EQ(submit->a, 4u);
  EXPECT_EQ(submit->b, 0u);
}

TEST(ChoiceFormat, RejectsMalformedTokens) {
  for (const char* bad : {"", "x1", "d5", "d-1", "d1-", "o", "c", "s3", "s3m",
                          "l2", "f-", "d1-2-3x", "d99999999999-1", "u", "k1",
                          "k1-2", "k1-2m", "k1-2m9", "k-2m0", "x1-2",
                          "x1-2m", "x1-2m3", "x-2m0", "e1", "e1-"}) {
    EXPECT_FALSE(parse_choice(bad).has_value()) << bad;
  }
}

TEST(ChoiceIndependence, MatchesTouchedProcessModel) {
  const Choice d01{ChoiceKind::kDeliver, 0, 1, 0};
  const Choice d21{ChoiceKind::kDeliver, 2, 1, 0};
  const Choice d23{ChoiceKind::kDeliver, 2, 3, 0};
  const Choice crash1{ChoiceKind::kCrash, 1, 0, 0};
  const Choice flip3{ChoiceKind::kLeaderFlip, 3, 0, 0};
  const Choice oracle{ChoiceKind::kOracle, 0, 0, 0};
  // Same recipient → dependent; distinct recipients → independent.
  EXPECT_FALSE(choices_independent(d01, d21));
  EXPECT_TRUE(choices_independent(d01, d23));
  // A crash races with anything touching the crashed process.
  EXPECT_FALSE(choices_independent(crash1, d01));
  EXPECT_TRUE(choices_independent(crash1, d23));
  EXPECT_TRUE(choices_independent(crash1, flip3));
  // Oracle broadcasts touch everybody.
  EXPECT_FALSE(choices_independent(oracle, d23));
  EXPECT_FALSE(choices_independent(oracle, crash1));
  // Corrupt-delivery and equivocation commute like deliveries: dependent on
  // a shared recipient, independent across disjoint edges.
  const Choice x01{ChoiceKind::kFlip, 0, 1, 1};
  const Choice e23{ChoiceKind::kEquivocate, 2, 3, 0};
  EXPECT_FALSE(choices_independent(x01, d01));
  EXPECT_FALSE(choices_independent(x01, d21));
  EXPECT_TRUE(choices_independent(x01, d23));
  EXPECT_TRUE(choices_independent(x01, e23));
  EXPECT_FALSE(choices_independent(e23, d23));
  EXPECT_FALSE(choices_independent(e23, Choice{ChoiceKind::kCrash, 3, 0, 0}));
}

// --- invariant library ---

ConsensusObs unanimous_obs() {
  ConsensusObs obs;
  obs.group = GroupParams{4, 1};
  obs.proposals = {"a", "a", "a", "a"};
  obs.procs.resize(4);
  for (ProcessObs& p : obs.procs) p.proposed = true;
  return obs;
}

void decide(ProcessObs& p, const Value& v, std::uint32_t steps) {
  p.decided = true;
  p.decision = v;
  p.steps = steps;
  p.path = consensus::DecisionPath::kRound;
  p.decision_deliveries = 1;
}

TEST(Invariants, AgreementFlagsSplitDecisions) {
  ConsensusObs obs = unanimous_obs();
  decide(obs.procs[0], "a", 1);
  decide(obs.procs[3], "b", 1);
  const auto v = check_agreement(obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "agreement");
  decide(obs.procs[3], "a", 1);
  EXPECT_FALSE(check_agreement(obs).has_value());
}

TEST(Invariants, ValidityFlagsInventedValues) {
  ConsensusObs obs = unanimous_obs();
  decide(obs.procs[1], "ghost", 1);
  const auto v = check_validity(obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "validity");
}

TEST(Invariants, IntegrityFlagsDoubleDecisionDelivery) {
  ConsensusObs obs = unanimous_obs();
  decide(obs.procs[2], "a", 1);
  obs.procs[2].decision_deliveries = 2;
  const auto v = check_integrity(obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "integrity");
}

TEST(Invariants, TerminationFlagsQuiescentUndecidedProposer) {
  ConsensusObs obs = unanimous_obs();
  for (ProcessId p = 0; p < 3; ++p) decide(obs.procs[p], "a", 1);
  obs.quiescent = true;
  const auto v = check_termination(obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "termination");
  // Mid-flight (not quiescent) the same state is just "not yet".
  obs.quiescent = false;
  EXPECT_FALSE(check_termination(obs).has_value());
}

TEST(Invariants, StepBoundsApplyPerProtocolClaim) {
  // P promises one-step on equal proposals in *every* run; L only claims it
  // for stable runs (Theorem 1); Paxos never claims it.
  ConsensusObs obs = unanimous_obs();
  decide(obs.procs[0], "a", 2);
  obs.stable = false;
  EXPECT_TRUE(check_one_step(obs, step_bounds_for("p")).has_value());
  EXPECT_FALSE(check_one_step(obs, step_bounds_for("l")).has_value());
  EXPECT_FALSE(check_one_step(obs, step_bounds_for("paxos")).has_value());
  obs.stable = true;
  EXPECT_TRUE(check_one_step(obs, step_bounds_for("l")).has_value());
  obs.procs[0].steps = 1;
  EXPECT_FALSE(check_one_step(obs, step_bounds_for("p")).has_value());
}

TEST(Invariants, TotalOrderAndDuplicationCatchBrokenHistories) {
  const abcast::AppMessage m0{{0, 1}, "x"};
  const abcast::AppMessage m1{{1, 1}, "y"};
  EXPECT_TRUE(check_total_order({{m0, m1}, {m1, m0}}).has_value());
  EXPECT_FALSE(check_total_order({{m0, m1}, {m0}}).has_value());
  EXPECT_TRUE(check_no_duplicates({{m0, m0}}).has_value());
  EXPECT_TRUE(check_no_creation({{m0}}, {m1.id}).has_value());
  EXPECT_FALSE(check_no_creation({{m0}}, {m0.id, m1.id}).has_value());
}

// --- replay files ---

TEST(Invariants, CorruptionLedgerMustBalanceWhenChecksumsOn) {
  CorruptionObs obs;
  obs.frames_corrupted = 3;
  obs.corrupt_frames_dropped = 3;
  EXPECT_FALSE(check_corruption(obs).has_value());

  obs.corrupt_frames_dropped = 2;
  const auto v = check_corruption(obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "undetected-corruption");

  // With checksums off the check is vacuous (corruption is *expected* to be
  // undetectable; the safety oracles carry the burden)...
  obs.checksums_enabled = false;
  EXPECT_FALSE(check_corruption(obs).has_value());
  // ...as it is when some corruption targeted an unsealed channel.
  obs.checksums_enabled = true;
  obs.all_on_sealed_channel = false;
  EXPECT_FALSE(check_corruption(obs).has_value());
}

TEST(Invariants, ConvergenceFlagsOnlyAfterTheBoundElapses) {
  ConvergenceObs obs;
  obs.corrupt_injected = 2;
  obs.step_bound = 10;
  obs.steps_since_last_injection = 9;
  obs.legal_state = false;
  // Bound not yet elapsed: the system is allowed to still be converging.
  EXPECT_FALSE(check_convergence(obs).has_value());

  obs.steps_since_last_injection = 10;
  const auto v = check_convergence(obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "convergence");

  obs.legal_state = true;
  EXPECT_FALSE(check_convergence(obs).has_value()) << "converged in time";
  obs.legal_state = false;
  obs.corrupt_injected = 0;
  EXPECT_FALSE(check_convergence(obs).has_value())
      << "vacuous without injections";
}

TEST(Replay, SerializeParseRoundtripIsByteIdentical) {
  ReplayFile file;
  file.spec = consensus_spec("p", {"a", "b", "b", "b"}, "skip-one-step-quorum");
  file.spec.omega = {0, 0, 0, 0};
  file.violation = "agreement";
  file.trace = {{ChoiceKind::kDeliver, 0, 0, 0},
                {ChoiceKind::kCrash, 2, 0, 0},
                {ChoiceKind::kOracleSubset, 1, 0, 5}};
  const std::string text = serialize_replay(file);
  std::string error;
  const auto parsed = parse_replay(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(serialize_replay(*parsed), text);
  EXPECT_EQ(parsed->spec.protocol, "p");
  EXPECT_EQ(parsed->spec.mutant, "skip-one-step-quorum");
  EXPECT_EQ(parsed->spec.proposals, file.spec.proposals);
  EXPECT_EQ(parsed->violation, "agreement");
  EXPECT_EQ(parsed->trace, file.trace);
}

TEST(Replay, ParseRejectsMalformedFiles) {
  ReplayFile file;
  file.spec = consensus_spec("paxos", {"x", "y", "z"});
  file.spec.omega = {0, 0, 0};
  const std::string good = serialize_replay(file);

  const auto expect_bad = [](std::string text, const char* what) {
    std::string error;
    EXPECT_FALSE(parse_replay(text, &error).has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
  };
  expect_bad("not-a-replay\n", "bad magic");
  expect_bad("", "empty");
  std::string wrong_count = good;
  wrong_count.replace(wrong_count.find("n: 3"), 4, "n: 4");
  expect_bad(wrong_count, "proposal count mismatch");
  std::string bad_token = good;
  bad_token.replace(bad_token.find("trace: -"), 8, "trace: zz");
  expect_bad(bad_token, "malformed trace token");
}

// --- explorer ---

TEST(Explorer, ExhaustsPaxosSpaceWithNoViolation) {
  const ScenarioSpec spec = consensus_spec("paxos", {"a", "a", "a"});
  const auto res = explore(make_system_factory(spec, {}), {});
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_EQ(res.depth_cutoffs, 0u);
  EXPECT_GT(res.transitions, 0u);
  EXPECT_GT(res.paths, 0u);
}

TEST(Explorer, SleepSetsPruneWithoutChangingTheVerdict) {
  const ScenarioSpec spec = consensus_spec("l", {"a", "a", "a", "a"});
  ExploreConfig with;
  with.max_depth = 5;
  ExploreConfig without = with;
  without.sleep_sets = false;
  const auto reduced = explore(make_system_factory(spec, {}), with);
  const auto full = explore(make_system_factory(spec, {}), without);
  EXPECT_FALSE(reduced.violation.has_value());
  EXPECT_FALSE(full.violation.has_value());
  EXPECT_TRUE(reduced.complete);
  EXPECT_TRUE(full.complete);
  // The reduction must strictly prune this space (it has many commuting
  // delivery pairs) while staying sound.
  EXPECT_LT(reduced.transitions, full.transitions);
}

TEST(Explorer, DepthBoundTruncatesAndSaysSo) {
  const ScenarioSpec spec = consensus_spec("l", {"a", "a", "a", "a"});
  ExploreConfig cfg;
  cfg.max_depth = 2;
  const auto res = explore(make_system_factory(spec, {}), cfg);
  EXPECT_TRUE(res.complete);  // complete *up to the bound*...
  EXPECT_GT(res.depth_cutoffs, 0u);  // ...which the result discloses.
}

TEST(Explorer, TransitionBudgetAbortsAsIncomplete) {
  const ScenarioSpec spec = consensus_spec("l", {"a", "a", "a", "a"});
  ExploreConfig cfg;
  cfg.max_transitions = 10;
  const auto res = explore(make_system_factory(spec, {}), cfg);
  EXPECT_FALSE(res.complete);
  EXPECT_LE(res.transitions, 10u);
}

// --- corruption choice points (kFlip / kEquivocate) ---

TEST(Corruption, DetectableDropsKeepEveryExploredScheduleSafe) {
  // With frame checksums on, the corrupt-delivery choice points must never
  // produce a violation: the flipped copy is CRC-dropped (the corruption
  // ledger is checked at every quiescent leaf via check_corruption) and the
  // clean original still goes through. The budgets must also visibly widen
  // the search space.
  const ScenarioSpec spec = consensus_spec("paxos", {"a", "a", "a"});
  ExploreConfig cfg;
  cfg.max_depth = 6;
  const auto baseline = explore(make_system_factory(spec, {}), cfg);
  AdversaryBudgets flips;
  flips.flips = 1;
  const auto flipped = explore(make_system_factory(spec, flips), cfg);
  AdversaryBudgets equiv;
  equiv.equivocations = 1;
  const auto equivocated = explore(make_system_factory(spec, equiv), cfg);
  for (const auto* res : {&baseline, &flipped, &equivocated}) {
    EXPECT_TRUE(res->complete);
    EXPECT_FALSE(res->violation.has_value())
        << res->violation->invariant << " — " << res->violation->detail;
  }
  EXPECT_GT(flipped.transitions, baseline.transitions);
  EXPECT_GT(equivocated.transitions, baseline.transitions);
}

TEST(Corruption, FlipChoicesDisabledWithoutPendingFrames) {
  const ScenarioSpec spec = consensus_spec("paxos", {"a", "a", "a"});
  AdversaryBudgets budgets;
  budgets.flips = 1;
  budgets.equivocations = 1;
  ConsensusSystem sys(spec, budgets);
  // Proposals are made in the constructor, so frames are pending and both
  // corruption kinds are offered (three byte positions per edge for kFlip).
  bool saw_flip = false;
  bool saw_equivocate = false;
  for (const Choice& c : sys.enabled()) {
    saw_flip = saw_flip || c.kind == ChoiceKind::kFlip;
    saw_equivocate = saw_equivocate || c.kind == ChoiceKind::kEquivocate;
  }
  EXPECT_TRUE(saw_flip);
  EXPECT_TRUE(saw_equivocate);
  // Lenient replay of a flip on a drained edge must refuse, not corrupt
  // air. (Right after the constructor every edge holds the broadcast
  // proposals — self-edges included — so drain 0→1 first; p0 handles
  // nothing here, so nothing refills it.)
  ConsensusSystem fresh(spec, budgets);
  while (fresh.apply(Choice{ChoiceKind::kDeliver, 0, 1, 0})) {
  }
  EXPECT_FALSE(fresh.apply(Choice{ChoiceKind::kFlip, 0, 1, 1}));
  EXPECT_FALSE(fresh.apply(Choice{ChoiceKind::kEquivocate, 0, 1, 0}));
}

// --- the parallel engine: deterministic task-decomposed DFS ---

struct MutantCase {
  ScenarioSpec spec;
  std::uint32_t max_depth;
};

MutantCase p_mutant() {
  MutantCase c{consensus_spec("p", {"a", "b", "b", "b"},
                              "skip-one-step-quorum"),
               12};
  return c;
}

MutantCase paxos_mutant() {
  MutantCase c{consensus_spec("paxos", {"zero", "one", "two"},
                              "ignore-accepted"),
               20};
  c.spec.omega = {0, 0, 2};
  return c;
}

TEST(ParallelExplore, TotalsAreByteIdenticalForEveryThreadCount) {
  const ScenarioSpec spec = consensus_spec("paxos", {"a", "a", "a"});
  ExploreConfig cfg;
  cfg.max_depth = 6;
  cfg.threads = 1;
  const auto one = explore(make_system_factory(spec, {}), cfg);
  EXPECT_TRUE(one.complete);
  EXPECT_FALSE(one.violation.has_value());
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    cfg.threads = threads;
    const auto many = explore(make_system_factory(spec, {}), cfg);
    EXPECT_EQ(many.transitions, one.transitions) << threads << " threads";
    EXPECT_EQ(many.paths, one.paths) << threads << " threads";
    EXPECT_EQ(many.depth_cutoffs, one.depth_cutoffs) << threads << " threads";
    EXPECT_EQ(many.complete, one.complete) << threads << " threads";
  }
  // The sequential engine prunes the same space (identical verdict); only
  // its transition total differs (units pay an extra prefix replay).
  cfg.threads = 0;
  const auto seq = explore(make_system_factory(spec, {}), cfg);
  EXPECT_TRUE(seq.complete);
  EXPECT_EQ(seq.paths, one.paths);
  EXPECT_EQ(seq.depth_cutoffs, one.depth_cutoffs);
  EXPECT_LE(seq.transitions, one.transitions);
}

// A violating scenario whose *full* bounded space stays small: the parallel
// engine runs every unit to completion (no cross-task cancellation — that is
// what buys determinism), so hunting the paxos mutant at depth 20 would
// exhaust millions of schedules. The undetected-flip scenario violates at
// depth 5, where exhaustion is ~1.7 M transitions.
MutantCase flip_violation_case() {
  MutantCase c{consensus_spec("l", {"a", "a", "a", "a"}), 5};
  c.spec.frame_checksums = false;
  return c;
}

AdversaryBudgets one_flip() {
  AdversaryBudgets b;
  b.flips = 1;
  return b;
}

TEST(ParallelExplore, ViolationAndTraceIdenticalAtOneFourEightThreads) {
  const MutantCase mutant = flip_violation_case();
  const SystemFactory factory = make_system_factory(mutant.spec, one_flip());
  ExploreConfig cfg;
  cfg.max_depth = mutant.max_depth;
  const auto seq = explore(factory, cfg);
  ASSERT_TRUE(seq.violation.has_value());
  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    cfg.threads = threads;
    const auto par = explore(factory, cfg);
    ASSERT_TRUE(par.violation.has_value()) << threads << " threads";
    // The parallel engine reports the preorder-first violation — exactly the
    // one the sequential DFS stops at, trace and all.
    EXPECT_EQ(par.violation->invariant, seq.violation->invariant);
    EXPECT_EQ(par.violation->detail, seq.violation->detail);
    EXPECT_EQ(format_trace(par.trace), format_trace(seq.trace))
        << threads << " threads";
  }
}

TEST(ParallelExplore, ParallelTraceReplaysByteIdenticallySingleThreaded) {
  const MutantCase mutant = flip_violation_case();
  const SystemFactory factory = make_system_factory(mutant.spec, one_flip());
  ExploreConfig cfg;
  cfg.max_depth = mutant.max_depth;
  cfg.threads = 4;
  const auto par = explore(factory, cfg);
  ASSERT_TRUE(par.violation.has_value());
  const auto replayed = replay_strict(factory, par.trace);
  ASSERT_TRUE(replayed.has_value())
      << "parallel-found trace not strictly replayable";
  ASSERT_TRUE(replayed->violation.has_value());
  EXPECT_EQ(replayed->violation->invariant, par.violation->invariant);
  EXPECT_EQ(replayed->violation->detail, par.violation->detail);
}

TEST(ParallelSwarm, RunsEverythingAndReportsTheLowestFailingRun) {
  const MutantCase mutant = paxos_mutant();
  const SystemFactory factory = make_system_factory(mutant.spec, {});
  SwarmConfig cfg;
  cfg.seed = 3;
  cfg.runs = 48;
  cfg.max_steps = 200;
  const auto seq = swarm(factory, cfg);
  ASSERT_TRUE(seq.violation.has_value()) << "pick a seed that fails";
  cfg.threads = 1;
  const auto par1 = swarm(factory, cfg);
  cfg.threads = 4;
  const auto par4 = swarm(factory, cfg);
  ASSERT_TRUE(par1.violation.has_value());
  ASSERT_TRUE(par4.violation.has_value());
  // Parallel mode executes ALL runs; the failing run and its trace match the
  // sequential sweep (which stops there), and totals are thread-invariant.
  EXPECT_EQ(par1.failing_run, seq.failing_run);
  EXPECT_EQ(par4.failing_run, seq.failing_run);
  EXPECT_EQ(format_trace(par1.trace), format_trace(seq.trace));
  EXPECT_EQ(format_trace(par4.trace), format_trace(par1.trace));
  EXPECT_EQ(par1.runs, cfg.runs);
  EXPECT_EQ(par4.runs, cfg.runs);
  EXPECT_EQ(par1.transitions, par4.transitions);
  EXPECT_GE(par1.transitions, seq.transitions);
}

// --- crash-during-delivery (kCrashDeliver, storage-backed rec-paxos) ---

TEST(CrashRestart, RecPaxosSurvivesCrashDuringDelivery) {
  const ScenarioSpec spec = consensus_spec("rec-paxos", {"a", "b", "c"});
  AdversaryBudgets budgets;
  budgets.crash_restarts = 1;
  ConsensusSystem sys(spec, budgets);
  // Ballot 0 belongs to p0, so proposing broadcasts a 2a straight away and
  // the crash-during-delivery choice is enabled on edge 0→1. m=2: p1's
  // accept hits stable storage, the 2b never leaves, p1 reboots.
  std::vector<Choice> trace;
  const Choice crash{ChoiceKind::kCrashDeliver, 0, 1, 2};
  ASSERT_TRUE(sys.apply(crash));
  trace.push_back(crash);
  EXPECT_FALSE(sys.observe().stable);
  // Drain every remaining delivery; the run must stay safe throughout.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const Choice& c : sys.enabled()) {
      if (c.kind != ChoiceKind::kDeliver) continue;
      ASSERT_TRUE(sys.apply(c));
      trace.push_back(c);
      ASSERT_FALSE(sys.violation().has_value());
      progressed = true;
      break;
    }
  }
  // p0 and p2's accepts form a majority for ballot 0, so everyone — the
  // rebooted p1 included — converges on p0's value.
  const ConsensusObs obs = sys.observe();
  for (ProcessId p = 0; p < obs.group.n; ++p) {
    EXPECT_TRUE(obs.procs[p].decided) << "p" << p;
    EXPECT_EQ(obs.procs[p].decision, "a") << "p" << p;
  }
  // The recorded schedule replays strictly and stays clean.
  const auto replayed = replay_strict(make_system_factory(spec, budgets),
                                      trace);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_FALSE(replayed->violation.has_value());
}

TEST(CrashRestart, MidWriteAliasRevertsThePut) {
  // m=1 (die mid-write) is never offered by enabled() — the torn record is
  // truncated on recovery, so its post-state equals m=0 — but replay accepts
  // it and must actually exercise the revert: the rebooted p1 cannot have
  // the accept that was "written" by the dying handler.
  const ScenarioSpec spec = consensus_spec("rec-paxos", {"a", "b", "c"});
  AdversaryBudgets budgets;
  budgets.crash_restarts = 1;
  ConsensusSystem sys(spec, budgets);
  ASSERT_TRUE(sys.apply({ChoiceKind::kCrashDeliver, 0, 1, 1}));
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const Choice& c : sys.enabled()) {
      if (c.kind != ChoiceKind::kDeliver) continue;
      ASSERT_TRUE(sys.apply(c));
      ASSERT_FALSE(sys.violation().has_value());
      progressed = true;
      break;
    }
  }
  EXPECT_FALSE(sys.violation().has_value());
}

TEST(CrashRestart, EnabledOnlyWithBudgetAndStorageBackedProtocol) {
  AdversaryBudgets budgets;
  budgets.crash_restarts = 1;
  const auto offers_crash_deliver = [](const ConsensusSystem& sys) {
    for (const Choice& c : sys.enabled()) {
      if (c.kind == ChoiceKind::kCrashDeliver) return true;
    }
    return false;
  };
  ConsensusSystem rec(consensus_spec("rec-paxos", {"a", "b", "c"}), budgets);
  EXPECT_TRUE(offers_crash_deliver(rec));
  // Volatile protocols have nothing to reboot from.
  ConsensusSystem paxos(consensus_spec("paxos", {"a", "b", "c"}), budgets);
  EXPECT_FALSE(offers_crash_deliver(paxos));
  // Zero budget: never offered, and enabled() never lists m=1.
  ConsensusSystem broke(consensus_spec("rec-paxos", {"a", "b", "c"}), {});
  EXPECT_FALSE(offers_crash_deliver(broke));
  for (const Choice& c : rec.enabled()) {
    if (c.kind == ChoiceKind::kCrashDeliver) {
      EXPECT_NE(c.mask, 1u);
    }
  }
}

TEST(CrashRestart, BoundedExploreWithCrashRestartsFindsNoViolation) {
  const ScenarioSpec spec = consensus_spec("rec-paxos", {"a", "a", "a"});
  AdversaryBudgets budgets;
  budgets.crash_restarts = 1;
  ExploreConfig cfg;
  cfg.max_depth = 5;
  cfg.max_transitions = 60000;
  const auto res = explore(make_system_factory(spec, budgets), cfg);
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_GT(res.transitions, 0u);
}

TEST(CrashRestart, SwarmWithCrashRestartBudgetIsSafeAndDeterministic) {
  const ScenarioSpec spec = consensus_spec("rec-paxos", {"x", "y", "z"});
  AdversaryBudgets budgets;
  budgets.crash_restarts = 2;
  budgets.leader_flips = 1;
  const SystemFactory factory = make_system_factory(spec, budgets);
  SwarmConfig cfg;
  cfg.seed = 11;
  cfg.runs = 128;
  cfg.max_steps = 160;
  const auto a = swarm(factory, cfg);
  const auto b = swarm(factory, cfg);
  EXPECT_FALSE(a.violation.has_value());
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.runs, b.runs);
}

// --- mutants: find → shrink → replay, all through the library ---

void find_shrink_replay(const MutantCase& mutant) {
  const SystemFactory factory = make_system_factory(mutant.spec, {});
  ExploreConfig cfg;
  cfg.max_depth = mutant.max_depth;
  const auto res = explore(factory, cfg);
  ASSERT_TRUE(res.violation.has_value())
      << mutant.spec.mutant << ": a checker that can't fail is not a checker";
  EXPECT_EQ(res.violation->invariant, "agreement");

  const ShrinkResult shrunk = shrink(factory, res.trace,
                                     res.violation->invariant);
  EXPECT_LE(shrunk.trace.size(), res.trace.size());
  EXPECT_EQ(shrunk.violation.invariant, "agreement");

  // The minimized trace must replay *strictly* — every choice enabled when
  // its turn comes — and reach the same violation.
  const auto replayed = replay_strict(factory, shrunk.trace);
  ASSERT_TRUE(replayed.has_value());
  ASSERT_TRUE(replayed->violation.has_value());
  EXPECT_EQ(replayed->violation->invariant, "agreement");

  // 1-minimality: dropping any single choice loses the violation.
  for (std::size_t i = 0; i < shrunk.trace.size(); ++i) {
    std::vector<Choice> shorter = shrunk.trace;
    shorter.erase(shorter.begin() + static_cast<std::ptrdiff_t>(i));
    const ReplayOutcome out = replay_lenient(factory, shorter);
    EXPECT_TRUE(!out.violation.has_value() ||
                out.violation->invariant != "agreement")
        << "trace is not 1-minimal at choice " << i;
  }
}

TEST(Mutants, PSkipOneStepQuorumIsCaughtShrunkAndReplayable) {
  find_shrink_replay(p_mutant());
}

TEST(Mutants, PaxosIgnoreAcceptedIsCaughtShrunkAndReplayable) {
  find_shrink_replay(paxos_mutant());
}

// --- swarm ---

TEST(Swarm, IsDeterministicPerSeedAndCleanOnSafeProtocols) {
  ScenarioSpec spec = consensus_spec("p", {"a", "b", "b", "a"});
  AdversaryBudgets budgets;
  budgets.crashes = 1;
  const SystemFactory factory = make_system_factory(spec, budgets);
  SwarmConfig cfg;
  cfg.seed = 7;
  cfg.runs = 32;
  cfg.max_steps = 200;
  const auto a = swarm(factory, cfg);
  const auto b = swarm(factory, cfg);
  EXPECT_FALSE(a.violation.has_value());
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.runs, b.runs);
}

TEST(Swarm, FindsTheSeededPaxosMutant) {
  const MutantCase mutant = paxos_mutant();
  const SystemFactory factory = make_system_factory(mutant.spec, {});
  SwarmConfig cfg;
  cfg.seed = 1;
  cfg.runs = 512;
  cfg.max_steps = 128;
  const auto res = swarm(factory, cfg);
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.violation->invariant, "agreement");
  EXPECT_FALSE(res.trace.empty());
}

// --- abcast systems ---

TEST(AbcastSystem, SwarmKeepsUniformTotalOrder) {
  ScenarioSpec spec;
  spec.kind = "abcast";
  spec.protocol = "c-l";
  spec.group = GroupParams{4, 1};
  spec.submissions = {{0, "alpha"}, {1, "beta"}};
  const SystemFactory factory = make_system_factory(spec, {});
  SwarmConfig cfg;
  cfg.seed = 3;
  cfg.runs = 24;
  cfg.max_steps = 300;
  const auto res = swarm(factory, cfg);
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_GT(res.transitions, 0u);
}

// --- committed golden fixtures ---

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void check_fixture(const std::string& name,
                   const std::string& expected_violation = "agreement") {
  const std::string bytes = read_file(std::string(CHECK_FIXTURE_DIR) + "/" +
                                      name);
  ASSERT_FALSE(bytes.empty());
  std::string error;
  const auto file = parse_replay(bytes, &error);
  ASSERT_TRUE(file.has_value()) << error;
  // Canonical on disk: regenerate or fail, never hand-edit.
  EXPECT_EQ(serialize_replay(*file), bytes);
  EXPECT_EQ(file->violation, expected_violation);
  const auto replayed =
      replay_strict(make_system_factory(file->spec, {}), file->trace);
  ASSERT_TRUE(replayed.has_value()) << "fixture trace no longer strict";
  ASSERT_TRUE(replayed->violation.has_value());
  EXPECT_EQ(replayed->violation->invariant, file->violation);
}

TEST(Fixtures, PSkipOneStepQuorumStillReproduces) {
  check_fixture("p_skip_one_step_quorum.replay");
}

TEST(Fixtures, PaxosIgnoreAcceptedStillReproduces) {
  check_fixture("paxos_ignore_accepted.replay");
}

TEST(Fixtures, AbcastEquivocatingSenderStillReproduces) {
  // Net-level equivocation (per-receiver divergent p2a/p2b payload bytes)
  // splits PaxosAbcast learners and the total-order oracle catches it.
  check_fixture("abcast_equivocating_sender.replay", "total-order");
}

TEST(Fixtures, UndetectedFlipStillReproduces) {
  // With `checksums: off` a single wire flip (the x0-1m2 choice) corrupts a
  // forwarded DECIDE's step count undetected — the one-step oracle flags the
  // impossible step total. With checksums on the same trace is a clean
  // detectable drop; this fixture pins the *mutant configuration's* failure.
  check_fixture("l_undetected_flip.replay", "one-step");
}

}  // namespace
}  // namespace zdc::check
