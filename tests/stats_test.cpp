// Unit tests for online statistics, samplers and the deterministic RNG.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace zdc::common {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeMatchesSequentialAdds) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-50.0, 200.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  OnlineStats empty;
  s.merge(empty);  // merging in an empty accumulator changes nothing
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  OnlineStats target;
  target.merge(s);  // merging into an empty accumulator copies
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 3.0);
}

TEST(Sampler, ExactPercentiles) {
  Sampler s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100, reverse insert order
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Sampler, AddAfterPercentileResorts) {
  Sampler s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Sampler, PercentileOfEmptyIsZero) {
  Sampler s;
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(150), 0.0);
}

TEST(Sampler, PercentileSingleSampleIsThatSampleForAllP) {
  Sampler s;
  s.add(42.5);
  for (double p : {-10.0, 0.0, 0.001, 50.0, 99.9, 100.0, 200.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(p), 42.5) << "p = " << p;
  }
}

TEST(Sampler, PercentileClampsOutOfRangeP) {
  Sampler s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);    // below range -> min
  EXPECT_DOUBLE_EQ(s.percentile(150), 10.0);  // above range -> max
}

TEST(Sampler, PercentileNearestRankExactValues) {
  // Nearest-rank over {1..10}: rank = ceil(p/100 * 10), 1-based.
  Sampler s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(10), 1.0);    // ceil(1.0)  -> rank 1
  EXPECT_DOUBLE_EQ(s.percentile(10.1), 2.0);  // ceil(1.01) -> rank 2
  EXPECT_DOUBLE_EQ(s.percentile(25), 3.0);    // ceil(2.5)  -> rank 3
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);    // ceil(5.0)  -> rank 5
  EXPECT_DOUBLE_EQ(s.percentile(90), 9.0);    // ceil(9.0)  -> rank 9
  EXPECT_DOUBLE_EQ(s.percentile(90.1), 10.0); // ceil(9.01) -> rank 10
  EXPECT_DOUBLE_EQ(s.percentile(95), 10.0);   // ceil(9.5)  -> rank 10
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(1234);
  double sum = 0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / kSamples, 2.5, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependentOfConsumption) {
  // Forking derives a child stream; the child's outputs must not depend on
  // how much the parent is consumed *afterwards*.
  Rng parent1(5);
  Rng child1 = parent1.fork(3);
  Rng parent2(5);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 10; ++i) parent1.next_u64();  // extra consumption
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(MixSeed, Deterministic) {
  EXPECT_EQ(mix_seed(1, "paxos", 100.0, 0), mix_seed(1, "paxos", 100.0, 0));
}

TEST(MixSeed, SensitiveToEveryField) {
  const std::uint64_t base = mix_seed(1, "paxos", 100.0, 0);
  EXPECT_NE(mix_seed(2, "paxos", 100.0, 0), base);
  EXPECT_NE(mix_seed(1, "c-l", 100.0, 0), base);
  EXPECT_NE(mix_seed(1, "paxos", 150.0, 0), base);
  EXPECT_NE(mix_seed(1, "paxos", 100.0, 1), base);
}

TEST(MixSeed, NoCollisionsAcrossSweepGrid) {
  // Regression for the old `seed_base + rep * 1000003` derivation: every
  // protocol and throughput shared one stream per rep, and nearby bases
  // collided across reps (base 1 rep 1 == base 1000004 rep 0). The mixed
  // derivation must give every sweep cell a distinct seed.
  std::set<std::uint64_t> seen;
  std::size_t cells = 0;
  const std::vector<std::string> protocols = {"c-l", "c-p", "wabcast",
                                              "paxos"};
  const std::vector<double> throughputs = {20, 100, 200, 350, 500};
  for (std::uint64_t base : {1ULL, 2ULL, 1000004ULL, 2000007ULL}) {
    for (const auto& proto : protocols) {
      for (double tput : throughputs) {
        for (std::uint64_t rep = 0; rep < 5; ++rep) {
          seen.insert(mix_seed(base, proto, tput, rep));
          ++cells;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), cells);
  // The specific historical collision: base+rep*K aliasing across bases.
  EXPECT_NE(mix_seed(1, "paxos", 100.0, 1), mix_seed(1000004, "paxos", 100.0, 0));
}

TEST(FormatRow, PadsColumns) {
  std::string row = format_row({"ab", "c"}, {4, 3});
  EXPECT_EQ(row, "ab    c  ");
}

}  // namespace
}  // namespace zdc::common
