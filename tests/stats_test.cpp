// Unit tests for online statistics, samplers and the deterministic RNG.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace zdc::common {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Sampler, ExactPercentiles) {
  Sampler s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100, reverse insert order
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Sampler, AddAfterPercentileResorts) {
  Sampler s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(1234);
  double sum = 0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / kSamples, 2.5, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependentOfConsumption) {
  // Forking derives a child stream; the child's outputs must not depend on
  // how much the parent is consumed *afterwards*.
  Rng parent1(5);
  Rng child1 = parent1.fork(3);
  Rng parent2(5);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 10; ++i) parent1.next_u64();  // extra consumption
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(FormatRow, PadsColumns) {
  std::string row = format_row({"ab", "c"}, {4, 3});
  EXPECT_EQ(row, "ab    c  ");
}

}  // namespace
}  // namespace zdc::common
