// Executable rendition of the paper's Section 4 lower bound (Theorem 1 /
// Figure 1): no leader-based protocol can be one-step *and* zero-degrading.
//
// The proof's engine is a run where one process one-step-decides from a
// quorum that excludes the leader while the others, seeing only n−2f copies
// of the pivotal value, would have to adopt the leader's conflicting value to
// be zero-degrading. We build exactly that message pattern with the
// direct-drive harness (n=4, f=1, leader p0, proposals 0,1,1,1):
//
//   p3's first-round quorum: {p1, p2, p3}  → sees 1,1,1
//   p0/p1/p2's quorum:       {p0, p1, p2}  → see 0,1,1 (only n−2f ones)
//
//  * A naive "one-step + adopt-the-leader" combination decides 1 at p3 and 0
//    at the others — the agreement violation the theorem predicts.
//  * L-Consensus escapes by *waiting for the leader's message* (it is not
//    one-step here: p3 blocks) — trading Def. 1 for zero-degradation.
//  * P-Consensus escapes because the consistent quorum forces everyone onto
//    the pivotal value (it is one-step here and stays safe) — trading Ω for ◇P.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/codec.h"
#include "consensus/consensus.h"
#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "direct_harness.h"

namespace zdc::testing {
namespace {

/// The strawman from the paper's Sec. 4 intro: Brasileiro's first round glued
/// to leader-value adoption. One-step and zero-degrading — and unsafe.
class NaiveCombinedConsensus final : public consensus::Consensus {
 public:
  NaiveCombinedConsensus(ProcessId self, GroupParams group,
                         consensus::ConsensusHost& host,
                         const fd::OmegaView& omega)
      : Consensus(self, group, host), omega_(omega) {}

  [[nodiscard]] std::string name() const override { return "Naive-Combined"; }

 protected:
  void start(Value proposal) override {
    est_ = std::move(proposal);
    round_ = 1;
    send_round();
  }

  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override {
    if (tag != 1) return;
    const Round r = dec.get_u64();
    Value v = dec.get_string();
    if (!dec.done() || r < round_) return;
    auto& received = rounds_[r];
    received.emplace(from, std::move(v));
    // Evaluate exactly once, at the n−f-th message of the current round.
    if (r != round_ || received.size() != group_.quorum()) return;

    std::map<Value, std::uint32_t> counts;
    for (const auto& [p, val] : received) ++counts[val];
    for (const auto& [val, c] : counts) {
      if (c >= group_.quorum()) {
        decide_from_round(val, static_cast<std::uint32_t>(round_));
        return;
      }
    }
    // Zero-degradation attempt: adopt the leader's value whenever available,
    // unconditionally. (This is the fatal step.)
    const auto leader_it = received.find(omega_.leader());
    if (leader_it != received.end()) est_ = leader_it->second;
    rounds_.erase(r);
    ++round_;
    send_round();
  }

 private:
  void send_round() {
    common::Encoder enc;
    enc.put_u8(1);
    enc.put_u64(round_);
    enc.put_string(est_);
    broadcast_counted(enc.take());
  }

  const fd::OmegaView& omega_;
  Round round_ = 0;
  Value est_;
  std::map<Round, std::map<ProcessId, Value>> rounds_;
};

constexpr GroupParams kGroup{4, 1};

DirectNet::Factory naive_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<NaiveCombinedConsensus>(self, group, host, omega);
  };
}

/// Feeds each process the paper's first-round quorum:
/// p3 ← {p1,p2,p3}; p0,p1,p2 ← {p0,p1,p2}.
void deliver_split_round_one(DirectNet& net) {
  for (ProcessId from : {1u, 2u, 3u}) net.deliver_one(from, 3);
  for (ProcessId to : {0u, 1u, 2u}) {
    for (ProcessId from : {0u, 1u, 2u}) net.deliver_one(from, to);
  }
}

TEST(LowerBound, NaiveOneStepZeroDegradingViolatesAgreement) {
  DirectNet net(kGroup, naive_factory());
  net.set_leader_everywhere(0);
  net.propose(0, "0");
  net.propose(1, "1");
  net.propose(2, "1");
  net.propose(3, "1");

  deliver_split_round_one(net);

  // p3 one-step-decided the pivotal value.
  ASSERT_TRUE(net.decided(3));
  EXPECT_EQ(net.decision(3), "1");
  // The others adopted the leader's 0 and moved to round 2.
  EXPECT_FALSE(net.decided(0));

  // Round 2 among {p0,p1,p2} — p3's DECIDE flood is still in flight, which an
  // asynchronous network permits.
  for (ProcessId to : {0u, 1u, 2u}) {
    for (ProcessId from : {0u, 1u, 2u}) net.deliver_edge(from, to);
  }
  ASSERT_TRUE(net.decided(0));
  ASSERT_TRUE(net.decided(1));
  EXPECT_EQ(net.decision(0), "0");
  EXPECT_EQ(net.decision(1), "0");

  // Agreement is violated: 0 vs 1 — the theorem's conclusion.
  EXPECT_NE(net.decision(0), net.decision(3));
}

TEST(LowerBound, LConsensusBlocksInsteadOfDecidingOneStep) {
  DirectNet net(kGroup, [](ProcessId self, GroupParams group,
                           consensus::ConsensusHost& host,
                           const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::LConsensus>(self, group, host, omega);
  });
  net.set_leader_everywhere(0);
  net.propose(0, "0");
  net.propose(1, "1");
  net.propose(2, "1");
  net.propose(3, "1");

  deliver_split_round_one(net);

  // p3 holds n−f equal values but has *no message from the leader*: line 3 of
  // Algorithm 1 keeps it waiting — L-Consensus refuses the one-step decision
  // that would doom agreement (it is not one-step, as Theorem 1 demands).
  EXPECT_FALSE(net.decided(3));

  // Once the full run plays out, everyone agrees (on the leader's value, as
  // zero-degradation dictates in this stable run).
  net.deliver_all();
  ASSERT_TRUE(net.decided(0) && net.decided(1) && net.decided(2) &&
              net.decided(3));
  EXPECT_EQ(net.decision(3), net.decision(0));
  EXPECT_EQ(net.decision(0), "0");
}

TEST(LowerBound, PConsensusDecidesOneStepAndStaysSafe) {
  DirectNet net(kGroup, [](ProcessId self, GroupParams group,
                           consensus::ConsensusHost& host, const fd::OmegaView&,
                           const fd::SuspectView& suspects) {
    return std::make_unique<consensus::PConsensus>(self, group, host, suspects);
  });
  net.propose(0, "0");
  net.propose(1, "1");
  net.propose(2, "1");
  net.propose(3, "1");

  deliver_split_round_one(net);

  // p3 decides in one step — P-Consensus *is* one-step (Def. 1), no FD
  // consultation needed on this path.
  ASSERT_TRUE(net.decided(3));
  EXPECT_EQ(net.decision(3), "1");

  // The consistent quorum {p0,p1,p2} contains n−2f = 2 copies of the pivotal
  // value, which algorithm line 9 forces every non-decider to adopt: the
  // mechanism that lets ◇P evade the Ω lower bound.
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "1");
  }
}

}  // namespace
}  // namespace zdc::testing
