// ZDC_ASSERT failure reporting: expression + file:line always, plus the
// simulated (node, time) context when a harness published one via
// AssertContextScope — and the scope must restore on exit so nested
// harnesses and harness-free code never inherit stale context.
#include <gtest/gtest.h>

#include "common/assert.h"

namespace zdc {
namespace {

TEST(AssertContextTest, ScopePublishesAndRestores) {
  EXPECT_EQ(detail::assert_context().node, -1);
  {
    detail::AssertContextScope outer(2, 13.25);
    EXPECT_EQ(detail::assert_context().node, 2);
    EXPECT_DOUBLE_EQ(detail::assert_context().time_ms, 13.25);
    {
      detail::AssertContextScope inner(0, 99.0);
      EXPECT_EQ(detail::assert_context().node, 0);
    }
    // Inner scope restored the outer harness's context, not "unknown".
    EXPECT_EQ(detail::assert_context().node, 2);
  }
  EXPECT_EQ(detail::assert_context().node, -1);
  EXPECT_DOUBLE_EQ(detail::assert_context().time_ms, -1.0);
}

TEST(AssertDeathTest, PrintsExpressionAndLocation) {
  EXPECT_DEATH({ ZDC_ASSERT(1 + 1 == 3); },
               "zdc assertion failed: 1 \\+ 1 == 3\n  at .*assert_test");
}

TEST(AssertDeathTest, PrintsNodeAndSimTimeContext) {
  EXPECT_DEATH(
      {
        detail::AssertContextScope scope(2, 13.25);
        ZDC_ASSERT_MSG(false, "quorum lost");
      },
      "while executing node p2 at sim t=13\\.250ms\n  quorum lost");
}

TEST(AssertDeathTest, NoContextLineWithoutHarness) {
  // Outside any scope the context line is omitted entirely.
  EXPECT_DEATH({ ZDC_ASSERT(false); }, "at .*assert_test");
}

}  // namespace
}  // namespace zdc
