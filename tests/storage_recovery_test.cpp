// Kill-9 recovery harness for the durable storage stack (src/storage):
// DurableStableStorage over FaultyEnv is crashed at every scripted crash
// point of a fixed workload, reopened, and the recovered state checked
// against the legal-prefix rule (everything synced survives, at most the
// in-flight put is in doubt). The last section runs RecoveringPaxos over the
// real WAL through a crash/reboot schedule and feeds the result to the
// shared invariant library — agreement, validity and zero-degradation hold
// across a kill -9, which is the paper's recovery story end to end.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/direct_net.h"
#include "check/invariants.h"
#include "consensus/recovering_paxos.h"
#include "fault/storage_fault.h"
#include "storage/durable_storage.h"
#include "storage/env.h"
#include "storage/faulty_env.h"

namespace zdc::storage {
namespace {

constexpr char kDir[] = "db";

std::unique_ptr<DurableStableStorage> open_or_die(
    Env& env, DurableStorageOptions options = {},
    WalRecoveryInfo* info = nullptr) {
  std::unique_ptr<DurableStableStorage> store;
  const Status s = DurableStableStorage::open(env, kDir, options, &store, info);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  return store;
}

TEST(DurableStorage, PutGetSurviveReopen) {
  MemEnv env;
  auto store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  store->put("promise", "ballot-7");
  store->put("vote", "value-x");
  store->put("promise", "ballot-9");  // overwrite: last write wins
  ASSERT_TRUE(store->last_status().is_ok());
  EXPECT_GE(store->sync_count(), 3u);
  store.reset();

  store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->get("promise"), "ballot-9");
  EXPECT_EQ(store->get("vote"), "value-x");
  EXPECT_FALSE(store->get("absent").has_value());
}

TEST(DurableStorage, GroupCommitRidesManyPutsOnOneSync) {
  MemEnv env;
  auto store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  for (int i = 0; i < 16; ++i) {
    store->put_nosync("k" + std::to_string(i), "v" + std::to_string(i));
  }
  EXPECT_EQ(store->sync_count(), 0u);
  store->sync();
  EXPECT_EQ(store->sync_count(), 1u) << "sixteen puts must ride one fsync";
  store->sync();  // nothing staged: free
  EXPECT_EQ(store->sync_count(), 1u);
  store.reset();

  store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(store->get("k" + std::to_string(i)), "v" + std::to_string(i));
  }
}

TEST(DurableStorage, UnsyncedPutsDieWithTheProcess) {
  MemEnv mem;
  FaultyEnv env(mem);
  auto store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  store->put("durable", "yes");
  store->put_nosync("staged", "lost");
  store.reset();
  env.crash_now(fault::CrashKeep::kNone);  // power cut before the sync
  env.recover();

  store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->get("durable"), "yes");
  EXPECT_FALSE(store->get("staged").has_value())
      << "an unsynced put must not survive a power cut";
}

TEST(DurableStorage, CompactionBoundsRecoveryAndPreservesState) {
  MemEnv env;
  DurableStorageOptions options;
  options.segment_bytes = 128;
  auto store = open_or_die(env, options);
  ASSERT_NE(store, nullptr);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    const std::string value = "v" + std::to_string(i);
    store->put(key, value);
    model[key] = value;
  }
  ASSERT_TRUE(store->compact().is_ok());
  store->put("post", "compact");
  model["post"] = "compact";
  ASSERT_TRUE(store->last_status().is_ok());
  store.reset();

  WalRecoveryInfo info;
  store = open_or_die(env, options, &info);
  ASSERT_NE(store, nullptr);
  // Recovery is O(state), not O(history): only the snapshot plus the one
  // post-compaction record are read, not the 60-put history.
  EXPECT_EQ(info.records_replayed, 1u);
  for (const auto& [key, value] : model) {
    EXPECT_EQ(store->get(key), value) << key;
  }

  // Pre-compaction segments are really gone from the media: everything left
  // is at or above the snapshot's segment, and no .tmp leftovers exist.
  std::vector<std::string> names;
  ASSERT_TRUE(env.list_dir(kDir, &names).is_ok());
  std::uint64_t snap_index = 0;
  bool has_snapshot = false;
  for (const std::string& name : names) {
    has_snapshot |=
        DurableStableStorage::parse_snapshot_name(name, &snap_index);
  }
  ASSERT_TRUE(has_snapshot);
  std::uint64_t index = 0;
  for (const std::string& name : names) {
    if (Wal::parse_segment_name(name, &index)) {
      EXPECT_GE(index, snap_index) << name;
    }
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(DurableStorage, AutoCompactionTriggersOnAppendedBytes) {
  MemEnv env;
  DurableStorageOptions options;
  options.segment_bytes = 128;
  options.compact_after_bytes = 512;
  auto store = open_or_die(env, options);
  ASSERT_NE(store, nullptr);
  for (int i = 0; i < 80; ++i) {
    store->put("key", "value-" + std::to_string(i));
  }
  ASSERT_TRUE(store->last_status().is_ok());
  std::vector<std::string> names;
  ASSERT_TRUE(env.list_dir(kDir, &names).is_ok());
  bool has_snapshot = false;
  std::uint64_t snap_index = 0;
  for (const std::string& name : names) {
    has_snapshot |= DurableStableStorage::parse_snapshot_name(name, &snap_index);
  }
  EXPECT_TRUE(has_snapshot) << "compaction never triggered";
  store.reset();
  store = open_or_die(env, options);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->get("key"), "value-79");
}

TEST(DurableStorage, StaleTmpSnapshotIsSweptOnOpen) {
  MemEnv env;
  auto store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  store->put("k", "v");
  store.reset();

  // A crash between writing snap-*.tmp and the commit rename leaves the tmp
  // behind; open must ignore and delete it, never load it.
  const std::string tmp = join_path(kDir, "snap-000042.tmp");
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.new_writable(tmp, /*truncate=*/true, &file).is_ok());
  ASSERT_TRUE(file->append("half-written garbage").is_ok());
  file.reset();

  store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->get("k"), "v");
  EXPECT_FALSE(env.file_exists(tmp));
}

TEST(DurableStorage, BitFlipOnReadFailsLoudly) {
  MemEnv mem;
  FaultyEnv env(mem);
  {
    auto store = open_or_die(env);
    ASSERT_NE(store, nullptr);
    store->put("a", "first");
    store->put("b", "second");  // a valid frame *after* the one we corrupt
    ASSERT_TRUE(store->last_status().is_ok());
  }
  fault::StorageFaultPlan plan;
  std::string error;
  // Read #1 during recovery is the segment scan; flipping a bit of the first
  // frame's CRC makes it invalid with a valid frame following — mid-segment
  // damage, which must be corruption, not a silent truncation.
  ASSERT_TRUE(fault::parse_storage_fault_plan("@read 1 flip byte=0 bit=3",
                                              &plan, &error))
      << error;
  env.arm(plan);
  std::unique_ptr<DurableStableStorage> store;
  const Status s = DurableStableStorage::open(env, kDir, {}, &store);
  EXPECT_EQ(s.code(), Status::Code::kCorruption) << s.to_string();
}

// --- every scripted crash point of a fixed workload ---

// The workload: 8 puts (each = 1 WAL append + 1 fsync on this path), keys
// cycling over a 3-key space. Legal post-recovery states are exactly the
// prefixes of this history; a crash during put k must recover to state k-1
// (write lost) or state k (write survived), never anything else.
constexpr int kWorkloadPuts = 8;

std::map<std::string, std::string> state_after(int puts) {
  std::map<std::string, std::string> state;
  for (int i = 0; i < puts; ++i) {
    state["key" + std::to_string(i % 3)] = "value" + std::to_string(i);
  }
  return state;
}

void run_workload_and_check(const std::string& plan_text) {
  SCOPED_TRACE(plan_text);
  MemEnv mem;
  FaultyEnv env(mem);
  fault::StorageFaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::parse_storage_fault_plan(plan_text, &plan, &error))
      << error;
  env.arm(plan);

  auto store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  int completed = 0;
  for (int i = 0; i < kWorkloadPuts; ++i) {
    store->put("key" + std::to_string(i % 3), "value" + std::to_string(i));
    if (!store->last_status().is_ok()) break;  // the process is dead
    completed = i + 1;
  }
  ASSERT_FALSE(store->last_status().is_ok())
      << "the scripted crash point never fired";
  EXPECT_EQ(store->last_status().code(), Status::Code::kCrashed);
  store.reset();
  env.recover();

  store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  std::map<std::string, std::string> recovered;
  for (int k = 0; k < 3; ++k) {
    const std::string key = "key" + std::to_string(k);
    if (const auto value = store->get(key)) recovered[key] = *value;
  }
  const auto before = state_after(completed);
  const auto after = state_after(completed + 1);
  // Every put whose call returned is durable (the acceptors' contract), so
  // the recovered state is `before` exactly, or `after` when the in-flight
  // write happened to survive (keep=all / sync-after points). Nothing else.
  EXPECT_TRUE(recovered == before || recovered == after)
      << "recovered state is not a legal prefix (completed=" << completed
      << ")";
}

TEST(Kill9Recovery, EveryScriptedWriteCrashPointRecoversALegalPrefix) {
  for (int k = 1; k <= kWorkloadPuts; ++k) {
    for (const char* mode : {"crash", "crash torn=3", "crash keep=all"}) {
      run_workload_and_check("@write " + std::to_string(k) + " " + mode);
    }
  }
}

TEST(Kill9Recovery, EveryScriptedSyncCrashPointRecoversALegalPrefix) {
  for (int k = 1; k <= kWorkloadPuts; ++k) {
    run_workload_and_check("@sync " + std::to_string(k) + " crash");
    run_workload_and_check("@sync " + std::to_string(k) + " crash after");
  }
}

TEST(Kill9Recovery, SyncCrashAfterMakesTheInFlightPutDurable) {
  // Sharper than the prefix rule: dying just AFTER fsync #k means put #k is
  // on the media, so recovery must land on state k exactly.
  MemEnv mem;
  FaultyEnv env(mem);
  fault::StorageFaultPlan plan;
  ASSERT_TRUE(
      fault::parse_storage_fault_plan("@sync 3 crash after", &plan, nullptr));
  env.arm(plan);
  auto store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  for (int i = 0; i < kWorkloadPuts; ++i) {
    store->put("key" + std::to_string(i % 3), "value" + std::to_string(i));
    if (!store->last_status().is_ok()) break;
  }
  store.reset();
  env.recover();
  store = open_or_die(env);
  ASSERT_NE(store, nullptr);
  const auto expected = state_after(3);
  for (const auto& [key, value] : expected) {
    EXPECT_EQ(store->get(key), value) << key;
  }
}

// --- RecoveringPaxos over the real WAL: kill -9 a replica, reboot, check
// --- the consensus invariants across the incarnations ---

/// Per-process durable stack: MemEnv media, FaultyEnv crash layer, durable
/// storage — owned outside the protocol so a "reboot" (reopen + fresh
/// protocol instance over the same storage) sees what survived.
struct DurableFleet {
  explicit DurableFleet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      mems.push_back(std::make_unique<MemEnv>());
      envs.push_back(std::make_unique<FaultyEnv>(*mems.back()));
      stores.emplace_back();
      reopen(i);
    }
  }

  void reopen(std::uint32_t p) {
    stores[p].reset();
    const Status s =
        DurableStableStorage::open(*envs[p], kDir, {}, &stores[p]);
    ASSERT_TRUE(s.is_ok()) << "p" << p << ": " << s.to_string();
  }

  check::DirectNet::Factory factory() {
    return [this](ProcessId self, GroupParams group,
                  consensus::ConsensusHost& host, const fd::OmegaView& omega,
                  const fd::SuspectView&) {
      return std::unique_ptr<consensus::Consensus>(
          std::make_unique<consensus::RecoveringPaxosConsensus>(
              self, group, host, omega, *stores[self]));
    };
  }

  std::vector<std::unique_ptr<MemEnv>> mems;
  std::vector<std::unique_ptr<FaultyEnv>> envs;
  std::vector<std::unique_ptr<DurableStableStorage>> stores;
};

check::ConsensusObs observe(const check::DirectNet& net,
                            std::vector<Value> proposals, bool stable) {
  check::ConsensusObs obs;
  obs.group = net.group();
  obs.proposals = std::move(proposals);
  obs.stable = stable;
  obs.quiescent = true;
  obs.procs.resize(obs.group.n);
  for (ProcessId p = 0; p < obs.group.n; ++p) {
    const consensus::Consensus& proto = net.protocol(p);
    obs.procs[p].crashed = net.crashed(p);
    obs.procs[p].proposed = proto.proposed();
    obs.procs[p].decided = proto.decided();
    if (proto.decided()) {
      obs.procs[p].decision = proto.decision();
      obs.procs[p].steps = proto.decision_steps();
      obs.procs[p].path = proto.decision_path();
      obs.procs[p].decision_deliveries = 1;
    }
  }
  return obs;
}

TEST(DurableFleet, CleanRunMeetsZeroDegradationOverTheRealWal) {
  DurableFleet fleet(3);
  check::DirectNet net(GroupParams{3, 1}, fleet.factory());
  net.set_leader_everywhere(0);
  const std::vector<Value> proposals = {"a", "b", "c"};
  for (ProcessId p = 0; p < 3; ++p) net.propose(p, proposals[p]);
  net.deliver_all();

  // check_consensus applies agreement/validity/integrity AND the two-step
  // stable bound (zero-degradation) — paying for durability with fsyncs,
  // not with extra communication steps, is the paper's whole point.
  const auto violation = check::check_consensus(
      observe(net, proposals, /*stable=*/true),
      check::step_bounds_for("rec-paxos"));
  ASSERT_FALSE(violation.has_value())
      << violation->invariant << ": " << violation->detail;
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "a");
    EXPECT_GE(fleet.stores[p]->sync_count(), 1u)
        << "acceptance must hit the WAL before the 2b leaves p" << p;
  }
}

/// The recovery schedule, parameterized by how p1 dies:
///   ballot 0: p0 leads, p0+p1 accept "zero"; p1's 2b reaches p0 only if
///   `after_2b_escaped` — then p0 decides. p1 is killed (power cut), its
///   un-escaped traffic dies with it, it reboots from the WAL and re-proposes.
///   Ballot 2: p2 (own leader) runs phase 1 against {p1, p2} and drives to a
///   decision. The invariants must hold whatever p1's WAL retained.
void run_kill9_schedule(bool after_2b_escaped, const Value& expected_p2) {
  SCOPED_TRACE(after_2b_escaped ? "after 2b escaped" : "before 2b escaped");
  DurableFleet fleet(3);
  check::DirectNet net(GroupParams{3, 1}, fleet.factory());
  net.fd(0).omega.value = 0;
  net.fd(1).omega.value = 0;
  net.fd(2).omega.value = 2;
  const std::vector<Value> proposals = {"zero", "one", "two"};

  net.propose(0, "zero");
  net.propose(1, "one");

  ASSERT_TRUE(net.deliver_one(0, 0));  // 2a -> p0: accepts, 2b out
  ASSERT_TRUE(net.deliver_one(0, 1));  // 2a -> p1: accepts (WAL sync), 2b out
  ASSERT_TRUE(net.deliver_one(0, 0));  // own 2b -> p0
  if (after_2b_escaped) {
    ASSERT_TRUE(net.deliver_one(1, 0));  // p1's 2b -> p0: majority, decides
    ASSERT_TRUE(net.decided(0));
    ASSERT_EQ(net.decision(0), "zero");
  }

  // kill -9 p1 (and silence p0, whose remaining traffic never leaves).
  net.crash(0);
  net.crash(1);
  for (ProcessId to = 0; to < 3; ++to) {
    net.drop_edge(0, to);  // p0's unsent traffic dies with its silence
    net.drop_edge(1, to);  // p1 died: nothing un-escaped gets out
  }
  fleet.envs[1]->crash_now(fault::CrashKeep::kNone);
  fleet.envs[1]->recover();
  fleet.reopen(1);  // the WAL replays whatever the write-ahead sync saved
  net.replace_protocol(1, fleet.factory());
  net.propose(1, "one");

  net.propose(2, "two");
  net.deliver_all();

  ASSERT_TRUE(net.decided(2));
  EXPECT_EQ(net.decision(2), expected_p2);
  // Uniform agreement across incarnations, via the shared invariant library:
  // p0's pre-silence decision (if any) binds p2's.
  check::ConsensusObs obs = observe(net, proposals, /*stable=*/false);
  const auto violation = check::check_consensus(
      obs, check::step_bounds_for("rec-paxos"));
  ASSERT_FALSE(violation.has_value())
      << violation->invariant << ": " << violation->detail;
}

TEST(DurableFleet, RecoveredWalPromiseForcesTheDecidedValue) {
  // p1's acceptance was synced to the WAL *before* its 2b escaped, so after
  // the kill -9 its phase-1 answer resurrects ("zero", ballot 0) and p2 is
  // forced onto the decided value.
  run_kill9_schedule(/*after_2b_escaped=*/true, "zero");
}

TEST(DurableFleet, UndecidedCrashLeavesTheNextBallotFree) {
  // p1 died before its 2b reached anyone: no decision exists, and the WAL
  // still resurrects the acceptance — phase 1 re-proposes "zero" even though
  // nothing forced it. Safety holds either way; this pins the actual value
  // so a change in recovery behavior is noticed.
  run_kill9_schedule(/*after_2b_escaped=*/false, "zero");
}

}  // namespace
}  // namespace zdc::storage
