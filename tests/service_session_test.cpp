// Unit tests for the client-session layer: envelope framing round-trips,
// the exactly-once dedup discipline (duplicate / stale / advance), the
// order-based tombstone GC rule, and serialize/restore round-trips that
// carry the dedup table across a simulated crash.
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/kv_store.h"
#include "core/rsm.h"
#include "service/session.h"

namespace zdc::rsm {
namespace {

// Inner machine that counts real applies — the probe for "the retry never
// reached the application".
class CountingMachine final : public core::StateMachine {
 public:
  std::string apply(const std::string& command) override {
    ++applies_;
    last_ = command;
    return "applied:" + std::to_string(applies_);
  }
  [[nodiscard]] std::string snapshot() const override {
    return std::to_string(applies_) + ":" + last_;
  }
  [[nodiscard]] std::string serialize() const override { return snapshot(); }
  [[nodiscard]] bool restore(const std::string& image) override {
    const auto colon = image.find(':');
    if (colon == std::string::npos) return false;
    applies_ = std::stoull(image.substr(0, colon));
    last_ = image.substr(colon + 1);
    return true;
  }
  [[nodiscard]] std::string apply_read(const std::string& query) const override {
    return "read:" + query + ":" + std::to_string(applies_);
  }
  [[nodiscard]] std::uint64_t applies() const { return applies_; }

 private:
  std::uint64_t applies_ = 0;
  std::string last_;
};

SessionStateMachine make_session(std::uint64_t gc_window = 8192) {
  return SessionStateMachine(std::make_unique<CountingMachine>(), gc_window);
}

const CountingMachine& counter(const SessionStateMachine& m) {
  return static_cast<const CountingMachine&>(m.inner());
}

TEST(Envelope, RoundTripsAllKinds) {
  const std::vector<Envelope> cases = {
      {EnvelopeKind::kBare, 0, 0, "raw bytes"},
      {EnvelopeKind::kRequest, 7, 42, std::string("bin\0ary", 7)},
      {EnvelopeKind::kRead, 1, 1, ""},
      {EnvelopeKind::kClose, 99, 0, ""},
  };
  for (const Envelope& in : cases) {
    Envelope out;
    ASSERT_TRUE(decode_envelope(encode_envelope(in), &out));
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.client, in.client);
    EXPECT_EQ(out.seqno, in.seqno);
    EXPECT_EQ(out.command, in.command);
  }
}

TEST(Envelope, RejectsMalformedBytes) {
  Envelope out;
  EXPECT_FALSE(decode_envelope("", &out));
  EXPECT_FALSE(decode_envelope("x", &out));
  // Valid frame with trailing garbage must be refused, not truncated.
  std::string frame = frame_request(1, 1, "cmd");
  EXPECT_TRUE(decode_envelope(frame, &out));
  frame.push_back('!');
  EXPECT_FALSE(decode_envelope(frame, &out));
  // Out-of-range kind byte.
  std::string bad = encode_envelope({EnvelopeKind::kBarrier, 0, 0, ""});
  bad[0] = 17;
  EXPECT_FALSE(decode_envelope(bad, &out));
}

TEST(Envelope, BarrierTokenRoundTrips) {
  const std::string framed = frame_barrier(3, 12);
  Envelope e;
  ASSERT_TRUE(decode_envelope(framed, &e));
  EXPECT_EQ(e.kind, EnvelopeKind::kBarrier);
  ProcessId replica = 0;
  std::uint64_t reign = 0;
  ASSERT_TRUE(decode_barrier_token(e.command, &replica, &reign));
  EXPECT_EQ(replica, 3u);
  EXPECT_EQ(reign, 12u);
  EXPECT_FALSE(decode_barrier_token("short", &replica, &reign));
}

TEST(SessionDedup, DuplicateReturnsCachedReplyWithoutReapplying) {
  SessionStateMachine m = make_session();
  const std::string first = m.apply(frame_request(1, 1, "cmd"));
  EXPECT_EQ(first, "applied:1");
  // The retry: identical envelope, must replay the cached reply.
  EXPECT_EQ(m.apply(frame_request(1, 1, "cmd")), first);
  EXPECT_EQ(counter(m).applies(), 1u);
  EXPECT_EQ(m.duplicates_suppressed(), 1u);
}

TEST(SessionDedup, StaleSeqnoRefused) {
  SessionStateMachine m = make_session();
  m.apply(frame_request(1, 5, "a"));
  EXPECT_EQ(m.apply(frame_request(1, 4, "b")), kReplyStale);
  EXPECT_EQ(counter(m).applies(), 1u);
}

TEST(SessionDedup, AdvancingSeqnoAppliesAndReplacesCache) {
  SessionStateMachine m = make_session();
  m.apply(frame_request(1, 1, "a"));
  const std::string second = m.apply(frame_request(1, 2, "b"));
  EXPECT_EQ(second, "applied:2");
  // Only the LATEST reply is cached (per-session ordering: seqno 1 can
  // only come back as stale now).
  EXPECT_EQ(m.apply(frame_request(1, 1, "a")), kReplyStale);
  EXPECT_EQ(m.apply(frame_request(1, 2, "b")), second);
  EXPECT_EQ(counter(m).applies(), 2u);
}

TEST(SessionDedup, SessionsAreIndependent) {
  SessionStateMachine m = make_session();
  m.apply(frame_request(1, 1, "a"));
  EXPECT_EQ(m.apply(frame_request(2, 1, "b")), "applied:2");
  EXPECT_EQ(m.open_sessions(), 2u);
}

TEST(SessionDedup, OrderedReadDedupsLikeWrite) {
  SessionStateMachine m = make_session();
  const std::string reply = m.apply(frame_read(1, 1, "q"));
  EXPECT_EQ(reply, "read:q:0");
  EXPECT_EQ(m.apply(frame_read(1, 1, "q")), reply);
  // apply_read is const — no inner applies happened.
  EXPECT_EQ(counter(m).applies(), 0u);
  EXPECT_EQ(m.duplicates_suppressed(), 1u);
}

TEST(SessionDedup, BareEnvelopePassesThroughUnframed) {
  SessionStateMachine m = make_session();
  EXPECT_EQ(m.apply(encode_envelope({EnvelopeKind::kBare, 0, 0, "raw"})),
            "applied:1");
  EXPECT_EQ(m.open_sessions(), 0u);
}

TEST(SessionDedup, UndecodableCommandRefusedDeterministically) {
  SessionStateMachine m = make_session();
  EXPECT_EQ(m.apply("garbage"), kReplyBadEnvelope);
  EXPECT_EQ(counter(m).applies(), 0u);
}

TEST(SessionGc, CloseTombstonesAndKeepsDeduping) {
  SessionStateMachine m = make_session(/*gc_window=*/4);
  const std::string last = m.apply(frame_request(1, 3, "final"));
  EXPECT_EQ(m.apply(frame_close(1)), kReplyClosed);
  // The entry survives as a tombstone: a late in-flight retry of the final
  // command, ordered AFTER the close, must still hit the cache.
  EXPECT_EQ(m.open_sessions(), 1u);
  EXPECT_EQ(m.apply(frame_request(1, 3, "final")), last);
  EXPECT_EQ(counter(m).applies(), 1u);
  EXPECT_EQ(m.apply(frame_close(1)), kReplyClosed);  // idempotent
}

TEST(SessionGc, TombstoneErasedAfterWindow) {
  SessionStateMachine m = make_session(/*gc_window=*/3);
  m.apply(frame_request(1, 1, "a"));
  m.apply(frame_close(1));  // close at apply index 2
  EXPECT_EQ(m.open_sessions(), 1u);
  // Unrelated traffic advances the apply clock past close + window.
  m.apply(frame_request(2, 1, "b"));  // index 3
  m.apply(frame_request(2, 2, "c"));  // index 4
  EXPECT_EQ(m.open_sessions(), 2u);
  m.apply(frame_request(2, 3, "d"));  // index 5 = 2 + 3: GC fires
  EXPECT_EQ(m.open_sessions(), 1u);
}

TEST(SessionGc, ReopenBeforeGcClearsTombstone) {
  SessionStateMachine m = make_session(/*gc_window=*/3);
  m.apply(frame_request(1, 1, "a"));
  m.apply(frame_close(1));  // close at index 2
  // The client id comes back with fresh traffic before the window passes:
  // the entry is live again and must NOT be erased when the old close ages.
  EXPECT_EQ(m.apply(frame_request(1, 2, "b")), "applied:2");
  m.apply(frame_request(2, 1, "x"));
  m.apply(frame_request(2, 2, "y"));
  m.apply(frame_request(2, 3, "z"));  // old close aged out by now
  EXPECT_EQ(m.open_sessions(), 2u);
  EXPECT_EQ(m.apply(frame_request(1, 2, "b")), "applied:2");
}

TEST(SessionGc, TableBoundedByWindowUnderChurn) {
  const std::uint64_t kWindow = 16;
  SessionStateMachine m = make_session(kWindow);
  std::size_t peak = 0;
  // 500 sessions, each: one request + one close. Without GC the table
  // would grow to 500; with the order-based rule it stays near the window.
  for (ClientId c = 1; c <= 500; ++c) {
    m.apply(frame_request(c, 1, "w"));
    m.apply(frame_close(c));
    peak = std::max(peak, m.open_sessions());
  }
  EXPECT_LE(peak, kWindow + 2);
  EXPECT_LE(m.open_sessions(), kWindow + 2);
}

TEST(SessionSnapshot, SerializeRestoreRoundTripsDedupState) {
  SessionStateMachine m = make_session(/*gc_window=*/4);
  const std::string r1 = m.apply(frame_request(1, 2, "a"));
  m.apply(frame_request(2, 1, "b"));
  m.apply(frame_close(2));

  SessionStateMachine fresh = make_session(/*gc_window=*/4);
  ASSERT_TRUE(fresh.restore(m.serialize()));
  EXPECT_EQ(fresh.snapshot(), m.snapshot());
  EXPECT_EQ(fresh.serialize(), m.serialize());

  // The crash-survival property: the restored replica still refuses the
  // in-flight retry and still GCs the old tombstone on schedule.
  EXPECT_EQ(fresh.apply(frame_request(1, 2, "a")), r1);
  EXPECT_EQ(counter(fresh).applies(), 2u);
  fresh.apply(frame_request(1, 3, "c"));
  fresh.apply(frame_request(1, 4, "d"));
  fresh.apply(frame_request(1, 5, "e"));  // index 7 = close(3) + window(4)
  EXPECT_EQ(fresh.open_sessions(), 1u);
}

TEST(SessionSnapshot, RestoreRejectsCorruptImage) {
  SessionStateMachine m = make_session();
  m.apply(frame_request(1, 1, "a"));
  std::string image = m.serialize();
  SessionStateMachine fresh = make_session();
  EXPECT_FALSE(fresh.restore(image + "x"));
  EXPECT_FALSE(fresh.restore("short"));
}

TEST(SessionSnapshot, CanonicalAcrossGcCompaction) {
  // Two machines reach the same logical state along different paths (one
  // compacted its drained GC prefix, one did not): equal bytes either way.
  SessionStateMachine a = make_session(/*gc_window=*/1);
  SessionStateMachine b = make_session(/*gc_window=*/1);
  for (ClientId c = 1; c <= 100; ++c) {
    a.apply(frame_request(c, 1, "w"));
    a.apply(frame_close(c));
    b.apply(frame_request(c, 1, "w"));
    b.apply(frame_close(c));
  }
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(SessionObserver, FiresInOrderWithReplies) {
  SessionStateMachine m = make_session();
  std::vector<std::pair<std::uint64_t, std::string>> seen;
  m.set_observer([&seen](const Envelope& e, const std::string& reply) {
    seen.emplace_back(e.seqno, reply);
  });
  m.apply(frame_request(1, 1, "a"));
  m.apply(frame_request(1, 1, "a"));  // duplicate also observed
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::string>{1, "applied:1"}));
  EXPECT_EQ(seen[1], seen[0]);
}

TEST(SessionKv, WrapsKvStoreEndToEnd) {
  SessionStateMachine m(std::make_unique<core::KvStateMachine>());
  EXPECT_EQ(m.apply(frame_request(1, 1, core::kv_put("k", "v"))), "ok");
  EXPECT_EQ(m.apply(frame_request(1, 2, core::kv_get("k"))), "value:v");
  // Fast-path read never touches the dedup table.
  EXPECT_EQ(m.apply_read(core::kv_get("k")), "value:v");
  EXPECT_EQ(m.open_sessions(), 1u);
}

}  // namespace
}  // namespace zdc::rsm
