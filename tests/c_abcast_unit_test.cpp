// Message-level unit tests for the C-Abcast skeleton (Algorithm 3): round
// progression, the empty-round gating of lines 14-15, estimate merging (line
// 16), catch-up through flooded decisions, and instance pruning.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "abcast/c_abcast.h"
#include "direct_abcast_harness.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

DirectAbcastNet::Factory c_abcast_l_factory() {
  return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return abcast::make_c_abcast_l(self, group, host, omega);
  };
}

abcast::CAbcast& as_cabcast(abcast::AtomicBroadcast& p) {
  return static_cast<abcast::CAbcast&>(p);
}

TEST(CAbcastUnit, IdleUntilFirstBroadcast) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  // Nothing a-broadcast: nobody w-broadcasts, nobody sends (lines 14-15).
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(net.pending_wab(p), 0u);
    for (ProcessId q = 0; q < 4; ++q) EXPECT_EQ(net.pending(p, q), 0u);
  }
}

TEST(CAbcastUnit, SingleMessageFlowsThroughOneRound) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  const abcast::MsgId id = net.a_broadcast(2, "hello");
  // p2 w-broadcast its estimate for round 1.
  EXPECT_EQ(net.pending_wab(2), 1u);
  net.settle();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_EQ(net.delivered(p).size(), 1u) << "p" << p;
    EXPECT_EQ(net.delivered(p)[0].id, id);
    EXPECT_EQ(net.delivered(p)[0].payload, "hello");
    EXPECT_EQ(as_cabcast(net.protocol(p)).current_round(), 2u);
  }
  EXPECT_TRUE(net.total_order_ok());
}

TEST(CAbcastUnit, WokenProcessesParticipateWithEmptyEstimates) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  net.a_broadcast(0, "m");
  // Deliver only p0's w-broadcast; the idle processes wake (line 15) and
  // w-broadcast their empty estimates to participate in round 1.
  ASSERT_TRUE(net.deliver_wab(0));
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(net.pending_wab(p), 1u) << "woken p" << p << " must w-broadcast";
  }
  net.settle();
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 1u);
  }
}

TEST(CAbcastUnit, ConcurrentBroadcastsAllDelivered) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  std::vector<abcast::MsgId> ids;
  for (ProcessId p = 0; p < 4; ++p) {
    ids.push_back(net.a_broadcast(p, "from-" + std::to_string(p)));
  }
  net.settle();
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 4u) << "p" << p;
  }
  EXPECT_TRUE(net.total_order_ok());
  // Integrity: exactly the broadcast ids, no duplicates.
  auto history = net.delivered(0);
  std::sort(history.begin(), history.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(history[i].id, ids[i]);
  }
}

TEST(CAbcastUnit, BatchesAccumulateWhileRoundRuns) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  net.a_broadcast(0, "first");
  // While round 1 is still undelivered, more messages pile up at p0 and p1.
  net.a_broadcast(0, "second");
  net.a_broadcast(1, "third");
  net.settle();
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 3u) << "p" << p;
  }
  EXPECT_TRUE(net.total_order_ok());
}

TEST(CAbcastUnit, OracleCollisionStillDeliversConsistently) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  net.set_leader_everywhere(0);
  const abcast::MsgId a = net.a_broadcast(0, "a");
  const abcast::MsgId b = net.a_broadcast(3, "b");
  // Collision: p0's round-1 estimate reaches p0/p1 first, p3's reaches p2/p3
  // first — proposals for consensus 1 differ.
  const std::vector<ProcessId> left = {0, 1};
  const std::vector<ProcessId> right = {2, 3};
  ASSERT_TRUE(net.deliver_wab(0, &left));
  ASSERT_TRUE(net.deliver_wab(3, &right));
  net.settle();
  // Both messages end up delivered everywhere, in the same order.
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_EQ(net.delivered(p).size(), 2u) << "p" << p;
  }
  EXPECT_TRUE(net.total_order_ok());
  const auto& h = net.delivered(0);
  EXPECT_TRUE((h[0].id == a && h[1].id == b) ||
              (h[0].id == b && h[1].id == a));
}

TEST(CAbcastUnit, LaggardCatchesUpThroughFloodedDecisions) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  // Cut p3 off from everything except eventually re-delivered traffic: run
  // two rounds among p0..p2 while p3 receives nothing.
  const abcast::MsgId m1 = net.a_broadcast(0, "one");
  // Deliver only among 0..2 and their oracle traffic to 0..2.
  const std::vector<ProcessId> trio = {0, 1, 2};
  for (int iter = 0; iter < 200; ++iter) {
    bool progressed = false;
    for (ProcessId from = 0; from < 4; ++from) {
      if (net.pending_wab(from) > 0 && net.deliver_wab(from, &trio)) {
        progressed = true;
      }
      for (ProcessId to : trio) {
        if (net.deliver_one(from, to)) progressed = true;
      }
    }
    if (!progressed) break;
  }
  for (ProcessId p : trio) {
    ASSERT_EQ(net.delivered(p).size(), 1u) << "p" << p;
  }
  EXPECT_TRUE(net.delivered(3).empty());

  // Now p3 hears the world again: the DECIDE floods and (if needed) the
  // instance traffic let it catch up without having proposed anything.
  net.settle();
  ASSERT_EQ(net.delivered(3).size(), 1u);
  EXPECT_EQ(net.delivered(3)[0].id, m1);
  EXPECT_TRUE(net.total_order_ok());
}

TEST(CAbcastUnit, ManyRoundsAdvanceAndPruneInstances) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  for (int round = 0; round < 12; ++round) {
    net.a_broadcast(static_cast<ProcessId>(round % 4),
                    "m" + std::to_string(round));
    net.settle();
  }
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 12u);
    EXPECT_EQ(as_cabcast(net.protocol(p)).current_round(), 13u);
  }
  EXPECT_TRUE(net.total_order_ok());
  // Stale traffic for long-pruned instances must be ignored, not crash.
  common::Encoder enc;
  enc.put_u8(1);   // kConsTag
  enc.put_u64(1);  // instance 1, far below round 13
  enc.put_raw("zz");
  net.protocol(0).on_message(1, enc.bytes());
  EXPECT_EQ(net.delivered(0).size(), 12u);
}

TEST(CAbcastUnit, MalformedTransportAndOracleInputIgnored) {
  DirectAbcastNet net(kGroup, c_abcast_l_factory());
  net.protocol(0).on_message(1, "");
  net.protocol(0).on_message(1, "x");
  net.protocol(0).on_w_deliver(1 << 20, 1, "not-a-msgset");
  net.a_broadcast(0, "still-works");
  net.settle();
  EXPECT_EQ(net.delivered(0).size(), 1u);
}

}  // namespace
}  // namespace zdc::testing
