// End-to-end tests for rsm::ServiceGroup / rsm::Client on the threaded
// runtime: the stable client API (execute / read / close_session), dedup
// across duplicate submissions and across a kill-9 restart (WAL-backed),
// the read-index fast path actually serving without consensus, and the
// downgrade path keeping reads correct through a leader crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/stable_storage.h"
#include "core/kv_store.h"
#include "core/rsm.h"
#include "obs/run_options.h"
#include "runtime/runtime_node.h"
#include "service/service_group.h"
#include "service/session.h"
#include "storage/durable_storage.h"
#include "storage/env.h"

namespace zdc::rsm {
namespace {

// Per-process MemEnvs standing in for disks; they outlive crashes and
// restarts, which is what makes WAL-backed dedup survival testable.
struct Disks {
  explicit Disks(std::uint32_t n) {
    for (std::uint32_t p = 0; p < n; ++p) {
      envs.push_back(std::make_unique<storage::MemEnv>());
    }
  }

  common::StorageFactory factory() {
    return [this](ProcessId p) -> std::unique_ptr<common::StableStorage> {
      std::unique_ptr<storage::DurableStableStorage> store;
      const storage::Status s =
          storage::DurableStableStorage::open(*envs[p], "db", {}, &store);
      ZDC_ASSERT_MSG(s.is_ok(), "WAL reopen failed");
      return store;
    };
  }

  std::vector<std::unique_ptr<storage::MemEnv>> envs;
};

// Inner machine whose double-apply is visible as state: applies_ counts
// real (non-deduped) executions and survives serialize/restore, so a WAL
// replay or snapshot transfer keeps the evidence.
class CountingMachine final : public core::StateMachine {
 public:
  std::string apply(const std::string& command) override {
    static_cast<void>(command);
    ++applies_;
    return "applied:" + std::to_string(applies_);
  }
  [[nodiscard]] std::string snapshot() const override {
    return std::to_string(applies_);
  }
  [[nodiscard]] std::string serialize() const override { return snapshot(); }
  [[nodiscard]] bool restore(const std::string& image) override {
    applies_ = std::stoull(image);
    return true;
  }
  [[nodiscard]] std::uint64_t applies() const { return applies_; }

 private:
  std::uint64_t applies_ = 0;
};

bool wait_ms(double ms) {
  return runtime::RuntimeCluster::wait_until([] { return false; }, ms);
}

TEST(ServiceRuntime, ExecuteReadCloseEndToEnd) {
  const auto opts =
      zdc::RunOptions{}.with_group(4, 1).with_seed(3).with_sessions();
  ServiceGroup svc(opts,
                   [] { return std::make_unique<core::KvStateMachine>(); });
  svc.start();

  Client c = svc.client();
  EXPECT_EQ(c.execute(core::kv_put("k", "v1")), "ok");
  EXPECT_EQ(c.execute(core::kv_get("k")), "value:v1");
  // read_index off: every read is consensus-ordered, still linearizable.
  EXPECT_EQ(c.read(core::kv_get("k")), "value:v1");
  c.close_session();

  const ServiceGroup::PathStats s = svc.stats();
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(s.fast_reads, 0u);
  EXPECT_EQ(s.ordered_reads, 1u);
  svc.shutdown();
}

TEST(ServiceRuntime, DuplicateSubmissionsApplyExactlyOnce) {
  const auto opts =
      zdc::RunOptions{}.with_group(4, 1).with_seed(11).with_sessions();
  ServiceGroup svc(opts, [] { return std::make_unique<CountingMachine>(); });
  svc.start();

  // Hand-framed envelope injected twice at two replicas — the wire-level
  // shape of a client retry racing its original.
  const std::string framed = frame_request(1000, 1, "cmd");
  svc.replicas().submit(0, framed);
  svc.replicas().submit(1, framed);
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (svc.replicas().applied(p) < 2) return false;
        }
        return true;
      },
      20000.0));
  svc.shutdown();

  for (ProcessId p = 0; p < 4; ++p) {
    const auto* sm =
        static_cast<const SessionStateMachine*>(svc.replicas().machine(p));
    ASSERT_NE(sm, nullptr);
    EXPECT_EQ(static_cast<const CountingMachine&>(sm->inner()).applies(), 1u)
        << "replica " << p << " double-applied the retry";
    EXPECT_GE(sm->duplicates_suppressed(), 1u) << "replica " << p;
    EXPECT_EQ(svc.replicas().digest(p), svc.replicas().digest(0));
  }
}

TEST(ServiceRuntime, DedupSurvivesKill9Restart) {
  constexpr ProcessId kVictim = 2;
  Disks disks(4);
  const auto opts = zdc::RunOptions{}
                        .with_group(4, 1)
                        .with_seed(17)
                        .with_storage(disks.factory())
                        .with_sessions();
  ServiceGroup svc(opts, [] { return std::make_unique<CountingMachine>(); });
  svc.start();

  const std::string framed = frame_request(1000, 1, "cmd");
  svc.replicas().submit(0, framed);
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] { return svc.replicas().applied(kVictim) >= 1; }, 20000.0));

  // kill -9 the victim, reboot it from its WAL, then replay the client's
  // retry: the recovered dedup table must refuse it.
  svc.crash(kVictim);
  static_cast<void>(wait_ms(100.0));
  const std::uint64_t recovered = svc.restart(kVictim);
  EXPECT_GE(recovered, 1u) << "the dedup table must survive the kill -9";

  svc.replicas().submit(kVictim, framed);
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (svc.replicas().applied(p) < 2) return false;
        }
        return true;
      },
      20000.0));
  svc.shutdown();

  for (ProcessId p = 0; p < 4; ++p) {
    const auto* sm =
        static_cast<const SessionStateMachine*>(svc.replicas().machine(p));
    EXPECT_EQ(static_cast<const CountingMachine&>(sm->inner()).applies(), 1u)
        << "replica " << p;
    EXPECT_EQ(svc.replicas().digest(p), svc.replicas().digest(0));
  }
}

TEST(ServiceRuntime, ReadIndexServesFromLeaseHolder) {
  const auto opts = zdc::RunOptions{}
                        .with_group(4, 1)
                        .with_seed(7)
                        .with_sessions()
                        .with_read_index();
  ServiceGroup svc(
      opts, [] { return std::make_unique<core::KvStateMachine>(); });
  svc.start();

  Client c = svc.client();
  EXPECT_EQ(c.execute(core::kv_put("k", "v1")), "ok");
  // Early reads may downgrade (lease not yet established); once the
  // leader's barrier applies and its endorsement streak passes one lease,
  // reads go fast. Every reply must be correct either way.
  bool saw_fast = false;
  for (int i = 0; i < 400 && !saw_fast; ++i) {
    EXPECT_EQ(c.read(core::kv_get("k")), "value:v1");
    saw_fast = svc.stats().fast_reads > 0;
    if (!saw_fast) static_cast<void>(wait_ms(20.0));
  }
  EXPECT_TRUE(saw_fast) << "the lease gate never opened";
  c.close_session();
  svc.shutdown();
}

TEST(ServiceRuntime, ReadsStayCorrectThroughLeaderCrash) {
  const auto opts = zdc::RunOptions{}
                        .with_group(4, 1)
                        .with_seed(23)
                        .with_sessions()
                        .with_read_index();
  ServiceGroup svc(
      opts, [] { return std::make_unique<core::KvStateMachine>(); });
  svc.start();

  Client c = svc.client(/*home=*/1);
  EXPECT_EQ(c.execute(core::kv_put("k", "v1")), "ok");
  EXPECT_EQ(c.read(core::kv_get("k")), "value:v1");

  // Crash replica 0 (Ω converges to the lowest live id, so 0 is the
  // leader once the cluster settled). Reads must keep answering correctly
  // through the transition — downgraded or via the new lease holder.
  svc.crash(0);
  EXPECT_EQ(c.read(core::kv_get("k")), "value:v1");
  EXPECT_EQ(c.execute(core::kv_put("k", "v2")), "ok");
  EXPECT_EQ(c.read(core::kv_get("k")), "value:v2");

  // The new leader eventually serves fast again.
  const std::uint64_t fast_before = svc.stats().fast_reads;
  bool saw_fast = false;
  for (int i = 0; i < 400 && !saw_fast; ++i) {
    EXPECT_EQ(c.read(core::kv_get("k")), "value:v2");
    saw_fast = svc.stats().fast_reads > fast_before;
    if (!saw_fast) static_cast<void>(wait_ms(20.0));
  }
  EXPECT_TRUE(saw_fast) << "no fast reads after failover";

  // The rebooted ex-leader rejoins without disturbing correctness.
  static_cast<void>(svc.restart(0));
  EXPECT_EQ(c.read(core::kv_get("k")), "value:v2");
  c.close_session();
  svc.shutdown();
}

}  // namespace
}  // namespace zdc::rsm
