// Tests for Fast Paxos and its head-to-head with P-Consensus — the
// comparison behind the paper's closing remark that Fast Paxos's oracle is
// strictly stronger than Ω while P-Consensus gets the same fast path from ◇P.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "sim/consensus_world.h"

namespace zdc::sim {
namespace {

TEST(FastPaxos, OneStepOnUnanimity) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 1;
  cfg.proposals.assign(4, "same");
  auto r = run_consensus(cfg, fast_paxos_factory());
  ASSERT_TRUE(r.all_correct_decided);
  ASSERT_TRUE(r.safe());
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 1u);
    }
  }
}

// The fast path consults no oracle at all, so (like P-Consensus, unlike
// L-Consensus) it survives arbitrary Ω garbage on unanimous proposals.
TEST(FastPaxos, OneStepDespiteArbitraryOmegaOutput) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 2;
  cfg.proposals.assign(4, "same");
  cfg.fd.mode = FdMode::kScripted;
  for (ProcessId obs = 0; obs < 4; ++obs) {
    FdScriptEvent ev;
    ev.time = 0.0;
    ev.observer = obs;
    ev.leader = (obs + 2) % 4;
    cfg.fd.script.push_back(std::move(ev));
  }
  auto r = run_consensus(cfg, fast_paxos_factory());
  ASSERT_TRUE(r.all_correct_decided);
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 1u);
    }
  }
}

// Collision recovery: divergent proposals cost 3 steps (fast votes + the
// coordinated 2a + round-1 votes) — one more than P-Consensus's 2, which is
// the measured content of Theorem 1's Ω-vs-◇P separation.
TEST(FastPaxos, ThreeStepsOnDivergenceVsPConsensusTwo) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 3;
  cfg.proposals = {"a", "b", "c", "d"};

  auto fp = run_consensus(cfg, fast_paxos_factory());
  ASSERT_TRUE(fp.all_correct_decided);
  ASSERT_TRUE(fp.safe());
  for (const auto& o : fp.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 3u);
    }
  }

  auto p = run_consensus(cfg, p_consensus_factory());
  ASSERT_TRUE(p.all_correct_decided);
  for (const auto& o : p.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 2u);
    }
  }
}

TEST(FastPaxos, SurvivesLeaderCrashDuringRecovery) {
  for (double crash_time : {0.0, 0.5, 1.0, 2.0}) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 4;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 1.5;
    cfg.proposals = {"a", "b", "c", "d"};
    CrashSpec c;
    c.p = 0;  // the initial Ω leader / recovery coordinator
    c.time = crash_time;
    cfg.crashes.push_back(c);
    auto r = run_consensus(cfg, fast_paxos_factory());
    ASSERT_TRUE(r.all_correct_decided) << "crash at " << crash_time;
    ASSERT_TRUE(r.safe()) << "crash at " << crash_time;
  }
}

TEST(FastPaxos, SafeAndLiveUnderRandomizedCrashes) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    common::Rng rng(seed * 6151);
    ConsensusRunConfig cfg;
    cfg.group = rng.chance(0.3) ? GroupParams{7, 2} : GroupParams{4, 1};
    cfg.seed = seed;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = rng.uniform(0.5, 6.0);
    for (ProcessId p = 0; p < cfg.group.n; ++p) {
      cfg.proposals.push_back("v" + std::to_string(rng.next_below(3)));
      cfg.propose_times.push_back(rng.uniform(0.0, 2.0));
    }
    const std::uint32_t crashes = rng.next_below(cfg.group.f + 1);
    for (std::uint32_t i = 0; i < crashes; ++i) {
      CrashSpec c;
      c.p = static_cast<ProcessId>((i * 3 + 1) % cfg.group.n);
      if (rng.chance(0.5)) {
        c.initial = true;
      } else {
        c.time = rng.uniform(0.0, 4.0);
      }
      cfg.crashes.push_back(c);
    }
    auto r = run_consensus(cfg, fast_paxos_factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed;
    ASSERT_TRUE(r.all_correct_decided) << "seed " << seed;
  }
}

TEST(FastPaxos, SafetyUnderHostileFd) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    common::Rng rng(seed * 15017);
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = seed;
    cfg.proposals = {"a", "b", "a", "b"};
    cfg.fd.mode = FdMode::kScripted;
    for (int i = 0; i < 30; ++i) {
      FdScriptEvent ev;
      ev.time = rng.uniform(0.0, 10.0);
      ev.observer = rng.chance(0.4)
                        ? kNoProcess
                        : static_cast<ProcessId>(rng.next_below(4));
      ev.leader = static_cast<ProcessId>(rng.next_below(4));
      cfg.fd.script.push_back(std::move(ev));
    }
    cfg.time_limit_ms = 300.0;
    cfg.event_limit = 300'000;
    auto r = run_consensus(cfg, fast_paxos_factory());
    ASSERT_TRUE(r.safe()) << "seed " << seed;
  }
}

// The critical fast/classic interaction: the pivotal-value proposer crashes
// mid-broadcast, so some learners may fast-decide while the coordinator
// recovers — every receiver subset must stay consistent.
TEST(FastPaxos, PartialBroadcastCrashEverySubset) {
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 600 + mask;
    cfg.fd.mode = FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 2.0;
    cfg.proposals = {"x", "y", "y", "y"};
    CrashSpec c;
    c.p = 0;
    c.truncate_broadcast_index = 1;
    for (ProcessId t = 0; t < 4; ++t) {
      if ((mask & (1u << t)) != 0) c.partial_targets.push_back(t);
    }
    cfg.crashes.push_back(std::move(c));
    auto r = run_consensus(cfg, fast_paxos_factory());
    ASSERT_TRUE(r.safe()) << "mask " << mask;
    ASSERT_TRUE(r.all_correct_decided) << "mask " << mask;
  }
}

TEST(FastPaxosDeath, RejectsTooManyFailures) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{3, 1};
  cfg.seed = 1;
  cfg.proposals.assign(3, "v");
  EXPECT_DEATH(run_consensus(cfg, fast_paxos_factory()), "f < n/3");
}

}  // namespace
}  // namespace zdc::sim
