// Message-level unit tests for Fast Paxos and the (e,f) generalization —
// the fast-path and recovery mechanics driven edge by edge.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "consensus/ef_consensus.h"
#include "consensus/fast_paxos.h"
#include "consensus/l_consensus.h"
#include "direct_harness.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

DirectNet::Factory fast_paxos_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::FastPaxosConsensus>(self, group, host,
                                                           omega);
  };
}

DirectNet::Factory ef_factory(std::uint32_t e) {
  return [e](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
             const fd::OmegaView& omega, const fd::SuspectView&) {
    const fd::OmegaView* omega_ptr = &omega;
    consensus::ConsensusFactory inner =
        [omega_ptr](ProcessId s, GroupParams g, consensus::ConsensusHost& h) {
          return std::make_unique<consensus::LConsensus>(s, g, h, *omega_ptr);
        };
    return std::make_unique<consensus::EfConsensus>(self, group, e, host,
                                                    std::move(inner));
  };
}

// --- Fast Paxos mechanics ---

TEST(FastPaxosUnit, FastDecisionNeedsNoLeaderInvolvement) {
  DirectNet net(kGroup, fast_paxos_factory());
  net.set_leader_everywhere(3);  // the leader never even gets a message
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v");
  // p1 collects three equal round-0 votes: decides, one step.
  net.deliver_one(0, 1);
  net.deliver_one(1, 1);
  net.deliver_one(2, 1);
  ASSERT_TRUE(net.decided(1));
  EXPECT_EQ(net.decision(1), "v");
  EXPECT_EQ(net.protocol(1).decision_steps(), 1u);
}

TEST(FastPaxosUnit, CoordinatedRecoveryUsesRoundZeroVotesAsPhaseOne) {
  DirectNet net(kGroup, fast_paxos_factory());
  net.set_leader_everywhere(0);
  net.propose(0, "a");
  net.propose(1, "b");
  net.propose(2, "b");
  net.propose(3, "c");
  // Leader p0 sees a non-unanimous n−f quorum of round-0 votes: it must move
  // straight to a 2a for round 1 — no 1a traffic anywhere.
  net.deliver_one(0, 0);
  net.deliver_one(1, 0);
  net.deliver_one(2, 0);
  // The leader's next outbound message exists (the 2a); deliver everything
  // and check the O4 pick: "b" is the only value with >= n−2f = 2 votes in
  // p0's quorum {a, b, b}.
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), "b");
  }
}

TEST(FastPaxosUnit, RecoveryPickIsForcedByAPossibleFastDecision) {
  DirectNet net(kGroup, fast_paxos_factory());
  net.set_leader_everywhere(3);
  // Globally three "x" votes exist: some learner may fast-decide "x", so any
  // recovery coordinator must pick "x" no matter its own proposal.
  net.propose(0, "x");
  net.propose(1, "x");
  net.propose(2, "x");
  net.propose(3, "y");
  // p0 fast-decides from {0,1,2}.
  net.deliver_one(0, 0);
  net.deliver_one(1, 0);
  net.deliver_one(2, 0);
  ASSERT_TRUE(net.decided(0));
  ASSERT_EQ(net.decision(0), "x");
  // Leader p3's quorum is {x, x, y} (its own vote + p0's + p1's): not
  // unanimous, so it coordinates — and O4 forces "x" (2 >= n−2f).
  net.deliver_one(3, 3);
  net.deliver_one(0, 3);
  net.deliver_one(1, 3);
  net.deliver_all();
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), "x") << "recovery contradicted a fast decision";
  }
}

TEST(FastPaxosUnit, MalformedMessagesCounted) {
  DirectNet net(kGroup, fast_paxos_factory());
  net.propose(0, "v");
  auto& proto = net.protocol(0);
  proto.on_message(1, common::seal_frame(""));
  proto.on_message(1, common::seal_frame(std::string("\x01\x05", 2)));  // truncated vote
  proto.on_message(1, common::seal_frame(std::string("\x1f", 1)));      // unknown tag
  EXPECT_EQ(proto.malformed_messages(), 3u);
}

// --- (e,f) mechanics ---

TEST(EfUnit, ArmedFastPathFiresLate) {
  // n=6, e=2, f=1: fast threshold n−e = 4, quorum n−f = 5. A process commits
  // its fallback at the 5th vote but must still decide fast when the 4th
  // equal value shows up in a later message.
  const GroupParams group{6, 1};
  DirectNet net(group, ef_factory(2));
  net.set_leader_everywhere(0);
  net.propose(0, "w");
  net.propose(1, "w");
  net.propose(2, "w");
  net.propose(3, "w");
  net.propose(4, "z");
  net.propose(5, "z");
  // p5 receives 5 votes: w,w,w,z,z — no 4 equal yet, fallback committed.
  net.deliver_one(0, 5);
  net.deliver_one(1, 5);
  net.deliver_one(2, 5);
  net.deliver_one(4, 5);
  net.deliver_one(5, 5);
  EXPECT_FALSE(net.decided(5));
  // The 6th vote is the 4th "w": the armed fast path fires, 1 step.
  net.deliver_one(3, 5);
  ASSERT_TRUE(net.decided(5));
  EXPECT_EQ(net.decision(5), "w");
  EXPECT_EQ(net.protocol(5).decision_steps(), 1u);
  // Everyone else converges on the same value.
  net.deliver_all();
  for (ProcessId p = 0; p < 6; ++p) {
    ASSERT_TRUE(net.decided(p)) << "p" << p;
    EXPECT_EQ(net.decision(p), "w");
  }
}

TEST(EfUnit, FallbackProposalIsForcedByPossibleFastDecision) {
  // n=4, e=1, f=1 (Brasileiro's point): fast threshold 3. p3 commits its
  // fallback from quorum {v, v, u}: v holds n−e−f = 2 slots, so the inner
  // proposal must be v even though p3 proposed u.
  DirectNet net(kGroup, ef_factory(1));
  net.set_leader_everywhere(0);
  net.propose(0, "v");
  net.propose(1, "v");
  net.propose(2, "v");
  net.propose(3, "u");
  net.deliver_one(0, 3);
  net.deliver_one(1, 3);
  net.deliver_one(3, 3);
  EXPECT_FALSE(net.decided(3));
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "v");
  }
}

TEST(EfUnit, InnerTrafficBufferedUntilFallbackCommits) {
  DirectNet net(kGroup, ef_factory(1));
  net.set_leader_everywhere(0);
  net.propose(0, "a");
  // An inner-module frame arrives before p0's first round closed: it must be
  // buffered (not crash, not leak into the unstarted inner module).
  common::Encoder enc;
  enc.put_u8(2);  // kInnerTag
  enc.put_raw("garbage-inner-bytes");
  net.protocol(0).on_message(1, common::seal_frame(enc.bytes()));
  EXPECT_FALSE(net.decided(0));
  // The run still completes normally.
  net.propose(1, "b");
  net.propose(2, "c");
  net.propose(3, "d");
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), net.decision(0));
  }
}

}  // namespace
}  // namespace zdc::testing
