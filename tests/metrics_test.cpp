// Cross-checks of the accounting machinery: protocol metrics vs the
// independently recorded trace, GroupParams arithmetic, and the heartbeat
// detector's adaptive-timeout behaviour (◇P accuracy in practice).
#include <gtest/gtest.h>

#include <memory>

#include "common/types.h"
#include "runtime/heartbeat_fd.h"
#include "runtime/inproc_net.h"
#include "runtime/runtime_node.h"
#include "sim/consensus_world.h"
#include "sim/trace.h"

namespace zdc {
namespace {

TEST(GroupParams, QuorumArithmetic) {
  GroupParams g{4, 1};
  EXPECT_EQ(g.quorum(), 3u);
  EXPECT_EQ(g.echo_threshold(), 2u);
  EXPECT_EQ(g.majority(), 3u);
  EXPECT_TRUE(g.one_step_resilient());
  EXPECT_TRUE(g.majority_resilient());

  GroupParams boundary{3, 1};  // f = n/3: one-step excluded, majority fine
  EXPECT_FALSE(boundary.one_step_resilient());
  EXPECT_TRUE(boundary.majority_resilient());

  GroupParams seven{7, 2};
  EXPECT_EQ(seven.quorum(), 5u);
  EXPECT_EQ(seven.echo_threshold(), 3u);
  EXPECT_EQ(seven.majority(), 4u);
  EXPECT_TRUE(seven.one_step_resilient());

  GroupParams half{4, 2};  // f = n/2
  EXPECT_FALSE(half.majority_resilient());
}

// The protocols' self-reported message counters must agree exactly with what
// the (independent) simulator trace saw leave the processes.
TEST(MetricsCrossCheck, ProtocolCountersMatchTrace) {
  for (const char* proto : {"l", "p", "paxos", "ct"}) {
    sim::TraceRecorder trace;
    sim::ConsensusRunConfig cfg;
    cfg.group = proto == std::string("paxos") || proto == std::string("ct")
                    ? GroupParams{5, 2}
                    : GroupParams{4, 1};
    cfg.seed = 99;
    cfg.proposals.assign(cfg.group.n, "v");
    cfg.proposals[0] = "w";  // mild divergence: more traffic shapes
    cfg.trace = &trace;
    auto r = sim::run_consensus(cfg, sim::consensus_factory_by_name(proto));
    ASSERT_TRUE(r.all_correct_decided) << proto;

    const std::uint64_t traced =
        trace.count(sim::TraceKind::kSend) +
        trace.count(sim::TraceKind::kWabSend);
    EXPECT_EQ(r.totals.messages_sent, traced)
        << proto << ": protocol accounting disagrees with the wire";
  }
}

// False suspicions must grow the per-peer timeout so that, once the network
// behaves, accuracy holds: the hallmark of a ◇P implementation.
TEST(HeartbeatAdaptive, FalseSuspicionsGrowTimeoutsAndStop) {
  runtime::InprocNetwork::Config net_cfg;
  net_cfg.n = 2;
  net_cfg.seed = 3;
  // Delays far beyond the initial timeout force false suspicions at first.
  net_cfg.min_delay_ms = 4.0;
  net_cfg.max_delay_ms = 8.0;
  runtime::InprocNetwork net(net_cfg);

  runtime::HeartbeatFd::Config fd_cfg;
  fd_cfg.interval_ms = 2.0;
  fd_cfg.initial_timeout_ms = 1.0;  // absurdly aggressive on purpose
  fd_cfg.timeout_increment_ms = 4.0;

  std::vector<std::unique_ptr<runtime::HeartbeatFd>> fds;
  for (ProcessId p = 0; p < 2; ++p) {
    fds.push_back(
        std::make_unique<runtime::HeartbeatFd>(p, net, fd_cfg, nullptr));
  }
  for (ProcessId p = 0; p < 2; ++p) {
    runtime::HeartbeatFd* fd = fds[p].get();
    net.set_handler(p, [fd](const runtime::Delivery& d) {
      if (d.channel == runtime::Channel::kHeartbeat) fd->on_heartbeat(d.from);
    });
  }
  net.start();
  for (auto& fd : fds) fd->start();

  // Phase 1: the aggressive timeout must misfire at least once.
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] { return fds[0]->false_suspicions() > 0; }, 10'000.0))
      << "expected at least one false suspicion under slow delivery";

  // Phase 2: adaptation. Timeouts grow on every revocation, so suspicion
  // flapping must die out: wait for a stretch with no new false suspicions
  // and nobody suspected.
  std::uint64_t stable_count = 0;
  const bool settled = runtime::RuntimeCluster::wait_until(
      [&] {
        const std::uint64_t now_count =
            fds[0]->false_suspicions() + fds[1]->false_suspicions();
        if (now_count != stable_count) {
          stable_count = now_count;
          return false;
        }
        return !fds[0]->suspects(1) && !fds[1]->suspects(0);
      },
      20'000.0);
  net.shutdown();
  EXPECT_TRUE(settled) << "timeout adaptation failed to reach accuracy";
}

}  // namespace
}  // namespace zdc
