// Unit tests for the threaded in-process network: delivery, timers, crash
// semantics and the oracle channel's loss knob.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/inproc_net.h"
#include "runtime/runtime_node.h"

namespace zdc::runtime {
namespace {

InprocNetwork::Config fast_net(std::uint32_t n) {
  InprocNetwork::Config cfg;
  cfg.n = n;
  cfg.seed = 42;
  cfg.min_delay_ms = 0.01;
  cfg.max_delay_ms = 0.05;
  return cfg;
}

TEST(InprocNet, UnicastReachesExactlyTheDestination) {
  InprocNetwork net(fast_net(3));
  std::vector<std::atomic<int>> got(3);
  for (ProcessId p = 0; p < 3; ++p) {
    net.set_handler(p, [&got, p](const Delivery& d) {
      if (d.channel == Channel::kProtocol && d.bytes == "ping") ++got[p];
    });
  }
  net.start();
  net.send(Channel::kProtocol, 0, 2, "ping");
  ASSERT_TRUE(RuntimeCluster::wait_until([&] { return got[2] == 1; }, 5000.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 0);
  net.shutdown();
}

TEST(InprocNet, BroadcastIncludesSender) {
  InprocNetwork net(fast_net(3));
  std::vector<std::atomic<int>> got(3);
  for (ProcessId p = 0; p < 3; ++p) {
    net.set_handler(p, [&got, p](const Delivery&) { ++got[p]; });
  }
  net.start();
  net.broadcast(Channel::kProtocol, 1, "all");
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] { return got[0] == 1 && got[1] == 1 && got[2] == 1; }, 5000.0));
  net.shutdown();
}

TEST(InprocNet, WabChannelCarriesInstanceId) {
  InprocNetwork net(fast_net(2));
  std::atomic<std::uint64_t> seen{0};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&seen](const Delivery& d) {
    if (d.channel == Channel::kWab) seen = d.wab_instance;
  });
  net.start();
  net.broadcast(Channel::kWab, 0, "oracle", 777);
  ASSERT_TRUE(RuntimeCluster::wait_until([&] { return seen == 777; }, 5000.0));
  net.shutdown();
}

TEST(InprocNet, TimersFireOnOwnerThreadInDueOrder) {
  InprocNetwork net(fast_net(2));
  std::mutex mu;
  std::vector<int> order;
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [](const Delivery&) {});
  net.start();
  net.schedule(0, 20.0, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  net.schedule(0, 1.0, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return order.size() == 2;
      },
      5000.0));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  net.shutdown();
}

TEST(InprocNet, CrashedProcessNeitherSendsNorReceives) {
  InprocNetwork net(fast_net(3));
  std::vector<std::atomic<int>> got(3);
  for (ProcessId p = 0; p < 3; ++p) {
    net.set_handler(p, [&got, p](const Delivery&) { ++got[p]; });
  }
  net.start();
  net.crash(1);
  EXPECT_TRUE(net.crashed(1));
  net.broadcast(Channel::kProtocol, 0, "x");   // 1 must not receive
  net.broadcast(Channel::kProtocol, 1, "y");   // 1 must not send
  ASSERT_TRUE(RuntimeCluster::wait_until(
      [&] { return got[0] == 1 && got[2] == 1; }, 5000.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(got[0], 1);  // only "x"
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 1);
  net.shutdown();
}

TEST(InprocNet, WabLossDropsRemoteDatagrams) {
  InprocNetwork::Config cfg = fast_net(2);
  cfg.wab_loss_prob = 1.0;  // every oracle datagram is lost
  InprocNetwork net(cfg);
  std::atomic<int> wab_got{0};
  std::atomic<int> tcp_got{0};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&](const Delivery& d) {
    if (d.channel == Channel::kWab) ++wab_got;
    if (d.channel == Channel::kProtocol) ++tcp_got;
  });
  net.start();
  for (int i = 0; i < 20; ++i) net.send(Channel::kWab, 0, 1, "gone");
  net.send(Channel::kProtocol, 0, 1, "kept");  // reliable channel unaffected
  ASSERT_TRUE(RuntimeCluster::wait_until([&] { return tcp_got == 1; }, 5000.0));
  EXPECT_EQ(wab_got, 0);
  net.shutdown();
}

TEST(InprocNet, HandlersRunSeriallyPerProcess) {
  InprocNetwork net(fast_net(2));
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::atomic<int> handled{0};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&](const Delivery&) {
    if (inside.fetch_add(1) != 0) overlapped = true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    inside.fetch_sub(1);
    ++handled;
  });
  net.start();
  for (int i = 0; i < 50; ++i) net.send(Channel::kProtocol, 0, 1, "m");
  ASSERT_TRUE(RuntimeCluster::wait_until([&] { return handled == 50; },
                                         10'000.0));
  EXPECT_FALSE(overlapped) << "per-process handlers must be single-threaded";
  net.shutdown();
}

TEST(InprocNet, ShutdownIsIdempotentAndStopsDelivery) {
  InprocNetwork net(fast_net(2));
  std::atomic<int> got{0};
  net.set_handler(0, [](const Delivery&) {});
  net.set_handler(1, [&got](const Delivery&) { ++got; });
  net.start();
  net.send(Channel::kProtocol, 0, 1, "pre");
  RuntimeCluster::wait_until([&] { return got == 1; }, 5000.0);
  net.shutdown();
  net.shutdown();  // idempotent
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace zdc::runtime
