// Unit tests for the caching lock service: LockStateMachine semantics
// (grant / queue / handoff / revoke encodings), reply-event parsing, the
// LockClient cache-state machine (local release + zero-traffic re-acquire,
// revoke compliance), and serialize/restore round-trips.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/lock_service.h"
#include "service/session.h"

namespace zdc::rsm {
namespace {

TEST(LockMachine, GrantQueueHandoff) {
  LockStateMachine m;
  EXPECT_EQ(m.apply(lock_acquire("a", 1)), "granted");
  // First waiter names the holder to revoke; later waiters just wait.
  EXPECT_EQ(m.apply(lock_acquire("a", 2)), "wait:revoke:1");
  EXPECT_EQ(m.apply(lock_acquire("a", 3)), "wait");
  // Handoff is direct; ":revoke" because client 3 still waits behind 2.
  EXPECT_EQ(m.apply(lock_release("a", 1)), "ok:granted:2:revoke");
  EXPECT_EQ(m.apply(lock_release("a", 2)), "ok:granted:3");
  // Last release with no waiters frees the lock and drops its state.
  EXPECT_EQ(m.apply(lock_release("a", 3)), "ok");
  EXPECT_EQ(m.lock_count(), 0u);
}

TEST(LockMachine, ErrorsAndIdempotence) {
  LockStateMachine m;
  m.apply(lock_acquire("a", 1));
  EXPECT_EQ(m.apply(lock_acquire("a", 1)), "error:already_held");
  EXPECT_EQ(m.apply(lock_release("a", 2)), "error:not_holder");
  EXPECT_EQ(m.apply(lock_release("missing", 1)), "error:not_holder");
  // Re-acquiring while already queued does not double-enqueue.
  EXPECT_EQ(m.apply(lock_acquire("a", 2)), "wait:revoke:1");
  EXPECT_EQ(m.apply(lock_acquire("a", 2)), "wait");
  m.apply(lock_release("a", 1));
  m.apply(lock_release("a", 2));
  EXPECT_EQ(m.lock_count(), 0u);
  EXPECT_EQ(m.apply("garbage"), "error:malformed");
}

TEST(LockMachine, HolderQueryAndReadIndexAgree) {
  LockStateMachine m;
  EXPECT_EQ(m.apply(lock_holder("a")), "free");
  m.apply(lock_acquire("a", 7));
  // apply() and apply_read() must answer byte-equal for the same query —
  // the downgrade-transparency contract.
  EXPECT_EQ(m.apply(lock_holder("a")), "holder:7");
  EXPECT_EQ(m.apply_read(lock_holder("a")), "holder:7");
  EXPECT_EQ(m.apply_read(lock_holder("b")), "free");
  EXPECT_EQ(m.apply_read(lock_acquire("a", 1)), "error:unsupported_read");
}

TEST(LockMachine, SerializeRestoreRoundTrips) {
  LockStateMachine m;
  m.apply(lock_acquire("a", 1));
  m.apply(lock_acquire("a", 2));
  m.apply(lock_acquire("a", 3));
  m.apply(lock_acquire("b", 9));

  LockStateMachine fresh;
  ASSERT_TRUE(fresh.restore(m.serialize()));
  EXPECT_EQ(fresh.snapshot(), m.snapshot());
  // Waiter FIFO order survives: the restored machine hands off to 2 first.
  EXPECT_EQ(fresh.apply(lock_release("a", 1)), "ok:granted:2:revoke");
  EXPECT_FALSE(fresh.restore("bad"));
}

TEST(LockEventsParse, AllShapes) {
  LockEvents ev = parse_lock_reply("granted");
  EXPECT_EQ(ev.grantee, 0u);
  EXPECT_EQ(ev.revokee, 0u);

  ev = parse_lock_reply("wait:revoke:17");
  EXPECT_EQ(ev.revokee, 17u);
  EXPECT_EQ(ev.grantee, 0u);

  ev = parse_lock_reply("ok:granted:4");
  EXPECT_EQ(ev.grantee, 4u);
  EXPECT_FALSE(ev.grantee_must_return);

  ev = parse_lock_reply("ok:granted:4:revoke");
  EXPECT_EQ(ev.grantee, 4u);
  EXPECT_TRUE(ev.grantee_must_return);

  ev = parse_lock_reply("ok");
  EXPECT_EQ(ev.grantee, 0u);
}

TEST(LockClientCache, ReacquireAfterReleaseIsLocal) {
  std::vector<std::string> sent;
  LockClient c(1, [&sent](std::string cmd) { sent.push_back(std::move(cmd)); });

  EXPECT_FALSE(c.acquire("a"));  // cold: goes to the server
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], lock_acquire("a", 1));
  c.on_granted("a", /*must_return=*/false);
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kHeld);

  // release -> cached, re-acquire -> held, with ZERO server traffic.
  c.release("a");
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kCached);
  EXPECT_TRUE(c.acquire("a"));
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kHeld);
  EXPECT_EQ(sent.size(), 1u);
  EXPECT_EQ(c.cache_hits(), 1u);
  EXPECT_EQ(c.server_round_trips(), 1u);
}

TEST(LockClientCache, RevokeWhileHeldReleasesOnUnlock) {
  std::vector<std::string> sent;
  LockClient c(1, [&sent](std::string cmd) { sent.push_back(std::move(cmd)); });
  c.acquire("a");
  c.on_granted("a", false);
  sent.clear();

  c.on_revoke("a");
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kRevokePending);
  EXPECT_TRUE(sent.empty());  // still in use: nothing sent yet

  c.release("a");  // now the RELEASE goes out and the cache entry dies
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], lock_release("a", 1));
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kNone);
}

TEST(LockClientCache, RevokeWhileCachedReleasesImmediately) {
  std::vector<std::string> sent;
  LockClient c(1, [&sent](std::string cmd) { sent.push_back(std::move(cmd)); });
  c.acquire("a");
  c.on_granted("a", false);
  c.release("a");  // cached
  sent.clear();

  c.on_revoke("a");
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], lock_release("a", 1));
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kNone);
}

TEST(LockClientCache, GrantWithRevokeFlagsPendingReturn) {
  std::vector<std::string> sent;
  LockClient c(2, [&sent](std::string cmd) { sent.push_back(std::move(cmd)); });
  c.acquire("a");
  // Grant arrives with revoke-pending (others wait): release must go to
  // the server, not to the local cache.
  c.on_granted("a", /*must_return=*/true);
  EXPECT_EQ(c.state("a"), LockClient::CacheState::kRevokePending);
  sent.clear();
  c.release("a");
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], lock_release("a", 2));
}

// Integration: two cached clients contending through the replicated
// machine with the reply-event routing the service layer performs.
TEST(LockService, ContentionProtocolEndToEnd) {
  LockStateMachine server;
  std::vector<std::string> wire1, wire2;
  LockClient c1(1, [&wire1](std::string c) { wire1.push_back(std::move(c)); });
  LockClient c2(2, [&wire2](std::string c) { wire2.push_back(std::move(c)); });

  // c1 takes and releases the lock: all local after the first grant.
  c1.acquire("a");
  LockEvents ev = parse_lock_reply(server.apply(wire1.back()));
  c1.on_granted("a", ev.grantee_must_return);
  c1.release("a");
  EXPECT_EQ(c1.state("a"), LockClient::CacheState::kCached);

  // c2 contends: server says wait + revoke c1; c1 (cached) releases at
  // once, whose reply grants c2.
  c2.acquire("a");
  ev = parse_lock_reply(server.apply(wire2.back()));
  EXPECT_EQ(ev.revokee, 1u);
  c1.on_revoke("a");
  ASSERT_EQ(wire1.size(), 2u);  // the routed revoke triggered a RELEASE
  ev = parse_lock_reply(server.apply(wire1.back()));
  EXPECT_EQ(ev.grantee, 2u);
  c2.on_granted("a", ev.grantee_must_return);
  EXPECT_EQ(c2.state("a"), LockClient::CacheState::kHeld);
  EXPECT_EQ(server.apply_read(lock_holder("a")), "holder:2");
}

// The lock machine composes with the session layer like any inner machine:
// retried ACQUIREs are deduped, holder queries ride the read path.
TEST(LockService, SessionWrappedDedup) {
  SessionStateMachine m(std::make_unique<LockStateMachine>());
  const std::string granted = m.apply(frame_request(1, 1, lock_acquire("a", 1)));
  EXPECT_EQ(granted, "granted");
  // The retry must NOT reach the machine (it would say already_held).
  EXPECT_EQ(m.apply(frame_request(1, 1, lock_acquire("a", 1))), "granted");
  EXPECT_EQ(m.apply_read(lock_holder("a")), "holder:1");
}

}  // namespace
}  // namespace zdc::rsm
