// The one shared corruption primitive (fault/corrupt.h) and its contract
// with the frame integrity seal (common/codec.h): every fabric — simulator,
// in-process bus, UDP — and the FaultyEnv storage layer flip bits through
// the same helper, so its edge cases are tested exactly once, here.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "common/codec.h"
#include "fault/corrupt.h"

namespace zdc {
namespace {

TEST(BitFlip, FlipsExactlyOneBitInPlace) {
  std::string bytes = "hello";
  fault::bit_flip(bytes, 1, 3);
  EXPECT_EQ(bytes[0], 'h');
  EXPECT_EQ(bytes[1], static_cast<char>('e' ^ (1 << 3)));
  EXPECT_EQ(bytes.substr(2), "llo");
  // Flipping the same bit again restores the original (involution).
  fault::bit_flip(bytes, 1, 3);
  EXPECT_EQ(bytes, "hello");
}

TEST(BitFlip, OutOfRangeByteIsANoOp) {
  std::string bytes = "abc";
  fault::bit_flip(bytes, 3, 0);
  fault::bit_flip(bytes, 100, 5);
  EXPECT_EQ(bytes, "abc");
  std::string empty;
  fault::bit_flip(empty, 0, 0);
  EXPECT_TRUE(empty.empty());
}

TEST(BitFlip, BitIndexWrapsModuloEight) {
  std::string a = "x";
  std::string b = "x";
  fault::bit_flip(a, 0, 2);
  fault::bit_flip(b, 0, 10);  // 10 & 7 == 2
  EXPECT_EQ(a, b);
}

TEST(ResolveFlipByte, SentinelMeansMiddle) {
  EXPECT_EQ(fault::resolve_flip_byte(fault::kMiddleByte, 10), 5u);
  EXPECT_EQ(fault::resolve_flip_byte(fault::kMiddleByte, 1), 0u);
  EXPECT_EQ(fault::resolve_flip_byte(fault::kMiddleByte, 0), 0u);
  // Explicit offsets pass through untouched.
  EXPECT_EQ(fault::resolve_flip_byte(3, 10), 3u);
  EXPECT_EQ(fault::resolve_flip_byte(0, 10), 0u);
}

TEST(BitFlipCopy, ResolvesSentinelAndLeavesOriginalAlone) {
  const std::string original = "abcdef";
  const std::string flipped =
      fault::bit_flip_copy(original, fault::kMiddleByte, 0);
  EXPECT_EQ(original, "abcdef");
  EXPECT_EQ(flipped[3], static_cast<char>('d' ^ 1));  // size 6 -> middle byte 3
  EXPECT_EQ(flipped.substr(0, 3), "abc");
  EXPECT_EQ(flipped.substr(4), "ef");
}

// --- the seal contract: any single-bit flip is a detectable drop ---

TEST(SealedFrame, RoundTripsClean) {
  const std::string body = "consensus payload";
  const std::string sealed = common::seal_frame(body);
  EXPECT_GT(sealed.size(), body.size());
  std::string_view out;
  ASSERT_TRUE(common::open_frame(sealed, &out));
  EXPECT_EQ(out, body);
}

TEST(SealedFrame, EverySingleBitFlipIsDetected) {
  const std::string sealed = common::seal_frame("abc");
  for (std::uint64_t byte = 0; byte < sealed.size(); ++byte) {
    for (std::uint32_t bit = 0; bit < 8; ++bit) {
      std::string corrupted = sealed;
      fault::bit_flip(corrupted, byte, bit);
      std::string_view out;
      EXPECT_FALSE(common::open_frame(corrupted, &out))
          << "flip at byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(SealedFrame, DoubleFlipRestoresValidity) {
  std::string sealed = common::seal_frame("payload");
  fault::bit_flip(sealed, 4, 6);
  std::string_view out;
  EXPECT_FALSE(common::open_frame(sealed, &out));
  fault::bit_flip(sealed, 4, 6);
  ASSERT_TRUE(common::open_frame(sealed, &out));
  EXPECT_EQ(out, "payload");
}

}  // namespace
}  // namespace zdc
