// Tests for the runtime workload driver (the harness behind
// bench_runtime_validation).
#include <gtest/gtest.h>

#include "runtime/workload.h"

namespace zdc::runtime {
namespace {

TEST(RuntimeWorkload, DeliversEverythingInTotalOrder) {
  RuntimeWorkloadConfig cfg;
  cfg.cluster.group = GroupParams{4, 1};
  cfg.cluster.kind = ProtocolKind::kCAbcastP;
  cfg.cluster.net.seed = 21;
  cfg.throughput_per_s = 800.0;
  cfg.message_count = 120;
  cfg.seed = 21;
  auto r = run_runtime_workload(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.total_order_ok);
  EXPECT_EQ(r.delivered_total, 120u * 4);
  EXPECT_GT(r.latency_ms.count(), 0u);
  EXPECT_GT(r.latency_ms.mean(), 0.0);
}

TEST(RuntimeWorkload, PaxosGroupOfThree) {
  RuntimeWorkloadConfig cfg;
  cfg.cluster.group = GroupParams{3, 1};
  cfg.cluster.kind = ProtocolKind::kPaxos;
  cfg.cluster.net.seed = 22;
  cfg.throughput_per_s = 500.0;
  cfg.message_count = 80;
  cfg.seed = 22;
  auto r = run_runtime_workload(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.total_order_ok);
  EXPECT_EQ(r.delivered_total, 80u * 3);
}

TEST(RuntimeWorkload, OverUdpSockets) {
  RuntimeWorkloadConfig cfg;
  cfg.cluster.group = GroupParams{4, 1};
  cfg.cluster.kind = ProtocolKind::kCAbcastL;
  cfg.cluster.transport = RuntimeCluster::TransportKind::kUdp;
  cfg.cluster.udp.retransmit_interval_ms = 8.0;
  cfg.cluster.fd.initial_timeout_ms = 150.0;
  cfg.throughput_per_s = 400.0;
  cfg.message_count = 60;
  cfg.seed = 23;
  auto r = run_runtime_workload(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.total_order_ok);
  EXPECT_EQ(r.delivered_total, 60u * 4);
}

TEST(RuntimeWorkload, WarmupFractionShrinksSampleCount) {
  RuntimeWorkloadConfig cfg;
  cfg.cluster.group = GroupParams{4, 1};
  cfg.cluster.kind = ProtocolKind::kCAbcastL;
  cfg.throughput_per_s = 1000.0;
  cfg.message_count = 50;
  cfg.warmup_fraction = 0.5;
  auto r = run_runtime_workload(cfg);
  ASSERT_TRUE(r.complete);
  EXPECT_LE(r.latency_ms.count(), 25u);
  EXPECT_GE(r.latency_ms.count(), 20u);  // allow rounding at the boundary
}

}  // namespace
}  // namespace zdc::runtime
