// Tests for the real-time order checker, plus the end-to-end client story:
// commands replicated through the runtime stack are linearizable — the
// committed order never contradicts what clients already observed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/linearizability.h"
#include "core/rsm.h"
#include "core/replicated_log.h"
#include "runtime/runtime_node.h"

namespace zdc::core {
namespace {

TEST(RealTimeOrder, AcceptsSequentialHistory) {
  std::vector<ClientOp> ops = {
      {"a", 0.0, 1.0}, {"b", 2.0, 3.0}, {"c", 4.0, 5.0}};
  EXPECT_TRUE(order_respects_real_time(ops, {"a", "b", "c"}));
}

TEST(RealTimeOrder, RejectsInvertedCompletedPair) {
  // b completed (t=3) before a was invoked (t=4): committing a before b is a
  // real-time violation.
  std::vector<ClientOp> ops = {{"a", 4.0, 5.0}, {"b", 2.0, 3.0}};
  RealTimeViolation v;
  EXPECT_FALSE(order_respects_real_time(ops, {"a", "b"}, &v));
  EXPECT_EQ(v.earlier_in_order, "a");
  EXPECT_EQ(v.later_in_order, "b");
  // The other order is fine.
  EXPECT_TRUE(order_respects_real_time(ops, {"b", "a"}));
}

TEST(RealTimeOrder, ConcurrentOpsMayCommitEitherWay) {
  // Overlapping intervals: both orders legal.
  std::vector<ClientOp> ops = {{"a", 0.0, 10.0}, {"b", 1.0, 9.0}};
  EXPECT_TRUE(order_respects_real_time(ops, {"a", "b"}));
  EXPECT_TRUE(order_respects_real_time(ops, {"b", "a"}));
}

TEST(RealTimeOrder, UnknownIdsAreIgnored) {
  std::vector<ClientOp> ops = {{"a", 0.0, 1.0}};
  EXPECT_TRUE(order_respects_real_time(ops, {"noise", "a", "also-noise"}));
}

// End to end: sequential client operations through the runtime cluster —
// each waits for its own application before issuing the next — must commit
// in exactly the real-time order at every replica.
TEST(RealTimeOrder, RuntimeClusterHistoryIsLinearizable) {
  using Clock = std::chrono::steady_clock;
  const auto epoch = Clock::now();
  auto now_ms = [&epoch] {
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch)
        .count();
  };

  constexpr std::uint32_t kReplicas = 4;
  struct Shared {
    std::mutex mu;
    std::vector<std::vector<std::string>> orders{kReplicas};
    std::atomic<std::uint64_t> applied_at_0{0};
  };
  Shared shared;

  runtime::RuntimeCluster::Config cfg;
  cfg.group = GroupParams{kReplicas, 1};
  cfg.kind = runtime::ProtocolKind::kCAbcastL;
  cfg.net.seed = 314;
  runtime::RuntimeCluster cluster(
      cfg, [&shared](ProcessId p, const abcast::AppMessage& m) {
        std::lock_guard<std::mutex> lock(shared.mu);
        shared.orders[p].push_back(m.payload);
        if (p == 0) ++shared.applied_at_0;
      });
  cluster.start();

  // Sequential client at replica 0: invoke, wait for own application
  // (the response), record the interval.
  std::vector<ClientOp> ops;
  constexpr int kOps = 20;
  for (int i = 0; i < kOps; ++i) {
    ClientOp op;
    op.id = "op-" + std::to_string(i);
    op.invoke_ms = now_ms();
    cluster.node(0).a_broadcast(op.id);
    ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
        [&shared, i] { return shared.applied_at_0 >= static_cast<std::uint64_t>(i) + 1; },
        10'000.0));
    op.response_ms = now_ms();
    ops.push_back(std::move(op));
  }
  // Let the other replicas finish the tail.
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&shared] {
        std::lock_guard<std::mutex> lock(shared.mu);
        for (const auto& order : shared.orders) {
          if (order.size() < kOps) return false;
        }
        return true;
      },
      10'000.0));
  cluster.shutdown();

  for (std::uint32_t p = 0; p < kReplicas; ++p) {
    RealTimeViolation v;
    EXPECT_TRUE(order_respects_real_time(ops, shared.orders[p], &v))
        << "replica " << p << ": committed " << v.earlier_in_order
        << " before the already-completed " << v.later_in_order;
    EXPECT_EQ(shared.orders[p], shared.orders[0]) << "replica " << p;
  }
}

}  // namespace
}  // namespace zdc::core
