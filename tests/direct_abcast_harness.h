// Direct-drive harness for atomic-broadcast protocols: like DirectNet for
// consensus, but with the oracle channel and per-process delivery histories.
//
// The implementation moved to src/check/direct_abcast_net.h so the
// schedule-space model checker (src/check) can drive the same harness; this
// header keeps the historical zdc::testing spelling for the test suites.
#pragma once

#include "check/direct_abcast_net.h"

namespace zdc::testing {

using DirectAbcastNet = check::DirectAbcastNet;

}  // namespace zdc::testing
