// Unit tests for the discrete-event scheduler and the LAN model.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/lan_model.h"

namespace zdc::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.at(3.0, [&] { order.push_back(3); });
  q.at(1.0, [&] { order.push_back(1); });
  q.at(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.at(1.0, [&order, i] { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) q.after(1.0, chain);
  };
  q.at(0.0, chain);
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  double seen = -1;
  q.at(5.0, [&] {
    q.at(1.0, [&] { seen = q.now(); });  // in the past, clamps to 5.0
  });
  while (q.run_next()) {
  }
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueue, PoolRecyclesSlotsInsteadOfGrowing) {
  // A self-rescheduling chain keeps exactly one event pending at a time, so
  // the pool must stay at one slot no matter how many events run.
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 1000) q.after(1.0, chain);
  };
  q.at(0.0, chain);
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(q.pool_capacity(), 1u);
}

TEST(EventQueue, PoolCapacityTracksPeakPending) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 64; ++i) {
    q.at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(q.pool_capacity(), 64u);
  while (q.run_next()) {
  }
  // Draining frees slots back to the pool; scheduling 64 more reuses them.
  for (int i = 0; i < 64; ++i) {
    q.at(100.0 + i, [&] { ++fired; });
  }
  EXPECT_EQ(q.pool_capacity(), 64u);
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 128);
}

TEST(EventQueue, LargeCaptureFallsBackToHeap) {
  // Captures beyond InlineAction's inline buffer heap-allocate but must
  // still run correctly (and exactly once).
  EventQueue q;
  std::array<std::uint64_t, 32> big{};  // 256 bytes, > 64-byte inline buffer
  big.fill(7);
  std::uint64_t sum = 0;
  q.at(1.0, [big, &sum] {
    for (auto v : big) sum += v;
  });
  while (q.run_next()) {
  }
  EXPECT_EQ(sum, 7u * 32u);
}

TEST(EventQueue, AcceptsMoveOnlyCaptures) {
  // std::function requires copyable callables; the pooled store must not.
  EventQueue q;
  auto owned = std::make_unique<int>(99);
  int seen = 0;
  q.at(1.0, [p = std::move(owned), &seen] { seen = *p; });
  while (q.run_next()) {
  }
  EXPECT_EQ(seen, 99);
}

TEST(EventQueue, DeterministicOrderUnderSlotReuse) {
  // Interleave draining and refilling so slots are recycled in a scrambled
  // order, then check events still fire in (time, insertion-seq) order.
  auto run_schedule = [] {
    EventQueue q;
    std::vector<int> order;
    int next_id = 0;
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 5; ++i) {
        const int id = next_id++;
        // Same time within a round: ties must break by insertion.
        q.at(q.now() + 1.0, [&order, id] { order.push_back(id); });
      }
      for (int i = 0; i < 3; ++i) q.run_next();  // partial drain
    }
    while (q.run_next()) {
    }
    return order;
  };
  const std::vector<int> a = run_schedule();
  const std::vector<int> b = run_schedule();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(EventQueue, RunRespectsLimits) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    q.at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(q.run(9.5, 1000), 10u);  // time limit
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(q.run(1e9, 20), 20u);  // event limit
  EXPECT_EQ(fired, 30);
}

TEST(LanModel, SenderCpuSerializesSends) {
  NetworkConfig cfg;
  cfg.cpu_send_ms = 1.0;
  LanModel lan(cfg, 2, common::Rng(1));
  const TimePoint t1 = lan.occupy_sender_cpu(0, 0.0);
  const TimePoint t2 = lan.occupy_sender_cpu(0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 2.0);
  // The other process's CPU is independent.
  EXPECT_DOUBLE_EQ(lan.occupy_sender_cpu(1, 0.0), 1.0);
}

TEST(LanModel, MediumSerializesTransmissions) {
  NetworkConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.framing_bytes = 0;
  LanModel lan(cfg, 2, common::Rng(1));
  // 1250 bytes = 10000 bits = 0.1 ms at 100 Mbit/s.
  const TimePoint e1 = lan.occupy_medium(0.0, 1250);
  const TimePoint e2 = lan.occupy_medium(0.0, 1250);
  EXPECT_NEAR(e1, 0.1, 1e-9);
  EXPECT_NEAR(e2, 0.2, 1e-9);
}

TEST(LanModel, ArrivalAddsBaseDelayAndJitter) {
  NetworkConfig cfg;
  cfg.base_delay_ms = 0.5;
  cfg.jitter_mean_ms = 0.1;
  LanModel lan(cfg, 2, common::Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(lan.arrival_time(10.0), 10.5);
  }
}

TEST(LanModel, ReceiverCpuQueuesBackToBackArrivals) {
  NetworkConfig cfg;
  cfg.cpu_recv_ms = 0.5;
  LanModel lan(cfg, 2, common::Rng(1));
  EXPECT_DOUBLE_EQ(lan.occupy_receiver_cpu(0, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(lan.occupy_receiver_cpu(0, 1.0), 2.0);  // queued behind
  EXPECT_DOUBLE_EQ(lan.occupy_receiver_cpu(0, 5.0), 5.5);  // idle gap
}

TEST(LanModel, WabArrivalAddsDisorderJitter) {
  NetworkConfig cfg;
  cfg.base_delay_ms = 0.5;
  cfg.jitter_mean_ms = 0.0;
  cfg.wab_extra_jitter_ms = 2.0;
  LanModel lan(cfg, 2, common::Rng(3));
  bool saw_extra = false;
  for (int i = 0; i < 200; ++i) {
    const double t = lan.wab_arrival_time(1.0);
    EXPECT_GE(t, 1.5);
    EXPECT_LE(t, 3.5 + 1e-9);  // base + uniform[0, 2]
    if (t > 2.0) saw_extra = true;
  }
  EXPECT_TRUE(saw_extra) << "disorder jitter never sampled high";
}

TEST(LanModel, RegularArrivalHasNoDisorderJitter) {
  NetworkConfig cfg;
  cfg.base_delay_ms = 0.5;
  cfg.jitter_mean_ms = 0.0;
  cfg.wab_extra_jitter_ms = 5.0;
  LanModel lan(cfg, 2, common::Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(lan.arrival_time(1.0), 1.5);
  }
}

TEST(LanModel, WabLossProbability) {
  NetworkConfig cfg;
  cfg.wab_loss_prob = 0.5;
  LanModel lan(cfg, 2, common::Rng(9));
  int dropped = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (lan.drop_wab_datagram()) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kTrials, 0.5, 0.05);
}

TEST(LanModel, NoLossWhenDisabled) {
  NetworkConfig cfg;  // wab_loss_prob = 0 by default
  LanModel lan(cfg, 2, common::Rng(9));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(lan.drop_wab_datagram());
}

}  // namespace
}  // namespace zdc::sim
