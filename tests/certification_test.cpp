// Certification sweep: the full cross product of protocol × network profile
// × failure-detector mode × crash pattern, each over several seeds. Broader
// but shallower than the targeted property suites — its job is to catch
// interactions between dimensions that the focused tests hold fixed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/consensus_world.h"

namespace zdc::sim {
namespace {

struct Profile {
  const char* name;
  NetworkConfig net;
};

std::vector<Profile> profiles() {
  NetworkConfig fast;  // the harness default: sub-0.1ms everything
  return {
      {"default", fast},
      {"lan2006", calibrated_lan_2006()},
      {"wan", synthetic_wan()},
  };
}

struct CrashPattern {
  const char* name;
  bool initial;
  bool timed;
  bool truncated;
};

std::vector<CrashPattern> crash_patterns() {
  return {
      {"none", false, false, false},
      {"initial", true, false, false},
      {"timed", false, true, false},
      {"mid-broadcast", false, false, true},
  };
}

class Certification : public ::testing::TestWithParam<std::string> {};

TEST_P(Certification, ProtocolTimesProfileTimesFdTimesCrash) {
  const std::string proto = GetParam();
  const bool oracle_based = proto == "wab";
  const GroupParams group =
      (proto == "paxos" || proto == "ct") ? GroupParams{5, 2}
                                          : GroupParams{4, 1};

  for (const Profile& profile : profiles()) {
    for (const CrashPattern& pattern : crash_patterns()) {
      for (FdMode fd_mode : {FdMode::kStable, FdMode::kCrashTracking}) {
        // A stable FD never reports mid-run crashes: protocols that *wait on*
        // a crashed process (leader/coordinator/quorum member) legitimately
        // block, so only the crash-free and initial-crash cells demand
        // termination there.
        const bool termination_expected =
            !oracle_based &&
            (fd_mode == FdMode::kCrashTracking ||
             (!pattern.timed && !pattern.truncated));
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          common::Rng rng(seed * 7 + 1);
          ConsensusRunConfig cfg;
          cfg.group = group;
          cfg.net = profile.net;
          cfg.seed = seed;
          cfg.fd.mode = fd_mode;
          cfg.fd.detection_delay_ms = profile.net.base_delay_ms * 4 + 1.0;
          for (ProcessId p = 0; p < group.n; ++p) {
            cfg.proposals.push_back("v" + std::to_string(rng.next_below(2)));
          }
          if (pattern.initial || pattern.timed || pattern.truncated) {
            CrashSpec c;
            c.p = static_cast<ProcessId>(rng.next_below(group.n));
            if (pattern.initial) {
              c.initial = true;
            } else if (pattern.timed) {
              c.time = rng.uniform(0.0, profile.net.base_delay_ms * 6);
            } else {
              c.truncate_broadcast_index = 1;
              for (ProcessId t = 0; t < group.n; ++t) {
                if (rng.chance(0.5)) c.partial_targets.push_back(t);
              }
            }
            cfg.crashes.push_back(std::move(c));
          }
          cfg.time_limit_ms = 3'600'000.0;
          cfg.event_limit = 2'000'000;

          auto r = run_consensus(cfg, consensus_factory_by_name(proto));
          ASSERT_TRUE(r.agreement_ok)
              << proto << " × " << profile.name << " × " << pattern.name
              << " × fd" << static_cast<int>(fd_mode) << " seed " << seed;
          ASSERT_TRUE(r.validity_ok)
              << proto << " × " << profile.name << " × " << pattern.name;
          if (termination_expected) {
            ASSERT_TRUE(r.all_correct_decided)
                << proto << " × " << profile.name << " × " << pattern.name
                << " × fd" << static_cast<int>(fd_mode) << " seed " << seed;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Certification,
                         ::testing::Values("l", "p", "paxos", "ct",
                                           "fast-paxos", "brasileiro-l",
                                           "wab", "rec-paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace zdc::sim
