// Message-level unit tests for the Multi-Paxos sequencer: slot ordering,
// client routing, leader fail-over with slot recovery and gap filling, and
// duplicate suppression.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "abcast/paxos_abcast.h"
#include "direct_abcast_harness.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{3, 1};

DirectAbcastNet::Factory paxos_factory() {
  return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<abcast::PaxosAbcast>(self, group, host, omega);
  };
}

TEST(PaxosAbcastUnit, LeaderSequencesOwnSubmission) {
  DirectAbcastNet net(kGroup, paxos_factory());
  const abcast::MsgId id = net.a_broadcast(0, "x");  // p0 is the leader
  net.settle();
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_EQ(net.delivered(p).size(), 1u) << "p" << p;
    EXPECT_EQ(net.delivered(p)[0].id, id);
  }
}

TEST(PaxosAbcastUnit, NonLeaderSubmissionRoutesThroughLeader) {
  DirectAbcastNet net(kGroup, paxos_factory());
  net.a_broadcast(2, "y");
  // The client message sits on the 2→0 edge; nothing is sequenced yet.
  EXPECT_EQ(net.pending(2, 0), 1u);
  EXPECT_EQ(net.pending(2, 1), 0u);
  net.settle();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 1u);
  }
}

TEST(PaxosAbcastUnit, SlotsDeliverInOrderEvenWhenDecidedOutOfOrder) {
  DirectAbcastNet net(kGroup, paxos_factory());
  net.a_broadcast(0, "slot1");
  // Let the leader assign slot 1 (it handles its own client message
  // immediately) and broadcast 2a; then submit the next before any 2b flows.
  net.a_broadcast(0, "slot2");
  // Deliver everything: acceptors may process 2a(2) before 2a(1) depending
  // on edge order, but a-delivery must follow slot order.
  net.settle();
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_EQ(net.delivered(p).size(), 2u);
    EXPECT_EQ(net.delivered(p)[0].payload, "slot1");
    EXPECT_EQ(net.delivered(p)[1].payload, "slot2");
  }
  EXPECT_TRUE(net.total_order_ok());
}

TEST(PaxosAbcastUnit, FailoverRecoversAcceptedSlots) {
  DirectAbcastNet net(kGroup, paxos_factory());
  net.a_broadcast(0, "pre-crash");
  net.settle();
  for (ProcessId p = 0; p < 3; ++p) ASSERT_EQ(net.delivered(p).size(), 1u);

  // Leader p0 accepts a new batch into slot 2 but crashes before any 2b
  // reaches a majority: drop everything p0 queued after the partial work.
  net.a_broadcast(0, "in-flight");
  // p0's 2a sits on edges; deliver it only to p1 (a minority accepted).
  ASSERT_TRUE(net.deliver_one(0, 1));
  net.crash(0);
  net.drop_edge(0, 1);
  net.drop_edge(0, 2);

  // Ω moves to p1 everywhere; the new leader runs phase 1 and re-proposes
  // what p1 accepted, so "in-flight" survives the crash.
  net.set_leader_everywhere(1);
  net.notify_fd_change_all();
  net.settle();
  for (ProcessId p = 1; p < 3; ++p) {
    ASSERT_EQ(net.delivered(p).size(), 2u) << "p" << p;
    EXPECT_EQ(net.delivered(p)[1].payload, "in-flight");
  }
  EXPECT_TRUE(net.total_order_ok());
}

TEST(PaxosAbcastUnit, ClientResendAfterFailoverIsDeduplicated) {
  DirectAbcastNet net(kGroup, paxos_factory());
  // p2's submission reaches the leader, which sequences it fully.
  const abcast::MsgId id = net.a_broadcast(2, "once");
  net.settle();
  for (ProcessId p = 0; p < 3; ++p) ASSERT_EQ(net.delivered(p).size(), 1u);

  // A leader change triggers p2 to re-send its (already delivered) message;
  // Integrity demands it is not delivered twice.
  net.set_leader_everywhere(1);
  net.notify_fd_change_all();
  net.settle();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 1u) << "duplicate delivery at p" << p;
    EXPECT_EQ(net.delivered(p)[0].id, id);
  }
}

TEST(PaxosAbcastUnit, UndeliveredMessageResentToNewLeader) {
  DirectAbcastNet net(kGroup, paxos_factory());
  net.a_broadcast(2, "lost-then-found");
  // The client message to the (about-to-die) leader is lost with it.
  net.drop_edge(2, 0);
  net.crash(0);
  net.set_leader_everywhere(1);
  net.notify_fd_change_all();  // p2 re-sends unacked messages to p1
  net.settle();
  for (ProcessId p = 1; p < 3; ++p) {
    ASSERT_EQ(net.delivered(p).size(), 1u) << "p" << p;
    EXPECT_EQ(net.delivered(p)[0].payload, "lost-then-found");
  }
}

TEST(PaxosAbcastUnit, StaleLeaderIsNackedAndDefers) {
  DirectAbcastNet net(kGroup, paxos_factory());
  // Establish p1 as leader at ballot 1 everywhere.
  net.set_leader_everywhere(1);
  net.notify_fd_change_all();
  net.settle();

  // p0 wrongly believes it leads again (ballot 0 is stale now): its 2a must
  // be rejected and the system must still make progress under p1.
  net.fd(0).omega.value = 0;
  net.protocol(0).on_fd_change();
  net.a_broadcast(0, "contended");
  net.settle();
  // The message is eventually ordered (p0 re-routes / retries via NACKs or
  // p1 sequences it) and all histories agree.
  EXPECT_TRUE(net.total_order_ok());
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(net.delivered(p).size(), 1u) << "p" << p;
  }
}

TEST(PaxosAbcastUnit, MalformedInputIgnored) {
  DirectAbcastNet net(kGroup, paxos_factory());
  net.protocol(0).on_message(1, "");
  net.protocol(0).on_message(1, std::string("\xee", 1));
  net.protocol(0).on_message(1, std::string("\x04\x01", 2));  // truncated 2a
  net.a_broadcast(0, "fine");
  net.settle();
  EXPECT_EQ(net.delivered(0).size(), 1u);
}

}  // namespace
}  // namespace zdc::testing
