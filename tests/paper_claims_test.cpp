// The paper's quantitative claims, as tests.
//
//  Def. 1 (one-step):        decide in 1 communication step whenever all
//                            proposals are equal (f < n/3).
//  Def. 3 (zero-degradation): decide in 2 steps in *every* stable run — in
//                            particular runs with initial crashes, which is
//                            exactly what distinguishes it from mere
//                            fast-on-failure-free protocols.
//  Sec. 5: L-Consensus is zero-degrading; one-step only in stable runs.
//  Sec. 6: P-Consensus is one-step regardless of the FD output, and
//          zero-degrading.
//  Sec. 2: Brasileiro's protocol needs 3 steps from divergent configurations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/consensus_world.h"

namespace zdc::sim {
namespace {

// --- Zero-degradation: stable runs with initial crashes ---

ConsensusRunConfig stable_run_with_initial_crashes(std::uint32_t n,
                                                   std::uint32_t f,
                                                   std::uint32_t crashes) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{n, f};
  cfg.seed = 4242;
  cfg.fd.mode = FdMode::kStable;  // Ω/◇P perfect from t=0 (Def. 2)
  for (std::uint32_t i = 0; i < crashes; ++i) {
    CrashSpec c;
    c.p = i;  // crash the lowest ids: the natural leader is among the dead
    c.initial = true;
    cfg.crashes.push_back(c);
  }
  for (std::uint32_t p = 0; p < n; ++p) {
    cfg.proposals.push_back("v" + std::to_string(p));  // fully divergent
  }
  return cfg;
}

class ZeroDegradation : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroDegradation, TwoStepsDespiteInitialCrashes) {
  for (std::uint32_t crashes : {1u}) {
    auto cfg = stable_run_with_initial_crashes(4, 1, crashes);
    auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
    ASSERT_TRUE(r.all_correct_decided) << GetParam();
    ASSERT_TRUE(r.safe()) << GetParam();
    for (const auto& o : r.outcomes) {
      if (o.decided && o.path == consensus::DecisionPath::kRound) {
        EXPECT_LE(o.steps, 2u)
            << GetParam() << ": not zero-degrading with " << crashes
            << " initial crash(es)";
      }
    }
  }
}

TEST_P(ZeroDegradation, TwoStepsWithTwoInitialCrashesN7) {
  auto cfg = stable_run_with_initial_crashes(7, 2, 2);
  auto r = run_consensus(cfg, consensus_factory_by_name(GetParam()));
  ASSERT_TRUE(r.all_correct_decided);
  ASSERT_TRUE(r.safe());
  for (const auto& o : r.outcomes) {
    if (o.decided && o.path == consensus::DecisionPath::kRound) {
      EXPECT_LE(o.steps, 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ZeroDegradation,
                         ::testing::Values("l", "p"));

// Brasileiro is NOT zero-degrading: the same stable run costs three steps.
TEST(BrasileiroNotZeroDegrading, ThreeStepsDespiteStableRun) {
  auto cfg = stable_run_with_initial_crashes(4, 1, 1);
  auto r = run_consensus(cfg, brasileiro_factory("l"));
  ASSERT_TRUE(r.all_correct_decided);
  ASSERT_TRUE(r.safe());
  bool saw_round_decider = false;
  for (const auto& o : r.outcomes) {
    if (o.decided && o.path == consensus::DecisionPath::kRound) {
      EXPECT_GE(o.steps, 3u);
      saw_round_decider = true;
    }
  }
  EXPECT_TRUE(saw_round_decider);
}

// --- One-step: unanimity, under good and bad failure detectors ---

// P-Consensus decides in one step on unanimity even when ◇P emits garbage:
// "the ability of P-Consensus to decide in one communication step is
// regardless of the failure detector output" (Sec. 9).
TEST(POneStep, OneStepDespiteArbitraryFdOutput) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 77;
  cfg.proposals.assign(4, "same");
  cfg.fd.mode = FdMode::kScripted;
  // Garbage from the start: everyone suspects everyone else asymmetrically.
  for (ProcessId obs = 0; obs < 4; ++obs) {
    FdScriptEvent ev;
    ev.time = 0.0;
    ev.observer = obs;
    ev.leader = (obs + 1) % 4;
    for (ProcessId p = 0; p < 4; ++p) {
      if (p != obs) ev.suspected.push_back(p);
    }
    cfg.fd.script.push_back(std::move(ev));
  }

  auto r = run_consensus(cfg, p_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);
  ASSERT_TRUE(r.safe());
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_EQ(o.steps, 1u) << "P-Consensus one-step must not depend on ◇P";
    }
  }
}

// L-Consensus under the same unanimity but with an unstable Ω: the one-step
// path requires n−f PROP(r, v, ld) naming one majority leader, so asymmetric
// leader outputs forbid it — one-step holds only in stable runs (Sec. 5).
TEST(LOneStep, RequiresStability) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 78;
  cfg.proposals.assign(4, "same");
  cfg.fd.mode = FdMode::kScripted;
  for (ProcessId obs = 0; obs < 4; ++obs) {
    FdScriptEvent ev;
    ev.time = 0.0;
    ev.observer = obs;
    ev.leader = obs;  // everyone believes it leads itself
    cfg.fd.script.push_back(std::move(ev));
  }
  // Stabilize on p0 later so the run terminates.
  FdScriptEvent stabilize;
  stabilize.time = 10.0;
  stabilize.observer = kNoProcess;
  stabilize.leader = 0;
  cfg.fd.script.push_back(stabilize);

  auto r = run_consensus(cfg, l_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);
  ASSERT_TRUE(r.safe());
  for (const auto& o : r.outcomes) {
    if (o.path == consensus::DecisionPath::kRound) {
      EXPECT_GT(o.steps, 1u)
          << "L-Consensus must not be one-step when Ω is unstable (Thm. 1)";
    }
  }
}

// In a stable unanimous run, *every* correct process decides in one step with
// P-Consensus (nobody needs the forwarded-DECIDE path).
TEST(POneStep, AllProcessesOneStepInStableRun) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.seed = 79;
  cfg.proposals.assign(4, "same");
  auto r = run_consensus(cfg, p_consensus_factory());
  ASSERT_TRUE(r.all_correct_decided);
  for (const auto& o : r.outcomes) {
    EXPECT_EQ(o.path, consensus::DecisionPath::kRound);
    EXPECT_EQ(o.steps, 1u);
  }
}

// One-step still works at the resilience boundary n = 3f+1 for larger groups.
TEST(OneStepScaling, N7F2Unanimous) {
  for (const char* name : {"l", "p", "brasileiro-l", "wab"}) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{7, 2};
    cfg.seed = 80;
    cfg.proposals.assign(7, "same");
    auto r = run_consensus(cfg, consensus_factory_by_name(name));
    ASSERT_TRUE(r.all_correct_decided) << name;
    for (const auto& o : r.outcomes) {
      if (o.path == consensus::DecisionPath::kRound) {
        EXPECT_EQ(o.steps, 1u) << name;
      }
    }
  }
}

// One-step with f initial crashes and unanimity among survivors: n−f equal
// values still arrive (stable ◇P; Ω = lowest correct), so L and P stay
// one-step — Brasileiro too (his condition is FD-free).
TEST(OneStepWithCrashes, SurvivorUnanimityStillOneStep) {
  for (const char* name : {"l", "p", "brasileiro-l"}) {
    ConsensusRunConfig cfg;
    cfg.group = GroupParams{4, 1};
    cfg.seed = 81;
    cfg.fd.mode = FdMode::kStable;
    cfg.proposals.assign(4, "same");
    CrashSpec c;
    c.p = 3;
    c.initial = true;
    cfg.crashes.push_back(c);
    auto r = run_consensus(cfg, consensus_factory_by_name(name));
    ASSERT_TRUE(r.all_correct_decided) << name;
    for (const auto& o : r.outcomes) {
      if (o.decided && o.path == consensus::DecisionPath::kRound) {
        EXPECT_EQ(o.steps, 1u) << name;
      }
    }
  }
}

// --- Resilience preconditions are enforced ---

using ResilienceDeath = ::testing::Test;

TEST(ResilienceDeath, OneStepProtocolsRejectFGeqNThird) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{3, 1};  // 3 = 3*1: violates f < n/3
  cfg.seed = 1;
  cfg.proposals.assign(3, "v");
  EXPECT_DEATH(run_consensus(cfg, l_consensus_factory()), "f < n/3");
  EXPECT_DEATH(run_consensus(cfg, p_consensus_factory()), "f < n/3");
}

TEST(ResilienceDeath, PaxosRejectsMajorityFaulty) {
  ConsensusRunConfig cfg;
  cfg.group = GroupParams{4, 2};  // f = n/2: violates f < n/2
  cfg.seed = 1;
  cfg.proposals.assign(4, "v");
  EXPECT_DEATH(run_consensus(cfg, paxos_factory()), "f < n/2");
}

}  // namespace
}  // namespace zdc::sim
