// Tests for the zdc_lint scanner itself (tools/lint_core.*): each rule has a
// fixture with deliberate violations plus near-miss constructs that must NOT
// fire, and the allow-marker contract (same line / line above, mandatory
// justification, unknown rule names) is pinned down exactly.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.h"

namespace zdc::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lints a fixture under the determinism rule set and returns (line, rule)
/// pairs, sorted.
std::vector<std::pair<int, std::string>> hits(const std::string& name,
                                              bool determinism = true) {
  Options opts;
  opts.determinism = determinism;
  std::vector<std::pair<int, std::string>> out;
  for (const Violation& v : lint_source(name, read_fixture(name), opts)) {
    EXPECT_EQ(v.file, name);
    out.emplace_back(v.line, v.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Hits = std::vector<std::pair<int, std::string>>;

TEST(LintTest, WallClock) {
  EXPECT_EQ(hits("wall_clock.cpp"),
            (Hits{{5, "wall-clock"}, {10, "wall-clock"}}));
}

TEST(LintTest, WallTime) {
  // The member function *declaration* `double time() const`, the member call
  // `m.time()` and the identifier `arrival_time` must all stay silent.
  EXPECT_EQ(hits("wall_time.cpp"), (Hits{{11, "wall-time"}, {15, "wall-time"}}));
}

TEST(LintTest, RawRandom) {
  EXPECT_EQ(hits("raw_random.cpp"),
            (Hits{{6, "raw-random"}, {11, "raw-random"}, {16, "raw-random"}}));
}

TEST(LintTest, UnorderedIter) {
  // Range-for and .begin() walks fire; the .count() lookup does not.
  EXPECT_EQ(hits("unordered_iter.cpp"),
            (Hits{{9, "unordered-iter"}, {17, "unordered-iter"}}));
}

TEST(LintTest, BareAssert) {
  // static_assert, a comment mentioning assert(, a member *named* assert and
  // its member-call use must all stay silent.
  EXPECT_EQ(hits("bare_assert.cpp"), (Hits{{5, "bare-assert"}}));
}

TEST(LintTest, StdCout) {
  EXPECT_EQ(hits("std_cout.cpp"), (Hits{{5, "std-cout"}}));
}

TEST(LintTest, DeterminismRulesAreScoped) {
  // Outside the deterministic dirs only the hygiene rules run: the same
  // fixtures come back clean without opts.determinism.
  EXPECT_TRUE(hits("wall_clock.cpp", /*determinism=*/false).empty());
  EXPECT_TRUE(hits("raw_random.cpp", /*determinism=*/false).empty());
  EXPECT_TRUE(hits("unordered_iter.cpp", /*determinism=*/false).empty());
}

TEST(LintTest, CleanFile) {
  // Banned names in comments / strings / raw strings, identifiers merely
  // containing banned substrings, and ordered-container iteration: no hits.
  EXPECT_TRUE(hits("clean.cpp").empty());
}

TEST(LintTest, AllowMarkers) {
  // Valid same-line and line-above markers suppress (lines 7 and 12);
  // a marker without justification reports allow-needs-reason AND leaves the
  // underlying violation live (line 17); an unknown rule name reports
  // unknown-allow likewise (line 22); a marker for a different rule
  // suppresses nothing (line 27).
  EXPECT_EQ(hits("allow_marker.cpp"),
            (Hits{{17, "allow-needs-reason"},
                  {17, "wall-time"},
                  {22, "raw-random"},
                  {22, "unknown-allow"},
                  {27, "wall-time"}}));
}

TEST(LintTest, FormatIsStable) {
  const Violation v{"src/sim/event_queue.cpp", 42, "wall-clock", "boom"};
  EXPECT_EQ(format(v), "src/sim/event_queue.cpp:42: [wall-clock] boom");
}

TEST(LintTest, RunWalksFixtureTree) {
  // Drive the directory walker itself over the fixture dir: every fixture is
  // found, output is sorted by path, and det_dirs scoping is honored.
  RunConfig cfg;
  cfg.root = LINT_FIXTURE_DIR;
  cfg.hygiene_dirs = {"."};
  cfg.det_dirs = {};  // hygiene only
  std::set<std::string> files;
  for (const Violation& v : run(cfg)) {
    files.insert(v.file);
    EXPECT_TRUE(v.rule == "bare-assert" || v.rule == "std-cout" ||
                v.rule == "allow-needs-reason" || v.rule == "unknown-allow")
        << "determinism rule fired without det_dirs: " << format(v);
  }
  EXPECT_TRUE(files.count("./bare_assert.cpp") == 1 ||
              files.count("bare_assert.cpp") == 1)
      << "walker missed bare_assert.cpp";
}

}  // namespace
}  // namespace zdc::lint
