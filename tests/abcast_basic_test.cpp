// End-to-end checks for every atomic-broadcast protocol on the simulator:
// failure-free stable runs must deliver everything in identical total order
// across a range of throughputs.
#include <gtest/gtest.h>

#include <string>

#include "sim/abcast_world.h"

namespace zdc::sim {
namespace {

AbcastRunConfig base_config(const std::string& protocol) {
  AbcastRunConfig cfg;
  cfg.group = protocol == "paxos" ? GroupParams{3, 1} : GroupParams{4, 1};
  cfg.seed = 7;
  cfg.message_count = 200;
  cfg.throughput_per_s = 100.0;
  return cfg;
}

void expect_properties(const AbcastRunResult& r) {
  EXPECT_TRUE(r.total_order_ok);
  EXPECT_TRUE(r.integrity_ok);
  EXPECT_TRUE(r.agreement_ok);
  EXPECT_EQ(r.undelivered, 0u);
}

class AllAbcast : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAbcast, LowThroughputDeliversEverything) {
  AbcastRunConfig cfg = base_config(GetParam());
  cfg.throughput_per_s = 50.0;
  auto r = run_abcast(cfg, abcast_factory_by_name(GetParam()));
  expect_properties(r);
  EXPECT_EQ(r.delivered_unique, cfg.message_count);
  EXPECT_GT(r.latency_ms.count(), 0u);
}

TEST_P(AllAbcast, HighThroughputDeliversEverything) {
  AbcastRunConfig cfg = base_config(GetParam());
  cfg.throughput_per_s = 400.0;
  auto r = run_abcast(cfg, abcast_factory_by_name(GetParam()));
  expect_properties(r);
  EXPECT_EQ(r.delivered_unique, cfg.message_count);
}

TEST_P(AllAbcast, SingleMessageIsDeliveredEverywhere) {
  AbcastRunConfig cfg = base_config(GetParam());
  cfg.message_count = 1;
  cfg.warmup_fraction = 0.0;
  auto r = run_abcast(cfg, abcast_factory_by_name(GetParam()));
  expect_properties(r);
  EXPECT_EQ(r.delivered_unique, 1u);
  EXPECT_EQ(r.latency_ms.count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllAbcast,
                         ::testing::Values("c-l", "c-p", "wabcast", "paxos"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Latency sanity: at trickle throughput the C-Abcast stacks should finish one
// a-broadcast in a handful of network delays (2δ fast path), well under 2 ms
// with the default LAN model.
TEST(AbcastLatency, FastPathIsAroundTwoDelta) {
  for (const char* name : {"c-l", "c-p", "wabcast"}) {
    AbcastRunConfig cfg = base_config(name);
    cfg.throughput_per_s = 20.0;
    auto r = run_abcast(cfg, abcast_factory_by_name(name));
    expect_properties(r);
    EXPECT_LT(r.latency_ms.mean(), 2.0) << name;
  }
}

// Paxos pays the extra client→leader hop: slower than C-Abcast/L at trickle
// throughput even with its smaller group.
TEST(AbcastLatency, PaxosSlowerThanOneStepAtLowLoad) {
  // Calibrated testbed: propagation dominates, so the 2δ fast path beats
  // Paxos's 3δ (on the fast default network the CPU constants drown δ out).
  AbcastRunConfig l_cfg = base_config("c-l");
  l_cfg.net = calibrated_lan_2006();
  l_cfg.throughput_per_s = 20.0;
  auto l_run = run_abcast(l_cfg, abcast_factory_by_name("c-l"));

  AbcastRunConfig paxos_cfg = base_config("paxos");
  paxos_cfg.net = calibrated_lan_2006();
  paxos_cfg.throughput_per_s = 20.0;
  // Clients colocated with non-leader replicas (the paper's deployment), so
  // every message pays the full client→leader hop.
  paxos_cfg.workload_senders = {1, 2};
  auto paxos_run = run_abcast(paxos_cfg, abcast_factory_by_name("paxos"));

  expect_properties(l_run);
  expect_properties(paxos_run);
  EXPECT_LT(l_run.latency_ms.mean(), paxos_run.latency_ms.mean());
}

}  // namespace
}  // namespace zdc::sim
