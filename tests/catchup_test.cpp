// The catch-up recovery stack (src/recovery), bottom to top:
//
//   1. DeliveryLog retention — commit-tracking GC plus the retention cap.
//   2. DurableRsm — write-ahead applies over StableStorage, checkpoint +
//      ring replay on recover(), including a FaultyEnv crash-point sweep
//      over the real WAL (legal-prefix rule, then resume and converge).
//   3. CatchupService — the wire protocol on a deterministic in-test
//      router: entry path, snapshot fallback after GC, ack-driven GC.
//   4. The RunOptions::storage_factory plumbing — the regression for the
//      silent with_storage() no-op (Config::from_options used to drop the
//      factory on the floor).
//   5. End to end on the threaded runtime: kill -9 a replica mid-workload,
//      outrun its retention window, restart it through the kept factory and
//      watch it recover its WAL prefix, install a peer snapshot and
//      converge to byte-equal digests.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "abcast/delivery_log.h"
#include "common/assert.h"
#include "common/stable_storage.h"
#include "core/kv_store.h"
#include "fault/storage_fault.h"
#include "obs/run_options.h"
#include "recovery/catchup.h"
#include "recovery/durable_rsm.h"
#include "recovery/replica_group.h"
#include "runtime/runtime_node.h"
#include "storage/durable_storage.h"
#include "storage/env.h"
#include "storage/faulty_env.h"

namespace zdc::recovery {
namespace {

using abcast::DeliveryLog;

// ---------------------------------------------------------------- DeliveryLog

TEST(DeliveryLog, AppendAssignsTheDeliveryOrder) {
  DeliveryLog log(3);
  EXPECT_EQ(log.append("a"), 1u);
  EXPECT_EQ(log.append("b"), 2u);
  EXPECT_EQ(log.first(), 1u);
  EXPECT_EQ(log.next(), 3u);
  EXPECT_EQ(log.retained(), 2u);
  EXPECT_EQ(*log.entry(1), "a");
  EXPECT_EQ(*log.entry(2), "b");
  EXPECT_EQ(log.entry(0), nullptr);
  EXPECT_EQ(log.entry(3), nullptr);
}

TEST(DeliveryLog, CommitTrackingGcDropsOnlyTheFullyAckedPrefix) {
  DeliveryLog log(3);
  for (int i = 1; i <= 6; ++i) log.append("e" + std::to_string(i));
  log.ack(0, 5);
  log.ack(1, 3);
  log.ack(2, 6);
  EXPECT_EQ(log.min_acked(), 3u);
  EXPECT_EQ(log.gc(), 3u) << "entries 1..3 are acked by everyone";
  EXPECT_EQ(log.first(), 4u);
  EXPECT_EQ(log.entry(3), nullptr);
  EXPECT_EQ(*log.entry(4), "e4");
  // Watermarks only move forward: a stale re-ack must not regress.
  log.ack(1, 2);
  EXPECT_EQ(log.acked(1), 3u);
  EXPECT_EQ(log.gc(), 0u);
}

TEST(DeliveryLog, RetentionCapForcesGcPastUnackedEntries) {
  DeliveryLog::Config cfg;
  cfg.max_retained = 4;
  DeliveryLog log(3, cfg);
  for (int i = 1; i <= 10; ++i) log.append("e" + std::to_string(i));
  // Nobody acked anything (a crashed replica acks nothing forever), yet the
  // cap still bounds memory.
  EXPECT_EQ(log.gc(), 6u);
  EXPECT_EQ(log.first(), 7u);
  EXPECT_EQ(log.retained(), 4u);
  EXPECT_EQ(log.entry(6), nullptr) << "forced out: snapshot fallback territory";
  EXPECT_EQ(*log.entry(7), "e7");
}

TEST(DeliveryLog, ResetToRestartsTheWindowAfterRecovery) {
  DeliveryLog log(3);
  for (int i = 1; i <= 5; ++i) log.append("e" + std::to_string(i));
  log.reset_to(21);  // rebooted replica resumes after its recovered prefix
  EXPECT_EQ(log.first(), 21u);
  EXPECT_EQ(log.next(), 21u);
  EXPECT_EQ(log.retained(), 0u);
  EXPECT_EQ(log.entry(5), nullptr);
  EXPECT_EQ(log.append("fresh"), 21u);
}

// ----------------------------------------------------------------- DurableRsm

std::string workload_cmd(std::uint64_t i) {
  return core::kv_put("k" + std::to_string(i % 5), "v" + std::to_string(i));
}

// Reference digest after applying the first `count` workload commands.
std::string reference_digest(std::uint64_t count) {
  core::KvStateMachine m;
  for (std::uint64_t i = 1; i <= count; ++i) m.apply(workload_cmd(i));
  return m.snapshot();
}

TEST(DurableRsm, RecoversCheckpointPlusRingSuffix) {
  common::InMemoryStableStorage storage;
  DurableRsm::Config cfg;
  cfg.snapshot_every = 4;
  cfg.log_window = 8;
  {
    DurableRsm rsm(std::make_unique<core::KvStateMachine>(), &storage, cfg);
    ASSERT_TRUE(rsm.recover());
    EXPECT_EQ(rsm.applied(), 0u);
    // 21 applies: last checkpoint lands at 20, one ring record past it.
    for (std::uint64_t i = 1; i <= 21; ++i) {
      rsm.apply(i, workload_cmd(i));
    }
    EXPECT_EQ(rsm.applied(), 21u);
  }
  DurableRsm revived(std::make_unique<core::KvStateMachine>(), &storage, cfg);
  ASSERT_TRUE(revived.recover());
  EXPECT_EQ(revived.applied(), 21u);
  EXPECT_EQ(revived.machine().snapshot(), reference_digest(21));
  // The revived instance keeps going as if nothing happened.
  EXPECT_EQ(revived.apply(22, core::kv_get("k2")), "value:v17");
}

TEST(DurableRsm, NullStorageIsPlainInMemory) {
  DurableRsm rsm(std::make_unique<core::KvStateMachine>(), nullptr);
  ASSERT_TRUE(rsm.recover());
  rsm.apply(1, workload_cmd(1));
  EXPECT_EQ(rsm.applied(), 1u);
}

TEST(DurableRsm, InstallSnapshotJumpsForwardIgnoresStale) {
  common::InMemoryStableStorage storage;
  DurableRsm source(std::make_unique<core::KvStateMachine>(), nullptr);
  for (std::uint64_t i = 1; i <= 30; ++i) source.apply(i, workload_cmd(i));

  DurableRsm target(std::make_unique<core::KvStateMachine>(), &storage);
  ASSERT_TRUE(target.recover());
  ASSERT_TRUE(target.install_snapshot(30, source.machine().serialize()));
  EXPECT_EQ(target.applied(), 30u);
  EXPECT_EQ(target.machine().snapshot(), reference_digest(30));
  // Stale installs succeed without rewinding; corrupt images are refused.
  EXPECT_TRUE(target.install_snapshot(10, "whatever"));
  EXPECT_EQ(target.applied(), 30u);
  EXPECT_FALSE(target.install_snapshot(99, "corrupt-image"));
  EXPECT_EQ(target.applied(), 30u);

  // The install checkpointed: a fresh instance recovers straight to 30.
  DurableRsm revived(std::make_unique<core::KvStateMachine>(), &storage);
  ASSERT_TRUE(revived.recover());
  EXPECT_EQ(revived.applied(), 30u);
}

TEST(DurableRsm, SurvivesRealWalReopen) {
  storage::MemEnv env;
  DurableRsm::Config cfg;
  cfg.snapshot_every = 8;
  cfg.log_window = 16;
  std::unique_ptr<storage::DurableStableStorage> store;
  ASSERT_TRUE(storage::DurableStableStorage::open(env, "db", {}, &store)
                  .is_ok());
  {
    DurableRsm rsm(std::make_unique<core::KvStateMachine>(), store.get(), cfg);
    ASSERT_TRUE(rsm.recover());
    for (std::uint64_t i = 1; i <= 13; ++i) rsm.apply(i, workload_cmd(i));
  }
  store.reset();  // kill -9: only the Env (the disk) survives

  ASSERT_TRUE(storage::DurableStableStorage::open(env, "db", {}, &store)
                  .is_ok());
  DurableRsm revived(std::make_unique<core::KvStateMachine>(), store.get(),
                     cfg);
  ASSERT_TRUE(revived.recover());
  EXPECT_EQ(revived.applied(), 13u);
  EXPECT_EQ(revived.machine().snapshot(), reference_digest(13));
}

// Crash-point sweep over the durable apply path: kill the storage at the
// k-th write / k-th sync for every k the workload reaches, reopen, and hold
// recovery to the legal-prefix rule — everything the write-ahead barrier
// completed survives, at most the one in-flight command is in doubt, and
// the revived instance converges when the missing suffix is re-applied
// (exactly what the catch-up protocol does over the wire).
TEST(DurableRsm, CrashPointSweepRecoversALegalPrefix) {
  constexpr std::uint64_t kWorkload = 24;
  DurableRsm::Config cfg;
  cfg.snapshot_every = 4;
  cfg.log_window = 8;
  for (const char* op : {"@write ", "@sync "}) {
    bool fired = true;
    for (int k = 1; fired; ++k) {
      storage::MemEnv mem;
      storage::FaultyEnv env(mem);
      fault::StorageFaultPlan plan;
      std::string error;
      const std::string plan_text = op + std::to_string(k) + " crash";
      ASSERT_TRUE(fault::parse_storage_fault_plan(plan_text, &plan, &error))
          << error;
      env.arm(plan);

      std::unique_ptr<storage::DurableStableStorage> store;
      ASSERT_TRUE(storage::DurableStableStorage::open(env, "db", {}, &store)
                      .is_ok());
      std::uint64_t in_memory = 0;
      {
        DurableRsm rsm(std::make_unique<core::KvStateMachine>(), store.get(),
                       cfg);
        ASSERT_TRUE(rsm.recover());
        for (std::uint64_t i = 1; i <= kWorkload; ++i) {
          rsm.apply(i, workload_cmd(i));
          in_memory = i;
          if (!store->last_status().is_ok()) break;
        }
      }
      fired = !store->last_status().is_ok();
      store.reset();
      if (!fired) continue;  // k outran the workload's ops: sweep done
      env.recover();

      ASSERT_TRUE(storage::DurableStableStorage::open(env, "db", {}, &store)
                      .is_ok())
          << plan_text;
      DurableRsm revived(std::make_unique<core::KvStateMachine>(), store.get(),
                         cfg);
      ASSERT_TRUE(revived.recover()) << plan_text;
      const std::uint64_t recovered = revived.applied();
      EXPECT_LE(recovered, in_memory) << plan_text;
      EXPECT_GE(recovered + 1, in_memory)
          << plan_text << ": only the in-flight apply may be lost";
      EXPECT_EQ(revived.machine().snapshot(), reference_digest(recovered))
          << plan_text;
      // Resume: re-applying the lost suffix converges on the reference.
      for (std::uint64_t i = recovered + 1; i <= kWorkload; ++i) {
        revived.apply(i, workload_cmd(i));
      }
      EXPECT_EQ(revived.machine().snapshot(), reference_digest(kWorkload))
          << plan_text;
    }
  }
}

// ------------------------------------------------------------ CatchupService

// Deterministic in-test wiring: n replicas whose SendFns feed one FIFO that
// the test pumps to empty — no threads, no transport, every interleaving
// explicit.
struct Wire {
  struct Packet {
    ProcessId from;
    ProcessId to;
    std::string bytes;
  };

  struct Node {
    std::unique_ptr<DurableRsm> rsm;
    std::unique_ptr<DeliveryLog> log;
    std::unique_ptr<CatchupService> catchup;
  };

  explicit Wire(std::uint32_t n, DeliveryLog::Config retention = {},
                CatchupService::Config catchup_cfg = {}) {
    for (ProcessId p = 0; p < n; ++p) {
      auto node = std::make_unique<Node>();
      node->rsm =
          std::make_unique<DurableRsm>(std::make_unique<core::KvStateMachine>(),
                                       nullptr);
      node->log = std::make_unique<DeliveryLog>(n, retention);
      node->catchup = std::make_unique<CatchupService>(
          p, n, node->rsm.get(), node->log.get(),
          [this, p](ProcessId to, std::string bytes) {
            queue.push_back(Packet{p, to, std::move(bytes)});
          },
          catchup_cfg);
      nodes.push_back(std::move(node));
    }
  }

  /// Delivers every queued packet (and whatever those deliveries enqueue).
  void pump() {
    while (!queue.empty()) {
      Packet pkt = std::move(queue.front());
      queue.pop_front();
      nodes[pkt.to]->catchup->on_message(pkt.from, pkt.bytes);
    }
  }

  /// Applies the workload prefix [1, count] to node p, as live delivery
  /// would have.
  void run_live(ProcessId p, std::uint64_t count) {
    for (std::uint64_t i = 1; i <= count; ++i) {
      nodes[p]->rsm->apply(i, workload_cmd(i));
      nodes[p]->log->append(workload_cmd(i));
    }
  }

  std::vector<std::unique_ptr<Node>> nodes;
  std::deque<Packet> queue;
};

TEST(CatchupService, EntryPathReplaysRetainedCommandsInChunks) {
  Wire wire(2);
  wire.run_live(0, 50);  // server is at 50, everything retained

  auto& client = *wire.nodes[1];
  client.catchup->start_recovery();
  ASSERT_TRUE(client.catchup->recovering());
  client.catchup->poll_once();
  wire.pump();  // chunked transfer self-drives: reply -> re-request -> ...

  EXPECT_EQ(client.rsm->applied(), 50u);
  EXPECT_EQ(client.catchup->entries_applied(), 50u);
  EXPECT_EQ(client.catchup->snapshots_installed(), 0u)
      << "retained entries must never trigger the snapshot fallback";
  EXPECT_TRUE(client.catchup->caught_up());
  EXPECT_EQ(client.rsm->machine().snapshot(),
            wire.nodes[0]->rsm->machine().snapshot());
  // The client re-built its own retention window while catching up.
  EXPECT_EQ(client.log->next(), 51u);
}

TEST(CatchupService, SnapshotFallbackWhenGcOutranTheRequest) {
  DeliveryLog::Config retention;
  retention.max_retained = 8;
  Wire wire(2, retention);
  wire.run_live(0, 50);
  ASSERT_EQ(wire.nodes[0]->log->gc(), 42u);  // cap: only 43..50 retained

  auto& client = *wire.nodes[1];
  client.catchup->start_recovery();
  client.catchup->poll_once();  // asks for 1, which GC dropped
  wire.pump();

  EXPECT_EQ(client.catchup->snapshots_installed(), 1u);
  EXPECT_EQ(client.rsm->applied(), 50u);
  EXPECT_TRUE(client.catchup->caught_up());
  EXPECT_EQ(client.rsm->machine().snapshot(),
            wire.nodes[0]->rsm->machine().snapshot());
  EXPECT_EQ(client.log->next(), 51u)
      << "reset_to must resume the window right after the snapshot";
}

TEST(CatchupService, SnapshotThenEntrySuffixForAPartiallyLaggingReplica) {
  DeliveryLog::Config retention;
  retention.max_retained = 8;
  Wire wire(2, retention);
  wire.run_live(0, 50);
  wire.nodes[0]->log->gc();
  wire.run_live(1, 20);  // client is not empty, just far behind

  auto& client = *wire.nodes[1];
  client.catchup->start_recovery();
  client.catchup->poll_once();  // asks for 21; server retains only 43..50
  wire.pump();

  EXPECT_EQ(client.catchup->snapshots_installed(), 1u);
  EXPECT_EQ(client.rsm->applied(), 50u);
  EXPECT_EQ(client.rsm->machine().snapshot(),
            wire.nodes[0]->rsm->machine().snapshot());
}

TEST(CatchupService, AcksDriveCommitTrackingGcOnEveryReplica) {
  Wire wire(2);
  wire.run_live(0, 30);
  wire.run_live(1, 30);
  ASSERT_EQ(wire.nodes[0]->log->retained(), 30u);

  // Both replicas broadcast their applied watermark (self included); every
  // log then knows everyone is at 30 and drops the whole prefix.
  wire.nodes[0]->catchup->announce_ack();
  wire.nodes[1]->catchup->announce_ack();
  wire.pump();

  for (const auto& node : wire.nodes) {
    EXPECT_EQ(node->log->min_acked(), 30u);
    EXPECT_EQ(node->log->retained(), 0u);
    EXPECT_EQ(node->log->first(), 31u);
  }
}

TEST(CatchupService, PollRoundRobinsAcrossPeersAndSkipsSelf) {
  Wire wire(3);
  wire.run_live(0, 5);
  wire.run_live(2, 5);

  auto& client = *wire.nodes[1];
  client.catchup->start_recovery();
  // Three ticks: peers 2, 0, 2 (never 1). Each answers with its frontier;
  // the client converges regardless of which peer serves it.
  for (int tick = 0; tick < 3; ++tick) {
    client.catchup->poll_once();
    wire.pump();
  }
  EXPECT_EQ(client.rsm->applied(), 5u);
  EXPECT_TRUE(client.catchup->caught_up());
}

TEST(CatchupService, CaughtUpNeedsAFrontierFirst) {
  Wire wire(2);
  auto& client = *wire.nodes[1];
  client.catchup->start_recovery();
  EXPECT_FALSE(client.catchup->caught_up())
      << "applied == 0 of frontier unknown is not caught up";
  client.catchup->poll_once();
  wire.pump();  // empty reply from an empty peer still carries frontier 0
  EXPECT_EQ(client.catchup->frontier_seen(), 0u);
  EXPECT_FALSE(client.catchup->caught_up());
}

// ------------------------------------------- RunOptions -> RuntimeCluster

// The from_options regression (the silent with_storage() no-op): every
// RunOptions field the runtime consumes must land in the cluster config —
// including storage_factory, which the pre-fix mapping dropped on the floor.
// The mapping itself is exhaustive by construction (a structured binding
// over RunOptions fails to compile when a field is added but not decided);
// this test pins the *values* carried over.
TEST(FromOptions, MapsEveryRuntimeFieldIncludingStorageFactory) {
  obs::MetricsRegistry registry;
  abcast::BatchingOptions batching;
  batching.paxos_pipeline_window = 3;
  batching.c_abcast_max_batch = 7;
  auto opts = zdc::RunOptions{}
                  .with_group(5, 2)
                  .with_seed(1234)
                  .with_batching(batching)
                  .with_metrics(&registry)
                  .with_storage([](ProcessId) {
                    return std::make_unique<common::InMemoryStableStorage>();
                  });

  const auto cfg = runtime::RuntimeCluster::Config::from_options(opts);
  EXPECT_EQ(cfg.group.n, 5u);
  EXPECT_EQ(cfg.group.f, 2u);
  EXPECT_EQ(cfg.net.seed, 1234u);
  EXPECT_EQ(cfg.udp.seed, 1234u);
  EXPECT_EQ(cfg.batching.paxos_pipeline_window, 3u);
  EXPECT_EQ(cfg.batching.c_abcast_max_batch, 7u);
  EXPECT_EQ(cfg.metrics, &registry);
  ASSERT_TRUE(static_cast<bool>(cfg.storage_factory))
      << "with_storage() must not be a silent no-op";
  EXPECT_NE(cfg.storage_factory(0), nullptr);
}

TEST(FromOptions, ClusterInstantiatesPerProcessStorage) {
  const auto opts = zdc::RunOptions{}.with_group(3, 1).with_storage(
      [](ProcessId) {
        return std::make_unique<common::InMemoryStableStorage>();
      });
  runtime::RuntimeCluster cluster(
      runtime::RuntimeCluster::Config::from_options(opts),
      [](ProcessId, const abcast::AppMessage&) {});
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_NE(cluster.storage(p), nullptr) << "process " << p;
  }
  EXPECT_EQ(cluster.storage(99), nullptr);

  runtime::RuntimeCluster bare(
      runtime::RuntimeCluster::Config::from_options(
          zdc::RunOptions{}.with_group(3, 1)),
      [](ProcessId, const abcast::AppMessage&) {});
  EXPECT_EQ(bare.storage(0), nullptr) << "no factory, no storage";
}

// --------------------------------------------------------------- end to end

// Per-process MemEnvs standing in for four disks; they outlive crashes and
// restarts, which is exactly what makes the WAL replay meaningful.
struct Disks {
  explicit Disks(std::uint32_t n) {
    for (std::uint32_t p = 0; p < n; ++p) {
      envs.push_back(std::make_unique<storage::MemEnv>());
    }
  }

  common::StorageFactory factory() {
    return [this](ProcessId p) -> std::unique_ptr<common::StableStorage> {
      std::unique_ptr<storage::DurableStableStorage> store;
      const storage::Status s =
          storage::DurableStableStorage::open(*envs[p], "db", {}, &store);
      ZDC_ASSERT_MSG(s.is_ok(), "WAL reopen failed");
      return store;
    };
  }

  std::vector<std::unique_ptr<storage::MemEnv>> envs;
};

ReplicaGroup::Config small_windows() {
  ReplicaGroup::Config cfg;
  cfg.rsm.snapshot_every = 8;
  cfg.rsm.log_window = 32;
  cfg.retention.max_retained = 16;
  return cfg;
}

// with_storage() end to end: a cluster built through RunOptions actually
// writes through DurableStableStorage — observable syncs and WAL files in
// every process's Env (pre-fix: zero of either, silently).
TEST(ReplicaGroupE2E, WithStorageWritesThroughTheWal) {
  Disks disks(4);
  const auto opts =
      zdc::RunOptions{}.with_group(4, 1).with_seed(7).with_storage(
          disks.factory());
  ReplicaGroup group(
      opts, [](ProcessId) { return std::make_unique<core::KvStateMachine>(); },
      small_windows());
  group.start();
  for (std::uint64_t i = 1; i <= 10; ++i) group.submit(0, workload_cmd(i));
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (group.applied(p) < 10) return false;
        }
        return true;
      },
      20000.0));
  group.shutdown();

  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(group.digest(p), group.digest(0)) << "replica " << p;
    ASSERT_NE(group.cluster().storage(p), nullptr);
    EXPECT_GT(group.cluster().storage(p)->sync_count(), 0u)
        << "replica " << p << " never synced: with_storage() is a no-op";
    std::vector<std::string> files;
    ASSERT_TRUE(disks.envs[p]->list_dir("db", &files).is_ok());
    EXPECT_FALSE(files.empty()) << "no WAL segments on disk " << p;
  }
}

// The tentpole end to end: kill -9 a replica mid-workload, outrun its
// retention window while it is down, restart it through the kept factory.
// It must recover its WAL prefix locally, be forced through the snapshot
// fallback (the lag exceeded every peer's retention cap), pull the suffix
// over Channel::kCatchup and converge to byte-equal digests.
TEST(ReplicaGroupE2E, Kill9RestartCatchesUpViaSnapshotAndConverges) {
  constexpr ProcessId kVictim = 3;
  constexpr std::uint64_t kPhase1 = 20;
  constexpr std::uint64_t kPhase2 = 60;  // >> max_retained: forces snapshot
  Disks disks(4);
  const auto opts =
      zdc::RunOptions{}.with_group(4, 1).with_seed(42).with_storage(
          disks.factory());
  ReplicaGroup group(
      opts, [](ProcessId) { return std::make_unique<core::KvStateMachine>(); },
      small_windows());
  group.start();

  for (std::uint64_t i = 1; i <= kPhase1; ++i) group.submit(0, workload_cmd(i));
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (group.applied(p) < kPhase1) return false;
        }
        return true;
      },
      20000.0));

  group.crash(kVictim);
  // Let the victim's in-flight handlers drain before its reboot.
  static_cast<void>(
      runtime::RuntimeCluster::wait_until([] { return false; }, 100.0));

  for (std::uint64_t i = kPhase1 + 1; i <= kPhase1 + kPhase2; ++i) {
    group.submit(0, workload_cmd(i));
  }
  constexpr std::uint64_t kTotal = kPhase1 + kPhase2;
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (p != kVictim && group.applied(p) < kTotal) return false;
        }
        return true;
      },
      30000.0));

  const std::uint64_t recovered = group.restart(kVictim);
  EXPECT_GT(recovered, 0u) << "the WAL prefix must survive the kill -9";
  EXPECT_LE(recovered, kPhase1);
  EXPECT_TRUE(group.recovering(kVictim));

  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        return group.caught_up(kVictim) && group.applied(kVictim) >= kTotal;
      },
      30000.0))
      << "victim stuck at " << group.applied(kVictim) << "/" << kTotal;
  EXPECT_GE(group.snapshots_installed(kVictim), 1u)
      << "a lag past the retention cap must go through snapshot transfer";
  group.shutdown();

  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(group.applied(p), kTotal) << "replica " << p;
    EXPECT_EQ(group.digest(p), group.digest(0))
        << "replica " << p << " diverged after recovery";
  }
}

// Entry-path variant: restart *before* the peers' retention cap is outrun —
// catch-up must complete purely over resent entries, no snapshot.
TEST(ReplicaGroupE2E, ShortOutageCatchesUpViaEntriesAlone) {
  constexpr ProcessId kVictim = 2;
  Disks disks(4);
  ReplicaGroup::Config cfg = small_windows();
  cfg.retention.max_retained = 0;  // unbounded: ack-driven GC only
  const auto opts =
      zdc::RunOptions{}.with_group(4, 1).with_seed(9).with_storage(
          disks.factory());
  ReplicaGroup group(
      opts, [](ProcessId) { return std::make_unique<core::KvStateMachine>(); },
      cfg);
  group.start();

  for (std::uint64_t i = 1; i <= 10; ++i) group.submit(0, workload_cmd(i));
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (group.applied(p) < 10) return false;
        }
        return true;
      },
      20000.0));
  group.crash(kVictim);
  static_cast<void>(
      runtime::RuntimeCluster::wait_until([] { return false; }, 100.0));
  // While the victim is down its ack watermark freezes, so commit-tracking
  // GC stalls and the peers retain everything it missed.
  for (std::uint64_t i = 11; i <= 25; ++i) group.submit(0, workload_cmd(i));
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (p != kVictim && group.applied(p) < 25) return false;
        }
        return true;
      },
      20000.0));

  static_cast<void>(group.restart(kVictim));
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] { return group.caught_up(kVictim) && group.applied(kVictim) >= 25; },
      30000.0));
  EXPECT_EQ(group.snapshots_installed(kVictim), 0u)
      << "retained entries must never trigger the snapshot fallback";
  group.shutdown();
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(group.digest(p), group.digest(0)) << "replica " << p;
  }
}

}  // namespace
}  // namespace zdc::recovery
