// Exporter golden-format tests (JSON + Prometheus), validator round-trips,
// the fixed-seed byte-identity contract, and the runtime trace recorder's
// causal-consistency guarantee on a live threaded cluster.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "obs/metrics.h"
#include "obs/runtime_trace.h"
#include "runtime/runtime_node.h"
#include "sim/abcast_world.h"
#include "sim/trace.h"

namespace zdc::obs {
namespace {

// The registry owns a mutex, so it is neither copyable nor movable; golden
// tests fill a caller-provided instance and snapshot it.
MetricsRegistry::Snapshot golden_snapshot() {
  MetricsRegistry reg;
  reg.counter("req_total", {{"process", "0"}}).inc(3);
  reg.gauge("depth").set(2.5);
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(99.0);
  return reg.snapshot();
}

TEST(Exporter, JsonGolden) {
  const std::string json = to_json(golden_snapshot());
  EXPECT_EQ(json,
            "{\n"
            "  \"schema\": \"zdc-metrics-v1\",\n"
            "  \"families\": [\n"
            "    {\"name\": \"depth\", \"type\": \"gauge\", \"points\": [\n"
            "      {\"labels\": {}, \"value\": 2.5}\n"
            "    ]},\n"
            "    {\"name\": \"lat\", \"type\": \"histogram\", \"points\": [\n"
            "      {\"labels\": {}, \"count\": 3, \"sum\": 104.5, "
            "\"bounds\": [1, 10], \"buckets\": [1, 1, 1]}\n"
            "    ]},\n"
            "    {\"name\": \"req_total\", \"type\": \"counter\", "
            "\"points\": [\n"
            "      {\"labels\": {\"process\": \"0\"}, \"value\": 3}\n"
            "    ]}\n"
            "  ]\n"
            "}\n");
}

TEST(Exporter, PrometheusGolden) {
  const std::string text = to_prometheus(golden_snapshot());
  EXPECT_EQ(text,
            "# TYPE depth gauge\n"
            "depth 2.5\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 1\n"
            "lat_bucket{le=\"10\"} 2\n"
            "lat_bucket{le=\"+Inf\"} 3\n"
            "lat_sum 104.5\n"
            "lat_count 3\n"
            "# TYPE req_total counter\n"
            "req_total{process=\"0\"} 3\n");
}

TEST(Exporter, ValidatorAcceptsOwnOutput) {
  EXPECT_EQ(validate_metrics_json(to_json(golden_snapshot())),
            "");
}

TEST(Exporter, ValidatorRejectsMalformedDocuments) {
  EXPECT_NE(validate_metrics_json(""), "");
  EXPECT_NE(validate_metrics_json("{\"schema\": \"zdc-metrics-v2\", "
                                  "\"families\": []}"),
            "");
  // Empty families list is rejected: a run that registered nothing has no
  // business exporting.
  EXPECT_EQ(validate_metrics_json("{\"schema\": \"zdc-metrics-v1\", "
                                  "\"families\": []}"),
            "families is empty");
  // Histogram bucket arity must be bounds + 1.
  EXPECT_EQ(
      validate_metrics_json(
          "{\"schema\": \"zdc-metrics-v1\", \"families\": ["
          "{\"name\": \"h\", \"type\": \"histogram\", \"points\": ["
          "{\"labels\": {}, \"count\": 1, \"sum\": 1, \"bounds\": [1, 2], "
          "\"buckets\": [1]}]}]}"),
      "buckets arity != bounds + 1");
  // Counter values must be non-negative integers.
  EXPECT_NE(validate_metrics_json(
                "{\"schema\": \"zdc-metrics-v1\", \"families\": ["
                "{\"name\": \"c\", \"type\": \"counter\", \"points\": ["
                "{\"labels\": {}, \"value\": 1.5}]}]}"),
            "");
  // Bucket counts must sum to count.
  EXPECT_EQ(
      validate_metrics_json(
          "{\"schema\": \"zdc-metrics-v1\", \"families\": ["
          "{\"name\": \"h\", \"type\": \"histogram\", \"points\": ["
          "{\"labels\": {}, \"count\": 5, \"sum\": 1, \"bounds\": [1], "
          "\"buckets\": [1, 1]}]}]}"),
      "bucket counts do not sum to count");
  const std::string good = to_json(golden_snapshot());
  EXPECT_EQ(validate_metrics_json(good + "x"), "trailing garbage");
}

// The determinism contract: two sim runs with identical configs produce
// byte-identical metrics JSON (counter bumps never touch the RNG or the
// event queue, and snapshot/export ordering is canonical).
TEST(Exporter, FixedSeedSimRunsAreByteIdentical) {
  auto run_once = []() -> std::string {
    MetricsRegistry reg;
    sim::AbcastRunConfig cfg;
    cfg.seed = 42;
    cfg.message_count = 60;
    cfg.metrics = &reg;
    const auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name("c-l"));
    EXPECT_TRUE(r.safe());
    return to_json(reg.snapshot());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(validate_metrics_json(first), "");
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("zdc_sim_delivery_latency_ms"), std::string::npos);
  EXPECT_NE(first.find("zdc_sim_decisions_total"), std::string::npos);
}

// RuntimeTraceRecorder on a live threaded cluster: the frozen trace must be
// causally consistent (every delivery matched by an earlier send) even though
// events were recorded from concurrent worker threads.
TEST(RuntimeTrace, LiveClusterTraceIsCausallyConsistent) {
  MetricsRegistry reg;
  RuntimeTraceRecorder recorder;
  runtime::RuntimeCluster::Config cfg;
  cfg.metrics = &reg;
  cfg.trace = &recorder;

  std::atomic<std::uint64_t> delivered{0};
  runtime::RuntimeCluster cluster(
      cfg, [&delivered](ProcessId, const abcast::AppMessage&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
  cluster.start();
  constexpr std::uint32_t kMessages = 10;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    cluster.node(i % cfg.group.n).a_broadcast("m" + std::to_string(i));
  }
  ASSERT_TRUE(runtime::RuntimeCluster::wait_until(
      [&] { return delivered.load() >= kMessages * cfg.group.n; }, 30'000.0));
  cluster.shutdown();

  ASSERT_GT(recorder.size(), 0u);
  const sim::TraceRecorder trace = recorder.freeze();
  EXPECT_TRUE(trace.causally_consistent());

  // The cluster also fed the registry: node counters must match deliveries.
  std::uint64_t node_deliveries = 0;
  for (ProcessId p = 0; p < cfg.group.n; ++p) {
    node_deliveries =
        node_deliveries +
        reg.counter("zdc_node_a_deliveries_total", process_label(p)).value();
  }
  EXPECT_GE(node_deliveries, static_cast<std::uint64_t>(kMessages) *
                                 cfg.group.n);
}

}  // namespace
}  // namespace zdc::obs
