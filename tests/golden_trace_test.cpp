// Golden-trace determinism tests for the hot-path machinery.
//
// The pooled event store (sim/event_queue), the allocation-lean codec and the
// batching knobs must not perturb scheduling or wire bytes: a seeded run is a
// contract. Two layers of defence:
//
//   * pinned fingerprints — FNV-1a over the serialized structured trace of
//     fixed-seed runs, recorded before the event-store rewrite. Any change to
//     event ordering, tie-breaking, RNG streams or message encoding shows up
//     as a different hash. Re-pin ONLY for a deliberate, understood
//     behaviour change, never to silence a diff you cannot explain.
//   * run-twice identity — batched configurations (pipeline window, C-Abcast
//     batch cap) and nemesis fault plans have no pinned history, so we assert
//     the weaker property that holds for every config: same seed, same bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "fault/nemesis.h"
#include "sim/abcast_world.h"
#include "sim/trace.h"

namespace zdc::sim {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string serialize(const TraceRecorder& trace) {
  std::string out;
  char buf[64];
  for (const auto& ev : trace.events()) {
    std::snprintf(buf, sizeof(buf), "%.9f|%s|%u|%u|", ev.time,
                  trace_kind_name(ev.kind), ev.subject, ev.peer);
    out += buf;
    out += ev.detail;
    out += '\n';
  }
  return out;
}

AbcastRunConfig golden_config(const std::string& protocol,
                              std::uint64_t seed) {
  AbcastRunConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.net = calibrated_lan_2006();
  cfg.seed = seed;
  cfg.throughput_per_s = 200.0;
  cfg.message_count = 60;
  if (protocol == "paxos") {
    for (ProcessId p = 1; p < cfg.group.n; ++p) {
      cfg.workload_senders.push_back(p);
    }
  }
  return cfg;
}

struct Golden {
  const char* protocol;
  std::uint64_t seed;
  std::size_t events;
  std::uint64_t hash;
};

// Recorded from the pre-refactor std::function/std::priority_queue event
// queue and per-byte encoder: the refactor is required to be byte-neutral.
// Deliberately re-pinned when the consensus wire gained its 5-byte integrity
// seal ([version u8][crc32c u32], common::seal_frame): bigger frames occupy
// the shared medium longer, so fixed-seed schedules shift. The Paxos rows
// are unchanged because the seal covers Consensus-layer point-to-point
// frames only, and PaxosAbcast is a monolithic abcast protocol with its own
// wire format — none of its traffic crosses the sealed seam.
constexpr Golden kGolden[] = {
    {"c-l", 42, 5233, 0x949bab2bbe9a9b42ULL},
    {"c-l", 7, 5181, 0xd44cc5c63a8567a1ULL},
    {"c-p", 42, 5230, 0x9d07985b7af831ceULL},
    {"c-p", 7, 5161, 0x1f7b02785ed9f1bULL},
    {"wabcast", 42, 5230, 0x9d07985b7af831ceULL},
    {"wabcast", 7, 5231, 0x8f9b30494c942845ULL},
    {"paxos", 42, 2817, 0xdf466385a3e2634cULL},
    {"paxos", 7, 2816, 0xa2ca9e60e13655fcULL},
};

TEST(GoldenTrace, PinnedFingerprintsUnchanged) {
  for (const Golden& g : kGolden) {
    AbcastRunConfig cfg = golden_config(g.protocol, g.seed);
    TraceRecorder trace;
    cfg.trace = &trace;
    auto r = run_abcast(cfg, abcast_factory_by_name(g.protocol));
    ASSERT_TRUE(r.safe()) << g.protocol << " seed " << g.seed;
    ASSERT_TRUE(r.agreement_ok) << g.protocol << " seed " << g.seed;
    EXPECT_EQ(trace.events().size(), g.events)
        << g.protocol << " seed " << g.seed;
    EXPECT_EQ(fnv1a(serialize(trace)), g.hash)
        << g.protocol << " seed " << g.seed
        << ": trace bytes diverged from the pinned golden run";
  }
}

// Runs `cfg` twice (fresh world each time) and returns both serialized
// traces via out-params; the caller asserts equality for a readable diff.
void run_twice(const AbcastRunConfig& base, const std::string& protocol,
               std::string* first, std::string* second) {
  for (std::string* out : {first, second}) {
    AbcastRunConfig cfg = base;
    TraceRecorder trace;
    cfg.trace = &trace;
    auto r = run_abcast(cfg, abcast_factory_by_name(protocol));
    ASSERT_TRUE(r.safe()) << protocol;
    *out = serialize(trace);
  }
}

TEST(GoldenTrace, BatchedPaxosPipelineIsDeterministic) {
  AbcastRunConfig cfg = golden_config("paxos", 1234);
  cfg.batching.paxos_pipeline_window = 4;
  cfg.throughput_per_s = 500.0;  // saturate the window so batching engages
  std::string a, b;
  run_twice(cfg, "paxos", &a, &b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "pipeline-window batching broke seed determinism";
}

TEST(GoldenTrace, BatchedCAbcastIsDeterministic) {
  AbcastRunConfig cfg = golden_config("c-l", 99);
  cfg.batching.c_abcast_max_batch = 3;
  std::string a, b;
  run_twice(cfg, "c-l", &a, &b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "C-Abcast batch cap broke seed determinism";
}

TEST(GoldenTrace, NemesisRunIsDeterministic) {
  AbcastRunConfig cfg = golden_config("c-l", 77);
  cfg.batching.c_abcast_max_batch = 4;
  fault::NemesisConfig ncfg;
  ncfg.n = cfg.group.n;
  ncfg.f = cfg.group.f;
  ncfg.horizon_ms = 40.0;
  ncfg.disturbances = 3;
  cfg.fault_plan = fault::random_fault_plan(ncfg, 77);
  std::string a, b;
  run_twice(cfg, "c-l", &a, &b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "fault-plan run broke seed determinism";
}

}  // namespace
}  // namespace zdc::sim
