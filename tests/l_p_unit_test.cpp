// Message-level unit tests for L-Consensus and P-Consensus, driven directly:
// the algorithm-listing behaviours that whole-run tests cannot pin down.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "direct_harness.h"

namespace zdc::testing {
namespace {

constexpr GroupParams kGroup{4, 1};

DirectNet::Factory l_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::LConsensus>(self, group, host, omega);
  };
}

DirectNet::Factory p_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView&, const fd::SuspectView& suspects) {
    return std::make_unique<consensus::PConsensus>(self, group, host, suspects);
  };
}

// --- L-Consensus: Algorithm 1 line by line ---

TEST(LConsensusUnit, Line2WaitsForQuorum) {
  DirectNet net(kGroup, l_factory());
  net.set_leader_everywhere(0);
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v");
  // Two round-1 messages (leader included) are not n−f = 3: p3 must wait.
  net.deliver_one(0, 3);
  net.deliver_one(1, 3);
  EXPECT_FALSE(net.decided(3));
  net.deliver_one(2, 3);
  EXPECT_TRUE(net.decided(3));  // line 4: 3 equal values naming the leader
  EXPECT_EQ(net.protocol(3).decision_steps(), 1u);
}

TEST(LConsensusUnit, Line3WaitsForLeaderMessage) {
  DirectNet net(kGroup, l_factory());
  net.set_leader_everywhere(0);
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v");
  // A full quorum *without* the leader's message must keep waiting (line 3).
  net.deliver_one(1, 3);
  net.deliver_one(2, 3);
  net.deliver_one(3, 3);
  EXPECT_FALSE(net.decided(3));
  net.deliver_one(0, 3);
  EXPECT_TRUE(net.decided(3));
}

TEST(LConsensusUnit, Line3LeaderChangeUnblocks) {
  DirectNet net(kGroup, l_factory());
  net.set_leader_everywhere(0);
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v");
  net.deliver_one(1, 3);
  net.deliver_one(2, 3);
  net.deliver_one(3, 3);
  ASSERT_FALSE(net.decided(3));
  // Ω at p3 moves away from the silent leader: the "∨ ld != Ω.leader"
  // disjunct lets p3 finish the round via line 9 (3 equal values) — but it
  // may not *decide* (line 4 needs the leader), so it advances to round 2.
  net.fd(3).omega.value = 1;
  net.notify_fd_change(3);
  EXPECT_FALSE(net.decided(3));
  auto& l3 = static_cast<consensus::LConsensus&>(net.protocol(3));
  EXPECT_EQ(l3.current_round(), 2u);
}

TEST(LConsensusUnit, Line7AdoptsLeaderValue) {
  DirectNet net(kGroup, l_factory());
  net.set_leader_everywhere(0);
  net.propose(0, "lead");
  net.propose(1, "x");
  net.propose(2, "y");
  net.propose(3, "z");
  // p3 completes round 1 from {p0, p1, p2}: no n−f equal values, majority
  // names leader p0 → est := "lead" (line 7). Round 2 then decides "lead".
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "lead");
    EXPECT_EQ(net.protocol(p).decision_steps(), 2u);
  }
}

TEST(LConsensusUnit, StaleRoundMessagesIgnored) {
  DirectNet net(kGroup, l_factory());
  net.set_leader_everywhere(0);
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v");
  net.deliver_all();
  ASSERT_TRUE(net.decided(0));
  const auto decided_value = net.decision(0);
  // Replay a round-1 PROP after the decision: must be inert.
  common::Encoder enc;
  enc.put_u8(1);
  enc.put_u64(1);
  enc.put_string("other");
  enc.put_u32(0);
  net.protocol(0).on_message(2, common::seal_frame(enc.bytes()));
  EXPECT_EQ(net.decision(0), decided_value);
}

TEST(LConsensusUnit, MalformedMessagesCounted) {
  DirectNet net(kGroup, l_factory());
  net.propose(0, "v");
  auto& proto = net.protocol(0);
  proto.on_message(1, common::seal_frame(""));
  proto.on_message(1, common::seal_frame(std::string("\x01\x01", 2)));  // truncated PROP
  proto.on_message(1, common::seal_frame(std::string("\x09zzzz", 5)));   // unknown tag
  proto.on_message(9, "from out-of-range process");      // bad sender id
  // A frame whose seal fails is a corrupt drop, not a malformed message.
  proto.on_message(1, "unsealed garbage");
  EXPECT_EQ(proto.malformed_messages(), 4u);
  EXPECT_EQ(proto.corrupt_frames_dropped(), 1u);
  EXPECT_FALSE(proto.decided());
}

// --- P-Consensus: Algorithm 2 line by line ---

TEST(PConsensusUnit, Line3DecidesOnQuorumOfEquals) {
  DirectNet net(kGroup, p_factory());
  for (ProcessId p = 0; p < 4; ++p) net.propose(p, "v");
  net.deliver_one(0, 2);
  net.deliver_one(1, 2);
  EXPECT_FALSE(net.decided(2));
  net.deliver_one(3, 2);
  EXPECT_TRUE(net.decided(2));
  EXPECT_EQ(net.protocol(2).decision_steps(), 1u);
}

TEST(PConsensusUnit, Line6WaitsForTheFrozenQuorum) {
  DirectNet net(kGroup, p_factory());
  net.propose(0, "a");
  net.propose(1, "b");
  net.propose(2, "c");
  net.propose(3, "d");
  // p3 gets n−f = 3 divergent values from {p1, p2, p3}: no decision, and
  // Q = {p0, p1, p2} (first three non-suspected) — p0's message is missing,
  // so p3 must keep waiting at line 6.
  net.deliver_one(1, 3);
  net.deliver_one(2, 3);
  net.deliver_one(3, 3);
  auto& p3 = static_cast<consensus::PConsensus&>(net.protocol(3));
  EXPECT_EQ(p3.current_round(), 1u);
  // p0's message completes the quorum: line 12 picks the estimate of the
  // smallest-index member (p0, "a") and the round advances.
  net.deliver_one(0, 3);
  EXPECT_EQ(p3.current_round(), 2u);
  EXPECT_FALSE(net.decided(3));
}

TEST(PConsensusUnit, SuspicionReleasesTheQuorumWait) {
  DirectNet net(kGroup, p_factory());
  net.propose(0, "a");
  net.propose(1, "b");
  net.propose(2, "c");
  net.propose(3, "d");
  net.deliver_one(1, 3);
  net.deliver_one(2, 3);
  net.deliver_one(3, 3);
  auto& p3 = static_cast<consensus::PConsensus&>(net.protocol(3));
  ASSERT_EQ(p3.current_round(), 1u);
  // ◇P at p3 suspects p0: the line-6 wait drops p0 and the round completes
  // through the incomplete-quorum branch (lines 13-15).
  net.fd(3).suspects.flags[0] = true;
  net.notify_fd_change(3);
  EXPECT_EQ(p3.current_round(), 2u);
}

TEST(PConsensusUnit, Line9ForcesThePivotalValue) {
  DirectNet net(kGroup, p_factory());
  net.propose(0, "w");
  net.propose(1, "v");
  net.propose(2, "v");
  net.propose(3, "v");
  // p0 completes round 1 from Q = {p0, p1, p2}: values w, v, v — v appears
  // n−2f = 2 times, so line 9 forces est := v; round 2 decides v.
  net.deliver_all();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(net.decided(p));
    EXPECT_EQ(net.decision(p), "v");
  }
}

TEST(PConsensusUnit, DecideMessagePreProposeIsHonored) {
  DirectNet net(kGroup, p_factory());
  // p0..p2 run to a decision while p3 has not proposed at all.
  net.propose(0, "v");
  net.propose(1, "v");
  net.propose(2, "v");
  for (ProcessId from = 0; from < 3; ++from) {
    for (ProcessId to = 0; to < 3; ++to) net.deliver_edge(from, to);
  }
  ASSERT_TRUE(net.decided(0));
  // The DECIDE flood reaches p3 before it proposes: the hardened task T2
  // adopts it immediately (see Consensus::on_message documentation).
  net.deliver_edge(0, 3);
  EXPECT_TRUE(net.decided(3));
  EXPECT_EQ(net.decision(3), "v");
  EXPECT_EQ(net.protocol(3).decision_path(), consensus::DecisionPath::kForwarded);
}

TEST(PConsensusUnit, DuplicatePropsFromOneSenderCountOnce) {
  DirectNet net(kGroup, p_factory());
  net.propose(3, "v");
  net.deliver_edge(3, 3);  // p3's own round-1 PROP
  common::Encoder enc;
  enc.put_u8(1);
  enc.put_u64(1);
  enc.put_string("v");
  const std::string prop = common::seal_frame(enc.bytes());
  // The same sender's round-1 PROP three times must not fake a quorum.
  net.protocol(3).on_message(0, prop);
  net.protocol(3).on_message(0, prop);
  net.protocol(3).on_message(0, prop);
  EXPECT_FALSE(net.decided(3));
  net.protocol(3).on_message(1, prop);
  EXPECT_TRUE(net.decided(3));  // self + p0 + p1 = genuine quorum
}

}  // namespace
}  // namespace zdc::testing
