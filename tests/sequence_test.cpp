// Tests for the repeated-consensus (recovery-run) harness and the
// zero-degradation claims it demonstrates.
#include <gtest/gtest.h>

#include <string>

#include "sim/sequence_world.h"

namespace zdc::sim {
namespace {

SequenceConfig base_sequence(std::uint32_t instances) {
  SequenceConfig cfg;
  cfg.group = GroupParams{4, 1};
  cfg.net = calibrated_lan_2006();
  cfg.fd.mode = FdMode::kCrashTracking;
  cfg.fd.detection_delay_ms = 3.0;
  cfg.seed = 77;
  cfg.instances = instances;
  cfg.divergent_proposals = true;
  return cfg;
}

TEST(SequenceWorld, CompletesFailureFreeSequence) {
  auto cfg = base_sequence(8);
  auto r = run_consensus_sequence(cfg, l_consensus_factory());
  ASSERT_EQ(r.instances.size(), 8u);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.all_safe);
  for (const auto& inst : r.instances) {
    EXPECT_DOUBLE_EQ(inst.mean_steps, 2.0);  // divergent + stable = 2 steps
    EXPECT_GT(inst.first_decision, 0.0);
  }
}

TEST(SequenceWorld, InstancesRunBackToBack) {
  auto cfg = base_sequence(5);
  auto r = run_consensus_sequence(cfg, l_consensus_factory());
  ASSERT_TRUE(r.all_complete);
  for (std::size_t i = 1; i < r.instances.size(); ++i) {
    EXPECT_GE(r.instances[i].start_time,
              r.instances[i - 1].start_time +
                  r.instances[i - 1].last_decision)
        << "instance " << i << " started before its predecessor finished";
  }
}

// The zero-degradation story (paper Sec. 1): after the crash blip, L and P
// return to 2 steps; single-decree Paxos with its ballot-0 owner dead pays
// phase 1 in every later instance.
TEST(SequenceWorld, ZeroDegradingProtocolsRecover) {
  for (const char* proto : {"l", "p"}) {
    auto cfg = base_sequence(10);
    cfg.crash_process = 0;
    cfg.crash_before_instance = 4;
    auto r = run_consensus_sequence(cfg, consensus_factory_by_name(proto));
    ASSERT_TRUE(r.all_complete) << proto;
    ASSERT_TRUE(r.all_safe) << proto;
    for (std::size_t i = 0; i < r.instances.size(); ++i) {
      if (i == 4) continue;  // the recovery instance may pay the FD delay
      EXPECT_DOUBLE_EQ(r.instances[i].mean_steps, 2.0)
          << proto << " instance " << i;
    }
  }
}

TEST(SequenceWorld, SingleDecreePaxosDegradesPermanently) {
  auto cfg = base_sequence(10);
  cfg.crash_process = 0;  // the ballot-0 owner
  cfg.crash_before_instance = 4;
  auto r = run_consensus_sequence(cfg, paxos_factory());
  ASSERT_TRUE(r.all_complete);
  ASSERT_TRUE(r.all_safe);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.instances[i].mean_steps, 2.0) << "instance " << i;
  }
  for (std::size_t i = 5; i < r.instances.size(); ++i) {
    EXPECT_GE(r.instances[i].mean_steps, 4.0)
        << "instance " << i << ": phase 1 must recur forever";
  }
}

TEST(SequenceWorld, CtStaysAtThreeStepsThroughout) {
  auto cfg = base_sequence(8);
  cfg.crash_process = 0;
  cfg.crash_before_instance = 3;
  auto r = run_consensus_sequence(cfg, ct_consensus_factory());
  ASSERT_TRUE(r.all_complete);
  ASSERT_TRUE(r.all_safe);
  for (std::size_t i = 0; i < r.instances.size(); ++i) {
    if (i == 3) continue;  // recovery instance
    EXPECT_DOUBLE_EQ(r.instances[i].mean_steps, 3.0) << "instance " << i;
  }
}

TEST(SequenceWorld, UnanimousSequenceIsOneStepThroughout) {
  auto cfg = base_sequence(6);
  cfg.divergent_proposals = false;
  auto r = run_consensus_sequence(cfg, p_consensus_factory());
  ASSERT_TRUE(r.all_complete);
  for (const auto& inst : r.instances) {
    EXPECT_DOUBLE_EQ(inst.mean_steps, 1.0);
  }
}

}  // namespace
}  // namespace zdc::sim
