// Unit and replication tests for the append-only replicated log.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/replicated_log.h"
#include "direct_abcast_harness.h"

#include "abcast/c_abcast.h"

namespace zdc::core {
namespace {

TEST(ReplicatedLog, AppendReturnsStableIndices) {
  ReplicatedLogStateMachine log;
  EXPECT_EQ(log.apply(log_append("a")), "idx:0");
  EXPECT_EQ(log.apply(log_append("b")), "idx:1");
  EXPECT_EQ(log.apply(log_append("c")), "idx:2");
  EXPECT_EQ(log.size(), 3u);
}

TEST(ReplicatedLog, ReadAndRange) {
  ReplicatedLogStateMachine log;
  log.apply(log_append("alpha"));
  log.apply(log_append("beta"));
  EXPECT_EQ(log.apply(log_read(0)), "data:alpha");
  EXPECT_EQ(log.apply(log_read(1)), "data:beta");
  EXPECT_EQ(log.apply(log_read(2)), "out_of_range");
  EXPECT_EQ(log.apply(log_len()), "len:2");
}

TEST(ReplicatedLog, TrimKeepsIndicesStable) {
  ReplicatedLogStateMachine log;
  for (int i = 0; i < 5; ++i) log.apply(log_append("e" + std::to_string(i)));
  EXPECT_EQ(log.apply(log_trim(3)), "ok");
  EXPECT_EQ(log.first_index(), 3u);
  EXPECT_EQ(log.apply(log_read(2)), "out_of_range");  // trimmed away
  EXPECT_EQ(log.apply(log_read(3)), "data:e3");       // index unchanged
  EXPECT_EQ(log.apply(log_append("e5")), "idx:5");    // numbering continues
}

// The index contract from replicated_log.h, pinned: LEN is the *logical*
// length (end_index(), unchanged by TRIM) while size() is the *live* count
// (end_index() - first_index(), shrinks on TRIM). They only coincide before
// the first trim.
TEST(ReplicatedLog, LenIsLogicalLengthSizeIsLiveCountAfterTrim) {
  ReplicatedLogStateMachine log;
  for (int i = 0; i < 6; ++i) log.apply(log_append("e" + std::to_string(i)));
  EXPECT_EQ(log.apply(log_len()), "len:6");
  EXPECT_EQ(log.size(), 6u);

  EXPECT_EQ(log.apply(log_trim(4)), "ok");
  EXPECT_EQ(log.apply(log_len()), "len:6") << "LEN must survive TRIM";
  EXPECT_EQ(log.size(), 2u) << "size() is the live count";
  EXPECT_EQ(log.first_index(), 4u);
  EXPECT_EQ(log.end_index(), 6u);

  // Appends keep numbering from the logical length, so "idx:<n>" results
  // stay meaningful against LEN.
  EXPECT_EQ(log.apply(log_append("e6")), "idx:6");
  EXPECT_EQ(log.apply(log_len()), "len:7");
  EXPECT_EQ(log.size(), 3u);
}

// READ serves exactly the half-open window [first_index(), end_index()).
TEST(ReplicatedLog, ReadBoundariesPinnedToWindow) {
  ReplicatedLogStateMachine log;
  EXPECT_EQ(log.apply(log_read(0)), "out_of_range");  // empty log
  for (int i = 0; i < 5; ++i) log.apply(log_append("e" + std::to_string(i)));
  log.apply(log_trim(2));
  ASSERT_EQ(log.first_index(), 2u);
  ASSERT_EQ(log.end_index(), 5u);
  EXPECT_EQ(log.apply(log_read(1)), "out_of_range");  // below first_index()
  EXPECT_EQ(log.apply(log_read(2)), "data:e2");       // oldest readable
  EXPECT_EQ(log.apply(log_read(4)), "data:e4");       // newest readable
  EXPECT_EQ(log.apply(log_read(5)), "out_of_range");  // end_index() excluded
  // Trimming everything leaves an empty window at a nonzero position.
  log.apply(log_trim(5));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.apply(log_read(4)), "out_of_range");
  EXPECT_EQ(log.apply(log_len()), "len:5");
}

TEST(ReplicatedLog, MalformedRejected) {
  ReplicatedLogStateMachine log;
  EXPECT_EQ(log.apply("junk"), "error:malformed");
  EXPECT_EQ(log.size(), 0u);
}

TEST(ReplicatedLog, SnapshotTracksContentAndFrame) {
  ReplicatedLogStateMachine a, b;
  EXPECT_EQ(a.snapshot(), b.snapshot());
  a.apply(log_append("x"));
  EXPECT_NE(a.snapshot(), b.snapshot());
  b.apply(log_append("x"));
  EXPECT_EQ(a.snapshot(), b.snapshot());
  a.apply(log_trim(1));
  EXPECT_NE(a.snapshot(), b.snapshot());  // same bytes, different frame
}

// Replication: concurrent appends through atomic broadcast land at the same
// indices on every replica — the order-dependent-result property.
TEST(ReplicatedLog, ConcurrentAppendsGetIdenticalIndicesEverywhere) {
  constexpr GroupParams kGroup{4, 1};
  testing::DirectAbcastNet net(
      kGroup, [](ProcessId s, GroupParams g, abcast::AbcastHost& h,
                 const fd::OmegaView& o, const fd::SuspectView&) {
        return std::unique_ptr<abcast::AtomicBroadcast>(
            abcast::make_c_abcast_l(s, g, h, o));
      });

  for (ProcessId p = 0; p < 4; ++p) {
    net.a_broadcast(p, log_append("from-p" + std::to_string(p)));
  }
  net.settle();

  // Apply each replica's delivery history to its own log; results (the
  // assigned indices) must agree replica-by-replica.
  std::vector<std::vector<std::string>> results(4);
  std::vector<std::string> snapshots;
  for (ProcessId p = 0; p < 4; ++p) {
    ReplicatedLogStateMachine log;
    for (const auto& m : net.delivered(p)) {
      results[p].push_back(log.apply(m.payload));
    }
    snapshots.push_back(log.snapshot());
    ASSERT_EQ(results[p].size(), 4u);
  }
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(results[p], results[0]) << "replica " << p;
    EXPECT_EQ(snapshots[p], snapshots[0]) << "replica " << p;
  }
}

}  // namespace
}  // namespace zdc::core
