#!/usr/bin/env bash
# Builds the tree with clang and -DZDC_THREAD_SAFETY=ON so every
# ZDC_GUARDED_BY/ZDC_REQUIRES annotation is enforced as an error
# (-Werror=thread-safety). The annotations are no-ops under gcc, so without
# clang there is nothing to check: we print a SKIP marker (matched by the
# ctest SKIP_REGULAR_EXPRESSION property) and exit 0.
#
#   scripts/thread_safety_check.sh [repo-root]
set -eu
root=${1:-$(cd "$(dirname "$0")/.." && pwd)}

if ! command -v clang++ > /dev/null 2>&1; then
  echo "SKIP: clang++ not installed; thread-safety analysis not available"
  exit 0
fi

build_dir="$root/build-tsa"
jobs=$( (command -v nproc > /dev/null && nproc) || echo 4)

echo "=== thread-safety: configure ($build_dir)"
cmake -B "$build_dir" -S "$root" \
  -DCMAKE_CXX_COMPILER=clang++ \
  -DZDC_THREAD_SAFETY=ON > /dev/null
echo "=== thread-safety: build (clang, -Werror=thread-safety)"
cmake --build "$build_dir" -j "$jobs"
echo "=== thread-safety: clean"
