#!/usr/bin/env bash
# Check-only formatting gate: clang-format --dry-run -Werror against the
# committed .clang-format. Never rewrites files — the tree was not
# mass-reformatted, so violations should be fixed (or the config adjusted)
# file by file. Skips with a notice when clang-format isn't installed.
#
#   scripts/format_check.sh [repo-root]
set -eu
root=${1:-$(cd "$(dirname "$0")/.." && pwd)}

if ! command -v clang-format > /dev/null 2>&1; then
  echo "SKIP: clang-format not installed"
  exit 0
fi

find "$root/src" "$root/tests" "$root/tools" "$root/bench" "$root/examples" \
     -name '*.h' -o -name '*.cpp' | sort \
  | xargs clang-format --style=file --dry-run -Werror
echo "format: clean"
