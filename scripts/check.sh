#!/usr/bin/env bash
# Full verification: static analysis first (cheapest failures surface
# earliest), then build + ctest in the plain tree, then the same suite under
# ThreadSanitizer, AddressSanitizer and UBSan
# (-DZDC_SANITIZE=thread|address|undefined, each in its own build directory
# so the trees never mix).
#
#   scripts/check.sh                # static + plain + metrics + tsan + asan
#                                   # + ubsan + storage + service
#   scripts/check.sh plain tsan     # just these suites
#   scripts/check.sh metrics        # metrics-JSON schema + byte-identity
#   scripts/check.sh storage        # durable-WAL + catch-up recovery suites
#                                   # under both sanitizers
#                                   # + long fixed-seed WAL fuzz
#   scripts/check.sh service        # session/lock/read-index suites under
#                                   # both sanitizers + service bench smoke
#   scripts/check.sh --static       # only the static stage
#   scripts/check.sh --explore      # opt-in: slow-labelled deep exploration
#                                   # (full schedule-space exhaustion, minutes)
#   scripts/check.sh bench          # opt-in: full hot-path perf sweep
#                                   # (scripts/bench.sh -> BENCH_hotpath.json)
set -eu
cd "$(dirname "$0")/.."
JOBS=$( (command -v nproc > /dev/null && nproc) || echo 4)

# Static stage: thread-safety annotation build (clang), zdc_lint, the
# zdc_analyze semantic passes, clang-tidy. The clang-dependent pieces
# self-skip where clang isn't installed; zdc_lint and zdc_analyze always run
# (they build with the project).
run_static() {
  echo "=== static: thread-safety annotations"
  scripts/thread_safety_check.sh "$PWD"
  echo "=== static: zdc_lint"
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target zdc_lint
  ./build/tools/zdc_lint --root "$PWD"
  echo "=== static: zdc_analyze"
  cmake --build build -j "$JOBS" --target zdc_analyze
  ./build/tools/zdc_analyze --root "$PWD"
  echo "=== static: clang-tidy"
  scripts/run_clang_tidy.sh "$PWD" "$PWD/build"
  echo "=== static: format"
  scripts/format_check.sh "$PWD"
}

# Metrics stage: the exporter determinism contract, end to end. Two
# fixed-seed sim runs must emit byte-identical metrics JSON, and both the
# sim and runtime documents must pass the zdc-metrics-v1 schema validator.
run_metrics() {
  echo "=== metrics: build zdc_explore"
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target zdc_explore
  local explore=./build/tools/zdc_explore out=build/metrics-check
  mkdir -p "$out"
  echo "=== metrics: fixed-seed byte-identity"
  "$explore" abcast --seed 42 --messages 60 --metrics-out "$out/a.json" > /dev/null
  "$explore" abcast --seed 42 --messages 60 --metrics-out "$out/b.json" > /dev/null
  cmp "$out/a.json" "$out/b.json"
  echo "=== metrics: schema validation (sim + runtime)"
  "$explore" validate-metrics "$out/a.json"
  "$explore" runtime c-l --messages 30 --throughput 2000 \
    --metrics-out "$out/runtime.json" > /dev/null
  "$explore" validate-metrics "$out/runtime.json"
}

run_suite() {
  local name=$1 dir=$2
  shift 2
  echo "=== $name: configure ($dir)"
  cmake -B "$dir" -S . "$@" > /dev/null
  echo "=== $name: build"
  cmake --build "$dir" -j "$JOBS"
  echo "=== $name: ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

# Storage stage: every `storage`-labelled test under both sanitizers — the
# durable-WAL suite plus the catch-up recovery suite (catchup_test: the
# src/recovery stack through the kill-9 → restart → snapshot-transfer e2e,
# whose replica swaps and cross-thread watermarks are exactly what ASan/TSan
# have teeth for) — plus a longer fixed-seed run of the WAL
# write/kill/reopen fuzz in the plain tree (the tier-1 run uses the default
# 64 rounds; this one does 512 at a pinned seed so failures reproduce).
run_storage() {
  local dir
  for dir in build-tsan build-asan; do
    local flag=-DZDC_SANITIZE=thread
    [ "$dir" = build-asan ] && flag=-DZDC_SANITIZE=address
    echo "=== storage: configure ($dir)"
    cmake -B "$dir" -S . "$flag" > /dev/null
    echo "=== storage: build ($dir)"
    cmake --build "$dir" -j "$JOBS"
    echo "=== storage: ctest -L storage ($dir)"
    ctest --test-dir "$dir" --output-on-failure -L storage -j "$JOBS"
  done
  echo "=== storage: fixed-seed WAL fuzz (512 rounds, seed 7)"
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target wal_test
  ZDC_WAL_FUZZ_ROUNDS=512 ZDC_WAL_FUZZ_SEED=7 \
    ./build/tests/wal_test --gtest_filter='WalFuzz.*'
}

# Service stage: every `service`-labelled test under both sanitizers — the
# session dedup/GC suite, the lock-server cache suite, the deterministic
# whole-service sim (1e5 sessions + nemesis) and the threaded ServiceGroup
# end-to-end tests (lease-gate acks and the client router are cross-thread
# hot spots — exactly what TSan has teeth for) — plus the quick service
# bench to keep BENCH_service.json's schema and per-path invariants honest.
run_service() {
  local dir
  for dir in build-tsan build-asan; do
    local flag=-DZDC_SANITIZE=thread
    [ "$dir" = build-asan ] && flag=-DZDC_SANITIZE=address
    echo "=== service: configure ($dir)"
    cmake -B "$dir" -S . "$flag" > /dev/null
    echo "=== service: build ($dir)"
    cmake --build "$dir" -j "$JOBS"
    echo "=== service: ctest -L service ($dir)"
    ctest --test-dir "$dir" --output-on-failure -L service -j "$JOBS"
  done
  echo "=== service: bench smoke"
  scripts/bench.sh --service --quick --out build/BENCH_service_check.json
}

# Explore stage: the slow-labelled deep-exploration tests — full bounded
# schedule-space exhaustion for L/P/Paxos via the model checker (src/check).
# Deliberately NOT part of the default set: minutes of wall time, and the
# tier-1 suite already runs the depth-bounded versions. Own build directory
# because ZDC_SLOW_TESTS changes which tests are registered.
run_explore() {
  echo "=== explore: configure (build-explore)"
  cmake -B build-explore -S . -DZDC_SLOW_TESTS=ON > /dev/null
  echo "=== explore: build"
  cmake --build build-explore -j "$JOBS"
  echo "=== explore: ctest -L slow"
  ctest --test-dir build-explore --output-on-failure -L slow -j "$JOBS"
  # The parallel engine's work-stealing pool under TSan, driven hard: a
  # fixed-seed corruption swarm (flip + equivocation budgets) and a
  # parallel DFS over the same scenario. Fixed seeds so a TSan report
  # reproduces; exit status is the check (no violation expected — detectable
  # drops must stay safe).
  echo "=== explore: parallel corruption swarm under TSan"
  cmake -B build-tsan -S . -DZDC_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j "$JOBS" --target zdc_check_cli
  ./build-tsan/tools/zdc_check swarm --protocol paxos \
    --n 3 --f 1 --proposals a,b,c --flips 2 --equivocations 1 \
    --seed 7 --runs 64 --max-steps 200 --threads 4
  ./build-tsan/tools/zdc_check explore --protocol paxos --n 3 --f 1 \
    --proposals a,a,a --flips 1 --max-depth 6 --threads 4
}

suites=${*:-static plain metrics tsan asan ubsan storage service}
for suite in $suites; do
  case "$suite" in
    static|--static) run_static ;;
    plain) run_suite plain build ;;
    metrics) run_metrics ;;
    tsan)  run_suite tsan build-tsan -DZDC_SANITIZE=thread ;;
    asan)  run_suite asan build-asan -DZDC_SANITIZE=address ;;
    ubsan) run_suite ubsan build-ubsan -DZDC_SANITIZE=undefined ;;
    storage) run_storage ;;
    service) run_service ;;
    explore|--explore) run_explore ;;
    # Opt-in (never part of the default set): refresh the perf baseline.
    bench) echo "=== bench: hot-path sweep"; scripts/bench.sh ;;
    *) echo "unknown suite '$suite'" \
            "(static|plain|metrics|tsan|asan|ubsan|storage|service|explore|" \
            "bench)" >&2
       exit 2 ;;
  esac
done
echo "=== all requested suites passed: $suites"
