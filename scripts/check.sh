#!/usr/bin/env bash
# Full verification: build + ctest in the plain tree, then the same suite
# under ThreadSanitizer and AddressSanitizer (-DZDC_SANITIZE=thread|address,
# each in its own build directory so the trees never mix).
#
#   scripts/check.sh              # plain + tsan + asan
#   scripts/check.sh plain tsan   # just these suites
set -eu
cd "$(dirname "$0")/.."
JOBS=$( (command -v nproc > /dev/null && nproc) || echo 4)

run_suite() {
  local name=$1 dir=$2
  shift 2
  echo "=== $name: configure ($dir)"
  cmake -B "$dir" -S . "$@" > /dev/null
  echo "=== $name: build"
  cmake --build "$dir" -j "$JOBS"
  echo "=== $name: ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

suites=${*:-plain tsan asan}
for suite in $suites; do
  case "$suite" in
    plain) run_suite plain build ;;
    tsan)  run_suite tsan build-tsan -DZDC_SANITIZE=thread ;;
    asan)  run_suite asan build-asan -DZDC_SANITIZE=address ;;
    *) echo "unknown suite '$suite' (plain|tsan|asan)" >&2; exit 2 ;;
  esac
done
echo "=== all requested suites passed: $suites"
