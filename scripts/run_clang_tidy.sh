#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every source
# file under src/, using the compile_commands.json of an existing build
# directory. Skips with a notice when clang-tidy isn't installed so `make
# lint` stays usable on gcc-only machines.
#
#   scripts/run_clang_tidy.sh [repo-root [build-dir]]
set -eu
root=${1:-$(cd "$(dirname "$0")/.." && pwd)}
build_dir=${2:-$root/build}

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "SKIP: clang-tidy not installed"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found;" \
       "configure a build first (compile commands are exported by default)" >&2
  exit 2
fi

status=0
while IFS= read -r file; do
  echo "=== clang-tidy: $file"
  clang-tidy -p "$build_dir" --quiet "$file" || status=1
done < <(find "$root/src" -name '*.cpp' | sort)
exit "$status"
