#!/usr/bin/env bash
# Runs a perf harness and emits its machine-readable JSON artifact, then
# validates the artifact against the schema with the bench's own --validate
# mode. Default harness is the hot path (BENCH_hotpath.json, docs/PERF.md);
# --recovery runs the recovery/durable-storage harness instead
# (BENCH_recovery.json, docs/STORAGE.md); --service runs the session/
# read-index service harness (BENCH_service.json, docs/SERVICE.md).
#
#   scripts/bench.sh                 # full sweep  -> BENCH_hotpath.json
#   scripts/bench.sh --recovery      # storage cost -> BENCH_recovery.json
#   scripts/bench.sh --service      # service paths -> BENCH_service.json
#   scripts/bench.sh --quick         # tiny smoke sweep (the tier-1 ctest)
#   scripts/bench.sh --out FILE      # write the JSON elsewhere
#   BUILD_DIR=build-foo scripts/bench.sh   # use a different build tree
set -eu
cd "$(dirname "$0")/.."
JOBS=$( (command -v nproc > /dev/null && nproc) || echo 4)
BUILD_DIR=${BUILD_DIR:-build}

QUICK=""
TARGET="bench_hotpath"
OUT=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK="--quick" ;;
    --recovery) TARGET="bench_recovery" ;;
    --service) TARGET="bench_service" ;;
    --out) shift; OUT=$1 ;;
    *)
      echo "usage: scripts/bench.sh [--recovery|--service] [--quick]" \
           "[--out FILE]" >&2
      exit 2
      ;;
  esac
  shift
done
if [ -z "$OUT" ]; then
  if [ "$TARGET" = "bench_recovery" ]; then
    OUT="BENCH_recovery.json"
  elif [ "$TARGET" = "bench_service" ]; then
    OUT="BENCH_service.json"
  else
    OUT="BENCH_hotpath.json"
  fi
fi

BIN="$BUILD_DIR/bench/$TARGET"
if [ ! -x "$BIN" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target "$TARGET"
fi

# shellcheck disable=SC2086  # QUICK is deliberately empty-or-one-flag
"$BIN" $QUICK --out "$OUT"
"$BIN" --validate "$OUT"
echo "bench: wrote $OUT"
