#!/usr/bin/env bash
# Runs the hot-path perf-regression harness and emits machine-readable
# BENCH_hotpath.json (schema documented in docs/PERF.md), then validates the
# artifact against the schema with the bench's own --validate mode.
#
#   scripts/bench.sh                 # full sweep  -> BENCH_hotpath.json
#   scripts/bench.sh --quick         # tiny smoke sweep (the tier-1 ctest)
#   scripts/bench.sh --out FILE      # write the JSON elsewhere
#   BUILD_DIR=build-foo scripts/bench.sh   # use a different build tree
set -eu
cd "$(dirname "$0")/.."
JOBS=$( (command -v nproc > /dev/null && nproc) || echo 4)
BUILD_DIR=${BUILD_DIR:-build}

QUICK=""
OUT="BENCH_hotpath.json"
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK="--quick" ;;
    --out) shift; OUT=$1 ;;
    *) echo "usage: scripts/bench.sh [--quick] [--out FILE]" >&2; exit 2 ;;
  esac
  shift
done

BIN="$BUILD_DIR/bench/bench_hotpath"
if [ ! -x "$BIN" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_hotpath
fi

# shellcheck disable=SC2086  # QUICK is deliberately empty-or-one-flag
"$BIN" $QUICK --out "$OUT"
"$BIN" --validate "$OUT"
echo "bench: wrote $OUT"
