#!/usr/bin/env bash
# Regenerates every paper experiment: runs each bench binary, tees the output
# to results/, and exports the figure sweeps as CSV for plotting.
set -u
cd "$(dirname "$0")/.."
BUILD=${1:-build}
OUT=results
mkdir -p "$OUT"

for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name"
  case "$name" in
    bench_fig2|bench_fig3)
      "$bench" --csv "$OUT/$name.csv" | tee "$OUT/$name.txt" ;;
    bench_micro)
      "$bench" --benchmark_min_time=0.1 | tee "$OUT/$name.txt" ;;
    *)
      "$bench" | tee "$OUT/$name.txt" ;;
  esac
done
echo "all experiment outputs in $OUT/"
