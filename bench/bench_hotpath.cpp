// bench_hotpath — the hot-path perf-regression harness (docs/PERF.md).
//
// Three measurements, one machine-readable JSON artifact:
//
//   1. codec: encode_msg_set-shaped frames through the allocation-lean
//      Encoder vs a replica of the pre-batching per-byte encoder
//      (push_back per byte, no reserve) — reports encoded MB/s;
//   2. event-queue: schedule/run churn through the pooled event store vs a
//      replica of the former std::function + std::priority_queue scheduler —
//      reports events/s;
//   3. end-to-end: a small latency-vs-throughput sweep of the batched
//      C-Abcast and Paxos-Abcast stacks — reports mean/p95 latency and
//      simulated events per wall second.
//
// Usage:
//   bench_hotpath [--quick] [--out FILE] [--seed N]   # run + emit JSON
//   bench_hotpath --validate FILE                     # schema-check a JSON
//
// The legacy replicas live in this binary on purpose: the ">= 2x on at least
// one hot-path metric" acceptance stays mechanically checkable against the
// pre-PR code forever, not just against a one-off measurement.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "sim/abcast_world.h"
#include "sim/event_queue.h"

namespace zdc::bench {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Legacy replicas (the pre-PR hot paths, kept verbatim for comparison).

/// The former Encoder: byte-by-byte push_back, no reserve, no reuse.
class LegacyEncoder {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_fixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

/// The former EventQueue: one std::function per event inside a
/// std::priority_queue (heap churn moves the fat elements around).
class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  void at(TimePoint t, Action fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }
  bool run_next() {
    if (queue_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] TimePoint now() const { return now_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------
// Micro 1: codec throughput on consensus-batch-shaped frames.

struct BatchFixture {
  std::vector<std::pair<std::uint64_t, std::string>> msgs;  ///< (seq, payload)
  std::size_t frame_bytes = 0;
};

BatchFixture make_batch(std::size_t batch_size, std::size_t payload_bytes) {
  BatchFixture fx;
  for (std::size_t i = 0; i < batch_size; ++i) {
    fx.msgs.emplace_back(i + 1, std::string(payload_bytes, 'x'));
  }
  fx.frame_bytes = 4 + batch_size * (16 + payload_bytes);
  return fx;
}

template <typename EncodeFrame>
double measure_encode_mb_per_s(const BatchFixture& fx, std::uint64_t iters,
                               EncodeFrame encode) {
  // Untimed warmup iteration (first-touch allocations).
  volatile std::size_t sink = encode().size();
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < iters; ++i) sink = encode().size();
  const double dt = now_s() - t0;
  (void)sink;
  const double bytes = static_cast<double>(fx.frame_bytes) *
                       static_cast<double>(iters);
  return bytes / dt / 1e6;
}

double bench_codec_new(const BatchFixture& fx, std::uint64_t iters) {
  return measure_encode_mb_per_s(fx, iters, [&fx] {
    common::Encoder enc(fx.frame_bytes);
    enc.put_u32(static_cast<std::uint32_t>(fx.msgs.size()));
    for (const auto& [seq, payload] : fx.msgs) {
      enc.put_u32(1);
      enc.put_u64(seq);
      enc.put_string(payload);
    }
    return enc.take();
  });
}

double bench_codec_legacy(const BatchFixture& fx, std::uint64_t iters) {
  return measure_encode_mb_per_s(fx, iters, [&fx] {
    LegacyEncoder enc;
    enc.put_u32(static_cast<std::uint32_t>(fx.msgs.size()));
    for (const auto& [seq, payload] : fx.msgs) {
      enc.put_u32(1);
      enc.put_u64(seq);
      enc.put_string(payload);
    }
    return enc.take();
  });
}

// ---------------------------------------------------------------------------
// Micro 2: event-queue schedule/run churn with simulator-shaped handlers.
//
// Each handler captures what a transport-delivery event captures: an object
// pointer, two ids and a shared_ptr payload (~32 bytes) — over std::function's
// inline buffer, under InlineAction's. Handlers reschedule themselves so the
// queue stays at a realistic depth, like a sim run in steady state.

template <typename Queue>
double measure_events_per_s(std::uint64_t total_events, std::size_t width) {
  Queue q;
  auto payload = std::make_shared<const std::string>(64, 'x');
  std::uint64_t executed = 0;
  struct Ctx {
    Queue* q;
    std::uint64_t* executed;
    std::uint64_t total;
    std::shared_ptr<const std::string> payload;
  };
  Ctx ctx{&q, &executed, total_events, payload};
  std::function<void(double)> schedule = [&ctx, &schedule](double t) {
    ctx.q->at(t, [&ctx, &schedule, payload = ctx.payload, a = 7u, b = 9u] {
      (void)a;
      (void)b;
      (void)payload;
      ++*ctx.executed;
      if (*ctx.executed + 1000 <= ctx.total) {
        schedule(ctx.q->now() + 1.0);
      }
    });
  };
  const double t0 = now_s();
  for (std::size_t i = 0; i < width; ++i) {
    schedule(static_cast<double>(i) * 0.001);
  }
  while (q.run_next()) {
  }
  const double dt = now_s() - t0;
  return static_cast<double>(executed) / dt;
}

// ---------------------------------------------------------------------------
// End-to-end sweep rows.

struct Row {
  std::string protocol;
  double throughput = 0;
  double mean_latency_ms = 0;
  double p95_latency_ms = 0;
  double events_per_s = 0;
  double encoded_mb_per_s = 0;
  std::uint64_t seed = 0;
};

Row run_e2e(const std::string& protocol, double throughput,
            std::uint32_t message_count, std::uint64_t seed_base) {
  sim::AbcastRunConfig cfg;
  cfg.with_group(GroupParams{4, 1}).with_net(sim::calibrated_lan_2006());
  cfg.with_seed(common::mix_seed(seed_base, protocol, throughput, 0));
  cfg.throughput_per_s = throughput;
  cfg.message_count = message_count;
  // The batched hot path under test: bounded leader pipeline for Paxos,
  // whole-estimate rounds for C-Abcast (its native batching).
  cfg.batching.paxos_pipeline_window = 4;
  if (protocol == "paxos") {
    for (ProcessId p = 1; p < cfg.group.n; ++p) {
      cfg.workload_senders.push_back(p);
    }
  }
  const double t0 = now_s();
  auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(protocol));
  const double dt = now_s() - t0;
  Row row;
  row.protocol = protocol;
  row.throughput = throughput;
  row.mean_latency_ms = r.latency_ms.mean();
  row.p95_latency_ms = r.latency_ms.percentile(95);
  row.events_per_s = static_cast<double>(r.events_executed) / dt;
  row.seed = cfg.seed;
  if (!r.safe() || !r.agreement_ok) {
    std::fprintf(stderr, "UNSAFE/INCOMPLETE run: %s @ %.0f msg/s seed %llu\n",
                 protocol.c_str(), throughput,
                 static_cast<unsigned long long>(cfg.seed));
    std::exit(1);
  }
  return row;
}

// ---------------------------------------------------------------------------
// JSON emission.

void append_json_row(std::string* out, const Row& row, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"protocol\": \"%s\", \"throughput\": %.1f, "
                "\"mean_latency_ms\": %.4f, \"p95_latency_ms\": %.4f, "
                "\"events_per_s\": %.1f, \"encoded_mb_per_s\": %.2f, "
                "\"seed\": %llu}%s\n",
                row.protocol.c_str(), row.throughput, row.mean_latency_ms,
                row.p95_latency_ms, row.events_per_s, row.encoded_mb_per_s,
                static_cast<unsigned long long>(row.seed), last ? "" : ",");
  *out += buf;
}

std::string to_json(const std::vector<Row>& rows, bool quick,
                    std::uint64_t seed_base) {
  std::string out = "{\n  \"schema\": \"zdc-bench-hotpath-v1\",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  \"quick\": %s,\n  \"seed_base\": %llu,\n",
                quick ? "true" : "false",
                static_cast<unsigned long long>(seed_base));
  out += buf;
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json_row(&out, rows[i], i + 1 == rows.size());
  }
  out += "  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON validation: a minimal parser for the subset this bench emits, strict
// enough to catch truncated files, missing keys and type confusion.

struct JsonParser {
  const char* p;
  const char* end;
  bool fail = false;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    fail = true;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  std::string parse_string() {
    skip_ws();
    if (p >= end || *p != '"') {
      fail = true;
      return {};
    }
    ++p;
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        fail = true;  // the bench never emits escapes
        return {};
      }
      s += *p++;
    }
    if (!consume('"')) return {};
    return s;
  }
  double parse_number() {
    skip_ws();
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) {
      fail = true;
      return 0;
    }
    p = after;
    return v;
  }
  bool parse_bool() {
    skip_ws();
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      p += 4;
      return true;
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      p += 5;
      return false;
    }
    fail = true;
    return false;
  }
};

/// Returns an empty string when `text` conforms to the schema, else a
/// one-line diagnostic.
std::string validate_json(const std::string& text) {
  JsonParser j{text.data(), text.data() + text.size()};
  if (!j.consume('{')) return "not a JSON object";

  bool saw_schema = false;
  bool saw_rows = false;
  std::size_t row_count = 0;
  for (;;) {
    const std::string key = j.parse_string();
    if (j.fail) return "bad key";
    if (!j.consume(':')) return "missing ':' after " + key;
    if (key == "schema") {
      const std::string v = j.parse_string();
      if (v != "zdc-bench-hotpath-v1") return "unknown schema '" + v + "'";
      saw_schema = true;
    } else if (key == "quick") {
      j.parse_bool();
    } else if (key == "seed_base") {
      j.parse_number();
    } else if (key == "rows") {
      saw_rows = true;
      if (!j.consume('[')) return "rows is not an array";
      while (!j.peek(']')) {
        if (!j.consume('{')) return "row is not an object";
        bool has[7] = {};
        static const char* kKeys[7] = {
            "protocol",     "throughput",       "mean_latency_ms",
            "p95_latency_ms", "events_per_s",   "encoded_mb_per_s",
            "seed"};
        while (!j.peek('}')) {
          const std::string rk = j.parse_string();
          if (!j.consume(':')) return "row missing ':'";
          if (rk == "protocol") {
            if (j.parse_string().empty()) return "empty protocol";
          } else {
            j.parse_number();
          }
          if (j.fail) return "bad value for row key " + rk;
          for (int i = 0; i < 7; ++i) {
            if (rk == kKeys[i]) has[i] = true;
          }
          if (!j.peek('}')) {
            if (!j.consume(',')) return "row missing ','";
          }
        }
        j.consume('}');
        for (int i = 0; i < 7; ++i) {
          if (!has[i]) return std::string("row missing key ") + kKeys[i];
        }
        ++row_count;
        if (!j.peek(']')) {
          if (!j.consume(',')) return "rows missing ','";
        }
      }
      j.consume(']');
    } else {
      return "unknown key '" + key + "'";
    }
    if (j.fail) return "parse failure after key " + key;
    if (j.peek('}')) break;
    if (!j.consume(',')) return "missing ',' between keys";
  }
  j.consume('}');
  j.skip_ws();
  if (j.p != j.end) return "trailing garbage";
  if (!saw_schema) return "missing schema";
  if (!saw_rows) return "missing rows";
  if (row_count == 0) return "rows is empty";
  return {};
}

int validate_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "validate: cannot open %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  const std::string err = validate_json(text);
  if (!err.empty()) {
    std::fprintf(stderr, "validate: %s: %s\n", path, err.c_str());
    return 1;
  }
  std::printf("validate: %s conforms to zdc-bench-hotpath-v1\n", path);
  return 0;
}

// ---------------------------------------------------------------------------

int run(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_hotpath.json";
  std::uint64_t seed_base = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed_base = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--validate" && i + 1 < argc) {
      return validate_file(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--quick] [--out FILE] [--seed N] | "
                   "--validate FILE\n");
      return 2;
    }
  }

  std::vector<Row> rows;

  // Micro 1: codec. Batch of 16 x 64B payloads (a loaded consensus proposal).
  {
    const BatchFixture fx = make_batch(16, 64);
    const std::uint64_t iters = quick ? 20'000 : 400'000;
    const double legacy = bench_codec_legacy(fx, iters);
    const double lean = bench_codec_new(fx, iters);
    std::printf("codec          legacy %8.1f MB/s   lean %8.1f MB/s   %.2fx\n",
                legacy, lean, lean / legacy);
    rows.push_back(Row{"codec-legacy", 0, 0, 0, 0, legacy, seed_base});
    rows.push_back(Row{"codec", 0, 0, 0, 0, lean, seed_base});
  }

  // Micro 2: event queue.
  {
    const std::uint64_t events = quick ? 200'000 : 4'000'000;
    const std::size_t width = 1000;  // steady-state queue depth
    const double legacy = measure_events_per_s<LegacyEventQueue>(events, width);
    const double pooled = measure_events_per_s<sim::EventQueue>(events, width);
    std::printf(
        "event-queue    legacy %8.0f ev/s   pooled %8.0f ev/s   %.2fx\n",
        legacy, pooled, pooled / legacy);
    rows.push_back(Row{"event-queue-legacy", 0, 0, 0, legacy, 0, seed_base});
    rows.push_back(Row{"event-queue", 0, 0, 0, pooled, 0, seed_base});
  }

  // End-to-end sweep: batched stacks under load.
  {
    const std::vector<double> throughputs =
        quick ? std::vector<double>{200} : std::vector<double>{100, 300, 500};
    const std::uint32_t message_count = quick ? 80 : 400;
    for (const std::string protocol : {"c-l", "paxos"}) {
      for (const double tp : throughputs) {
        Row row = run_e2e(protocol, tp, message_count, seed_base);
        std::printf(
            "%-8s @%4.0f msg/s   mean %7.3f ms   p95 %7.3f ms   %.0f ev/s\n",
            row.protocol.c_str(), row.throughput, row.mean_latency_ms,
            row.p95_latency_ms, row.events_per_s);
        rows.push_back(row);
      }
    }
  }

  const std::string json = to_json(rows, quick, seed_base);
  const std::string err = validate_json(json);
  if (!err.empty()) {
    std::fprintf(stderr, "emitted JSON fails own validation: %s\n",
                 err.c_str());
    return 1;
  }
  std::FILE* f = std::fopen(out_path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path, rows.size());
  return 0;
}

}  // namespace
}  // namespace zdc::bench

int main(int argc, char** argv) { return zdc::bench::run(argc, argv); }
