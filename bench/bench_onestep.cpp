// One-step experiment (Definitions 1/2, Sections 5-6): how often each
// consensus protocol decides in one communication step as a function of the
// probability that proposals agree, and what that is worth in latency.
//
// Sweep: P(all proposals equal) from 0 to 1; for each setting run many
// seeded instances on the calibrated LAN (stable failure detectors) and
// report the fraction of round-deciding processes that took one step, the
// mean steps, and the mean decision latency.
//
// Expected shape: L-/P-/Brasileiro/WAB hit 1 step exactly when proposals are
// unanimous; Paxos sits at 2 steps regardless (zero-degrading, never
// one-step); Brasileiro pays 3 steps whenever proposals diverge, L/P pay 2.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/consensus_world.h"

namespace {

using namespace zdc;

struct Cell {
  double one_step_fraction = 0;
  double mean_steps = 0;
  double mean_latency_ms = 0;
};

Cell run_cell(const std::string& protocol, double p_unanimous,
              std::uint32_t runs) {
  Cell cell;
  common::OnlineStats steps;
  common::OnlineStats latency;
  std::uint64_t one_step = 0;
  std::uint64_t deciders = 0;
  common::Rng rng(0xabcdef + static_cast<std::uint64_t>(p_unanimous * 1000));

  const GroupParams group =
      protocol == "paxos" ? GroupParams{3, 1} : GroupParams{4, 1};

  for (std::uint32_t i = 0; i < runs; ++i) {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(group).with_net(sim::calibrated_lan_2006());
    cfg.with_seed(1000 + i);
    if (rng.chance(p_unanimous)) {
      cfg.proposals.assign(group.n, "agreed");
    } else {
      for (ProcessId p = 0; p < group.n; ++p) {
        cfg.proposals.push_back("v" + std::to_string(rng.next_below(group.n)));
      }
    }
    auto r = sim::run_consensus(cfg, sim::consensus_factory_by_name(protocol));
    if (!r.safe()) std::printf("!! safety violation in %s\n", protocol.c_str());
    for (const auto& o : r.outcomes) {
      if (!o.decided || o.path != consensus::DecisionPath::kRound) continue;
      ++deciders;
      if (o.steps == 1) ++one_step;
      steps.add(o.steps);
      latency.add(o.decide_time);
    }
  }
  cell.one_step_fraction =
      deciders == 0 ? 0 : static_cast<double>(one_step) / deciders;
  cell.mean_steps = steps.mean();
  cell.mean_latency_ms = latency.mean();
  return cell;
}

}  // namespace

int main() {
  const std::vector<std::string> protocols = {
      "l", "p", "brasileiro-l", "paxos", "wab", "ct", "fast-paxos"};
  const std::vector<double> agreement_probs = {0.0, 0.25, 0.5, 0.75, 1.0};
  constexpr std::uint32_t kRuns = 60;

  std::printf("=== One-step decision experiment (consensus level) ===\n");
  std::printf("fraction of one-step decisions / mean steps / mean decision "
              "latency [ms]\n\n");
  std::printf("%-14s", "P(unanimous)");
  for (double p : agreement_probs) std::printf("  %16.2f", p);
  std::printf("\n");

  for (const auto& proto : protocols) {
    std::printf("%-14s", proto.c_str());
    for (double p : agreement_probs) {
      Cell cell = run_cell(proto, p, kRuns);
      std::printf("  %4.0f%% %4.2f %5.2f", cell.one_step_fraction * 100,
                  cell.mean_steps, cell.mean_latency_ms);
    }
    std::printf("\n");
  }

  std::printf("\n# expected: one-step protocols track P(unanimous) in their "
              "1-step fraction;\n"
              "# Paxos stays at 2 steps (never one-step); Brasileiro jumps "
              "to 3 steps on divergence\n"
              "# while L-/P-Consensus stay at 2 (zero-degradation).\n");
  return 0;
}
