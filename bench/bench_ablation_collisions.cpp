// Ablation: oracle quality. DESIGN.md models spontaneous order as UDP
// disorder jitter (wab_extra_jitter_ms); this bench sweeps that knob at a
// fixed throughput and shows how each stack degrades as the oracle worsens —
// the design-space answer to "what if the LAN orders less nicely than
// Pedone & Schiper measured?".
//
// Expected: Paxos is flat (it never consults the oracle); L-/P-Consensus pay
// at most one extra consensus step per collision and degrade gently; WABCast
// multiplies voting stages and degrades fastest, approaching non-termination
// as the oracle approaches uselessness (the ∞ of Table 1).
#include <cstdio>
#include <string>
#include <vector>

#include "sim/abcast_world.h"

int main() {
  using namespace zdc;

  const std::vector<double> jitters = {0.0, 0.3, 0.6, 1.2, 2.4};
  const std::vector<std::string> protocols = {"c-l", "c-p", "wabcast",
                                              "paxos"};
  constexpr double kThroughput = 300.0;

  std::printf("=== Ablation: oracle disorder (wab_extra_jitter, ms) ===\n");
  std::printf("mean latency [ms] (+ mean consensus rounds per instance) at "
              "%.0f msg/s\n\n", kThroughput);
  std::printf("%-10s", "jitter");
  for (const auto& p : protocols) std::printf("  %18s", p.c_str());
  std::printf("\n");

  for (double jitter : jitters) {
    std::printf("%-10.1f", jitter);
    for (const auto& proto : protocols) {
      sim::AbcastRunConfig cfg;
      cfg.with_group(proto == "paxos" ? GroupParams{3, 1} : GroupParams{4, 1})
          .with_net(sim::calibrated_lan_2006());
      cfg.net.wab_extra_jitter_ms = jitter;
      cfg.with_seed(11);
      cfg.throughput_per_s = kThroughput;
      cfg.message_count = 500;
      if (proto == "paxos") cfg.workload_senders = {1, 2};
      auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(proto));
      const double rounds_per_instance =
          r.totals.consensus_instances == 0
              ? 0.0
              : static_cast<double>(r.totals.transport.rounds_started) /
                    static_cast<double>(r.totals.consensus_instances);
      std::printf("  %9.2f (%4.2f)%s", r.latency_ms.mean(),
                  rounds_per_instance,
                  (r.agreement_ok && r.undelivered == 0) ? " " : "!");
    }
    std::printf("\n");
  }

  std::printf("\n# '!' marks runs where the event/time budget expired before "
              "every message was delivered\n"
              "# everywhere — WABCast approaches that as the oracle "
              "degrades; the FD-based stacks must never show it.\n");
  return 0;
}
