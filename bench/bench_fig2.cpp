// Figure 2 reproduction: mean atomic-broadcast latency vs throughput for
// L-Consensus and P-Consensus (via C-Abcast) against WABCast, n = 4, f = 1,
// stable runs (paper Sec. 8.1).
//
// Paper shape: all three are comparable up to ~80 msg/s; from ~100 msg/s on,
// L-/P-Consensus outperform WABCast, whose latency degrades sharply as
// collisions become frequent (each collision costs WABCast extra full voting
// stages, while the paper's protocols fall back to one extra consensus step).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  const char* csv_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv_path = argv[i + 1];
  }
  using namespace zdc;
  using namespace zdc::bench;

  const GroupParams group{4, 1};
  const std::vector<std::string> protocols = {"c-l", "c-p", "wabcast"};
  const std::vector<std::string> labels = {"L-Consensus", "P-Consensus",
                                           "WABCast"};
  constexpr std::uint32_t kMessages = 600;
  constexpr std::uint32_t kRepeats = 3;

  std::printf("=== Figure 2: L-/P-Consensus vs WABCast (n=4, f=1) ===\n");
  std::printf("mean a-broadcast latency [ms] per throughput [msg/s]\n\n");
  print_header(labels);

  std::vector<std::vector<SweepPoint>> series(protocols.size());
  for (double tput : figure_throughputs()) {
    std::printf("%10.0f", tput);
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      SweepPoint pt =
          run_point(protocols[i], group, tput, kMessages, kRepeats, 42);
      series[i].push_back(pt);
      std::printf("  %13.3f%s%s", pt.mean_latency_ms, pt.safe ? "  " : " !",
                  pt.complete ? " " : "~");
    }
    std::printf("\n");
  }

  // Shape checks corresponding to the paper's reading of the figure.
  const auto& l_series = series[0];
  const auto& wab_series = series[2];
  double crossover = -1;
  for (std::size_t i = 0; i < l_series.size(); ++i) {
    if (wab_series[i].mean_latency_ms > l_series[i].mean_latency_ms) {
      crossover = l_series[i].throughput;
      break;
    }
  }
  std::printf("\n# shape: WABCast falls behind L-Consensus from %.0f msg/s"
              " (paper: ~100 msg/s)\n", crossover);
  std::printf("# shape: at 500 msg/s — WABCast %.2f ms vs L %.2f ms vs P %.2f"
              " ms (paper: ~4.5 vs ~2.2)\n",
              wab_series.back().mean_latency_ms,
              l_series.back().mean_latency_ms,
              series[1].back().mean_latency_ms);
  if (csv_path != nullptr) {
    FILE* csv = std::fopen(csv_path, "w");
    if (csv != nullptr) {
      std::fprintf(csv, "throughput");
      for (const auto& label : labels) std::fprintf(csv, ",%s", label.c_str());
      std::fprintf(csv, "\n");
      for (std::size_t row = 0; row < series[0].size(); ++row) {
        std::fprintf(csv, "%.0f", series[0][row].throughput);
        for (const auto& column : series) {
          std::fprintf(csv, ",%.4f", column[row].mean_latency_ms);
        }
        std::fprintf(csv, "\n");
      }
      std::fclose(csv);
      std::printf("# csv written to %s\n", csv_path);
    }
  }
  return 0;
}
