// Microbenchmarks (google-benchmark): the per-message costs that the LAN
// model's cpu_send/cpu_recv constants abstract — codec throughput, batch
// serialization, protocol handler cost, and simulator event dispatch.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "abcast/abcast.h"
#include "common/codec.h"
#include "common/rng.h"
#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "fd/failure_detector.h"
#include "sim/event_queue.h"

namespace {

using namespace zdc;

void BM_CodecEncodeMessage(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    common::Encoder enc;
    enc.put_u8(1);
    enc.put_u64(42);
    enc.put_string(payload);
    enc.put_u32(7);
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size() + 17));
}
BENCHMARK(BM_CodecEncodeMessage)->Arg(64)->Arg(512)->Arg(4096);

void BM_CodecDecodeMessage(benchmark::State& state) {
  common::Encoder enc;
  enc.put_u8(1);
  enc.put_u64(42);
  enc.put_string(std::string(static_cast<std::size_t>(state.range(0)), 'x'));
  enc.put_u32(7);
  const std::string bytes = enc.bytes();
  for (auto _ : state) {
    common::Decoder dec(bytes);
    benchmark::DoNotOptimize(dec.get_u8());
    benchmark::DoNotOptimize(dec.get_u64());
    benchmark::DoNotOptimize(dec.get_string());
    benchmark::DoNotOptimize(dec.get_u32());
    benchmark::DoNotOptimize(dec.done());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CodecDecodeMessage)->Arg(64)->Arg(512)->Arg(4096);

void BM_MsgSetRoundTrip(benchmark::State& state) {
  abcast::MsgSet set;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    set.emplace(abcast::MsgId{static_cast<ProcessId>(i % 4),
                              static_cast<std::uint64_t>(i)},
                std::string(64, 'm'));
  }
  for (auto _ : state) {
    const std::string bytes = abcast::encode_msg_set(set);
    abcast::MsgSet out;
    const bool ok = abcast::decode_msg_set(bytes, out);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MsgSetRoundTrip)->Arg(1)->Arg(16)->Arg(256);

/// Captures outbound traffic so a protocol instance can be driven directly.
struct NullHost final : consensus::ConsensusHost {
  void send(ProcessId, std::string) override {}
  void broadcast(std::string bytes) override { last = std::move(bytes); }
  void deliver_decision(const Value&) override {}
  std::string last;
};

struct FixedOmega final : fd::OmegaView {
  [[nodiscard]] ProcessId leader() const override { return 0; }
};

struct NoSuspects final : fd::SuspectView {
  [[nodiscard]] bool suspects(ProcessId) const override { return false; }
};

/// Cost of one full L-Consensus instance: propose + the three PROP messages
/// that drive it to a one-step decision (the protocol-side work behind every
/// fast-path a-broadcast).
void BM_LConsensusOneStepInstance(benchmark::State& state) {
  FixedOmega omega;
  const GroupParams group{4, 1};
  // Pre-encode the peers' round-1 PROPs once.
  std::vector<std::string> peer_msgs;
  {
    NullHost host;
    for (ProcessId p = 1; p < 4; ++p) {
      consensus::LConsensus peer(p, group, host, omega);
      peer.propose("value");
      peer_msgs.push_back(host.last);
    }
  }
  for (auto _ : state) {
    NullHost host;
    consensus::LConsensus cons(0, group, host, omega);
    cons.propose("value");
    for (ProcessId p = 1; p < 4; ++p) {
      cons.on_message(p, peer_msgs[p - 1]);
    }
    benchmark::DoNotOptimize(cons.decided());
  }
  state.SetItemsProcessed(state.iterations() * 4);  // messages handled
}
BENCHMARK(BM_LConsensusOneStepInstance);

void BM_PConsensusOneStepInstance(benchmark::State& state) {
  NoSuspects suspects;
  const GroupParams group{4, 1};
  std::vector<std::string> peer_msgs;
  {
    NullHost host;
    for (ProcessId p = 1; p < 4; ++p) {
      consensus::PConsensus peer(p, group, host, suspects);
      peer.propose("value");
      peer_msgs.push_back(host.last);
    }
  }
  for (auto _ : state) {
    NullHost host;
    consensus::PConsensus cons(0, group, host, suspects);
    cons.propose("value");
    for (ProcessId p = 1; p < 4; ++p) {
      cons.on_message(p, peer_msgs[p - 1]);
    }
    benchmark::DoNotOptimize(cons.decided());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PConsensusOneStepInstance);

void BM_EventQueueDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t acc = 0;
    for (int i = 0; i < 1000; ++i) {
      q.at(static_cast<double>(i % 97), [&acc] { ++acc; });
    }
    while (q.run_next()) {
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueDispatch);

void BM_RngFill(benchmark::State& state) {
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(0.5));
  }
}
BENCHMARK(BM_RngFill);

}  // namespace

BENCHMARK_MAIN();
