// Service-layer throughput: the session/read-index stack driven through
// the deterministic service simulation, read-index ON vs OFF.
//
// What the rows price: with read-index OFF every linearizable read is a
// consensus-ordered envelope (one full broadcast round); with read-index ON
// the lease gate serves reads straight from the leader's applied state and
// only downgraded reads pay a round. The per-path counters make the claim
// auditable in the artifact itself: `consensus_read_rounds` equals
// `ordered_reads` by construction, so a read-index-on row with
// fast_reads == reads and consensus_read_rounds == 0 is the zero-consensus
// read path, proven, not asserted. The validator enforces the invariant:
// read-index-off rows must show fast_reads == 0 and one round per read;
// read-index-on rows must show a live fast path with fewer rounds than
// reads.
//
// Emits machine-readable BENCH_service.json (schema zdc-bench-service-v1);
// --validate schema-checks an artifact.
//
// Usage:
//   bench_service [--quick] [--out FILE] [--seed N]   # run + emit JSON
//   bench_service --validate FILE                     # schema-check a JSON
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/service_sim.h"

namespace zdc::bench {
namespace {

struct ServiceRow {
  std::string mode;  ///< "read-index-on" | "read-index-off"
  std::uint64_t sessions = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t fast_reads = 0;
  std::uint64_t ordered_reads = 0;
  /// Consensus rounds spent on reads — exactly the ordered (downgraded)
  /// reads; fast reads never enter the broadcast at all.
  std::uint64_t consensus_read_rounds = 0;
  std::uint64_t one_step = 0;
  std::uint64_t two_step = 0;
  double writes_per_s = 0;  ///< simulated-time rates
  double reads_per_s = 0;
  double write_mean_ms = 0;
  double fast_read_mean_ms = 0;
  double ordered_read_mean_ms = 0;
  std::uint64_t seed = 0;
};

ServiceRow run_mode(bool read_index, bool quick, std::uint64_t seed) {
  rsm::ServiceSimConfig cfg;
  cfg.sessions = quick ? 2'000 : 100'000;
  cfg.concurrency = 256;
  cfg.read_index = read_index;
  cfg.seed = seed;
  const rsm::ServiceSimReport r = rsm::run_service_sim(cfg);
  if (!r.completed || r.double_applies != 0 || r.lin_violations != 0 ||
      !r.digests_converged) {
    std::fprintf(stderr, "service sim failed its own oracles: %s\n",
                 r.first_violation.c_str());
    std::exit(1);
  }

  ServiceRow row;
  row.mode = read_index ? "read-index-on" : "read-index-off";
  row.sessions = r.sessions_completed;
  row.writes = r.writes_acked;
  row.reads = r.reads_acked;
  row.fast_reads = r.fast_reads;
  row.ordered_reads = r.ordered_reads;
  row.consensus_read_rounds = r.ordered_reads;
  row.one_step = r.one_step_commits;
  row.two_step = r.two_step_commits;
  row.writes_per_s = static_cast<double>(r.writes_acked) / r.sim_ms * 1e3;
  row.reads_per_s = static_cast<double>(r.reads_acked) / r.sim_ms * 1e3;
  row.write_mean_ms = r.write_mean_ms;
  row.fast_read_mean_ms = r.fast_read_mean_ms;
  row.ordered_read_mean_ms = r.ordered_read_mean_ms;
  row.seed = seed;
  return row;
}

void print_table(const std::vector<ServiceRow>& rows) {
  std::printf("=== Service layer: sessions + linearizable reads, read-index "
              "on vs off ===\n");
  std::printf("%-16s %10s %10s %10s %10s %12s %10s %10s\n", "mode", "writes/s",
              "reads/s", "fast", "ordered", "cons.rounds", "wr ms", "rd ms");
  for (const ServiceRow& r : rows) {
    const double read_ms =
        r.fast_reads >= r.ordered_reads ? r.fast_read_mean_ms
                                        : r.ordered_read_mean_ms;
    std::printf("%-16s %10.0f %10.0f %10llu %10llu %12llu %10.3f %10.3f\n",
                r.mode.c_str(), r.writes_per_s, r.reads_per_s,
                static_cast<unsigned long long>(r.fast_reads),
                static_cast<unsigned long long>(r.ordered_reads),
                static_cast<unsigned long long>(r.consensus_read_rounds),
                r.write_mean_ms, read_ms);
  }
  std::printf(
      "\n# consensus_read_rounds == ordered_reads by construction: a fast "
      "read is served from\n"
      "# the lease holder's applied state and never enters the broadcast. "
      "With read-index off\n"
      "# every read pays a full round; with it on the rounds collapse to "
      "the (rare) downgrades.\n");
}

// ---------------------------------------------------------------------------
// JSON emission + validation (same shape as bench_recovery's artifact).

std::string to_json(const std::vector<ServiceRow>& rows, bool quick,
                    std::uint64_t seed) {
  std::string out = "{\n  \"schema\": \"zdc-bench-service-v1\",\n";
  char buf[768];
  std::snprintf(buf, sizeof(buf), "  \"quick\": %s,\n  \"seed_base\": %llu,\n",
                quick ? "true" : "false",
                static_cast<unsigned long long>(seed));
  out += buf;
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServiceRow& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"sessions\": %llu, \"writes\": %llu, "
        "\"reads\": %llu, \"fast_reads\": %llu, \"ordered_reads\": %llu, "
        "\"consensus_read_rounds\": %llu, \"one_step\": %llu, "
        "\"two_step\": %llu, \"writes_per_s\": %.1f, \"reads_per_s\": %.1f, "
        "\"write_mean_ms\": %.4f, \"fast_read_mean_ms\": %.4f, "
        "\"ordered_read_mean_ms\": %.4f, \"seed\": %llu}%s\n",
        r.mode.c_str(), static_cast<unsigned long long>(r.sessions),
        static_cast<unsigned long long>(r.writes),
        static_cast<unsigned long long>(r.reads),
        static_cast<unsigned long long>(r.fast_reads),
        static_cast<unsigned long long>(r.ordered_reads),
        static_cast<unsigned long long>(r.consensus_read_rounds),
        static_cast<unsigned long long>(r.one_step),
        static_cast<unsigned long long>(r.two_step), r.writes_per_s,
        r.reads_per_s, r.write_mean_ms, r.fast_read_mean_ms,
        r.ordered_read_mean_ms, static_cast<unsigned long long>(r.seed),
        i + 1 == rows.size() ? "" : ",");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

/// Minimal strict parser for the subset this bench emits — catches truncated
/// files, missing keys and type confusion.
struct JsonParser {
  const char* p;
  const char* end;
  bool fail = false;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    fail = true;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  std::string parse_string() {
    skip_ws();
    if (p >= end || *p != '"') {
      fail = true;
      return {};
    }
    ++p;
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        fail = true;  // the bench never emits escapes
        return {};
      }
      s += *p++;
    }
    if (!consume('"')) return {};
    return s;
  }
  double parse_number() {
    skip_ws();
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) {
      fail = true;
      return 0;
    }
    p = after;
    return v;
  }
  bool parse_bool() {
    skip_ws();
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      p += 4;
      return true;
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      p += 5;
      return false;
    }
    fail = true;
    return false;
  }
};

constexpr const char* kRowKeys[15] = {
    "mode",          "sessions",          "writes",
    "reads",         "fast_reads",        "ordered_reads",
    "consensus_read_rounds", "one_step",  "two_step",
    "writes_per_s",  "reads_per_s",       "write_mean_ms",
    "fast_read_mean_ms", "ordered_read_mean_ms", "seed"};

/// Returns an empty string when `text` conforms, else a one-line diagnostic.
/// Conformance includes the per-path semantics: read-index-off rows must
/// order every read (fast_reads == 0, one consensus round per read), and
/// read-index-on rows must show a live fast path with fewer rounds than
/// reads — the artifact itself proves fast reads skip consensus.
std::string validate_json(const std::string& text) {
  JsonParser j{text.data(), text.data() + text.size()};
  if (!j.consume('{')) return "not a JSON object";

  bool saw_schema = false;
  bool saw_rows = false;
  bool saw_on_mode = false;
  bool saw_off_mode = false;
  std::size_t row_count = 0;
  for (;;) {
    const std::string key = j.parse_string();
    if (j.fail) return "bad key";
    if (!j.consume(':')) return "missing ':' after " + key;
    if (key == "schema") {
      const std::string v = j.parse_string();
      if (v != "zdc-bench-service-v1") return "unknown schema '" + v + "'";
      saw_schema = true;
    } else if (key == "quick") {
      j.parse_bool();
    } else if (key == "seed_base") {
      j.parse_number();
    } else if (key == "rows") {
      saw_rows = true;
      if (!j.consume('[')) return "rows is not an array";
      while (!j.peek(']')) {
        if (!j.consume('{')) return "row is not an object";
        bool has[15] = {};
        std::string mode;
        double fast_reads = 0;
        double reads = 0;
        double rounds = 0;
        while (!j.peek('}')) {
          const std::string rk = j.parse_string();
          if (!j.consume(':')) return "row missing ':'";
          if (rk == "mode") {
            mode = j.parse_string();
            if (mode != "read-index-on" && mode != "read-index-off") {
              return "unknown mode '" + mode + "'";
            }
          } else {
            const double v = j.parse_number();
            if (rk == "fast_reads") fast_reads = v;
            if (rk == "reads") reads = v;
            if (rk == "consensus_read_rounds") rounds = v;
          }
          if (j.fail) return "bad value for row key " + rk;
          for (int i = 0; i < 15; ++i) {
            if (rk == kRowKeys[i]) has[i] = true;
          }
          if (!j.peek('}')) {
            if (!j.consume(',')) return "row missing ','";
          }
        }
        j.consume('}');
        for (int i = 0; i < 15; ++i) {
          if (!has[i]) return std::string("row missing key ") + kRowKeys[i];
        }
        if (mode == "read-index-off") {
          saw_off_mode = true;
          if (fast_reads != 0) return "read-index-off row has fast reads";
          if (rounds != reads) {
            return "read-index-off row must pay one round per read";
          }
        } else {
          saw_on_mode = true;
          if (fast_reads <= 0) return "read-index-on row has no fast reads";
          if (rounds >= reads) {
            return "read-index-on row shows no consensus-free reads";
          }
        }
        ++row_count;
        if (!j.peek(']')) {
          if (!j.consume(',')) return "rows missing ','";
        }
      }
      j.consume(']');
    } else {
      return "unknown key '" + key + "'";
    }
    if (j.fail) return "parse failure after key " + key;
    if (j.peek('}')) break;
    if (!j.consume(',')) return "missing ',' between keys";
  }
  j.consume('}');
  j.skip_ws();
  if (j.p != j.end) return "trailing garbage";
  if (!saw_schema) return "missing schema";
  if (!saw_rows) return "missing rows";
  if (row_count == 0) return "rows is empty";
  if (!saw_on_mode || !saw_off_mode) return "missing a read-index mode row";
  return {};
}

int validate_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "validate: cannot open %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  const std::string err = validate_json(text);
  if (!err.empty()) {
    std::fprintf(stderr, "validate: %s: %s\n", path, err.c_str());
    return 1;
  }
  std::printf("validate: %s conforms to zdc-bench-service-v1\n", path);
  return 0;
}

// ---------------------------------------------------------------------------

int run(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_service.json";
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--validate" && i + 1 < argc) {
      return validate_file(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--quick] [--out FILE] [--seed N] | "
                   "--validate FILE\n");
      return 2;
    }
  }

  std::vector<ServiceRow> rows;
  rows.push_back(run_mode(/*read_index=*/true, quick, seed));
  rows.push_back(run_mode(/*read_index=*/false, quick, seed));
  print_table(rows);

  const std::string json = to_json(rows, quick, seed);
  const std::string err = validate_json(json);
  if (!err.empty()) {
    std::fprintf(stderr, "emitted JSON fails own validation: %s\n",
                 err.c_str());
    return 1;
  }
  std::FILE* f = std::fopen(out_path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path, rows.size());
  return 0;
}

}  // namespace
}  // namespace zdc::bench

int main(int argc, char** argv) { return zdc::bench::run(argc, argv); }
