// Extension experiment (not in the paper): the protocols on a synthetic WAN.
//
// On a wide-area network propagation dominates everything, so latency is
// essentially (communication steps) × 20 ms. The measured outcome is the
// *reverse* of the LAN figures, and instructive:
//
//   * spontaneous order is a LAN phenomenon — with milliseconds of path
//     disorder the oracle's firsts disagree as soon as two messages are in
//     flight, so the one-step stacks lose their fast path and slide toward
//     (and past) 3δ while WABCast burns retry stage after retry stage;
//   * Paxos never consults the oracle, and with a fast local stack the
//     leader's self-acceptance pipelines its 2b with the 2a hop: an
//     effectively ~2δ, dead-flat line that wins everywhere;
//   * conclusion, matching the paper's own framing of WAB: the one-step
//     protocols are LAN protocols — their edge exists exactly where
//     spontaneous order does.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace zdc;
  using namespace zdc::bench;

  const std::vector<std::string> protocols = {"c-l", "c-p", "wabcast",
                                              "paxos"};
  const std::vector<std::string> labels = {"L-Cons(n=4)", "P-Cons(n=4)",
                                           "WABCast(n=4)", "Paxos(n=3)"};
  const std::vector<GroupParams> groups = {{4, 1}, {4, 1}, {4, 1}, {3, 1}};
  const std::vector<double> throughputs = {2, 5, 10, 25, 50, 100};

  std::printf("=== Extension: synthetic WAN (20 ms propagation) ===\n");
  std::printf("mean a-broadcast latency [ms] per throughput [msg/s]\n\n");
  print_header(labels);

  for (double tput : throughputs) {
    std::printf("%10.0f", tput);
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      sim::AbcastRunConfig cfg;
      cfg.with_group(groups[i]).with_net(sim::synthetic_wan());
      cfg.with_seed(9);
      cfg.throughput_per_s = tput;
      cfg.message_count = 150;
      cfg.time_limit_ms = 3'600'000.0;
      if (protocols[i] == "paxos") cfg.workload_senders = {1, 2};
      auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(protocols[i]));
      std::printf("  %13.1f%s%s", r.latency_ms.mean(), r.safe() ? " " : "!",
                  (r.agreement_ok && r.undelivered == 0) ? " " : "~");
    }
    std::printf("\n");
  }

  std::printf("\n# reading: the oracle-dependent stacks degrade as soon as "
              "messages overlap in flight\n"
              "# (WAN disorder kills spontaneous order); oracle-free Paxos "
              "pipelines to ~2 hops and is flat.\n"
              "# The one-step fast path is a LAN technique — the flip side "
              "of Figures 2/3.\n");
  return 0;
}
