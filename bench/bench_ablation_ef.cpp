// Ablation: Lamport's (e, f) fast-consensus trade-off (paper Sec. 2).
//
// The fast path decides in one step on n−e equal values; progress tolerates
// f crashes; resilience demands n > max(2f, 2e+f). This bench runs unanimous
// proposals in stable runs with c initial crashes for every c <= f: the fast
// path fires exactly while c <= e, and beyond that the protocol falls back
// to 1 + underlying steps — making the e-vs-f design space concrete.
//
//   e = f   : Brasileiro's regime (f < n/3)
//   e < f   : Paxos-grade resilience (f < n/2) with a more fragile fast path
//   e > f   : a hardier fast path bought with a bigger group (n > 2e+f)
#include <cstdio>
#include <string>
#include <vector>

#include "sim/consensus_world.h"

namespace {

using namespace zdc;

struct Config {
  std::uint32_t n, e, f;
};

}  // namespace

int main() {
  const std::vector<Config> configs = {
      {4, 1, 1},  // Brasileiro point: n = 3f+1
      {5, 1, 2},  // minority-resilient, fragile fast path
      {6, 2, 1},  // hardy fast path, low progress tolerance
      {7, 2, 2},  // balanced
      {9, 1, 4},  // extreme f (n > 2f, n > 2e+f)
  };

  std::printf("=== Ablation: (e,f) fast-consensus design space ===\n");
  std::printf("unanimous proposals, stable runs, c initial crashes; cells: "
              "one-step fraction / mean steps\n\n");
  std::printf("%-16s", "(n,e,f) \\ c");
  for (std::uint32_t c = 0; c <= 4; ++c) std::printf("  %12u", c);
  std::printf("\n");

  for (const Config& conf : configs) {
    std::printf("n=%u e=%u f=%u   ", conf.n, conf.e, conf.f);
    for (std::uint32_t crashes = 0; crashes <= 4; ++crashes) {
      if (crashes > conf.f) {
        std::printf("  %12s", "-");
        continue;
      }
      std::uint64_t one_step = 0, deciders = 0;
      double steps_acc = 0;
      bool ok = true;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        sim::ConsensusRunConfig cfg;
        cfg.with_group(GroupParams{conf.n, conf.f})
            .with_net(sim::calibrated_lan_2006());
        cfg.with_seed(seed);
        cfg.fd.mode = sim::FdMode::kStable;
        cfg.proposals.assign(conf.n, "agreed");
        for (std::uint32_t c = 0; c < crashes; ++c) {
          sim::CrashSpec spec;
          spec.p = c;
          spec.initial = true;
          cfg.crashes.push_back(spec);
        }
        auto r = sim::run_consensus(
            cfg, sim::ef_consensus_factory(conf.e, "paxos"));
        ok = ok && r.safe() && r.all_correct_decided;
        for (const auto& o : r.outcomes) {
          if (!o.decided || o.path != consensus::DecisionPath::kRound) continue;
          ++deciders;
          if (o.steps == 1) ++one_step;
          steps_acc += o.steps;
        }
      }
      const double frac =
          deciders == 0 ? 0.0 : 100.0 * static_cast<double>(one_step) /
                                    static_cast<double>(deciders);
      std::printf("  %5.0f%%/%4.2f%s", frac,
                  deciders == 0 ? 0.0 : steps_acc / static_cast<double>(deciders),
                  ok ? " " : "!");
    }
    std::printf("\n");
  }

  std::printf("\n# expected: 100%% one-step for c <= e, fallback (>= 3 steps "
              "incl. the underlying module)\n"
              "# for e < c <= f; every run stays safe and terminates.\n");
  return 0;
}
