// Ablation: C-Abcast batch size. The paper's Algorithm 3 proposes the whole
// pending estimate per round (unbounded batches); this bench caps the batch
// and shows what batching buys at high throughput — capped batches force
// more consensus rounds per message and the latency climbs, while unbounded
// batching amortizes the n² round cost over every queued message.
#include <cstdio>
#include <vector>

#include "abcast/batching.h"
#include "abcast/c_abcast.h"
#include "sim/abcast_world.h"

int main() {
  using namespace zdc;

  const std::vector<std::size_t> batch_caps = {1, 2, 4, 8, 0};  // 0 = paper
  const std::vector<double> throughputs = {100.0, 300.0, 500.0};

  std::printf("=== Ablation: C-Abcast batch cap (L-Consensus, n=4) ===\n");
  std::printf("mean latency [ms] / consensus instances consumed\n\n");
  std::printf("%-10s", "cap");
  for (double tput : throughputs) std::printf("   %8.0f msg/s   ", tput);
  std::printf("\n");

  for (std::size_t cap : batch_caps) {
    std::printf("%-10s", cap == 0 ? "unbounded" : std::to_string(cap).c_str());
    for (double tput : throughputs) {
      sim::AbcastRunConfig cfg;
      cfg.with_group(GroupParams{4, 1}).with_net(sim::calibrated_lan_2006());
      cfg.with_seed(17);
      cfg.throughput_per_s = tput;
      cfg.message_count = 400;
      auto factory = [cap](ProcessId self, GroupParams group,
                           abcast::AbcastHost& host, const fd::OmegaView& omega,
                           const fd::SuspectView&) {
        auto proto = abcast::make_c_abcast_l(self, group, host, omega);
        abcast::configure_batching(*proto,
                                   abcast::BatchingOptions{.c_abcast_max_batch = cap});
        return proto;
      };
      auto r = sim::run_abcast(cfg, factory);
      std::printf("  %7.2fms %5llu i ", r.latency_ms.mean(),
                  static_cast<unsigned long long>(
                      r.totals.consensus_instances / cfg.group.n));
      if (!(r.agreement_ok && r.undelivered == 0)) std::printf("!");
    }
    std::printf("\n");
  }

  std::printf("\n# expected: tight caps multiply rounds per message and "
              "latency grows with throughput;\n"
              "# the unbounded (paper) setting absorbs load into batch size "
              "at near-flat round counts.\n");
  return 0;
}
