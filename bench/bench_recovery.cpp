// Recovery-run experiment (the paper's Sec. 1 motivation, after Dutta et
// al.'s "The Overhead of Consensus Recovery"): consensus is executed as a
// back-to-back sequence of instances; a crash during instance k propagates
// as an *initial* failure into every later instance. The per-instance
// latency series shows which protocols pay a one-time recovery blip and
// which are degraded forever.
//
// Expected series (divergent proposals, crash of p0 before instance 6,
// crash-tracking FD with a short detection delay):
//   L-/P-Consensus : 2 steps before, a blip while the FD converges, 2 steps
//                    after — zero-degradation (Def. 3).
//   CT             : 3 steps always (never better; the wasted p0 round after
//                    the crash costs ~no time once ◇S is stable).
//   single Paxos   : 2 steps before, 4 steps *forever after* — ballot 0 is
//                    owned by the dead p0, so every instance pays phase 1;
//                    this is exactly the permanent degradation repeated
//                    consensus suffers without zero-degradation (Multi-Paxos
//                    amortizes it, which is what Table 1 assumes).
//   Brasileiro     : 3 steps always on divergent proposals.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/sequence_world.h"

int main() {
  using namespace zdc;

  constexpr std::uint32_t kInstances = 12;
  constexpr std::uint32_t kCrashBefore = 6;

  const std::vector<std::string> protocols = {"l", "p", "ct", "paxos",
                                              "brasileiro-l"};

  std::printf("=== Recovery runs: repeated consensus with a mid-sequence "
              "crash ===\n");
  std::printf("n=4, f=1, divergent proposals; p0 crashes before instance %u\n"
              "cells: mean decision steps (first-decision latency, ms)\n\n",
              kCrashBefore);

  std::printf("%-14s", "instance");
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    std::printf("  %10u%s", i, i == kCrashBefore ? "*" : " ");
  }
  std::printf("\n");

  for (const auto& proto : protocols) {
    sim::SequenceConfig cfg;
    cfg.with_group(GroupParams{4, 1}).with_net(sim::calibrated_lan_2006());
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 3.0;
    cfg.with_seed(31);
    cfg.instances = kInstances;
    cfg.crash_process = 0;
    cfg.crash_before_instance = kCrashBefore;
    cfg.divergent_proposals = true;

    auto r = sim::run_consensus_sequence(
        cfg, sim::consensus_factory_by_name(proto));
    std::printf("%-14s", proto.c_str());
    for (const auto& inst : r.instances) {
      std::printf("  %4.1f (%4.2f)%s", inst.mean_steps, inst.first_decision,
                  inst.safe ? "" : "!");
    }
    if (!r.all_complete) std::printf("  INCOMPLETE");
    std::printf("\n");
  }

  std::printf("\n# '*' marks the crash boundary. Zero-degradation = the step "
              "count returns to 2 after the\n"
              "# blip; single-decree Paxos staying at 4 forever is the "
              "permanent degradation the paper's\n"
              "# introduction warns about.\n");
  return 0;
}
