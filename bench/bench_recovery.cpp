// Recovery-cost experiment, in two parts.
//
// Part 1 (the paper's Sec. 1 motivation, after Dutta et al.'s "The Overhead
// of Consensus Recovery"): consensus is executed as a back-to-back sequence
// of instances; a crash during instance k propagates as an *initial* failure
// into every later instance. The per-instance latency series shows which
// protocols pay a one-time recovery blip and which are degraded forever.
//
// Expected series (divergent proposals, crash of p0 before instance 6,
// crash-tracking FD with a short detection delay):
//   L-/P-Consensus : 2 steps before, a blip while the FD converges, 2 steps
//                    after — zero-degradation (Def. 3).
//   CT             : 3 steps always (never better; the wasted p0 round after
//                    the crash costs ~no time once ◇S is stable).
//   single Paxos   : 2 steps before, 4 steps *forever after* — ballot 0 is
//                    owned by the dead p0, so every instance pays phase 1;
//                    this is exactly the permanent degradation repeated
//                    consensus suffers without zero-degradation (Multi-Paxos
//                    amortizes it, which is what Table 1 assumes).
//   Brasileiro     : 3 steps always on divergent proposals.
//
// Part 2 (the durable-storage cost model, docs/STORAGE.md): the same
// acceptor-shaped put workload against InMemoryStableStorage (state dies
// with the process), the durable WAL with per-put fsync, the WAL with group
// commit (N puts per fsync), and the WAL after compaction. The priced
// quantities are sync_count — the recovery-cost metric the paper's
// evaluation uses — plus reopen (recovery-scan) time and how many records
// survive a kill -9. Emits machine-readable BENCH_recovery.json
// (schema zdc-bench-recovery-v1); --validate schema-checks an artifact.
//
// Part 3 (the catch-up protocol, docs/RECOVERY.md): catch-up time vs lag.
// A restarted replica pulls the commands it missed from a live peer through
// recovery::CatchupService — entry resends while the peer's DeliveryLog
// retains them, one snapshot transfer plus the log suffix once retention GC
// outran the lag. The rows price both regimes: wall time to converge,
// wire messages, entries applied and snapshots installed, as the lag grows
// past the retention cap ("catchup_rows" in the JSON artifact).
//
// Usage:
//   bench_recovery [--quick] [--out FILE] [--seed N]   # run + emit JSON
//   bench_recovery --validate FILE                     # schema-check a JSON
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "abcast/delivery_log.h"
#include "common/rng.h"
#include "common/stable_storage.h"
#include "core/kv_store.h"
#include "recovery/catchup.h"
#include "recovery/durable_rsm.h"
#include "sim/sequence_world.h"
#include "storage/durable_storage.h"
#include "storage/env.h"

namespace zdc::bench {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Part 1: repeated consensus with a mid-sequence crash (unchanged series).

void run_sequence_table() {
  constexpr std::uint32_t kInstances = 12;
  constexpr std::uint32_t kCrashBefore = 6;

  const std::vector<std::string> protocols = {"l", "p", "ct", "paxos",
                                              "brasileiro-l"};

  std::printf("=== Recovery runs: repeated consensus with a mid-sequence "
              "crash ===\n");
  std::printf("n=4, f=1, divergent proposals; p0 crashes before instance %u\n"
              "cells: mean decision steps (first-decision latency, ms)\n\n",
              kCrashBefore);

  std::printf("%-14s", "instance");
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    std::printf("  %10u%s", i, i == kCrashBefore ? "*" : " ");
  }
  std::printf("\n");

  for (const auto& proto : protocols) {
    sim::SequenceConfig cfg;
    cfg.with_group(GroupParams{4, 1}).with_net(sim::calibrated_lan_2006());
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 3.0;
    cfg.with_seed(31);
    cfg.instances = kInstances;
    cfg.crash_process = 0;
    cfg.crash_before_instance = kCrashBefore;
    cfg.divergent_proposals = true;

    auto r = sim::run_consensus_sequence(
        cfg, sim::consensus_factory_by_name(proto));
    std::printf("%-14s", proto.c_str());
    for (const auto& inst : r.instances) {
      std::printf("  %4.1f (%4.2f)%s", inst.mean_steps, inst.first_decision,
                  inst.safe ? "" : "!");
    }
    if (!r.all_complete) std::printf("  INCOMPLETE");
    std::printf("\n");
  }

  std::printf("\n# '*' marks the crash boundary. Zero-degradation = the step "
              "count returns to 2 after the\n"
              "# blip; single-decree Paxos staying at 4 forever is the "
              "permanent degradation the paper's\n"
              "# introduction warns about.\n\n");
}

// ---------------------------------------------------------------------------
// Part 2: storage backends under an acceptor-shaped put workload.

struct StorageRow {
  std::string storage;  ///< in-memory | wal | wal-group-commit | wal-compacted
  std::uint64_t puts = 0;
  std::uint64_t batch = 1;  ///< puts per durability barrier
  std::uint64_t syncs = 0;  ///< sync_count() after the workload
  double puts_per_s = 0;
  double reopen_ms = 0;     ///< recovery-scan cost on the surviving media
  std::uint64_t records_recovered = 0;  ///< what a kill -9 leaves behind
  std::uint64_t seed = 0;
};

/// One acceptor-shaped record: a handful of hot keys overwritten forever,
/// ~32-byte ballot/value payloads — the RecoveringPaxos persistence pattern.
std::string workload_key(std::uint64_t i) {
  return "acceptor-" + std::to_string(i % 4);
}

std::string workload_value(common::Rng& rng) {
  std::string value(32, ' ');
  for (char& c : value) {
    c = static_cast<char>('a' + rng.next_below(26));
  }
  return value;
}

StorageRow run_storage(const std::string& kind, std::uint64_t puts,
                       std::uint64_t batch, std::uint64_t seed) {
  StorageRow row;
  row.storage = kind;
  row.puts = puts;
  row.batch = kind == "wal-group-commit" ? batch : 1;
  row.seed = seed;
  common::Rng rng(common::mix_seed(seed, "bench_recovery." + kind, 0.0, 0));

  if (kind == "in-memory") {
    common::InMemoryStableStorage store;
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < puts; ++i) {
      store.put(workload_key(i), workload_value(rng));
    }
    const double dt = now_s() - t0;
    row.syncs = store.sync_count();
    row.puts_per_s = static_cast<double>(puts) / dt;
    // kill -9: the map dies with the process. Nothing to reopen, nothing
    // recovered — that contrast is the whole reason src/storage exists.
    row.reopen_ms = 0;
    row.records_recovered = 0;
    return row;
  }

  storage::MemEnv env;
  storage::DurableStorageOptions options;
  options.segment_bytes = 64 * 1024;
  std::unique_ptr<storage::DurableStableStorage> store;
  storage::Status s =
      storage::DurableStableStorage::open(env, "db", options, &store);
  if (!s.is_ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }

  const double t0 = now_s();
  if (kind == "wal-group-commit") {
    for (std::uint64_t i = 0; i < puts; ++i) {
      store->put_nosync(workload_key(i), workload_value(rng));
      if ((i + 1) % batch == 0 || i + 1 == puts) store->sync();
    }
  } else {
    for (std::uint64_t i = 0; i < puts; ++i) {
      store->put(workload_key(i), workload_value(rng));  // fsync per put
    }
  }
  const double dt = now_s() - t0;
  if (!store->last_status().is_ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 store->last_status().to_string().c_str());
    std::exit(1);
  }
  row.syncs = store->sync_count();
  row.puts_per_s = static_cast<double>(puts) / dt;

  if (kind == "wal-compacted") {
    s = store->compact();
    if (!s.is_ok()) {
      std::fprintf(stderr, "compact failed: %s\n", s.to_string().c_str());
      std::exit(1);
    }
    row.syncs = store->sync_count();
  }

  // kill -9 + reboot: drop the object (everything above was synced, so the
  // media is intact) and price the recovery scan.
  store.reset();
  storage::WalRecoveryInfo info;
  const double r0 = now_s();
  s = storage::DurableStableStorage::open(env, "db", options, &store, &info);
  row.reopen_ms = (now_s() - r0) * 1e3;
  if (!s.is_ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  row.records_recovered = info.records_replayed;
  return row;
}

void run_storage_table(std::vector<StorageRow>* rows, bool quick,
                       std::uint64_t seed) {
  const std::uint64_t puts = quick ? 2'000 : 50'000;
  const std::uint64_t batch = 32;
  std::printf("=== Durable storage: acceptor workload, %llu puts "
              "(group-commit batch %llu) ===\n",
              static_cast<unsigned long long>(puts),
              static_cast<unsigned long long>(batch));
  std::printf("%-18s %10s %12s %10s %12s\n", "storage", "syncs", "puts/s",
              "reopen ms", "recovered");
  for (const char* kind :
       {"in-memory", "wal", "wal-group-commit", "wal-compacted"}) {
    const StorageRow row = run_storage(kind, puts, batch, seed);
    std::printf("%-18s %10llu %12.0f %10.2f %12llu\n", row.storage.c_str(),
                static_cast<unsigned long long>(row.syncs), row.puts_per_s,
                row.reopen_ms,
                static_cast<unsigned long long>(row.records_recovered));
    rows->push_back(row);
  }
  std::printf(
      "\n# in-memory 'syncs' are free no-op barriers: fast, and a kill -9 "
      "recovers nothing. Group\n"
      "# commit divides the durability-barrier count by the batch size at "
      "the same durability;\n"
      "# compaction makes recovery O(state) instead of O(history) — the WAL "
      "replay behind 'recovered'\n"
      "# collapses to (nearly) zero records because the snapshot already "
      "holds the state.\n");
}

// ---------------------------------------------------------------------------
// Part 3: catch-up time vs lag through recovery::CatchupService.

struct CatchupRow {
  std::uint64_t lag = 0;           ///< commands the dead replica missed
  std::uint64_t max_retained = 0;  ///< peer's DeliveryLog retention cap
  std::uint64_t entries = 0;       ///< commands resent over the entry path
  std::uint64_t snapshots = 0;     ///< snapshot transfers (0 or 1 here)
  std::uint64_t messages = 0;      ///< total catch-up datagrams both ways
  double catchup_ms = 0;           ///< wall time from first pull to caught up
};

/// One server at `lag` applied commands (retention-capped log, already
/// GC'd), one empty client pulling over a direct in-process wire — the
/// deterministic core of what ReplicaGroup does over the transport, so the
/// row prices protocol work, not network jitter.
CatchupRow run_catchup(std::uint64_t lag, std::uint64_t max_retained,
                       common::Rng& rng) {
  CatchupRow row;
  row.lag = lag;
  row.max_retained = max_retained;

  abcast::DeliveryLog::Config retention;
  retention.max_retained = max_retained;

  struct Node {
    std::unique_ptr<recovery::DurableRsm> rsm;
    std::unique_ptr<abcast::DeliveryLog> log;
    std::unique_ptr<recovery::CatchupService> catchup;
  };
  Node nodes[2];
  struct Packet {
    ProcessId from;
    ProcessId to;
    std::string bytes;
  };
  std::vector<Packet> queue;
  for (ProcessId p = 0; p < 2; ++p) {
    nodes[p].rsm = std::make_unique<recovery::DurableRsm>(
        std::make_unique<core::KvStateMachine>(), nullptr);
    nodes[p].log = std::make_unique<abcast::DeliveryLog>(2, retention);
    nodes[p].catchup = std::make_unique<recovery::CatchupService>(
        p, 2, nodes[p].rsm.get(), nodes[p].log.get(),
        [p, &queue, &row](ProcessId to, std::string bytes) {
          ++row.messages;
          queue.push_back(Packet{p, to, std::move(bytes)});
        });
  }

  for (std::uint64_t i = 1; i <= lag; ++i) {
    const std::string cmd = core::kv_put("key-" + std::to_string(i % 64),
                                         std::to_string(rng.next_below(1000)));
    nodes[0].rsm->apply(i, cmd);
    nodes[0].log->append(cmd);
  }
  nodes[0].log->gc();  // enforce the cap, as the live ack ticks would

  const double t0 = now_s();
  nodes[1].catchup->start_recovery();
  nodes[1].catchup->poll_once();
  while (!queue.empty()) {
    Packet pkt = std::move(queue.front());
    queue.erase(queue.begin());
    nodes[pkt.to].catchup->on_message(pkt.from, pkt.bytes);
  }
  row.catchup_ms = (now_s() - t0) * 1e3;

  if (!nodes[1].catchup->caught_up() || nodes[1].rsm->applied() != lag) {
    std::fprintf(stderr, "catch-up failed to converge at lag %llu\n",
                 static_cast<unsigned long long>(lag));
    std::exit(1);
  }
  row.entries = nodes[1].catchup->entries_applied();
  row.snapshots = nodes[1].catchup->snapshots_installed();
  return row;
}

void run_catchup_table(std::vector<CatchupRow>* rows, bool quick,
                       std::uint64_t seed) {
  const std::uint64_t cap = quick ? 256 : 1024;
  const std::vector<std::uint64_t> lags =
      quick ? std::vector<std::uint64_t>{64, 256, 1024}
            : std::vector<std::uint64_t>{256, 1024, 4096, 16384, 65536};
  common::Rng rng(common::mix_seed(seed, "bench_recovery.catchup", 0.0, 0));

  std::printf("\n=== Catch-up: restarted replica vs lag (retention cap %llu) "
              "===\n",
              static_cast<unsigned long long>(cap));
  std::printf("%-10s %10s %10s %10s %12s\n", "lag", "entries", "snapshots",
              "messages", "catchup ms");
  for (const std::uint64_t lag : lags) {
    const CatchupRow row = run_catchup(lag, cap, rng);
    std::printf("%-10llu %10llu %10llu %10llu %12.3f\n",
                static_cast<unsigned long long>(row.lag),
                static_cast<unsigned long long>(row.entries),
                static_cast<unsigned long long>(row.snapshots),
                static_cast<unsigned long long>(row.messages), row.catchup_ms);
    rows->push_back(row);
  }
  std::printf(
      "\n# While the lag fits the peer's retention window, catch-up is pure "
      "entry resend (cost\n"
      "# linear in the lag). Past the cap it flips to one snapshot transfer "
      "plus the retained\n"
      "# suffix — cost proportional to live state, not to how long the "
      "replica was dead.\n");
}

// ---------------------------------------------------------------------------
// JSON emission + validation (same shape as bench_hotpath's artifact).

std::string to_json(const std::vector<StorageRow>& rows,
                    const std::vector<CatchupRow>& catchup_rows, bool quick,
                    std::uint64_t seed) {
  std::string out = "{\n  \"schema\": \"zdc-bench-recovery-v1\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "  \"quick\": %s,\n  \"seed_base\": %llu,\n",
                quick ? "true" : "false",
                static_cast<unsigned long long>(seed));
  out += buf;
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StorageRow& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"storage\": \"%s\", \"puts\": %llu, \"batch\": %llu, "
        "\"syncs\": %llu, \"puts_per_s\": %.1f, \"reopen_ms\": %.4f, "
        "\"records_recovered\": %llu, \"seed\": %llu}%s\n",
        r.storage.c_str(), static_cast<unsigned long long>(r.puts),
        static_cast<unsigned long long>(r.batch),
        static_cast<unsigned long long>(r.syncs), r.puts_per_s, r.reopen_ms,
        static_cast<unsigned long long>(r.records_recovered),
        static_cast<unsigned long long>(r.seed),
        i + 1 == rows.size() ? "" : ",");
    out += buf;
  }
  out += "  ],\n  \"catchup_rows\": [\n";
  for (std::size_t i = 0; i < catchup_rows.size(); ++i) {
    const CatchupRow& r = catchup_rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"lag\": %llu, \"max_retained\": %llu, \"entries\": %llu, "
        "\"snapshots\": %llu, \"messages\": %llu, \"catchup_ms\": %.4f}%s\n",
        static_cast<unsigned long long>(r.lag),
        static_cast<unsigned long long>(r.max_retained),
        static_cast<unsigned long long>(r.entries),
        static_cast<unsigned long long>(r.snapshots),
        static_cast<unsigned long long>(r.messages), r.catchup_ms,
        i + 1 == catchup_rows.size() ? "" : ",");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

/// Minimal strict parser for the subset this bench emits — catches truncated
/// files, missing keys and type confusion.
struct JsonParser {
  const char* p;
  const char* end;
  bool fail = false;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    fail = true;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  std::string parse_string() {
    skip_ws();
    if (p >= end || *p != '"') {
      fail = true;
      return {};
    }
    ++p;
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        fail = true;  // the bench never emits escapes
        return {};
      }
      s += *p++;
    }
    if (!consume('"')) return {};
    return s;
  }
  double parse_number() {
    skip_ws();
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) {
      fail = true;
      return 0;
    }
    p = after;
    return v;
  }
  bool parse_bool() {
    skip_ws();
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      p += 4;
      return true;
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      p += 5;
      return false;
    }
    fail = true;
    return false;
  }
};

/// Returns an empty string when `text` conforms, else a one-line diagnostic.
std::string validate_json(const std::string& text) {
  JsonParser j{text.data(), text.data() + text.size()};
  if (!j.consume('{')) return "not a JSON object";

  bool saw_schema = false;
  bool saw_rows = false;
  std::size_t row_count = 0;
  for (;;) {
    const std::string key = j.parse_string();
    if (j.fail) return "bad key";
    if (!j.consume(':')) return "missing ':' after " + key;
    if (key == "schema") {
      const std::string v = j.parse_string();
      if (v != "zdc-bench-recovery-v1") return "unknown schema '" + v + "'";
      saw_schema = true;
    } else if (key == "quick") {
      j.parse_bool();
    } else if (key == "seed_base") {
      j.parse_number();
    } else if (key == "rows") {
      saw_rows = true;
      if (!j.consume('[')) return "rows is not an array";
      while (!j.peek(']')) {
        if (!j.consume('{')) return "row is not an object";
        static const char* kKeys[8] = {
            "storage",   "puts",      "batch",
            "syncs",     "puts_per_s", "reopen_ms",
            "records_recovered", "seed"};
        bool has[8] = {};
        while (!j.peek('}')) {
          const std::string rk = j.parse_string();
          if (!j.consume(':')) return "row missing ':'";
          if (rk == "storage") {
            if (j.parse_string().empty()) return "empty storage";
          } else {
            j.parse_number();
          }
          if (j.fail) return "bad value for row key " + rk;
          for (int i = 0; i < 8; ++i) {
            if (rk == kKeys[i]) has[i] = true;
          }
          if (!j.peek('}')) {
            if (!j.consume(',')) return "row missing ','";
          }
        }
        j.consume('}');
        for (int i = 0; i < 8; ++i) {
          if (!has[i]) return std::string("row missing key ") + kKeys[i];
        }
        ++row_count;
        if (!j.peek(']')) {
          if (!j.consume(',')) return "rows missing ','";
        }
      }
      j.consume(']');
    } else if (key == "catchup_rows") {
      // Optional (pre-catch-up artifacts lack it): catch-up time vs lag.
      if (!j.consume('[')) return "catchup_rows is not an array";
      while (!j.peek(']')) {
        if (!j.consume('{')) return "catchup row is not an object";
        static const char* kKeys[6] = {"lag",       "max_retained",
                                       "entries",   "snapshots",
                                       "messages",  "catchup_ms"};
        bool has[6] = {};
        while (!j.peek('}')) {
          const std::string rk = j.parse_string();
          if (!j.consume(':')) return "catchup row missing ':'";
          j.parse_number();
          if (j.fail) return "bad value for catchup row key " + rk;
          for (int i = 0; i < 6; ++i) {
            if (rk == kKeys[i]) has[i] = true;
          }
          if (!j.peek('}')) {
            if (!j.consume(',')) return "catchup row missing ','";
          }
        }
        j.consume('}');
        for (int i = 0; i < 6; ++i) {
          if (!has[i]) {
            return std::string("catchup row missing key ") + kKeys[i];
          }
        }
        if (!j.peek(']')) {
          if (!j.consume(',')) return "catchup_rows missing ','";
        }
      }
      j.consume(']');
    } else {
      return "unknown key '" + key + "'";
    }
    if (j.fail) return "parse failure after key " + key;
    if (j.peek('}')) break;
    if (!j.consume(',')) return "missing ',' between keys";
  }
  j.consume('}');
  j.skip_ws();
  if (j.p != j.end) return "trailing garbage";
  if (!saw_schema) return "missing schema";
  if (!saw_rows) return "missing rows";
  if (row_count == 0) return "rows is empty";
  return {};
}

int validate_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "validate: cannot open %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  const std::string err = validate_json(text);
  if (!err.empty()) {
    std::fprintf(stderr, "validate: %s: %s\n", path, err.c_str());
    return 1;
  }
  std::printf("validate: %s conforms to zdc-bench-recovery-v1\n", path);
  return 0;
}

// ---------------------------------------------------------------------------

int run(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_recovery.json";
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--validate" && i + 1 < argc) {
      return validate_file(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_recovery [--quick] [--out FILE] [--seed N] | "
                   "--validate FILE\n");
      return 2;
    }
  }

  if (!quick) run_sequence_table();  // the protocol-level series (stdout only)

  std::vector<StorageRow> rows;
  run_storage_table(&rows, quick, seed);
  std::vector<CatchupRow> catchup_rows;
  run_catchup_table(&catchup_rows, quick, seed);

  const std::string json = to_json(rows, catchup_rows, quick, seed);
  const std::string err = validate_json(json);
  if (!err.empty()) {
    std::fprintf(stderr, "emitted JSON fails own validation: %s\n",
                 err.c_str());
    return 1;
  }
  std::FILE* f = std::fopen(out_path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path, rows.size());
  return 0;
}

}  // namespace
}  // namespace zdc::bench

int main(int argc, char** argv) { return zdc::bench::run(argc, argv); }
