// Runtime validation: re-run the protocol comparison on the *threaded*
// runtime (real concurrency; in-process mailboxes and real loopback UDP
// sockets) and check that the orderings the discrete-event simulator
// predicts — P ≲ L < WABCast under load, total order everywhere — also hold
// under genuine thread/socket timing. Wall-clock numbers are host-dependent;
// the orderings are the claim.
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/workload.h"

int main() {
  using namespace zdc;
  using namespace zdc::runtime;

  struct Entry {
    const char* label;
    ProtocolKind kind;
    GroupParams group;
  };
  const std::vector<Entry> entries = {
      {"C-Abcast/L", ProtocolKind::kCAbcastL, GroupParams{4, 1}},
      {"C-Abcast/P", ProtocolKind::kCAbcastP, GroupParams{4, 1}},
      {"WABCast", ProtocolKind::kWabcast, GroupParams{4, 1}},
      {"Paxos", ProtocolKind::kPaxos, GroupParams{3, 1}},
  };

  std::printf("=== Runtime validation: threaded in-process mailboxes ===\n");
  std::printf("mean / p95 a-broadcast latency [ms] (wall clock)\n\n");
  std::printf("%-12s", "protocol");
  for (double tput : {200.0, 1000.0}) std::printf("  %14.0f/s", tput);
  std::printf("\n");

  for (const Entry& entry : entries) {
    std::printf("%-12s", entry.label);
    for (double tput : {200.0, 1000.0}) {
      RuntimeWorkloadConfig cfg;
      cfg.cluster.group = entry.group;
      cfg.cluster.kind = entry.kind;
      cfg.cluster.net.seed = 42;
      cfg.throughput_per_s = tput;
      cfg.message_count = 200;
      cfg.seed = 42;
      auto r = run_runtime_workload(cfg);
      std::printf("  %6.2f/%6.2f%s%s", r.latency_ms.mean(),
                  r.latency_ms.percentile(95), r.total_order_ok ? " " : "!",
                  r.complete ? " " : "~");
    }
    std::printf("\n");
  }

  std::printf("\n=== Runtime validation: real loopback UDP sockets (ARQ) ===\n");
  std::printf("%-12s", "protocol");
  std::printf("  %14s\n", "500/s");
  for (const Entry& entry : entries) {
    RuntimeWorkloadConfig cfg;
    cfg.cluster.group = entry.group;
    cfg.cluster.kind = entry.kind;
    cfg.cluster.transport = RuntimeCluster::TransportKind::kUdp;
    cfg.cluster.udp.retransmit_interval_ms = 10.0;
    cfg.cluster.fd.initial_timeout_ms = 150.0;
    cfg.throughput_per_s = 500.0;
    cfg.message_count = 150;
    cfg.seed = 7;
    auto r = run_runtime_workload(cfg);
    std::printf("%-12s  %6.2f/%6.2f%s%s\n", entry.label, r.latency_ms.mean(),
                r.latency_ms.percentile(95), r.total_order_ok ? " " : "!",
                r.complete ? " " : "~");
  }

  std::printf("\n# '!' = total-order violation (must never appear); '~' = "
              "incomplete within timeout.\n"
              "# expected: same protocol ordering as the simulator figures; "
              "absolute numbers are host noise.\n");
  return 0;
}
