// Failure-detector quality of service (Chen-style), on the threaded runtime:
// the timeout trade-off behind every ◇P deployment — short timeouts detect
// crashes fast but misfire on slow links; long ones are accurate but slow.
// The adaptive increment bounds the misfires either way (the ◇P accuracy
// argument); this bench puts numbers on the triangle.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "runtime/heartbeat_fd.h"
#include "runtime/inproc_net.h"
#include "runtime/runtime_node.h"

int main() {
  using namespace zdc;
  using namespace zdc::runtime;
  using Clock = std::chrono::steady_clock;

  std::printf("=== Heartbeat ◇P quality of service (threaded runtime) ===\n");
  std::printf("heartbeat interval 5 ms, network delay 0.1-2.0 ms, n=3\n\n");
  std::printf("%14s  %18s  %20s\n", "timeout [ms]", "false suspicions",
              "crash detection [ms]");

  for (double timeout_ms : {3.0, 6.0, 15.0, 30.0, 60.0, 120.0}) {
    InprocNetwork::Config net_cfg;
    net_cfg.n = 3;
    net_cfg.seed = 11;
    net_cfg.min_delay_ms = 0.1;
    net_cfg.max_delay_ms = 2.0;
    InprocNetwork net(net_cfg);

    HeartbeatFd::Config fd_cfg;
    fd_cfg.interval_ms = 5.0;
    fd_cfg.initial_timeout_ms = timeout_ms;
    fd_cfg.timeout_increment_ms = timeout_ms;

    std::vector<std::unique_ptr<HeartbeatFd>> fds;
    for (ProcessId p = 0; p < 3; ++p) {
      fds.push_back(std::make_unique<HeartbeatFd>(p, net, fd_cfg, nullptr));
    }
    for (ProcessId p = 0; p < 3; ++p) {
      HeartbeatFd* fd = fds[p].get();
      net.set_handler(p, [fd](const Delivery& d) {
        if (d.channel == Channel::kHeartbeat) fd->on_heartbeat(d.from);
      });
    }
    net.start();
    for (auto& fd : fds) fd->start();

    // Accuracy window: 400 ms of steady state.
    RuntimeCluster::wait_until([] { return false; }, 400.0);
    std::uint64_t false_suspicions = 0;
    for (const auto& fd : fds) false_suspicions += fd->false_suspicions();

    // Completeness: crash p0, measure until both survivors suspect it.
    const auto crash_at = Clock::now();
    net.crash(0);
    RuntimeCluster::wait_until(
        [&] { return fds[1]->suspects(0) && fds[2]->suspects(0); }, 10'000.0);
    const double detect_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - crash_at)
            .count();
    net.shutdown();

    std::printf("%14.0f  %18llu  %20.1f\n", timeout_ms,
                static_cast<unsigned long long>(false_suspicions), detect_ms);
  }

  std::printf("\n# expected: aggressive timeouts misfire (then self-correct "
              "via the adaptive increment)\n"
              "# but detect crashes within ~timeout; generous timeouts never "
              "misfire and pay proportionally\n"
              "# slower detection — the stable-run assumption the paper's "
              "protocols lean on is exactly\n"
              "# the regime right of the misfire knee.\n");
  return 0;
}
