// Table 1 reproduction: analytical vs measured comparison of the atomic
// broadcast protocols — latency (in communication delays δ) and message
// complexity per a-broadcast, in the no-collision and collision regimes,
// plus resilience and oracle columns.
//
//   Protocol   | no collisions      | collisions        | resilience | oracle
//   Paxos      | 3δ, n²+n+1         | 3δ, n²+n+1        | f < n/2    | Ω
//   WABCast    | 2δ, n²+n           | ∞                 | f < n/3    | WAB
//   L-/P-Cons. | 2δ, n²+n           | 3δ, 2n²+n         | f < n/3    | Ω/◇P + WAB
//
// Measured message counts additionally include the DECIDE-flood of task T2
// (n² per instance), which the paper's analytical accounting leaves out;
// the bench prints both so the comparison stays honest.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/abcast_world.h"

namespace {

using namespace zdc;

struct Row {
  std::string name;
  std::string protocol;
  GroupParams group;
  std::string analytic_lat_nc;
  std::string analytic_msg_nc;
  std::string analytic_lat_c;
  std::string analytic_msg_c;
  std::string resilience;
  std::string oracle;
};

struct Measured {
  double latency_delta = 0;
  double msgs = 0;
  bool live = true;
};

Measured measure(const Row& row, double throughput, std::uint64_t seed) {
  sim::AbcastRunConfig cfg;
  cfg.with_group(row.group).with_net(sim::calibrated_lan_2006());
  cfg.with_seed(seed);
  cfg.throughput_per_s = throughput;
  cfg.message_count = throughput < 50 ? 120 : 600;
  if (row.protocol == "paxos") {
    for (ProcessId p = 1; p < row.group.n; ++p) {
      cfg.workload_senders.push_back(p);
    }
  }
  auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(row.protocol));
  // One communication delay on the calibrated testbed: propagation + mean
  // jitter + the two per-message CPU touches of a hop.
  const double delta = cfg.net.base_delay_ms + cfg.net.jitter_mean_ms +
                       cfg.net.cpu_send_ms + cfg.net.cpu_recv_ms;
  Measured m;
  m.latency_delta = r.latency_ms.mean() / delta;
  m.msgs = r.messages_per_abcast();
  m.live = r.agreement_ok && r.undelivered == 0;
  return m;
}

}  // namespace

int main() {
  std::vector<Row> rows = {
      {"Paxos", "paxos", GroupParams{3, 1}, "3d", "n^2+n+1=13", "3d",
       "n^2+n+1=13", "f<n/2", "Omega"},
      {"WABCast", "wabcast", GroupParams{4, 1}, "2d", "n^2+n=20", "inf",
       "inf", "f<n/3", "WAB"},
      {"L-Cons.", "c-l", GroupParams{4, 1}, "2d", "n^2+n=20", "3d",
       "2n^2+n=36", "f<n/3", "Omega+WAB"},
      {"P-Cons.", "c-p", GroupParams{4, 1}, "2d", "n^2+n=20", "3d",
       "2n^2+n=36", "f<n/3", "EvP+WAB"},
  };

  std::printf("=== Table 1: atomic broadcast protocol comparison ===\n");
  std::printf("analytical (paper) vs measured; latency in communication "
              "delays d, messages per a-broadcast\n");
  std::printf("no-collision regime: 20 msg/s; collision regime: 500 msg/s "
              "(measured msgs include the DECIDE flood the paper's "
              "accounting omits)\n\n");
  std::printf("%-9s | %-22s | %-22s | %-22s | %-22s | %-6s | %s\n", "proto",
              "lat nc (anl : meas)", "msgs nc (anl : meas)",
              "lat coll (anl : meas)", "msgs coll (anl : meas)", "resil",
              "oracle");

  for (const Row& row : rows) {
    Measured nc = measure(row, 20.0, 7);
    Measured coll = measure(row, 500.0, 7);
    char lat_nc[64], msg_nc[64], lat_c[64], msg_c[64];
    std::snprintf(lat_nc, sizeof lat_nc, "%s : %.1fd%s",
                  row.analytic_lat_nc.c_str(), nc.latency_delta,
                  nc.live ? "" : "!");
    std::snprintf(msg_nc, sizeof msg_nc, "%s : %.1f",
                  row.analytic_msg_nc.c_str(), nc.msgs);
    std::snprintf(lat_c, sizeof lat_c, "%s : %.1fd%s",
                  row.analytic_lat_c.c_str(), coll.latency_delta,
                  coll.live ? "" : "!");
    std::snprintf(msg_c, sizeof msg_c, "%s : %.1f",
                  row.analytic_msg_c.c_str(), coll.msgs);
    std::printf("%-9s | %-22s | %-22s | %-22s | %-22s | %-6s | %s\n",
                row.name.c_str(), lat_nc, msg_nc, lat_c, msg_c,
                row.resilience.c_str(), row.oracle.c_str());
  }

  std::printf("\n# reading guide: measured latency exceeds the analytical "
              "step count by the oracle's\n"
              "# disorder jitter and queueing; the orderings (2d stacks < "
              "Paxos's 3d without collisions,\n"
              "# WABCast worst under collisions, Paxos's message economy) "
              "are the paper's claims.\n");
  return 0;
}
