// Shared plumbing for the paper-reproduction benches: throughput sweeps,
// repeated-seed averaging and table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/abcast_world.h"

namespace zdc::bench {

/// The throughput grid of Figures 2 and 3 (20–500 msg/s).
inline std::vector<double> figure_throughputs() {
  return {20, 50, 80, 100, 150, 200, 250, 300, 350, 400, 450, 500};
}

struct SweepPoint {
  double throughput = 0;
  double mean_latency_ms = 0;
  double p95_latency_ms = 0;
  double messages_per_abcast = 0;
  bool safe = true;
  bool complete = true;  ///< everything delivered everywhere
};

/// Runs `protocol` at one throughput, averaging `repeats` seeds. The Paxos
/// baseline keeps clients off the leader (the paper's deployment: the n=3
/// group orders a workload originating elsewhere), so every message pays the
/// client→leader hop of Table 1.
inline SweepPoint run_point(const std::string& protocol, GroupParams group,
                            double throughput, std::uint32_t message_count,
                            std::uint32_t repeats, std::uint64_t seed_base) {
  SweepPoint point;
  point.throughput = throughput;
  common::Sampler latency;
  double msgs_acc = 0;
  for (std::uint32_t rep = 0; rep < repeats; ++rep) {
    sim::AbcastRunConfig cfg;
    cfg.with_group(group).with_net(sim::calibrated_lan_2006());
    // Per-cell seed via splitmix64 over (base, protocol, throughput, rep):
    // the former additive `seed_base + rep * K` reused the same stream for
    // every protocol and sweep point and could collide across bases,
    // silently correlating "independent" repeats (collision regression in
    // stats_test.cpp).
    cfg.with_seed(common::mix_seed(seed_base, protocol, throughput, rep));
    cfg.throughput_per_s = throughput;
    cfg.message_count = message_count;
    if (protocol == "paxos") {
      for (ProcessId p = 1; p < group.n; ++p) cfg.workload_senders.push_back(p);
    }
    auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(protocol));
    point.safe = point.safe && r.safe();
    point.complete = point.complete && r.agreement_ok && r.undelivered == 0;
    // Equal-weight merge of per-run means (runs use the same message count).
    latency.add(r.latency_ms.mean());
    msgs_acc += r.messages_per_abcast();
    if (rep == 0) point.p95_latency_ms = r.latency_ms.percentile(95);
  }
  point.mean_latency_ms = latency.mean();
  point.messages_per_abcast = msgs_acc / repeats;
  return point;
}

inline void print_header(const std::vector<std::string>& protocols) {
  std::printf("%10s", "msg/s");
  for (const auto& p : protocols) std::printf("  %16s", p.c_str());
  std::printf("\n");
}

}  // namespace zdc::bench
