// Zero-degradation experiment (Definition 3, Dutta & Guerraoui): decision
// steps and latency in *stable runs with initial crashes* — the scenario that
// separates zero-degrading protocols from ones that merely do well in
// failure-free runs.
//
// For every protocol and every number of initial crashes c <= f we run
// divergent-proposal consensus on the calibrated LAN with a stable failure
// detector (it suspects exactly the crashed processes from t=0, Def. 2) and
// report the mean steps and latency of round-deciding processes.
//
// Expected: L-/P-Consensus and Paxos stay at 2 steps for every c (they are
// zero-degrading — crashes of *other* processes cost nothing once the FD is
// stable); Brasileiro pays its 3-step penalty in every such run; repeated
// consensus (the paper's motivation: initial failures propagate into all
// subsequent instances) would pay that penalty forever.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/consensus_world.h"

namespace {

using namespace zdc;

struct Cell {
  double mean_steps = 0;
  double mean_latency_ms = 0;
  bool ok = true;
};

Cell run_cell(const std::string& protocol, GroupParams group,
              std::uint32_t crashes, std::uint32_t runs) {
  Cell cell;
  common::OnlineStats steps;
  common::OnlineStats latency;
  for (std::uint32_t i = 0; i < runs; ++i) {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(group).with_net(sim::calibrated_lan_2006());
    cfg.with_seed(9000 + i);
    cfg.fd.mode = sim::FdMode::kStable;
    for (std::uint32_t c = 0; c < crashes; ++c) {
      sim::CrashSpec spec;
      spec.p = c;  // kill the lowest ids: the natural Ω leader is among them
      spec.initial = true;
      cfg.crashes.push_back(spec);
    }
    for (ProcessId p = 0; p < group.n; ++p) {
      cfg.proposals.push_back("v" + std::to_string(p));  // divergent
    }
    auto r = sim::run_consensus(cfg, sim::consensus_factory_by_name(protocol));
    cell.ok = cell.ok && r.safe() && r.all_correct_decided;
    for (const auto& o : r.outcomes) {
      if (!o.decided || o.path != consensus::DecisionPath::kRound) continue;
      steps.add(o.steps);
      latency.add(o.decide_time);
    }
  }
  cell.mean_steps = steps.mean();
  cell.mean_latency_ms = latency.mean();
  return cell;
}

}  // namespace

int main() {
  constexpr std::uint32_t kRuns = 40;
  struct Entry {
    std::string label;
    std::string protocol;
    GroupParams group;
  };
  const std::vector<Entry> entries = {
      {"L-Consensus", "l", GroupParams{4, 1}},
      {"P-Consensus", "p", GroupParams{4, 1}},
      {"Brasileiro", "brasileiro-l", GroupParams{4, 1}},
      {"Fast Paxos", "fast-paxos", GroupParams{4, 1}},
      {"CT", "ct", GroupParams{4, 1}},
      {"Paxos", "paxos", GroupParams{3, 1}},
  };

  std::printf("=== Zero-degradation: stable runs with initial crashes ===\n");
  std::printf("divergent proposals; mean decision steps / latency [ms]\n\n");
  std::printf("%-14s  %20s  %20s\n", "protocol", "0 crashes", "1 crash");

  for (const Entry& e : entries) {
    std::printf("%-14s", e.label.c_str());
    for (std::uint32_t crashes : {0u, 1u}) {
      Cell cell = run_cell(e.protocol, e.group, crashes, kRuns);
      std::printf("  %8.2f steps %5.2fms%s", cell.mean_steps,
                  cell.mean_latency_ms, cell.ok ? "" : "!");
    }
    std::printf("\n");
  }

  // Larger group at the resilience boundary.
  std::printf("\n%-14s  %20s  %20s  (n=7, f=2)\n", "protocol", "0 crashes",
              "2 crashes");
  for (const Entry& e : entries) {
    if (e.protocol == "paxos") continue;
    std::printf("%-14s", e.label.c_str());
    for (std::uint32_t crashes : {0u, 2u}) {
      Cell cell = run_cell(e.protocol, GroupParams{7, 2}, crashes, kRuns);
      std::printf("  %8.2f steps %5.2fms%s", cell.mean_steps,
                  cell.mean_latency_ms, cell.ok ? "" : "!");
    }
    std::printf("\n");
  }

  std::printf("\n# expected: L/P hold 2 steps with and without initial "
              "crashes (zero-degradation);\n"
              "# Brasileiro needs 3 steps from divergent proposals in every "
              "stable run. Single-decree\n"
              "# Paxos pays a phase-1 round trip (4 steps) when the ballot-0 "
              "owner is among the dead —\n"
              "# the sequencer (Multi-Paxos) amortizes that across instances, "
              "which is why Table 1 still\n"
              "# lists Paxos at 3 message delays end to end.\n");
  return 0;
}
