// Consensus under the nemesis: decision latency and completion when random
// survivable fault schedules (partitions, isolation, link degradation,
// pauses, crashes and — in the third table — wire corruption; see
// src/fault/) run against the protocol. Every plan
// settles with a global heal at the horizon, so safety is asserted
// unconditionally and liveness after the heal.
//
// The sweep shows the flip side of the paper's fault-free story: one-step /
// zero-degradation protocols buy their speed in good runs without giving up
// resilience in bad ones — under disturbances everyone slows down to the
// heal point, nobody turns unsafe, and L-/P-Consensus still decide in the
// same post-heal window as the classics.
//
// The second table runs Rec-Paxos under crash→restart bounces (the
// crash-recovery model): restarted processes reload their write-ahead
// acceptor state, rejoin, and the group still converges.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "fault/nemesis.h"
#include "sim/consensus_world.h"

namespace {

using namespace zdc;

constexpr std::uint32_t kSeeds = 40;

struct Cell {
  double mean_last_decision_ms = 0;
  std::uint32_t complete = 0;  ///< runs where every correct process decided
  std::uint32_t unsafe = 0;    ///< agreement or validity violations (must be 0)
};

Cell run_cell(const std::string& protocol, const fault::NemesisConfig& ncfg) {
  Cell cell;
  common::Sampler last;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    sim::ConsensusRunConfig cfg;
    cfg.with_group(GroupParams{ncfg.n, ncfg.f})
        .with_net(sim::calibrated_lan_2006());
    cfg.fd.mode = sim::FdMode::kCrashTracking;
    cfg.fd.detection_delay_ms = 3.0;
    cfg.with_seed(seed);
    for (ProcessId p = 0; p < ncfg.n; ++p) {
      cfg.proposals.push_back("v" + std::to_string(p));
    }
    cfg.fault_plan = fault::random_fault_plan(ncfg, seed * 7919);

    auto r = sim::run_consensus(cfg, sim::consensus_factory_by_name(protocol));
    if (!r.safe()) ++cell.unsafe;
    if (r.all_correct_decided) {
      ++cell.complete;
      last.add(r.last_decision_time);
    }
  }
  cell.mean_last_decision_ms = last.count() > 0 ? last.mean() : 0.0;
  return cell;
}

void print_table(const std::vector<std::string>& protocols,
                 const fault::NemesisConfig& base) {
  std::printf("%-14s", "disturbances");
  for (std::uint32_t d = 0; d <= 4; ++d) std::printf("  %14u", d);
  std::printf("\n");
  for (const auto& proto : protocols) {
    std::printf("%-14s", proto.c_str());
    for (std::uint32_t d = 0; d <= 4; ++d) {
      fault::NemesisConfig ncfg = base;
      ncfg.disturbances = d;
      const Cell cell = run_cell(proto, ncfg);
      if (cell.unsafe > 0) {
        std::printf("  %11s!%02u", "UNSAFE", cell.unsafe);
      } else {
        std::printf("  %6.2f ms %2u/%u", cell.mean_last_decision_ms,
                    cell.complete, kSeeds);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Nemesis sweep: consensus under random fault schedules ===\n");
  std::printf("n=4 f=1, crash-tracking FD, %u seeded plans per cell; every "
              "plan heals at 20 ms.\n"
              "cells: mean last-decision time, completed runs / seeds "
              "(safety violations would shout)\n\n",
              kSeeds);

  fault::NemesisConfig ncfg;
  ncfg.n = 4;
  ncfg.f = 1;
  ncfg.horizon_ms = 20.0;
  ncfg.settle = true;

  print_table({"l", "p", "ct", "paxos"}, ncfg);

  std::printf("\n=== Crash-recovery: Rec-Paxos with crash->restart bounces "
              "===\n\n");
  fault::NemesisConfig rcfg = ncfg;
  rcfg.allow_restart = true;
  print_table({"rec-paxos"}, rcfg);

  std::printf("\n=== Corruption: byte-flips, equivocation, transient state "
              "corruption in the mix ===\n\n");
  fault::NemesisConfig ccfg = ncfg;
  ccfg.allow_corrupt = true;
  print_table({"l", "p", "ct", "paxos"}, ccfg);
  std::printf("\n# Corruption windows arm per-delivery budgets: flipped "
              "frames fail the CRC32C seal\n"
              "# and surface as detectable drops (the clean copy still "
              "arrives), equivocated copies\n"
              "# carry valid seals over divergent bytes. Either way the cells "
              "must read like the\n"
              "# fault-free column: detectable corruption costs "
              "retransmissions, never safety.\n");

  std::printf("\n# Disturbance windows are drawn from partitions, isolation, "
              "link drop/delay overrides,\n"
              "# pauses (false-suspicion pressure) and crashes, at most f "
              "crashed at any point. A run\n"
              "# that completes before the final heal reports its real "
              "decision time; one that stalls\n"
              "# against a partition finishes shortly after the heal "
              "re-injects the parked traffic.\n");
  return 0;
}
