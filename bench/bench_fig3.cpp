// Figure 3 reproduction: mean atomic-broadcast latency vs throughput for
// L-/P-Consensus (n = 4, f = 1) against Paxos (n = 3, f = 1), stable runs.
//
// Paper shape: at low throughput the one-step stacks win (2δ vs Paxos's 3δ);
// when collisions predominate they match Paxos's time complexity but send
// more messages (2n²+n vs n²+n+1, and on a larger group), so from roughly
// 300 msg/s Paxos slightly outperforms both.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  const char* csv_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv_path = argv[i + 1];
  }
  using namespace zdc;
  using namespace zdc::bench;

  const std::vector<std::string> protocols = {"c-l", "c-p", "paxos"};
  const std::vector<std::string> labels = {"L-Consensus(n=4)",
                                           "P-Consensus(n=4)", "Paxos(n=3)"};
  const std::vector<GroupParams> groups = {{4, 1}, {4, 1}, {3, 1}};
  constexpr std::uint32_t kMessages = 600;
  constexpr std::uint32_t kRepeats = 3;

  std::printf("=== Figure 3: L-/P-Consensus (n=4) vs Paxos (n=3) ===\n");
  std::printf("mean a-broadcast latency [ms] per throughput [msg/s]\n\n");
  print_header(labels);

  std::vector<std::vector<SweepPoint>> series(protocols.size());
  for (double tput : figure_throughputs()) {
    std::printf("%10.0f", tput);
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      SweepPoint pt =
          run_point(protocols[i], groups[i], tput, kMessages, kRepeats, 99);
      series[i].push_back(pt);
      std::printf("  %13.3f%s%s", pt.mean_latency_ms, pt.safe ? "  " : " !",
                  pt.complete ? " " : "~");
    }
    std::printf("\n");
  }

  const auto& l_series = series[0];
  const auto& paxos_series = series[2];
  std::printf("\n# shape: at 20 msg/s — L %.2f ms vs Paxos %.2f ms"
              " (paper: one-step stacks faster at low load)\n",
              l_series.front().mean_latency_ms,
              paxos_series.front().mean_latency_ms);
  double crossover = -1;
  for (std::size_t i = 0; i < l_series.size(); ++i) {
    if (paxos_series[i].mean_latency_ms < l_series[i].mean_latency_ms) {
      crossover = l_series[i].throughput;
      break;
    }
  }
  std::printf("# shape: Paxos overtakes L-Consensus from %.0f msg/s"
              " (paper: ~300 msg/s)\n", crossover);
  std::printf("# messages per a-broadcast at 500 msg/s: L %.1f, P %.1f,"
              " Paxos %.1f\n",
              series[0].back().messages_per_abcast,
              series[1].back().messages_per_abcast,
              series[2].back().messages_per_abcast);
  if (csv_path != nullptr) {
    FILE* csv = std::fopen(csv_path, "w");
    if (csv != nullptr) {
      std::fprintf(csv, "throughput");
      for (const auto& label : labels) std::fprintf(csv, ",%s", label.c_str());
      std::fprintf(csv, "\n");
      for (std::size_t row = 0; row < series[0].size(); ++row) {
        std::fprintf(csv, "%.0f", series[0][row].throughput);
        for (const auto& column : series) {
          std::fprintf(csv, ",%.4f", column[row].mean_latency_ms);
        }
        std::fprintf(csv, "\n");
      }
      std::fclose(csv);
      std::printf("# csv written to %s\n", csv_path);
    }
  }
  return 0;
}
