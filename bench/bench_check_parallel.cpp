// Parallel model-checker throughput: transitions/s of the task-decomposed
// DFS (zdc_check --threads) against the sequential engine on the Paxos n=3
// benchmark space, plus the determinism cross-check the speedup is not
// allowed to cost (identical totals at every thread count).
//
// The parallel engine runs every work unit to completion, so on a
// violation-free space it does the same work as the sequential DFS plus one
// prefix replay per unit — the speedup column is (roughly) core count, and
// on a single-core box it reads ~1× by design.
#include <chrono>
#include <cstdio>
#include <vector>

#include "check/explorer.h"
#include "check/system.h"

namespace {

using namespace zdc;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

check::ScenarioSpec paxos_n3() {
  check::ScenarioSpec spec;
  spec.protocol = "paxos";
  spec.group = GroupParams{3, 1};
  spec.proposals = {"a", "b", "c"};
  return spec;
}

}  // namespace

int main() {
  std::printf("=== Parallel DFS throughput: Paxos n=3, proposals a,b,c ===\n");
  const check::ScenarioSpec spec = paxos_n3();
  check::AdversaryBudgets budgets;
  budgets.flips = 1;  // corruption choice points widen the alphabet
  const check::SystemFactory factory =
      check::make_system_factory(spec, budgets);

  check::ExploreConfig cfg;
  cfg.max_depth = 8;

  std::printf("%-10s  %14s  %10s  %10s  %12s\n", "threads", "transitions",
              "paths", "wall s", "trans/s");
  std::uint64_t parallel_total = 0;
  for (const std::uint32_t threads : {0u, 1u, 2u, 4u, 8u}) {
    cfg.threads = threads;
    const double t0 = now_s();
    const auto res = check::explore(factory, cfg);
    const double dt = now_s() - t0;
    std::printf("%-10u  %14llu  %10llu  %10.3f  %12.0f%s\n", threads,
                static_cast<unsigned long long>(res.transitions),
                static_cast<unsigned long long>(res.paths), dt,
                dt > 0 ? static_cast<double>(res.transitions) / dt : 0.0,
                threads == 0 ? "  (sequential)" : "");
    if (threads >= 1) {
      if (parallel_total == 0) parallel_total = res.transitions;
      if (res.transitions != parallel_total) {
        std::printf("DETERMINISM VIOLATION: %u threads explored %llu "
                    "transitions, 1 thread explored %llu\n",
                    threads,
                    static_cast<unsigned long long>(res.transitions),
                    static_cast<unsigned long long>(parallel_total));
        return 1;
      }
    }
  }
  std::printf("\n# Totals at threads >= 1 must be byte-identical (enforced "
              "above); the sequential row\n"
              "# is smaller only by the per-unit prefix replays. Speedup "
              "tracks physical cores.\n");
  return 0;
}
