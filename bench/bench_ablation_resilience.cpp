// Ablation: group size and resilience. The one-step protocols trade
// resilience (f < n/3) for their fast path while Paxos tolerates f < n/2 on
// a smaller group; this bench quantifies what the n²-message fan-out costs as
// the group grows, at the resilience boundary n = 3f+1.
//
// Expected: latency grows mildly with n (bigger quorums, more fan-out
// serialization), message cost grows quadratically; for the same tolerated
// f, Paxos runs a much smaller group (2f+1) at a fraction of the messages —
// the trade the paper's Table 1 prices.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/abcast_world.h"

int main() {
  using namespace zdc;

  struct Point {
    std::uint32_t f;
    GroupParams one_step_group;  // n = 3f+1
    GroupParams paxos_group;     // n = 2f+1
  };
  const std::vector<Point> points = {
      {1, GroupParams{4, 1}, GroupParams{3, 1}},
      {2, GroupParams{7, 2}, GroupParams{5, 2}},
      {3, GroupParams{10, 3}, GroupParams{7, 3}},
  };
  constexpr double kThroughput = 150.0;

  std::printf("=== Ablation: resilience and group size (at %.0f msg/s) ===\n",
              kThroughput);
  std::printf("per tolerated f: one-step stacks need n=3f+1, Paxos n=2f+1\n\n");
  std::printf("%3s  %18s  %18s  %18s\n", "f", "L-Cons (n=3f+1)",
              "P-Cons (n=3f+1)", "Paxos (n=2f+1)");

  for (const Point& pt : points) {
    std::printf("%3u", pt.f);
    const std::vector<std::pair<std::string, GroupParams>> runs = {
        {"c-l", pt.one_step_group},
        {"c-p", pt.one_step_group},
        {"paxos", pt.paxos_group},
    };
    for (const auto& [proto, group] : runs) {
      sim::AbcastRunConfig cfg;
      cfg.with_group(group).with_net(sim::calibrated_lan_2006());
      cfg.with_seed(23);
      cfg.throughput_per_s = kThroughput;
      cfg.message_count = 400;
      if (proto == "paxos") {
        for (ProcessId p = 1; p < group.n; ++p) {
          cfg.workload_senders.push_back(p);
        }
      }
      auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(proto));
      std::printf("  %7.2fms %5.0fmsg%s", r.latency_ms.mean(),
                  r.messages_per_abcast(),
                  (r.agreement_ok && r.undelivered == 0) ? " " : "!");
    }
    std::printf("\n");
  }

  std::printf("\n# expected: message cost ~ n^2 for the one-step stacks; "
              "Paxos's smaller group keeps both\n"
              "# latency and message counts lower at equal f — the price of "
              "the one-step fast path.\n");
  return 0;
}
