#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace zdc::lint {

namespace {

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "wall-clock", "wall-time",   "raw-random",
      "unordered-iter", "bare-assert", "std-cout",
  };
  return rules;
}

// ---------------------------------------------------------------------------
// Tokenizer: identifiers and punctuation with line numbers; comments, string
// literals (including raw strings) and numbers are skipped. "::" and "->" are
// single tokens so qualification checks stay simple.

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto at = [&](std::size_t k) { return k < n ? src[k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && at(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Identifiers (may prefix a raw string: R"delim( ... )delim").
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string word = src.substr(i, j - i);
      const bool raw_prefix = (word == "R" || word == "u8R" || word == "LR" ||
                               word == "uR" || word == "UR");
      if (raw_prefix && at(j) == '"') {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim += src[k++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, k);
        const std::size_t stop = end == std::string::npos ? n : end + closer.size();
        for (std::size_t m = i; m < stop; ++m) {
          if (src[m] == '\n') ++line;
        }
        i = stop;
        continue;
      }
      out.push_back(Token{std::move(word), line, true});
      i = j;
      continue;
    }
    // Numeric literals (so 1e9f never looks like an identifier).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i + 1))))) {
      ++i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') &&
                        (std::tolower(at(i - 1)) == 'e' ||
                         std::tolower(at(i - 1)) == 'p')))) {
        ++i;
      }
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    // Multi-char punctuation we care about, then single chars.
    if (c == ':' && at(i + 1) == ':') {
      out.push_back(Token{"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      out.push_back(Token{"->", line, false});
      i += 2;
      continue;
    }
    out.push_back(Token{std::string(1, c), line, false});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow-markers: `// zdc-lint: allow(rule): justification`, suppressing the
// marker's own line and the line below.

struct AllowTable {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Violation> marker_violations;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

AllowTable parse_allows(const std::string& path, const std::string& src) {
  AllowTable table;
  std::istringstream stream(src);
  std::string text;
  int line = 0;
  while (std::getline(stream, text)) {
    ++line;
    const std::size_t mark = text.find("zdc-lint:");
    if (mark == std::string::npos) continue;
    const std::size_t open = text.find("allow(", mark);
    if (open == std::string::npos) {
      table.marker_violations.push_back(
          {path, line, "unknown-allow", "malformed zdc-lint marker (expected "
                                        "`zdc-lint: allow(<rule>): <why>`)"});
      continue;
    }
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) {
      table.marker_violations.push_back(
          {path, line, "unknown-allow", "unterminated allow(<rule>) marker"});
      continue;
    }
    const std::string rule = trim(text.substr(open + 6, close - open - 6));
    if (known_rules().count(rule) == 0) {
      table.marker_violations.push_back(
          {path, line, "unknown-allow",
           "allow() names unknown rule '" + rule + "'"});
      continue;
    }
    std::string reason = trim(text.substr(close + 1));
    if (!reason.empty() && reason.front() == ':') reason = trim(reason.substr(1));
    if (reason.empty()) {
      table.marker_violations.push_back(
          {path, line, "allow-needs-reason",
           "allow(" + rule + ") needs a justification after the marker"});
      continue;
    }
    table.by_line[line].insert(rule);
  }
  return table;
}

bool allowed(const AllowTable& table, int line, const std::string& rule) {
  for (int probe : {line, line - 1}) {
    const auto it = table.by_line.find(probe);
    if (it != table.by_line.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule passes over the token stream.

const std::set<std::string>& clock_types() {
  static const std::set<std::string> s = {
      "system_clock", "steady_clock", "high_resolution_clock", "file_clock",
      "utc_clock", "tai_clock", "gps_clock"};
  return s;
}

const std::set<std::string>& time_calls() {
  static const std::set<std::string> s = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime",
      "gmtime", "mktime", "ftime", "timespec_get"};
  return s;
}

const std::set<std::string>& random_types() {
  static const std::set<std::string> s = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "knuth_b", "ranlux24", "ranlux48"};
  return s;
}

const std::set<std::string>& random_calls() {
  static const std::set<std::string> s = {"rand", "srand", "drand48",
                                          "lrand48", "mrand48", "random",
                                          "random_shuffle"};
  return s;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> s = {"unordered_map", "unordered_set",
                                          "unordered_multimap",
                                          "unordered_multiset"};
  return s;
}

/// Variable names declared with an unordered container type in this TU.
std::set<std::string> unordered_vars(const std::vector<Token>& toks) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || unordered_types().count(toks[i].text) == 0) continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">") {
        if (--depth == 0) break;
      }
    }
    // After the template argument list: skip refs/pointers, take the
    // declarator name (but not `>::iterator` chains or function calls).
    for (++j; j < toks.size() && (toks[j].text == "&" || toks[j].text == "*");
         ++j) {
    }
    if (j < toks.size() && toks[j].ident &&
        (j + 1 >= toks.size() ||
         (toks[j + 1].text != "(" && toks[j + 1].text != "::"))) {
      vars.insert(toks[j].text);
    }
  }
  return vars;
}

struct Emitter {
  const std::string& path;
  const AllowTable& allows;
  std::vector<Violation>& out;

  void operator()(int line, const std::string& rule,
                  const std::string& message) const {
    if (allowed(allows, line, rule)) return;
    out.push_back({path, line, rule, message});
  }
};

/// True when tokens[i] followed by '(' is a *call* of a free function rather
/// than a member call (`x.time(`), a qualified member, or a declaration
/// (`double time() const`). A preceding identifier means a declaration —
/// except `return`/`co_return`/`co_yield`, which introduce expressions.
bool free_call_context(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.ident) {
    return prev.text == "return" || prev.text == "co_return" ||
           prev.text == "co_yield";
  }
  return true;
}

void determinism_pass(const std::vector<Token>& toks, const Emitter& emit) {
  const std::set<std::string> vars = unordered_vars(toks);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident) continue;
    const std::string next = i + 1 < toks.size() ? toks[i + 1].text : "";

    if (clock_types().count(t.text) != 0) {
      emit(t.line, "wall-clock",
           "wall clock '" + t.text +
               "' in deterministic code — simulated time must come from the "
               "event queue / TimePoint plumbing");
    } else if (free_call_context(toks, i) && time_calls().count(t.text) != 0) {
      emit(t.line, "wall-time",
           "C time call '" + t.text +
               "()' in deterministic code — wall time breaks seed replay");
    } else if (random_types().count(t.text) != 0) {
      emit(t.line, "raw-random",
           "'" + t.text +
               "' in deterministic code — all randomness must flow from a "
               "seeded common::Rng");
    } else if (free_call_context(toks, i) &&
               random_calls().count(t.text) != 0) {
      emit(t.line, "raw-random",
           "'" + t.text +
               "()' in deterministic code — all randomness must flow from a "
               "seeded common::Rng");
    } else if (t.text == "for" && next == "(") {
      // Range-for over an unordered container (by declared variable name or a
      // freshly constructed temporary).
      int depth = 0;
      bool in_range = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
        if (toks[j].text == ":" && depth == 1) {
          in_range = true;
          continue;
        }
        if (in_range && toks[j].ident &&
            (vars.count(toks[j].text) != 0 ||
             unordered_types().count(toks[j].text) != 0)) {
          emit(toks[i].line, "unordered-iter",
               "range-for over unordered container '" + toks[j].text +
                   "' — iteration order is unspecified; use std::map/std::set "
                   "in message-ordering paths");
          break;
        }
      }
    } else if (vars.count(t.text) != 0 && next == "." && i + 2 < toks.size()) {
      const std::string& method = toks[i + 2].text;
      if (method == "begin" || method == "cbegin" || method == "rbegin") {
        emit(t.line, "unordered-iter",
             "iterator walk over unordered container '" + t.text +
                 "' — iteration order is unspecified; use std::map/std::set "
                 "in message-ordering paths");
      }
    }
  }
}

void hygiene_pass(const std::vector<Token>& toks, const Emitter& emit) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident) continue;
    if (t.text == "assert" && free_call_context(toks, i)) {
      emit(t.line, "bare-assert",
           "bare assert() — use ZDC_ASSERT/ZDC_ASSERT_MSG (always on, prints "
           "node/time context)");
    } else if (t.text == "cout") {
      emit(t.line, "std-cout",
           "std::cout in library code — use ZDC_LOG (leveled, thread-safe)");
    }
  }
}

}  // namespace

std::vector<Violation> lint_source(const std::string& path,
                                   const std::string& content,
                                   const Options& opts) {
  std::vector<Violation> out;
  const AllowTable allows = parse_allows(path, content);
  out.insert(out.end(), allows.marker_violations.begin(),
             allows.marker_violations.end());
  const std::vector<Token> toks = tokenize(content);
  const Emitter emit{path, allows, out};
  hygiene_pass(toks, emit);
  if (opts.determinism) determinism_pass(toks, emit);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<Violation> run(const RunConfig& cfg) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  std::vector<std::pair<std::string, fs::path>> files;  // (relative, full)

  for (const std::string& dir : cfg.hygiene_dirs) {
    const fs::path base = fs::path(cfg.root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      const std::string rel =
          entry.path().lexically_relative(cfg.root).generic_string();
      files.emplace_back(rel, entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& [rel, full] : files) {
    Options opts;
    for (const std::string& det : cfg.det_dirs) {
      if (rel.rfind(det + "/", 0) == 0) {
        opts.determinism = true;
        break;
      }
    }
    std::ifstream in(full, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::vector<Violation> found = lint_source(rel, buf.str(), opts);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::string format(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " +
         v.message;
}

}  // namespace zdc::lint
