// zdc_explore — command-line front end to the simulator harnesses: run any
// protocol under any scenario without writing code.
//
//   zdc_explore consensus --protocol l --n 4 --f 1 --proposals a,b,b,b
//               --fd track --crash 0@0.5 --trace
//   zdc_explore abcast    --protocol c-p --throughput 300 --messages 500
//   zdc_explore sequence  --protocol paxos --instances 12 --crash-before 6
//   zdc_explore runtime   --protocol c-l --transport udp --messages 100
//               --metrics
//   zdc_explore validate-metrics snapshot.json
//
// Run with --help for the full flag reference.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/run_options.h"
#include "obs/runtime_trace.h"
#include "runtime/workload.h"
#include "sim/abcast_world.h"
#include "sim/consensus_world.h"
#include "sim/sequence_world.h"
#include "sim/trace.h"

namespace {

using namespace zdc;

struct Flags {
  std::map<std::string, std::string> values;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values.count(key) != 0;
  }
};

Flags parse_flags(int argc, char** argv, int first) {
  // Every flag any mode reads; a typo'd flag silently falling back to its
  // default would make a scenario lie about what it ran.
  static const std::set<std::string> kKnown = {
      "crash",       "crash-before", "crash-process", "detect-ms",
      "f",           "fd",           "instances",     "leader",
      "messages",    "metrics",      "metrics-out",   "n",
      "plan",        "plan-text",    "proposals",     "protocol",
      "seed",        "throughput",   "trace",         "transport",
      "unanimous"};
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    if (kKnown.count(key) == 0) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", key.c_str());
      std::exit(2);
    }
    if (eq != std::string::npos) {
      flags.values[key] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values[key] = argv[++i];
    } else {
      flags.values[key] = "1";
    }
  }
  return flags;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

sim::FdConfig parse_fd(const Flags& flags) {
  sim::FdConfig fd;
  const std::string mode = flags.get("fd", "stable");
  if (mode == "track") {
    fd.mode = sim::FdMode::kCrashTracking;
    fd.detection_delay_ms = flags.num("detect-ms", 3.0);
  } else {
    fd.mode = sim::FdMode::kStable;
    if (flags.has("leader")) {
      fd.stable_leader = static_cast<ProcessId>(flags.num("leader", 0));
    }
  }
  return fd;
}

std::vector<sim::CrashSpec> parse_crashes(const Flags& flags,
                                          std::uint32_t n) {
  std::vector<sim::CrashSpec> crashes;
  if (!flags.has("crash")) return crashes;
  // --crash 0@0.5,2@init : process@time or process@init
  for (const std::string& item : split(flags.get("crash", ""), ',')) {
    if (item.empty()) continue;
    const auto at = item.find('@');
    sim::CrashSpec c;
    c.p = static_cast<ProcessId>(std::atoi(item.substr(0, at).c_str()));
    if (c.p >= n) {
      std::fprintf(stderr, "crash process %u out of range\n", c.p);
      std::exit(2);
    }
    if (at == std::string::npos || item.substr(at + 1) == "init") {
      c.initial = true;
    } else {
      c.time = std::atof(item.substr(at + 1).c_str());
    }
    crashes.push_back(std::move(c));
  }
  return crashes;
}

/// Loads a nemesis plan from --plan FILE or --plan-text "a;b;c" (';' doubles
/// as a line separator so a whole plan fits in one shell argument). Exits
/// with a diagnostic on parse errors.
fault::FaultPlan load_plan(const Flags& flags) {
  fault::FaultPlan plan;
  std::string text;
  if (flags.has("plan")) {
    const std::string path = flags.get("plan", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open plan file '%s'\n", path.c_str());
      std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else if (flags.has("plan-text")) {
    text = flags.get("plan-text", "");
    for (char& c : text) {
      if (c == ';') c = '\n';
    }
  } else {
    return plan;
  }
  std::string error;
  if (!fault::parse_fault_plan(text, &plan, &error)) {
    std::fprintf(stderr, "bad fault plan: %s\n", error.c_str());
    std::exit(2);
  }
  return plan;
}

/// True when any metrics output was requested.
bool wants_metrics(const Flags& flags) {
  return flags.has("metrics") || flags.has("metrics-out");
}

/// Emits the registry per the --metrics/--metrics-out flags: stdout gets the
/// JSON export followed by the Prometheus text exposition; --metrics-out FILE
/// writes just the JSON document (the machine-readable artifact).
int emit_metrics(const obs::MetricsRegistry& registry, const Flags& flags) {
  const obs::MetricsRegistry::Snapshot snapshot = registry.snapshot();
  const std::string json = obs::to_json(snapshot);
  const std::string error = obs::validate_metrics_json(json);
  if (!error.empty()) {
    std::fprintf(stderr, "internal error: emitted metrics JSON invalid: %s\n",
                 error.c_str());
    return 1;
  }
  if (flags.has("metrics-out")) {
    const std::string path = flags.get("metrics-out", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics file '%s'\n", path.c_str());
      return 2;
    }
    out << json;
  }
  if (flags.has("metrics")) {
    std::printf("%s\n", json.c_str());
    std::printf("%s", obs::to_prometheus(snapshot).c_str());
  }
  return 0;
}

int run_consensus_mode(const Flags& flags) {
  sim::ConsensusRunConfig cfg;
  cfg.group.n = static_cast<std::uint32_t>(flags.num("n", 4));
  cfg.group.f = static_cast<std::uint32_t>(flags.num("f", 1));
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  cfg.net = sim::calibrated_lan_2006();
  cfg.fd = parse_fd(flags);
  cfg.crashes = parse_crashes(flags, cfg.group.n);
  cfg.fault_plan = load_plan(flags);

  if (flags.has("proposals")) {
    cfg.proposals = split(flags.get("proposals", ""), ',');
    if (cfg.proposals.size() != cfg.group.n) {
      std::fprintf(stderr, "need exactly n=%u proposals\n", cfg.group.n);
      return 2;
    }
  } else {
    for (ProcessId p = 0; p < cfg.group.n; ++p) {
      cfg.proposals.push_back("v" + std::to_string(p));
    }
  }

  sim::TraceRecorder trace;
  if (flags.has("trace")) cfg.trace = &trace;
  obs::MetricsRegistry registry;
  if (wants_metrics(flags)) cfg.metrics = &registry;

  const std::string protocol = flags.get("protocol", "l");
  auto r = sim::run_consensus(cfg, sim::consensus_factory_by_name(protocol));

  std::printf("protocol=%s n=%u f=%u seed=%llu\n", protocol.c_str(),
              cfg.group.n, cfg.group.f,
              static_cast<unsigned long long>(cfg.seed));
  if (!cfg.fault_plan.empty()) {
    std::printf("nemesis plan (%zu actions):\n", cfg.fault_plan.actions.size());
    for (const auto& a : cfg.fault_plan.actions) {
      std::printf("  %s\n", fault::to_string(a).c_str());
    }
  }
  for (ProcessId p = 0; p < r.outcomes.size(); ++p) {
    const auto& o = r.outcomes[p];
    if (o.decided) {
      std::printf("  p%u: decided \"%s\" in %u step%s at %.3f ms (%s)\n", p,
                  o.decision.c_str(), o.steps, o.steps == 1 ? "" : "s",
                  o.decide_time,
                  o.path == consensus::DecisionPath::kRound ? "round"
                                                            : "forwarded");
    } else {
      std::printf("  p%u: %s\n", p, o.correct ? "undecided" : "crashed");
    }
  }
  std::printf("agreement=%s validity=%s termination=%s\n",
              r.agreement_ok ? "ok" : "VIOLATED",
              r.validity_ok ? "ok" : "VIOLATED",
              r.all_correct_decided ? "ok" : "incomplete");
  if (flags.has("trace")) {
    std::printf("\n%s", trace.render_spacetime(cfg.group.n).c_str());
    std::printf("trace: %zu events, causally consistent: %s\n",
                trace.events().size(),
                trace.causally_consistent() ? "yes" : "NO");
  }
  if (wants_metrics(flags)) {
    const int rc = emit_metrics(registry, flags);
    if (rc != 0) return rc;
  }
  return r.safe() ? 0 : 1;
}

int run_abcast_mode(const Flags& flags) {
  sim::AbcastRunConfig cfg;
  cfg.group.n = static_cast<std::uint32_t>(flags.num("n", 4));
  cfg.group.f = static_cast<std::uint32_t>(flags.num("f", 1));
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  cfg.net = sim::calibrated_lan_2006();
  cfg.fd = parse_fd(flags);
  cfg.crashes = parse_crashes(flags, cfg.group.n);
  cfg.fault_plan = load_plan(flags);
  cfg.throughput_per_s = flags.num("throughput", 100);
  cfg.message_count = static_cast<std::uint32_t>(flags.num("messages", 400));

  obs::MetricsRegistry registry;
  if (wants_metrics(flags)) cfg.metrics = &registry;

  const std::string protocol = flags.get("protocol", "c-l");
  if (protocol == "paxos" && !flags.has("n")) cfg.group = GroupParams{3, 1};

  auto r = sim::run_abcast(cfg, sim::abcast_factory_by_name(protocol));
  std::printf("protocol=%s n=%u throughput=%.0f/s messages=%u seed=%llu\n",
              protocol.c_str(), cfg.group.n, cfg.throughput_per_s,
              cfg.message_count, static_cast<unsigned long long>(cfg.seed));
  std::printf("latency  mean=%.3f ms  p50=%.3f  p95=%.3f  p99=%.3f  max=%.3f\n",
              r.latency_ms.mean(), r.latency_ms.percentile(50),
              r.latency_ms.percentile(95), r.latency_ms.percentile(99),
              r.latency_ms.max());
  std::printf("delivered=%llu undelivered=%llu msgs/abcast=%.1f duration=%.1f ms\n",
              static_cast<unsigned long long>(r.delivered_unique),
              static_cast<unsigned long long>(r.undelivered),
              r.messages_per_abcast(), r.duration_ms);
  std::printf("total-order=%s integrity=%s agreement=%s\n",
              r.total_order_ok ? "ok" : "VIOLATED",
              r.integrity_ok ? "ok" : "VIOLATED",
              r.agreement_ok ? "ok" : "incomplete");
  if (wants_metrics(flags)) {
    const int rc = emit_metrics(registry, flags);
    if (rc != 0) return rc;
  }
  return r.safe() ? 0 : 1;
}

int run_sequence_mode(const Flags& flags) {
  sim::SequenceConfig cfg;
  cfg.group.n = static_cast<std::uint32_t>(flags.num("n", 4));
  cfg.group.f = static_cast<std::uint32_t>(flags.num("f", 1));
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  cfg.net = sim::calibrated_lan_2006();
  cfg.fd.mode = sim::FdMode::kCrashTracking;
  cfg.fd.detection_delay_ms = flags.num("detect-ms", 3.0);
  cfg.instances = static_cast<std::uint32_t>(flags.num("instances", 12));
  cfg.divergent_proposals = !flags.has("unanimous");
  if (flags.has("crash-before")) {
    cfg.crash_process = static_cast<ProcessId>(flags.num("crash-process", 0));
    cfg.crash_before_instance =
        static_cast<std::uint32_t>(flags.num("crash-before", 0));
  }

  obs::MetricsRegistry registry;
  if (wants_metrics(flags)) cfg.metrics = &registry;

  const std::string protocol = flags.get("protocol", "l");
  auto r =
      sim::run_consensus_sequence(cfg, sim::consensus_factory_by_name(protocol));
  std::printf("protocol=%s instances=%u%s\n", protocol.c_str(), cfg.instances,
              flags.has("crash-before") ? " (with crash)" : "");
  for (std::size_t i = 0; i < r.instances.size(); ++i) {
    const auto& inst = r.instances[i];
    std::printf("  #%zu%s steps=%.1f first-decision=%.2f ms%s\n", i,
                flags.has("crash-before") &&
                        i == static_cast<std::size_t>(
                                 flags.num("crash-before", 0))
                    ? "*"
                    : " ",
                inst.mean_steps, inst.first_decision,
                inst.safe ? "" : "  UNSAFE");
  }
  std::printf("complete=%s safe=%s\n", r.all_complete ? "yes" : "NO",
              r.all_safe ? "yes" : "NO");
  if (wants_metrics(flags)) {
    const int rc = emit_metrics(registry, flags);
    if (rc != 0) return rc;
  }
  return r.all_safe ? 0 : 1;
}

int run_runtime_mode(const Flags& flags) {
  const std::string protocol = flags.get("protocol", "c-l");
  runtime::ProtocolKind kind;
  if (protocol == "c-l") {
    kind = runtime::ProtocolKind::kCAbcastL;
  } else if (protocol == "c-p") {
    kind = runtime::ProtocolKind::kCAbcastP;
  } else if (protocol == "wabcast") {
    kind = runtime::ProtocolKind::kWabcast;
  } else if (protocol == "paxos") {
    kind = runtime::ProtocolKind::kPaxos;
  } else {
    std::fprintf(stderr, "unknown runtime protocol '%s' (c-l c-p wabcast paxos)\n",
                 protocol.c_str());
    return 2;
  }

  zdc::RunOptions opts;
  opts.with_group(static_cast<std::uint32_t>(flags.num("n", 4)),
                  static_cast<std::uint32_t>(flags.num("f", 1)))
      .with_seed(static_cast<std::uint64_t>(flags.num("seed", 1)));
  obs::MetricsRegistry registry;
  opts.with_metrics(&registry);  // runtime metrics are always collected

  runtime::RuntimeWorkloadConfig cfg;
  cfg.cluster = runtime::RuntimeCluster::Config::from_options(opts);
  cfg.cluster.kind = kind;
  obs::RuntimeTraceRecorder recorder;
  if (flags.has("trace")) cfg.cluster.trace = &recorder;
  const std::string transport = flags.get("transport", "inproc");
  if (transport == "udp") {
    cfg.cluster.transport = runtime::RuntimeCluster::TransportKind::kUdp;
  } else if (transport != "inproc") {
    std::fprintf(stderr, "unknown transport '%s' (inproc | udp)\n",
                 transport.c_str());
    return 2;
  }
  cfg.throughput_per_s = flags.num("throughput", 500);
  cfg.message_count = static_cast<std::uint32_t>(flags.num("messages", 100));
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));

  const auto r = runtime::run_runtime_workload(cfg);
  std::printf("protocol=%s transport=%s n=%u messages=%u\n", protocol.c_str(),
              transport.c_str(), cfg.cluster.group.n, cfg.message_count);
  std::printf("latency  mean=%.3f ms  p95=%.3f  max=%.3f  (replica mean=%.3f)\n",
              r.latency_ms.mean(), r.latency_ms.percentile(95),
              r.latency_ms.max(), r.replica_latency_ms.mean());
  std::printf("delivered=%llu duration=%.1f ms total-order=%s complete=%s\n",
              static_cast<unsigned long long>(r.delivered_total),
              r.duration_ms, r.total_order_ok ? "ok" : "VIOLATED",
              r.complete ? "yes" : "NO");
  if (flags.has("trace")) {
    const sim::TraceRecorder trace = recorder.freeze();
    std::printf("\n%s", trace.render_spacetime(cfg.cluster.group.n).c_str());
    std::printf("trace: %zu events, causally consistent: %s\n",
                trace.events().size(),
                trace.causally_consistent() ? "yes" : "NO");
  }
  if (wants_metrics(flags)) {
    const int rc = emit_metrics(registry, flags);
    if (rc != 0) return rc;
  }
  return r.total_order_ok && r.complete ? 0 : 1;
}

int run_validate_metrics_mode(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: zdc_explore validate-metrics FILE\n");
    return 2;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string error = obs::validate_metrics_json(buf.str());
  if (!error.empty()) {
    std::fprintf(stderr, "%s: INVALID: %s\n", argv[2], error.c_str());
    return 1;
  }
  std::printf("%s: ok (schema zdc-metrics-v1)\n", argv[2]);
  return 0;
}

void usage() {
  std::printf(
      "zdc_explore — run zdc protocols from the command line\n\n"
      "modes:\n"
      "  consensus         one consensus instance\n"
      "  abcast            atomic-broadcast workload (Figure 2/3-style run)\n"
      "  sequence          repeated consensus (recovery-run experiment)\n"
      "  runtime           threaded-runtime workload (real threads/sockets)\n"
      "  validate-metrics  check a metrics JSON file against zdc-metrics-v1\n\n"
      "common flags:\n"
      "  --protocol P   consensus: l p paxos ct fast-paxos rec-paxos\n"
      "                 brasileiro-l brasileiro-paxos wab\n"
      "                 abcast:    c-l c-p wabcast paxos\n"
      "  --n N --f F    group size / tolerated crashes\n"
      "  --seed S       RNG seed (runs are deterministic per seed)\n"
      "  --fd MODE      stable (default) | track (crash-tracking)\n"
      "  --detect-ms X  detection delay for --fd track\n"
      "  --crash SPEC   e.g. 0@0.5 (p0 at 0.5 ms), 2@init, comma-separated\n"
      "  --plan FILE    nemesis plan file (see docs/FAULTS.md for the syntax)\n"
      "  --plan-text T  inline plan, ';' separates actions:\n"
      "                 \"@0.2 partition 0 1 | 2 3;@6 heal\"\n\n"
      "  --metrics      print the run's metrics (JSON + Prometheus text)\n"
      "  --metrics-out F  write the metrics JSON document to file F\n\n"
      "consensus flags: --proposals a,b,c,d   --trace (space-time diagram)\n"
      "abcast flags:    --throughput R  --messages M\n"
      "sequence flags:  --instances K  --crash-before I  --crash-process P\n"
      "                 --unanimous\n"
      "runtime flags:   --transport inproc|udp  --protocol c-l|c-p|wabcast|paxos\n"
      "                 --throughput R  --messages M  --trace\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    usage();
    return argc < 2 ? 2 : 0;
  }
  const std::string mode = argv[1];
  if (mode == "validate-metrics") return run_validate_metrics_mode(argc, argv);
  const Flags flags = parse_flags(argc, argv, 2);
  if (mode == "consensus") return run_consensus_mode(flags);
  if (mode == "abcast") return run_abcast_mode(flags);
  if (mode == "sequence") return run_sequence_mode(flags);
  if (mode == "runtime") return run_runtime_mode(flags);
  usage();
  return 2;
}
