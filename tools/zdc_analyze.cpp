// zdc_analyze CLI: whole-program lock-graph / error-discard / determinism
// analysis (see analyze_core.h for the check families and docs/ANALYSIS.md
// for triage). Exit 0 when clean, 1 when findings, 2 on usage errors.
//
//   zdc_analyze --root <repo-root>            analyze src/ and tools/
//   zdc_analyze --root <r> src/storage        analyze only the named dirs
//   zdc_analyze --root <r> --dump-lock-graph  also print the inferred
//                                             lock-order edges (from -> to
//                                             [via call] @ witness site)
#include <cstdio>
#include <string>
#include <vector>

#include "analyze_core.h"

int main(int argc, char** argv) {
  zdc::analyze::RunConfig cfg;
  std::vector<std::string> dirs;
  bool dump_graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "zdc_analyze: --root needs a path\n");
        return 2;
      }
      cfg.root = argv[++i];
    } else if (arg == "--dump-lock-graph") {
      dump_graph = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: zdc_analyze [--root <repo-root>] "
                   "[--dump-lock-graph] [dir...]\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "zdc_analyze: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (!dirs.empty()) cfg.analyze_dirs = dirs;

  zdc::analyze::LockGraph graph;
  const std::vector<zdc::analyze::Finding> findings =
      zdc::analyze::run(cfg, &graph);
  if (dump_graph) {
    std::fprintf(stdout, "lock-order graph: %zu mutex(es), %zu edge(s)\n",
                 graph.mutexes.size(), graph.edges.size());
    for (const auto& e : graph.edges) {
      if (e.via.empty()) {
        std::fprintf(stdout, "  %s -> %s @ %s:%d\n", e.from.c_str(),
                     e.to.c_str(), e.file.c_str(), e.line);
      } else {
        std::fprintf(stdout, "  %s -> %s [via %s] @ %s:%d\n", e.from.c_str(),
                     e.to.c_str(), e.via.c_str(), e.file.c_str(), e.line);
      }
    }
  }
  for (const auto& f : findings) {
    std::fprintf(stdout, "%s\n", zdc::analyze::format(f).c_str());
  }
  if (findings.empty()) {
    std::fprintf(stdout, "zdc_analyze: clean\n");
    return 0;
  }
  std::fprintf(stdout, "zdc_analyze: %zu finding(s)\n", findings.size());
  return 1;
}
