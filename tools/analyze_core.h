// zdc_analyze core: whole-program semantic static analysis, one step up from
// the zdc_lint token scanner (lint_core.h). Where zdc_lint looks at one token
// stream at a time, zdc_analyze lexes every translation unit, recovers a
// lightweight structural model (classes, members, methods, local/parameter
// types, using/typedef aliases) and runs three cross-file check families:
//
// Lock-graph family (rules: recursive-lock, lock-order-cycle,
// blocking-under-lock, cv-wait-multi-lock):
//   Every `common::MutexLock guard(expr)` acquisition site is harvested and
//   the guarded mutex is resolved to a declaration-level identity
//   ("Class::member" or "::global") through the structural model, the
//   ZDC_GUARDED_BY/ZDC_REQUIRES/ZDC_ACQUIRE annotations, and local/member
//   types. Acquisition order is propagated through the call graph (virtual
//   calls fan out over the recorded class hierarchy) into a lock-order graph;
//   cycles are potential deadlocks. Calls that can block (fsync, sendto,
//   sleeps, poll — directly or through callees) made while a mutex is held
//   are reported, as is a condition-variable wait entered with more than one
//   lock held (the wait releases only its own lock).
//
// Discarded-error family (rule: discarded-status):
//   Call sites that drop a must-use result (storage::Status,
//   WalRecoveryInfo) in statement position. Unlike [[nodiscard]], the check
//   sees through wrappers: `latch(wal->sync());` as a whole statement drops
//   latch()'s Status even though sync()'s was consumed. Receiver types are
//   resolved where possible so `store->sync()` (void override) is not
//   confused with `wal->sync()` (Status).
//
// Determinism-flow family (rules: wall-clock-alias, raw-random-alias,
// unordered-alias-iter, unordered-encode-flow):
//   using/typedef chains are resolved so a wall clock or raw RNG cannot hide
//   behind an alias in deterministic code (zdc_lint only sees the literal
//   banned token). Iteration over an unordered container — directly or via
//   an alias — whose loop body feeds an Encoder or a trace fingerprint is
//   flagged everywhere: unspecified iteration order must never reach wire
//   bytes or fingerprints.
//
// Suppression grammar (extends zdc_lint's allow markers; docs/ANALYSIS.md):
//   // zdc-analyze: allow(<rule>): <justification>        this/next line
//   // zdc-analyze: allow-file(<rule>): <justification>   whole file
// The justification is mandatory (allow-needs-reason) and the rule must
// exist (unknown-allow); violations of the grammar are findings themselves.
//
// Like zdc_lint there is no clang dependency: the analyzer builds with the
// project and runs as an ordinary ctest (zdc_analyze_src). clang-tidy and
// the -Werror=thread-safety build remain the self-skipping complements.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace zdc::analyze {

// ---------------------------------------------------------------------------
// Lexer. Exposed so the unit tests can pin its behavior on comments, string
// and raw-string literals, numbers, preprocessor lines and multi-char
// punctuation.

enum class Tok {
  kIdent,
  kPunct,
  kNumber,
  kString,  ///< string literal (ordinary or raw), contents dropped
  kChar,    ///< character literal, contents dropped
};

struct Token {
  std::string text;  ///< empty for kString/kChar
  int line = 0;
  Tok kind = Tok::kPunct;
};

/// Lexes one translation unit: comments, preprocessor directives (with line
/// continuations) and literal contents are consumed; "::" and "->" are single
/// tokens so qualification stays one token wide.
std::vector<Token> lex(const std::string& src);

// ---------------------------------------------------------------------------
// Analysis input / output.

struct SourceFile {
  std::string path;     ///< as reported in findings
  std::string content;  ///< raw bytes of the file
  /// Apply the determinism-flow rules (alias-resolved wall-clock/raw-random
  /// bans). The unordered-encode-flow rule runs everywhere.
  bool deterministic = false;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One directed edge of the inferred lock-order graph: `from` was held when
/// `to` was acquired (directly, or through the call named in `via`).
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string via;  ///< empty for a direct acquisition
};

struct LockGraph {
  std::vector<LockEdge> edges;            ///< deduplicated, stable order
  std::vector<std::string> mutexes;       ///< every resolved mutex identity
};

/// Whole-program analysis over a set of sources (tests drive this directly;
/// run() feeds it a directory walk). Findings come back sorted by
/// (file, line, rule) with suppressed ones already removed. `graph`, when
/// non-null, receives the lock-order graph for --dump-lock-graph.
std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             LockGraph* graph = nullptr);

struct RunConfig {
  /// Repository root; the directory lists below are relative to it.
  std::string root = ".";
  /// Directories whose .h/.hpp/.cc/.cpp files are analyzed. tools/ is
  /// included: the analyzer must keep its own error handling honest.
  std::vector<std::string> analyze_dirs = {"src", "tools"};
  /// Directories that additionally get the determinism-flow rules — the same
  /// replay-bit-for-bit set zdc_lint uses (lint_core.h documents each entry).
  std::vector<std::string> det_dirs = {"src/sim",     "src/consensus",
                                       "src/abcast",  "src/wab",
                                       "src/core",    "src/fd",
                                       "src/obs",     "src/check",
                                       "src/storage", "src/recovery",
                                       "src/service", "src/fault"};
};

/// Walks the configured directories (sorted, stable output) and analyzes
/// every C++ source file as one program.
std::vector<Finding> run(const RunConfig& cfg, LockGraph* graph = nullptr);

/// "file:line: [rule] message" — one line per finding, zdc_lint-compatible.
std::string format(const Finding& f);

}  // namespace zdc::analyze
