#include "analyze_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

// Implementation map (analyze_core.h documents the contract):
//   lex()            — tokens with kinds; comments/preprocessor/literals eaten.
//   AllowTable       — zdc-analyze allow()/allow-file() suppression markers.
//   StructureParser  — phase 1: classes (members, mutex members, bases,
//                      methods with return types / annotations / body ranges),
//                      using/typedef aliases, global mutexes. Tolerant: on
//                      anything it cannot shape it skips to the next ';'/'}'.
//   analyze_body()   — phase 2: per-function walk. Tracks locals/params, a
//                      lexical block stack of held mutexes, MutexLock
//                      acquisitions, call sites (receiver/qualifier resolved
//                      against the model), statement-position calls, direct
//                      blocking calls, cv waits, range-for loops.
//   resolve/report   — phase 3: call resolution (typed receiver + virtual
//                      fan-out; free calls by own class, else unique name),
//                      transitive acquires/blocking fixpoints, lock-order
//                      edges + SCC cycles, discarded-status decisions,
//                      alias-resolved determinism rules, suppression filter.

namespace zdc::analyze {

namespace {

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "recursive-lock",     "lock-order-cycle",   "blocking-under-lock",
      "cv-wait-multi-lock", "discarded-status",   "wall-clock-alias",
      "raw-random-alias",   "unordered-alias-iter", "unordered-encode-flow",
  };
  return rules;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// ---------------------------------------------------------------------------
// Allow markers. Same shape as zdc_lint's, plus allow-file(<rule>).

struct AllowTable {
  std::map<int, std::set<std::string>> by_line;
  std::set<std::string> file_rules;
  std::vector<Finding> marker_findings;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

AllowTable parse_allows(const std::string& path, const std::string& src) {
  AllowTable table;
  std::istringstream stream(src);
  std::string text;
  int line = 0;
  while (std::getline(stream, text)) {
    ++line;
    const std::size_t mark = text.find("zdc-analyze:");
    if (mark == std::string::npos) continue;
    // Only comment text carries markers — the grammar quoted inside a string
    // literal (e.g. this parser's own error messages) is not a marker.
    const std::size_t comment = text.find("//");
    if (comment == std::string::npos || comment > mark) continue;
    bool file_scope = false;
    std::size_t open = text.find("allow-file(", mark);
    if (open != std::string::npos) {
      file_scope = true;
      open += 11;
    } else {
      open = text.find("allow(", mark);
      if (open == std::string::npos) {
        table.marker_findings.push_back(
            {path, line, "unknown-allow",
             "malformed zdc-analyze marker (expected `zdc-analyze: "
             "allow(<rule>): <why>` or allow-file)"});
        continue;
      }
      open += 6;
    }
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) {
      table.marker_findings.push_back(
          {path, line, "unknown-allow", "unterminated allow(<rule>) marker"});
      continue;
    }
    const std::string rule = trim(text.substr(open, close - open));
    // `<rule>`-style placeholders mean documentation of the grammar itself
    // (analyze_core.h, docs/ANALYSIS.md) — not a marker, not a violation.
    if (!rule.empty() && rule.front() == '<') continue;
    if (known_rules().count(rule) == 0) {
      table.marker_findings.push_back(
          {path, line, "unknown-allow",
           "allow() names unknown rule '" + rule + "'"});
      continue;
    }
    std::string reason = trim(text.substr(close + 1));
    if (!reason.empty() && reason.front() == ':') {
      reason = trim(reason.substr(1));
    }
    if (reason.empty()) {
      table.marker_findings.push_back(
          {path, line, "allow-needs-reason",
           "allow(" + rule + ") needs a justification after the marker"});
      continue;
    }
    if (file_scope) {
      table.file_rules.insert(rule);
    } else {
      table.by_line[line].insert(rule);
    }
  }
  return table;
}

bool allowed(const AllowTable& t, int line, const std::string& rule) {
  if (t.file_rules.count(rule) != 0) return true;
  for (int probe : {line, line - 1}) {
    const auto it = t.by_line.find(probe);
    if (it != t.by_line.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Structural model.

struct Alias {
  std::string tail;  ///< resolved-to type name (one step)
  int line = 0;      ///< declaration site (not a "use" of itself)
};

struct Method {
  std::string cls;   ///< "" for free functions
  std::string name;
  std::string ret;   ///< tail identifier of the return type, "" for ctor/dtor
  int file = -1;
  int line = 0;
  int body_begin = -1;  ///< token index of '{', -1 when declaration only
  int body_end = -1;    ///< token index of matching '}'
  bool is_virtual = false;
  std::vector<std::string> acquire_exprs;  ///< ZDC_ACQUIRE(...) arguments
  std::vector<std::pair<std::string, std::string>> params;  // name -> type
};

struct Class {
  std::vector<std::string> bases;
  std::map<std::string, std::string> members;  ///< member name -> type tail
  std::set<std::string> mutex_members;
};

struct Model {
  const std::vector<SourceFile>* files = nullptr;
  std::vector<std::vector<Token>> toks;
  std::vector<AllowTable> allows;
  std::vector<std::map<std::string, Alias>> file_aliases;
  std::map<std::string, Alias> global_aliases;  ///< header-declared
  std::map<std::string, Class> classes;
  std::vector<Method> methods;
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::map<std::string, std::vector<int>>> by_cls;
  std::map<std::string, std::set<std::string>> derived;  ///< base -> derived*
  std::set<std::string> global_mutexes;
  std::map<std::string, std::string> globals;  ///< global var -> type tail

  /// Chase using/typedef chains (file-local first) to a ground type name.
  std::string resolve_type(int file, const std::string& name,
                           int* steps = nullptr) const {
    std::string cur = name;
    for (int hops = 0; hops < 8; ++hops) {
      const auto& local = file_aliases[file];
      auto it = local.find(cur);
      if (it == local.end()) it = local.end();
      const Alias* a = nullptr;
      if (it != local.end()) {
        a = &it->second;
      } else {
        const auto git = global_aliases.find(cur);
        if (git != global_aliases.end()) a = &git->second;
      }
      if (a == nullptr || a->tail == cur) break;
      cur = a->tail;
      if (steps != nullptr) ++*steps;
    }
    return cur;
  }

  const Class* find_class(const std::string& name) const {
    const auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
  }

  /// Member type looked up through the class and its bases; "" if absent.
  std::string member_type(const std::string& cls,
                          const std::string& member) const {
    std::set<std::string> seen;
    std::vector<std::string> stack = {cls};
    while (!stack.empty()) {
      const std::string c = stack.back();
      stack.pop_back();
      if (!seen.insert(c).second) continue;
      const Class* info = find_class(c);
      if (info == nullptr) continue;
      const auto it = info->members.find(member);
      if (it != info->members.end()) return it->second;
      for (const std::string& b : info->bases) stack.push_back(b);
    }
    return "";
  }

  /// Class (cls or a base) that declares mutex member `m`; "" if none.
  std::string mutex_owner(const std::string& cls, const std::string& m) const {
    std::set<std::string> seen;
    std::vector<std::string> stack = {cls};
    while (!stack.empty()) {
      const std::string c = stack.back();
      stack.pop_back();
      if (!seen.insert(c).second) continue;
      const Class* info = find_class(c);
      if (info == nullptr) continue;
      if (info->mutex_members.count(m) != 0) return c;
      for (const std::string& b : info->bases) stack.push_back(b);
    }
    return "";
  }

  /// Methods named `name` on `cls`/bases, plus overrides in derived classes.
  std::vector<int> lookup(const std::string& cls, const std::string& name,
                          bool fan_out_derived) const {
    std::vector<int> out;
    std::set<std::string> seen;
    std::vector<std::string> stack = {cls};
    if (fan_out_derived) {
      const auto dit = derived.find(cls);
      if (dit != derived.end()) {
        for (const std::string& d : dit->second) stack.push_back(d);
      }
    }
    while (!stack.empty()) {
      const std::string c = stack.back();
      stack.pop_back();
      if (!seen.insert(c).second) continue;
      const auto cit = by_cls.find(c);
      if (cit != by_cls.end()) {
        const auto mit = cit->second.find(name);
        if (mit != cit->second.end()) {
          out.insert(out.end(), mit->second.begin(), mit->second.end());
        }
      }
      const Class* info = find_class(c);
      if (info != nullptr) {
        for (const std::string& b : info->bases) stack.push_back(b);
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Phase 1: structural parser. One pass per file; tolerant by construction.

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> s = {
      "if",       "else",      "while",   "for",      "switch",   "do",
      "return",   "co_return", "co_yield", "co_await", "case",    "default",
      "break",    "continue",  "goto",    "throw",    "try",      "catch",
      "new",      "delete",    "sizeof",  "static_cast", "dynamic_cast",
      "reinterpret_cast", "const_cast", "this", "nullptr", "true", "false",
  };
  return s;
}

const std::set<std::string>& decl_specifiers() {
  static const std::set<std::string> s = {
      "static", "inline", "constexpr", "consteval", "virtual", "explicit",
      "extern", "mutable", "const",    "volatile",  "thread_local", "friend",
      "typename", "register",
  };
  return s;
}

// Single-value wrappers whose template argument is the type that matters for
// receiver resolution (`wal_->sync()` on a unique_ptr<Wal> member is a call
// on Wal). Containers record the element as "T[]" so range-for loop
// variables resolve without the container itself answering member lookups.
const std::set<std::string>& pointee_wrappers() {
  static const std::set<std::string> s = {"unique_ptr", "shared_ptr",
                                          "weak_ptr", "optional"};
  return s;
}
const std::set<std::string>& elem_containers() {
  static const std::set<std::string> s = {"vector", "array",  "deque",
                                          "list",   "span",   "set",
                                          "multiset", "initializer_list"};
  return s;
}

bool is_macro_name(const std::string& s) {
  // Single capital letters are class/template-parameter names, not macros.
  if (s.size() < 2 || !std::isupper(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  for (char c : s) {
    if (!std::isupper(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

struct StructureParser {
  Model& model;
  int fi;
  const std::vector<Token>& t;
  bool is_header;
  std::size_t i = 0;

  const std::string& txt(std::size_t k) const {
    static const std::string empty;
    return k < t.size() ? t[k].text : empty;
  }
  bool is_ident(std::size_t k) const {
    return k < t.size() && t[k].kind == Tok::kIdent;
  }

  /// At '<': skips the balanced template argument list, returning the last
  /// identifier inside — the element/pointee tail for one-slot wrappers.
  std::string skip_template_args() {
    int depth = 0;
    std::string last;
    while (i < t.size()) {
      if (txt(i) == "<") ++depth;
      if (txt(i) == ">" && --depth == 0) {
        ++i;
        break;
      }
      if (is_ident(i)) last = txt(i);
      ++i;
    }
    return last;
  }

  /// Rewrites a declaration-chain tail for wrapper/container templates.
  std::string template_adjusted(const std::string& outer) {
    const std::string inner = skip_template_args();
    if (inner.empty()) return outer;
    if (pointee_wrappers().count(outer) != 0) return inner;
    if (elem_containers().count(outer) != 0) return inner + "[]";
    return outer;
  }

  /// Skips a balanced open..close group; cursor must be at `open`.
  void skip_balanced(const std::string& open, const std::string& close) {
    int depth = 0;
    while (i < t.size()) {
      if (txt(i) == open) ++depth;
      if (txt(i) == close && --depth == 0) {
        ++i;
        return;
      }
      ++i;
    }
  }

  /// Skips to the ';' ending the current declaration, balancing groups.
  void skip_to_semi() {
    while (i < t.size()) {
      const std::string& s = txt(i);
      if (s == ";") {
        ++i;
        return;
      }
      if (s == "{") {
        skip_balanced("{", "}");
        continue;
      }
      if (s == "(") {
        skip_balanced("(", ")");
        continue;
      }
      if (s == "}") return;  // malformed; let the caller's scope close
      ++i;
    }
  }

  /// Skips `[[ ... ]]` attributes at the cursor.
  bool skip_attribute() {
    if (txt(i) == "[" && txt(i + 1) == "[") {
      i += 2;
      while (i < t.size() && !(txt(i) == "]" && txt(i + 1) == "]")) ++i;
      i = std::min(t.size(), i + 2);
      return true;
    }
    return false;
  }

  /// Macro invocation `NAME(...)` — consumed; ZDC_ACQUIRE args captured.
  bool skip_macro(std::vector<std::string>* acquire_out) {
    if (!is_ident(i) || !is_macro_name(txt(i))) return false;
    const bool is_acquire =
        txt(i) == "ZDC_ACQUIRE" || txt(i) == "ZDC_ACQUIRE_SHARED";
    if (txt(i + 1) != "(") {
      // Bare macro (e.g. ZDC_SCOPED_CAPABILITY, override-style markers).
      ++i;
      return true;
    }
    ++i;
    if (is_acquire && acquire_out != nullptr) {
      // Collect the argument identifiers (usually one member name).
      std::size_t j = i + 1;
      int depth = 1;
      std::string expr;
      for (; j < t.size() && depth > 0; ++j) {
        if (txt(j) == "(") ++depth;
        if (txt(j) == ")" && --depth == 0) break;
        if (t[j].kind == Tok::kIdent) {
          if (!expr.empty()) expr += ".";
          expr += txt(j);
        }
      }
      if (!expr.empty()) acquire_out->push_back(expr);
    }
    skip_balanced("(", ")");
    return true;
  }

  void record_alias(const std::string& name, const std::string& tail,
                    int line) {
    if (name.empty() || tail.empty() || name == tail) return;
    Alias a{tail, line};
    model.file_aliases[fi][name] = a;
    if (is_header) model.global_aliases[name] = a;
  }

  /// `using X = ...;` (cursor after `using`) / `typedef ... X;`.
  void parse_using() {
    if (txt(i) == "namespace") {
      skip_to_semi();
      return;
    }
    if (!is_ident(i) || txt(i + 1) != "=") {
      skip_to_semi();  // using-declaration (`using std::swap;`) or similar
      return;
    }
    const std::string name = txt(i);
    const int line = t[i].line;
    i += 2;
    std::string tail;
    std::string last;
    while (i < t.size() && txt(i) != ";") {
      if (txt(i) == "<") {
        if (tail.empty()) tail = last;
        skip_balanced("<", ">");
        continue;
      }
      if (is_ident(i)) last = txt(i);
      ++i;
    }
    if (tail.empty()) tail = last;
    record_alias(name, tail, line);
    if (i < t.size()) ++i;  // ';'
  }

  void parse_typedef() {
    std::string tail;
    std::string last;
    std::string prev;
    const int line = i < t.size() ? t[i].line : 0;
    while (i < t.size() && txt(i) != ";") {
      if (txt(i) == "<") {
        if (tail.empty()) tail = prev;
        skip_balanced("<", ">");
        continue;
      }
      if (is_ident(i)) {
        prev = last;
        last = txt(i);
      }
      ++i;
    }
    if (tail.empty()) tail = prev;
    record_alias(last, tail, line);
    if (i < t.size()) ++i;
  }

  /// Cursor after `class`/`struct`. Parses the header + body; registers the
  /// class. Returns its name ("" when anonymous / forward-declared).
  std::string parse_class() {
    // Skip attribute/capability macros and alignas between keyword and name.
    while (i < t.size()) {
      if (skip_attribute()) continue;
      if (txt(i) == "alignas" && txt(i + 1) == "(") {
        ++i;
        skip_balanced("(", ")");
        continue;
      }
      if (skip_macro(nullptr)) continue;
      break;
    }
    if (!is_ident(i)) {  // anonymous struct
      if (txt(i) == "{") skip_balanced("{", "}");
      skip_to_semi();
      return "";
    }
    std::string name = txt(i);
    ++i;
    // Out-of-line nested definitions: `struct Outer::Inner { ... }` — the
    // unqualified tail is the class identity (names are global here).
    while (txt(i) == "::" && is_ident(i + 1)) {
      name = txt(i + 1);
      i += 2;
    }
    if (txt(i) == "final") ++i;
    if (txt(i) == ";") {  // forward declaration
      ++i;
      return "";
    }
    Class& cls = model.classes[name];
    if (txt(i) == ":") {
      ++i;
      std::string last;
      while (i < t.size() && txt(i) != "{" && txt(i) != ";") {
        const std::string& s = txt(i);
        if (s == "<") {
          skip_balanced("<", ">");
          continue;
        }
        if (s == ",") {
          if (!last.empty()) cls.bases.push_back(last);
          last.clear();
          ++i;
          continue;
        }
        if (is_ident(i) && s != "public" && s != "protected" &&
            s != "private" && s != "virtual") {
          last = s;
        }
        ++i;
      }
      if (!last.empty()) cls.bases.push_back(last);
    }
    if (txt(i) != "{") {
      skip_to_semi();
      return name;
    }
    ++i;  // '{'
    parse_members(name);
    // Past the closing '}' — skip any declarators up to ';'.
    skip_to_semi();
    return name;
  }

  /// Class body: members and methods until the matching '}'.
  void parse_members(const std::string& cls) {
    while (i < t.size()) {
      const std::string& s = txt(i);
      if (s == "}") {
        ++i;
        return;
      }
      if (s == "public" || s == "private" || s == "protected") {
        ++i;
        if (txt(i) == ":") ++i;
        continue;
      }
      if (s == "using") {
        ++i;
        parse_using();
        continue;
      }
      if (s == "typedef") {
        ++i;
        parse_typedef();
        continue;
      }
      if (s == "friend" || s == "static_assert") {
        skip_to_semi();
        continue;
      }
      if (s == "template") {
        ++i;
        if (txt(i) == "<") skip_balanced("<", ">");
        continue;
      }
      if (s == "class" || s == "struct") {
        ++i;
        parse_class();
        continue;
      }
      if (s == "enum") {
        while (i < t.size() && txt(i) != "{" && txt(i) != ";") ++i;
        if (txt(i) == "{") skip_balanced("{", "}");
        skip_to_semi();
        continue;
      }
      if (s == ";") {
        ++i;
        continue;
      }
      parse_decl(cls);
    }
  }

  /// One declaration at class or namespace scope: a data member / global
  /// variable, or a method / free function (declaration or definition).
  void parse_decl(const std::string& cls) {
    std::vector<std::string> chain;  // identifier/"::" sequence
    std::vector<std::string> acquires;
    bool is_virtual = false;
    const std::size_t decl_start = i;

    while (i < t.size()) {
      const std::string& s = txt(i);
      if (s == ";") {
        handle_var(cls, chain, t[decl_start].line);
        ++i;
        return;
      }
      if (s == "=") {
        handle_var(cls, chain, t[decl_start].line);
        skip_to_semi();
        return;
      }
      if (s == "{") {
        handle_var(cls, chain, t[decl_start].line);  // brace-init member
        skip_balanced("{", "}");
        skip_to_semi();
        return;
      }
      if (s == "}") return;  // malformed — bail to enclosing scope
      if (s == "(") {
        parse_function(cls, chain, is_virtual, acquires, t[decl_start].line);
        return;
      }
      if (skip_attribute()) continue;
      if (s == "operator") {
        // `operator==(...)`, conversion operators: name the method
        // "operator" and skip the symbol soup up to '('.
        chain.push_back("operator");
        ++i;
        while (i < t.size() && txt(i) != "(" && txt(i) != ";") {
          if (txt(i) == "<" && txt(i + 1) != "(") {
            // may be operator< itself; just advance
          }
          ++i;
        }
        continue;
      }
      if (s == "<") {
        if (!chain.empty()) {
          chain.back() = template_adjusted(chain.back());
        } else {
          skip_balanced("<", ">");
        }
        continue;
      }
      if (is_ident(i)) {
        if (s == "virtual") is_virtual = true;
        if (skip_macro(&acquires)) continue;
        if (decl_specifiers().count(s) == 0) chain.push_back(s);
        ++i;
        continue;
      }
      if (s == "::") {
        chain.push_back("::");
        ++i;
        continue;
      }
      // '*', '&', '~', ',', ':' (bitfields), etc.
      if (s == "~") chain.push_back("~");
      ++i;
    }
  }

  /// Variable declaration: last chain identifier is the name, the identifier
  /// before it the type tail. Registers members / globals / mutexes.
  void handle_var(const std::string& cls, const std::vector<std::string>& chain,
                  int /*line*/) {
    std::string name;
    std::string type;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (*it == "::" || *it == "~") continue;
      if (name.empty()) {
        name = *it;
      } else {
        type = *it;
        break;
      }
    }
    if (name.empty() || type.empty()) return;
    const std::string ground = model.resolve_type(fi, type);
    if (!cls.empty()) {
      Class& info = model.classes[cls];
      info.members[name] = type;
      if (ground == "Mutex") info.mutex_members.insert(name);
    } else {
      model.globals[name] = type;
      if (ground == "Mutex") model.global_mutexes.insert(name);
    }
  }

  /// Cursor at '(' of a parameter list. `chain` holds the declaration head.
  void parse_function(const std::string& cls, std::vector<std::string>& chain,
                      bool is_virtual, std::vector<std::string>& acquires,
                      int line) {
    Method m;
    m.file = fi;
    m.line = line;
    m.is_virtual = is_virtual;
    // Name and class from the head: `ret Cls :: name` or `ret name`.
    std::string name;
    std::string qual;
    std::string ret;
    std::size_t k = chain.size();
    bool dtor = false;
    while (k > 0) {
      --k;
      if (chain[k] == "~") {
        dtor = true;
        continue;
      }
      if (chain[k] == "::") continue;
      if (name.empty()) {
        name = chain[k];
        // A qualifier directly before the name via "::".
        if (k >= 2 && chain[k - 1] == "::") {
          qual = chain[k - 2];
          --k;  // consume "::" on the next loop turns
        }
        continue;
      }
      if (qual.empty() && ret.empty()) {
        ret = chain[k];
        break;
      }
      if (!qual.empty() && chain[k] == qual) continue;  // skip the qualifier
      if (ret.empty()) {
        ret = chain[k];
        break;
      }
    }
    if (name.empty()) {
      skip_to_semi();
      return;
    }
    m.name = dtor ? "~" + name : name;
    m.cls = !qual.empty() ? qual : cls;
    // Constructor: name equals the class, no return type.
    if (m.name == m.cls || (qual.empty() && !cls.empty() && name == cls)) {
      ret.clear();
    }
    m.ret = ret;
    // Parameters.
    parse_params(m);
    // Trailing: cv/ref qualifiers, noexcept, override/final, annotations,
    // trailing return, = default/delete/0, ctor init list, body.
    while (i < t.size()) {
      const std::string& s = txt(i);
      if (s == ";") {
        ++i;
        break;
      }
      if (s == "{") {
        m.body_begin = static_cast<int>(i);
        skip_balanced("{", "}");
        m.body_end = static_cast<int>(i) - 1;
        break;
      }
      if (s == "=") {  // = default / = delete / = 0
        skip_to_semi();
        break;
      }
      if (s == ":") {  // constructor initializer list
        ++i;
        while (i < t.size() && txt(i) != "{") {
          if (txt(i) == "(") {
            skip_balanced("(", ")");
            continue;
          }
          if (txt(i) == "<") {
            skip_balanced("<", ">");
            continue;
          }
          if (txt(i) == "}") break;
          ++i;
        }
        continue;
      }
      if (s == "->") {  // trailing return type
        ++i;
        while (i < t.size() && txt(i) != "{" && txt(i) != ";") {
          if (txt(i) == "<") {
            skip_balanced("<", ">");
            continue;
          }
          if (is_ident(i)) m.ret = txt(i);
          ++i;
        }
        continue;
      }
      if (s == "noexcept" && txt(i + 1) == "(") {
        ++i;
        skip_balanced("(", ")");
        continue;
      }
      if (skip_attribute()) continue;
      if (skip_macro(&acquires)) continue;
      if (s == "(") {  // e.g. old-style throw() — just balance
        skip_balanced("(", ")");
        continue;
      }
      ++i;  // const, &, &&, override, final, noexcept
    }
    m.acquire_exprs = acquires;
    const int idx = static_cast<int>(model.methods.size());
    model.methods.push_back(std::move(m));
    Method& rec = model.methods.back();
    model.by_name[rec.name].push_back(idx);
    model.by_cls[rec.cls][rec.name].push_back(idx);
    // Register function-local structs so `Shared shared; ... shared.mu`
    // resolves (src/runtime/workload.cpp pattern).
    if (rec.body_begin >= 0) {
      scan_local_structs(static_cast<std::size_t>(rec.body_begin),
                         static_cast<std::size_t>(rec.body_end));
    }
  }

  /// Cursor at '(' of the parameter list; fills m.params, leaves cursor
  /// after the closing ')'.
  void parse_params(Method& m) {
    ++i;  // '('
    int depth = 1;
    std::vector<std::string> idents;
    auto flush = [&]() {
      if (idents.size() >= 2) {
        const std::string name = idents.back();
        std::string type = idents[idents.size() - 2];
        if (type == "const" && idents.size() >= 3) {
          type = idents[idents.size() - 3];
        }
        m.params.emplace_back(name, type);
      }
      idents.clear();
    };
    while (i < t.size() && depth > 0) {
      const std::string& s = txt(i);
      if (s == "(") ++depth;
      if (s == ")") {
        if (--depth == 0) {
          flush();
          ++i;
          return;
        }
      }
      if (s == "<") {
        if (!idents.empty()) {
          idents.back() = template_adjusted(idents.back());
        } else {
          skip_balanced("<", ">");
        }
        continue;
      }
      if (s == "," && depth == 1) {
        flush();
        ++i;
        continue;
      }
      if (s == "=" && depth == 1) {  // default argument: drop to ',' / ')'
        while (i < t.size() && !(depth == 1 && (txt(i) == "," || txt(i) == ")"))) {
          if (txt(i) == "(") ++depth;
          if (txt(i) == ")") --depth;
          if (txt(i) == "<") {
            skip_balanced("<", ">");
            continue;
          }
          ++i;
        }
        continue;
      }
      if (skip_attribute()) continue;
      if (is_ident(i) && is_macro_name(s) && txt(i + 1) == "(") {
        skip_macro(nullptr);
        continue;
      }
      if (is_ident(i)) idents.push_back(s);
      ++i;
    }
  }

  void scan_local_structs(std::size_t begin, std::size_t end) {
    const std::size_t save = i;
    for (std::size_t j = begin; j < end && j < t.size(); ++j) {
      if ((t[j].text == "struct" || t[j].text == "class") &&
          t[j].kind == Tok::kIdent && j + 1 < t.size() &&
          t[j + 1].kind == Tok::kIdent) {
        i = j + 1;
        parse_class();
        j = i > j ? i - 1 : j;
      }
    }
    i = save;
  }

  void parse_top() {
    while (i < t.size()) {
      const std::string& s = txt(i);
      if (s == "namespace") {
        ++i;
        while (i < t.size() && txt(i) != "{" && txt(i) != ";" &&
               txt(i) != "=") {
          ++i;
        }
        if (txt(i) == "{") {
          ++i;  // parse the namespace body inline — scopes don't matter here
          continue;
        }
        skip_to_semi();
        continue;
      }
      if (s == "}") {
        ++i;  // namespace close
        continue;
      }
      if (s == "class" || s == "struct") {
        // `struct X* p;`/`struct X f();` degrade gracefully in parse_class.
        ++i;
        parse_class();
        continue;
      }
      if (s == "enum") {
        while (i < t.size() && txt(i) != "{" && txt(i) != ";") ++i;
        if (txt(i) == "{") skip_balanced("{", "}");
        skip_to_semi();
        continue;
      }
      if (s == "using") {
        ++i;
        parse_using();
        continue;
      }
      if (s == "typedef") {
        ++i;
        parse_typedef();
        continue;
      }
      if (s == "template") {
        ++i;
        if (txt(i) == "<") skip_balanced("<", ">");
        continue;
      }
      if (s == "extern") {
        ++i;
        if (i < t.size() && t[i].kind == Tok::kString) {
          ++i;
          if (txt(i) == "{") ++i;  // extern "C" block: parse contents inline
        }
        continue;
      }
      if (s == "static_assert") {
        skip_to_semi();
        continue;
      }
      if (s == ";") {
        ++i;
        continue;
      }
      if (is_ident(i) || s == "~" || s == "[" || s == "::") {
        parse_decl("");
        continue;
      }
      ++i;
    }
  }
};

// ---------------------------------------------------------------------------
// Phase 2: per-function body analysis.

const std::set<std::string>& blocking_calls() {
  static const std::set<std::string> s = {
      "fsync",     "fdatasync", "sendto",   "recvfrom", "poll",
      "select",    "sleep_for", "sleep_until", "usleep", "nanosleep",
  };
  return s;
}

const std::set<std::string>& clock_types() {
  static const std::set<std::string> s = {
      "system_clock", "steady_clock", "high_resolution_clock", "file_clock",
      "utc_clock", "tai_clock", "gps_clock"};
  return s;
}

const std::set<std::string>& random_types() {
  static const std::set<std::string> s = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "knuth_b", "ranlux24", "ranlux48"};
  return s;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> s = {"unordered_map", "unordered_set",
                                          "unordered_multimap",
                                          "unordered_multiset"};
  return s;
}

struct CallRec {
  int method = -1;          ///< caller index
  std::string callee;
  std::string recv_type;    ///< "" free/qualified; "?" receiver unresolved
  std::string qualifier;    ///< `Cls::callee(...)` qualifier
  std::vector<std::string> held;  ///< resolved mutex ids held at the call
  bool any_held = false;    ///< true when anything (even unresolved) is held
  int file = -1;
  int line = 0;
};

struct DiscardCand {
  int method = -1;
  std::string callee;
  std::string recv_type;  ///< "" free; "?" unresolved receiver
  std::string qualifier;
  int file = -1;
  int line = 0;
};

struct AcquireSite {
  int method = -1;
  std::string mutex;      ///< resolved id, or "?::expr"
  std::vector<std::string> held;  ///< resolved ids held before this
  int file = -1;
  int line = 0;
};

struct BodyFacts {
  std::vector<CallRec> calls;
  std::vector<DiscardCand> discards;
  std::vector<AcquireSite> acquires;
  std::vector<Finding> findings;  ///< direct findings (recursive, blocking…)
  std::map<int, std::string> direct_block;  ///< method -> blocking symbol
};

struct BodyWalker {
  const Model& model;
  const Method& m;
  int mi;
  const std::vector<Token>& t;
  const std::string& path;
  BodyFacts& out;

  std::map<std::string, std::string> locals = {};  ///< var -> type tail
  // Lexical blocks: per depth, the mutexes whose guards die with the block.
  std::vector<std::vector<std::string>> blocks = {};
  std::vector<std::string> held = {};      ///< resolved ids, acquisition order
  std::vector<std::string> held_all = {};  ///< including unresolved ids

  const std::string& txt(std::size_t k) const {
    static const std::string empty;
    return k < t.size() ? t[k].text : empty;
  }
  bool is_ident(std::size_t k) const {
    return k < t.size() && t[k].kind == Tok::kIdent;
  }

  std::string resolve_var(const std::string& name) const {
    const auto lit = locals.find(name);
    if (lit != locals.end()) return model.resolve_type(m.file, lit->second);
    if (!m.cls.empty()) {
      const std::string mt = model.member_type(m.cls, name);
      if (!mt.empty()) return model.resolve_type(m.file, mt);
    }
    const auto git = model.globals.find(name);
    if (git != model.globals.end()) {
      return model.resolve_type(m.file, git->second);
    }
    return "";
  }

  /// Resolves `a.b->c` (idents only) to the type of the full chain.
  std::string resolve_chain(const std::vector<std::string>& idents) const {
    if (idents.empty()) return "";
    std::string ty =
        idents[0] == "this" && !m.cls.empty() ? m.cls : resolve_var(idents[0]);
    for (std::size_t k = 1; k < idents.size() && !ty.empty(); ++k) {
      const std::string mt = model.member_type(ty, idents[k]);
      ty = mt.empty() ? "" : model.resolve_type(m.file, mt);
    }
    return ty;
  }

  /// Mutex identity for a guard expression `[*]a[.b]...m`.
  std::string mutex_id(const std::vector<std::string>& idents) const {
    if (idents.empty()) return "?::<empty>";
    std::string joined;
    for (const std::string& s : idents) {
      if (!joined.empty()) joined += ".";
      joined += s;
    }
    if (idents.size() == 1) {
      const std::string& v = idents[0];
      if (!m.cls.empty()) {
        const std::string owner = model.mutex_owner(m.cls, v);
        if (!owner.empty()) return owner + "::" + v;
      }
      if (model.global_mutexes.count(v) != 0) return "::" + v;
      return "?::" + joined;
    }
    std::vector<std::string> recv(idents.begin(), idents.end() - 1);
    const std::string ty = resolve_chain(recv);
    if (!ty.empty()) {
      const std::string owner = model.mutex_owner(ty, idents.back());
      if (!owner.empty()) return owner + "::" + idents.back();
    }
    return "?::" + joined;
  }

  void acquire(const std::string& id, int line) {
    const bool resolved = id.rfind("?::", 0) != 0;
    if (resolved &&
        std::find(held.begin(), held.end(), id) != held.end()) {
      out.findings.push_back(
          {path, line, "recursive-lock",
           "acquiring '" + id + "' while a lock on '" + id +
               "' is already held in " + (m.cls.empty() ? "" : m.cls + "::") +
               m.name + " — common::Mutex does not support recursion (even "
               "across distinct instances this needs an explicit order)"});
    }
    if (resolved) {
      for (const std::string& h : held) {
        out.acquires.push_back(AcquireSite{mi, id, {h}, m.file, line});
      }
      if (held.empty()) {
        out.acquires.push_back(AcquireSite{mi, id, {}, m.file, line});
      }
      held.push_back(id);
    }
    held_all.push_back(id);
    blocks.back().push_back(id);
  }

  /// Reads an identifier chain `a(::b)*` at k; returns one-past index.
  std::size_t read_qualified(std::size_t k, std::vector<std::string>* parts,
                             std::string* last) const {
    while (k < t.size()) {
      if (!is_ident(k)) break;
      if (parts != nullptr) parts->push_back(txt(k));
      if (last != nullptr) *last = txt(k);
      ++k;
      if (txt(k) == "::") {
        ++k;
        continue;
      }
      break;
    }
    return k;
  }

  /// Skips a balanced group starting at k; returns one-past index.
  std::size_t balanced_end(std::size_t k, const std::string& open,
                           const std::string& close) const {
    int depth = 0;
    for (; k < t.size(); ++k) {
      if (txt(k) == open) ++depth;
      if (txt(k) == close && --depth == 0) return k + 1;
    }
    return k;
  }

  /// Receiver chain for a member call at `callee_idx` (prev token is ./->).
  /// Fills idents front-to-back; returns false when the receiver involves a
  /// call result / indexing (unresolvable by name).
  bool receiver_chain(std::size_t callee_idx,
                      std::vector<std::string>* idents) const {
    std::vector<std::string> rev;
    std::size_t k = callee_idx;  // points at callee ident
    while (true) {
      if (k < 2) return false;
      const std::string& sep = txt(k - 1);
      if (sep != "." && sep != "->") break;
      std::size_t v = k - 2;
      if (!is_ident(v)) return false;  // `)` or `]` — computed receiver
      rev.push_back(txt(v));
      k = v;
    }
    if (rev.empty()) return false;
    // The chain root must not itself be a member access continuation.
    idents->assign(rev.rbegin(), rev.rend());
    return true;
  }

  // --- statement-position discard candidate -------------------------------
  // At `begin` (an identifier at statement start), decide whether the whole
  // statement is a bare call chain; record the outermost top-level call.
  void try_discard(std::size_t begin) {
    std::size_t k = begin;
    int depth = 0;
    std::size_t last_call = 0;  // index of last top-level callee ident
    bool any = false;
    while (k < t.size()) {
      const std::string& s = txt(k);
      if (depth == 0 && s == ";") break;
      if (s == "(" || s == "[") {
        ++depth;
        ++k;
        continue;
      }
      if (s == ")" || s == "]") {
        --depth;
        ++k;
        continue;
      }
      if (depth > 0) {
        ++k;
        continue;
      }
      if (is_ident(k)) {
        if (cpp_keywords().count(s) != 0) return;
        if (txt(k + 1) == "(") {
          last_call = k;
          any = true;
        }
        ++k;
        continue;
      }
      if (s == "::" || s == "." || s == "->") {
        ++k;
        continue;
      }
      return;  // any other top-level token: operators, '=', '<', literals…
    }
    if (!any || k >= t.size()) return;
    // The statement must *end* with the outermost call: `...foo(...)` ';'.
    const std::size_t close = balanced_end(last_call + 1, "(", ")");
    if (txt(close) != ";") return;
    DiscardCand c;
    c.method = mi;
    c.callee = txt(last_call);
    c.file = m.file;
    c.line = t[last_call].line;
    const std::string& prev = txt(last_call - 1);
    if (prev == "." || prev == "->") {
      std::vector<std::string> chain;
      if (receiver_chain(last_call, &chain)) {
        const std::string ty = resolve_chain(chain);
        c.recv_type = ty.empty() ? "?" : ty;
      } else {
        c.recv_type = "?";
      }
    } else if (prev == "::" && last_call >= 2 && is_ident(last_call - 2)) {
      c.qualifier = txt(last_call - 2);
    }
    out.discards.push_back(std::move(c));
  }

  // --- range-for ----------------------------------------------------------
  void handle_range_for(std::size_t for_idx) {
    // for ( decl : range ) — find the ':' at paren depth 1.
    std::size_t k = for_idx + 1;  // '('
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (; k < t.size(); ++k) {
      if (txt(k) == "(") ++depth;
      if (txt(k) == ")" && --depth == 0) {
        close = k;
        break;
      }
      if (txt(k) == ";" && depth == 1) return;  // classic for
      if (txt(k) == ":" && depth == 1 && txt(k + 1) != ":" &&
          txt(k - 1) != ":" && colon == 0) {
        colon = k;
      }
    }
    if (colon == 0 || close == 0) return;
    // Register the loop variable: explicitly-typed declarations carry their
    // type; `auto` ones get the container's element type below. Structured
    // bindings (a '[' in the declaration) stay unresolved.
    std::string loop_var;
    bool explicit_type = false;
    {
      std::vector<std::string> decl;
      bool binding = false;
      for (std::size_t v = for_idx + 2; v < colon; ++v) {
        if (txt(v) == "[") binding = true;
        if (is_ident(v) && txt(v) != "const" && txt(v) != "auto") {
          decl.push_back(txt(v));
        }
      }
      if (!binding && !decl.empty()) {
        loop_var = decl.back();
        if (decl.size() >= 2) {
          locals[loop_var] = decl[decl.size() - 2];
          explicit_type = true;
        }
      }
    }
    // Range expression: identifier chain (a.b->c) only.
    std::vector<std::string> range;
    for (std::size_t v = colon + 1; v < close; ++v) {
      if (is_ident(v)) {
        range.push_back(txt(v));
      } else if (txt(v) != "." && txt(v) != "->" && txt(v) != "::" &&
                 txt(v) != "*") {
        return;  // computed range — out of scope
      }
    }
    if (range.empty()) return;
    // Type of the range: direct member/local lookup, then alias chase.
    std::string raw;
    if (range.size() == 1) {
      const auto lit = locals.find(range[0]);
      if (lit != locals.end()) {
        raw = lit->second;
      } else if (!m.cls.empty()) {
        raw = model.member_type(m.cls, range[0]);
      }
      if (raw.empty()) {
        const auto git = model.globals.find(range[0]);
        if (git != model.globals.end()) raw = git->second;
      }
    } else {
      std::vector<std::string> recv(range.begin(), range.end() - 1);
      const std::string ty = resolve_chain(recv);
      if (!ty.empty()) raw = model.member_type(ty, range.back());
    }
    if (raw.empty()) return;
    int steps = 0;
    const std::string ground = model.resolve_type(m.file, raw, &steps);
    if (ground.size() > 2 && ground.rfind("[]") == ground.size() - 2 &&
        !loop_var.empty() && !explicit_type) {
      locals[loop_var] = ground.substr(0, ground.size() - 2);
    }
    if (unordered_types().count(ground) == 0) return;
    const int line = t[for_idx].line;
    if (steps > 0 && (*model.files)[m.file].deterministic) {
      out.findings.push_back(
          {path, line, "unordered-alias-iter",
           "range-for over '" + range.back() + "' whose type '" + raw +
               "' resolves to std::" + ground +
               " through an alias — iteration order is unspecified and "
               "breaks replayable schedules"});
    }
    // Does the loop body feed an Encoder / fingerprint?
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (txt(body_begin) == "{") {
      body_end = balanced_end(body_begin, "{", "}");
    } else {
      body_end = body_begin;
      int d = 0;
      while (body_end < t.size()) {
        const std::string& s = txt(body_end);
        if (s == "(" || s == "{") ++d;
        if (s == ")" || s == "}") --d;
        if (s == ";" && d == 0) break;
        ++body_end;
      }
    }
    for (std::size_t v = body_begin; v < body_end && v < t.size(); ++v) {
      if (!is_ident(v) || txt(v + 1) != "(") continue;
      const std::string& callee = txt(v);
      bool feeds = callee.find("fingerprint") != std::string::npos ||
                   callee == "encode";
      if (!feeds && (txt(v - 1) == "." || txt(v - 1) == "->")) {
        std::vector<std::string> chain;
        if (receiver_chain(v, &chain)) {
          feeds = resolve_chain(chain) == "Encoder";
        }
      }
      if (feeds) {
        out.findings.push_back(
            {path, t[v].line, "unordered-encode-flow",
             "'" + callee + "' called inside a range-for over std::" + ground +
                 " '" + range.back() +
                 "' — unordered iteration order must never reach wire bytes "
                 "or fingerprints; iterate a sorted view instead"});
        break;
      }
    }
  }

  // --- main walk ----------------------------------------------------------
  void walk() {
    if (m.body_begin < 0) return;
    for (const auto& [pname, ptype] : m.params) locals[pname] = ptype;
    blocks.push_back({});
    bool stmt_start = true;
    std::size_t k = static_cast<std::size_t>(m.body_begin) + 1;
    const std::size_t end = static_cast<std::size_t>(m.body_end);
    while (k < end) {
      const std::string& s = txt(k);
      if (s == "{") {
        blocks.push_back({});
        stmt_start = true;
        ++k;
        continue;
      }
      if (s == "}") {
        for (const std::string& id : blocks.back()) {
          auto drop = [&](std::vector<std::string>& v) {
            const auto it = std::find(v.rbegin(), v.rend(), id);
            if (it != v.rend()) v.erase(std::next(it).base());
          };
          drop(held);
          drop(held_all);
        }
        blocks.pop_back();
        if (blocks.empty()) blocks.push_back({});
        stmt_start = true;
        ++k;
        continue;
      }
      if (s == ";") {
        stmt_start = true;
        ++k;
        continue;
      }
      if (is_ident(k) && cpp_keywords().count(s) != 0) {
        if (s == "for" && txt(k + 1) == "(") handle_range_for(k);
        if ((s == "if" || s == "while" || s == "for" || s == "switch" ||
             s == "catch") &&
            txt(k + 1) == "(") {
          // Walk the condition for calls, then the statement restarts.
          std::size_t close = balanced_end(k + 1, "(", ")");
          scan_expr(k + 1, close);
          k = close;
          stmt_start = true;
          continue;
        }
        if (s == "case") {
          while (k < end && txt(k) != ":") ++k;
        }
        // `return f();` consumes the value — not statement position. Other
        // keywords (else/do/…) restart a statement context.
        stmt_start = !(s == "return" || s == "co_return" || s == "co_yield" ||
                       s == "co_await" || s == "throw" || s == "new" ||
                       s == "delete");
        ++k;
        continue;
      }
      if (stmt_start && is_ident(k)) {
        if (handle_statement(k, end, &k)) continue;
      }
      if (is_ident(k)) {
        handle_ident(k);
        stmt_start = false;
        ++k;
        continue;
      }
      stmt_start = false;
      ++k;
    }
  }

  /// Calls/identifier uses inside an arbitrary sub-range (if/while heads).
  void scan_expr(std::size_t from, std::size_t to) {
    for (std::size_t v = from; v < to && v < t.size(); ++v) {
      if (is_ident(v) && cpp_keywords().count(txt(v)) == 0) handle_ident(v);
    }
  }

  /// A statement starting with an identifier: declaration (incl. MutexLock
  /// guards) or a discard candidate. Returns true when the cursor advanced.
  bool handle_statement(std::size_t k, std::size_t end, std::size_t* out_k) {
    std::vector<std::string> head;
    std::string tail;
    std::size_t p = read_qualified(k, &head, &tail);
    if (txt(p) == "<") {
      // Template args in a declaration — balanced within this statement?
      std::size_t close = balanced_end(p, "<", ">");
      bool sane = close <= end && close > p + 1;
      for (std::size_t v = p; sane && v < close; ++v) {
        if (txt(v) == ";") sane = false;
      }
      if (sane) {
        std::string inner;
        for (std::size_t v = p; v < close; ++v) {
          if (is_ident(v)) inner = txt(v);
        }
        if (!inner.empty() && pointee_wrappers().count(tail) != 0) {
          tail = inner;
        } else if (!inner.empty() && elem_containers().count(tail) != 0) {
          tail = inner + "[]";
        }
        // otherwise tail stays the template name (unordered_map, map, …)
        p = close;
      }
    }
    while (txt(p) == "&" || txt(p) == "*") ++p;
    if (is_ident(p) && cpp_keywords().count(txt(p)) == 0 && !head.empty()) {
      // Declaration: `Type name ...`.
      const std::string var = txt(p);
      const std::string ground = model.resolve_type(m.file, tail);
      if (ground == "MutexLock") {
        // Guard acquisition: `common::MutexLock g(expr);` / `{expr}`.
        std::size_t open = p + 1;
        if (txt(open) == "(" || txt(open) == "{") {
          const bool paren = txt(open) == "(";
          const std::size_t close =
              balanced_end(open, paren ? "(" : "{", paren ? ")" : "}");
          std::vector<std::string> expr;
          bool simple = true;
          for (std::size_t v = open + 1; v + 1 < close; ++v) {
            if (is_ident(v)) {
              expr.push_back(txt(v));
            } else if (txt(v) != "." && txt(v) != "->" && txt(v) != "*" &&
                       txt(v) != "::") {
              simple = false;
            }
          }
          acquire(simple ? mutex_id(expr) : "?::<complex>", t[p].line);
          *out_k = close;
          return true;
        }
      }
      if (tail == "auto") {
        // `auto x = std::make_unique<T>(…)` / plain inferred locals.
        std::string deduced = "?";
        for (std::size_t v = p + 1; v < end && txt(v) != ";"; ++v) {
          if ((txt(v) == "make_unique" || txt(v) == "make_shared") &&
              txt(v + 1) == "<" && is_ident(v + 2)) {
            deduced = txt(v + 2);
            break;
          }
        }
        locals[var] = deduced;
      } else {
        locals[var] = tail;
      }
      *out_k = p;  // initializer still gets scanned for calls
      return true;
    }
    // Not a declaration: maybe a bare call chain dropped on the floor.
    try_discard(k);
    return false;
  }

  /// One identifier in expression context: call detection. (Determinism
  /// alias rules run once per file in det_alias_sweep, which covers bodies.)
  void handle_ident(std::size_t k) {
    const std::string& s = txt(k);
    if (txt(k + 1) != "(") return;
    const std::string& prev = txt(k - 1);
    if (prev == "." || prev == "->") {
      member_call(k);
      return;
    }
    if (is_ident(k - 1) && cpp_keywords().count(prev) == 0 &&
        prev != "operator") {
      return;  // `Type name(args)` declaration — not a call
    }
    CallRec c;
    c.method = mi;
    c.callee = s;
    c.file = m.file;
    c.line = t[k].line;
    c.held = held;
    c.any_held = !held_all.empty();
    if (prev == "::" && k >= 2 && is_ident(k - 2)) {
      c.qualifier = txt(k - 2);
    }
    if (blocking_calls().count(s) != 0) {
      out.direct_block.emplace(mi, s);
      if (!held_all.empty()) {
        out.findings.push_back(
            {path, c.line, "blocking-under-lock",
             "blocking call '" + s + "' while holding '" + held_all.back() +
                 "' — I/O and sleeps must not run under a mutex (copy state "
                 "out, drop the lock, then block)"});
      }
    }
    out.calls.push_back(std::move(c));
  }

  void member_call(std::size_t k) {
    const std::string& name = txt(k);
    CallRec c;
    c.method = mi;
    c.callee = name;
    c.file = m.file;
    c.line = t[k].line;
    c.held = held;
    c.any_held = !held_all.empty();
    std::vector<std::string> chain;
    if (receiver_chain(k, &chain)) {
      const std::string ty = resolve_chain(chain);
      c.recv_type = ty.empty() ? "?" : ty;
    } else {
      c.recv_type = "?";
    }
    if (name == "wait" || name == "wait_for" || name == "wait_until") {
      // A condition-variable wait releases only its own lock; entering it
      // with more than one lock held keeps the outer one across the sleep.
      const bool cv_like = c.recv_type == "?" || c.recv_type == "CondVar" ||
                           c.recv_type == "condition_variable" ||
                           c.recv_type == "condition_variable_any";
      if (cv_like && held_all.size() >= 2) {
        out.findings.push_back(
            {path, c.line, "cv-wait-multi-lock",
             "condition wait entered with " +
                 std::to_string(held_all.size()) +
                 " locks held ('" + held_all[held_all.size() - 2] +
                 "' stays locked across the wait) — release outer locks "
                 "before waiting"});
      }
    }
    if (blocking_calls().count(name) != 0 && !held_all.empty()) {
      out.direct_block.emplace(mi, name);
      out.findings.push_back(
          {path, c.line, "blocking-under-lock",
           "blocking call '" + name + "' while holding '" + held_all.back() +
               "' — I/O and sleeps must not run under a mutex"});
    }
    out.calls.push_back(std::move(c));
  }

};

// Alias *uses* at non-function scope (e.g. member declarations using a bad
// alias) in det files: a cheap token sweep that skips the alias's own
// declaration line.
void det_alias_sweep(const Model& model, int fi, const std::string& path,
                     std::vector<Finding>* out) {
  if (!(*model.files)[fi].deterministic) return;
  // Alias *declarations* are exempt — including a chained one like
  // `using Ticker = Clock;`, where the right-hand side already resolves
  // through one step. Only uses outside any alias-declaring line count.
  std::set<int> alias_decl_lines;
  for (const auto& [name, alias] : model.file_aliases[fi]) {
    alias_decl_lines.insert(alias.line);
  }
  std::set<std::pair<int, std::string>> seen;
  for (const Token& tok : model.toks[fi]) {
    if (tok.kind != Tok::kIdent) continue;
    int steps = 0;
    const std::string ground = model.resolve_type(fi, tok.text, &steps);
    if (steps == 0) continue;
    const bool clock = clock_types().count(ground) != 0;
    const bool random = random_types().count(ground) != 0;
    if (!clock && !random) continue;
    if (alias_decl_lines.count(tok.line) != 0) continue;
    const std::string rule = clock ? "wall-clock-alias" : "raw-random-alias";
    if (!seen.insert({tok.line, rule}).second) continue;
    out->push_back(
        {path, tok.line, rule,
         "'" + tok.text + "' resolves to '" + ground +
             "' through a type alias — banned in deterministic code (" +
             std::string(clock ? "wall clock" : "raw randomness") + ")"});
  }
}

// ---------------------------------------------------------------------------
// Phase 3: whole-program resolution.

struct Resolver {
  const Model& model;

  /// Call targets under lock/blocking-propagation rules.
  std::vector<int> targets(const CallRec& c, const Method& caller) const {
    if (!c.recv_type.empty()) {
      if (c.recv_type == "?") return {};  // never fall back by name
      std::vector<int> out =
          model.lookup(c.recv_type, c.callee, /*fan_out_derived=*/true);
      // Wrapper heuristic: a call through a base-typed receiver from class C
      // is assumed not to dynamically re-enter C, nor any class that wraps C
      // (holds a member of type C) — decorators like FaultyEnv::File over
      // WritableFile never wrap themselves. Without this, every delegating
      // call looks like recursion into the wrapper's own locks. Targets of
      // the receiver's exact static type are always kept.
      if (!caller.cls.empty() && c.recv_type != caller.cls) {
        out.erase(
            std::remove_if(
                out.begin(), out.end(),
                [&](int mi2) {
                  const Method& tm = model.methods[mi2];
                  if (tm.cls == c.recv_type) return false;
                  if (tm.cls == caller.cls) return true;
                  const Class* info = model.find_class(tm.cls);
                  if (info == nullptr) return false;
                  for (const auto& [mem, ty] : info->members) {
                    if (model.resolve_type(tm.file, ty) == caller.cls) {
                      return true;
                    }
                  }
                  return false;
                }),
            out.end());
      }
      return out;
    }
    if (!c.qualifier.empty()) {
      return model.lookup(c.qualifier, c.callee, false);
    }
    if (!caller.cls.empty()) {
      std::vector<int> own =
          model.lookup(caller.cls, c.callee, /*fan_out_derived=*/true);
      if (!own.empty()) return own;
    }
    const auto it = model.by_name.find(c.callee);
    if (it != model.by_name.end() && it->second.size() == 1) {
      return it->second;
    }
    return {};
  }
};

std::string method_display(const Method& m) {
  return (m.cls.empty() ? "" : m.cls + "::") + m.name;
}

/// Tarjan SCC over the lock graph; emits one finding per non-trivial SCC.
void find_cycles(const std::vector<LockEdge>& edges,
                 const std::map<std::string, int>& witness_line,
                 const std::map<std::string, std::string>& witness_file,
                 std::vector<Finding>* out) {
  std::map<std::string, std::vector<std::string>> adj;
  std::set<std::string> nodes;
  for (const LockEdge& e : edges) {
    adj[e.from].push_back(e.to);
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int counter = 0;
  std::vector<std::vector<std::string>> sccs;
  std::function<void(const std::string&)> strong =
      [&](const std::string& v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const std::string& w : adj[v]) {
          if (index.find(w) == index.end()) {
            strong(w);
            low[v] = std::min(low[v], low[w]);
          } else if (on_stack.count(w) != 0) {
            low[v] = std::min(low[v], index[w]);
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          if (scc.size() >= 2) sccs.push_back(std::move(scc));
        }
      };
  for (const std::string& v : nodes) {
    if (index.find(v) == index.end()) strong(v);
  }
  for (std::vector<std::string>& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    std::string cyc;
    for (const std::string& n : scc) {
      if (!cyc.empty()) cyc += " -> ";
      cyc += n;
    }
    cyc += " -> " + scc.front();
    // Anchor the finding at the first witness edge inside the SCC.
    std::string file = "<lock-graph>";
    int line = 0;
    const std::set<std::string> members(scc.begin(), scc.end());
    for (const LockEdge& e : edges) {
      if (members.count(e.from) != 0 && members.count(e.to) != 0) {
        file = e.file;
        line = e.line;
        break;
      }
    }
    (void)witness_line;
    (void)witness_file;
    out->push_back(
        {file, line, "lock-order-cycle",
         "lock-order cycle " + cyc +
             " — these mutexes are acquired in inconsistent orders on "
             "different paths; pick one global order or merge the locks"});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer (public so tests can pin it).

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto at = [&](std::size_t k) { return k < n ? src[k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && at(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor directives: consumed whole, honoring line continuations.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && at(i + 1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string word = src.substr(i, j - i);
      const bool raw_prefix = (word == "R" || word == "u8R" || word == "LR" ||
                               word == "uR" || word == "UR");
      if (raw_prefix && at(j) == '"') {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim += src[k++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, k);
        const std::size_t stop =
            end == std::string::npos ? n : end + closer.size();
        const int at_line = line;
        for (std::size_t m = i; m < stop; ++m) {
          if (src[m] == '\n') ++line;
        }
        out.push_back(Token{"", at_line, Tok::kString});
        i = stop;
        continue;
      }
      out.push_back(Token{std::move(word), line, Tok::kIdent});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i + 1))))) {
      const std::size_t start = i;
      ++i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') &&
                        (std::tolower(at(i - 1)) == 'e' ||
                         std::tolower(at(i - 1)) == 'p')))) {
        ++i;
      }
      out.push_back(Token{src.substr(start, i - start), line, Tok::kNumber});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int at_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      out.push_back(
          Token{"", at_line, quote == '"' ? Tok::kString : Tok::kChar});
      continue;
    }
    if (c == ':' && at(i + 1) == ':') {
      out.push_back(Token{"::", line, Tok::kPunct});
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      out.push_back(Token{"->", line, Tok::kPunct});
      i += 2;
      continue;
    }
    out.push_back(Token{std::string(1, c), line, Tok::kPunct});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------

std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             LockGraph* graph) {
  Model model;
  model.files = &files;
  model.toks.resize(files.size());
  model.allows.resize(files.size());
  model.file_aliases.resize(files.size());

  // Phase 0+1: lex, allow tables, structure. Headers first so their aliases
  // and classes are visible when .cpp files are parsed.
  std::vector<int> order;
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    model.toks[fi] = lex(files[fi].content);
    model.allows[fi] = parse_allows(files[fi].path, files[fi].content);
    order.push_back(fi);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    auto is_h = [&](int f) {
      const std::string& p = files[f].path;
      return p.size() >= 2 && (p.rfind(".h") == p.size() - 2 ||
                               (p.size() >= 4 && p.rfind(".hpp") == p.size() - 4));
    };
    return is_h(a) > is_h(b);
  });
  for (int fi : order) {
    const std::string& p = files[fi].path;
    const bool is_header =
        p.rfind(".h") == p.size() - 2 ||
        (p.size() >= 4 && p.rfind(".hpp") == p.size() - 4);
    StructureParser sp{model, fi, model.toks[fi], is_header};
    sp.parse_top();
  }
  // Derived-class closure for virtual fan-out.
  for (const auto& [name, cls] : model.classes) {
    for (const std::string& b : cls.bases) model.derived[b].insert(name);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [base, ds] : model.derived) {
      const std::vector<std::string> snapshot(ds.begin(), ds.end());
      for (const std::string& d : snapshot) {
        const auto it = model.derived.find(d);
        if (it == model.derived.end()) continue;
        for (const std::string& dd : it->second) {
          changed |= ds.insert(dd).second;
        }
      }
    }
  }

  // Phase 2: walk every body.
  BodyFacts facts;
  for (int mi = 0; mi < static_cast<int>(model.methods.size()); ++mi) {
    const Method& m = model.methods[mi];
    if (m.body_begin < 0) continue;
    BodyWalker w{model, m, mi, model.toks[m.file], files[m.file].path, facts};
    w.walk();
  }
  std::vector<Finding> findings = std::move(facts.findings);
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    det_alias_sweep(model, fi, files[fi].path, &findings);
  }

  // Phase 3a: per-method transitive acquires and blocking.
  Resolver res{model};
  const int n_methods = static_cast<int>(model.methods.size());
  std::vector<std::set<std::string>> acq(n_methods);
  std::vector<std::string> blocks_via(n_methods);  // "" = does not block
  for (const AcquireSite& a : facts.acquires) {
    if (a.mutex.rfind("?::", 0) != 0) acq[a.method].insert(a.mutex);
  }
  for (int mi = 0; mi < n_methods; ++mi) {
    const Method& m = model.methods[mi];
    for (const std::string& expr : m.acquire_exprs) {
      if (m.cls.empty()) continue;
      const std::string owner = model.mutex_owner(m.cls, expr);
      if (!owner.empty()) acq[mi].insert(owner + "::" + expr);
    }
    const auto bit = facts.direct_block.find(mi);
    if (bit != facts.direct_block.end()) blocks_via[mi] = bit->second;
  }
  // Fixpoint over resolved calls.
  std::vector<std::vector<int>> call_targets(facts.calls.size());
  for (std::size_t ci = 0; ci < facts.calls.size(); ++ci) {
    call_targets[ci] =
        res.targets(facts.calls[ci], model.methods[facts.calls[ci].method]);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t ci = 0; ci < facts.calls.size(); ++ci) {
      const int caller = facts.calls[ci].method;
      for (int target : call_targets[ci]) {
        for (const std::string& id : acq[target]) {
          changed |= acq[caller].insert(id).second;
        }
        if (blocks_via[caller].empty() && !blocks_via[target].empty()) {
          blocks_via[caller] = method_display(model.methods[target]) + " -> " +
                               blocks_via[target];
          changed = true;
        }
      }
    }
  }

  // Phase 3b: lock edges (direct + through calls), blocking through calls.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& via) {
    if (from == to) return;  // self edges are recursive-lock territory
    edges.emplace(std::make_pair(from, to), LockEdge{from, to, file, line, via});
  };
  for (const AcquireSite& a : facts.acquires) {
    if (a.mutex.rfind("?::", 0) == 0) continue;
    for (const std::string& h : a.held) {
      add_edge(h, a.mutex, files[a.file].path, a.line, "");
    }
  }
  for (std::size_t ci = 0; ci < facts.calls.size(); ++ci) {
    const CallRec& c = facts.calls[ci];
    if (call_targets[ci].empty()) continue;
    std::set<std::string> callee_acquires;
    std::string callee_blocks;
    std::string block_target;
    for (int target : call_targets[ci]) {
      callee_acquires.insert(acq[target].begin(), acq[target].end());
      if (callee_blocks.empty() && !blocks_via[target].empty()) {
        callee_blocks = blocks_via[target];
        block_target = method_display(model.methods[target]);
      }
    }
    for (const std::string& h : c.held) {
      for (const std::string& a : callee_acquires) {
        if (a == h) {
          findings.push_back(
              {files[c.file].path, c.line, "recursive-lock",
               "call to '" + c.callee + "' (re)acquires '" + h +
                   "' which is already held here — common::Mutex does not "
                   "support recursion"});
        } else {
          add_edge(h, a, files[c.file].path, c.line, c.callee);
        }
      }
    }
    if (c.any_held && !callee_blocks.empty()) {
      findings.push_back(
          {files[c.file].path, c.line, "blocking-under-lock",
           "call to '" + block_target + "' blocks (" + callee_blocks +
               ") while a mutex is held — restructure so I/O and sleeps "
               "happen outside the critical section"});
    }
  }
  std::vector<LockEdge> edge_list;
  for (auto& [key, e] : edges) edge_list.push_back(e);
  find_cycles(edge_list, {}, {}, &findings);
  if (graph != nullptr) {
    graph->edges = edge_list;
    std::set<std::string> ids;
    for (const LockEdge& e : edge_list) {
      ids.insert(e.from);
      ids.insert(e.to);
    }
    for (const AcquireSite& a : facts.acquires) {
      if (a.mutex.rfind("?::", 0) != 0) ids.insert(a.mutex);
    }
    graph->mutexes.assign(ids.begin(), ids.end());
  }

  // Phase 3c: discarded must-use results.
  const std::set<std::string> must_use = {"Status", "WalRecoveryInfo"};
  auto ret_of = [&](int mi) {
    return model.resolve_type(model.methods[mi].file, model.methods[mi].ret);
  };
  for (const DiscardCand& c : facts.discards) {
    std::vector<int> cands;
    if (!c.recv_type.empty()) {
      if (c.recv_type == "?") continue;
      cands = model.lookup(c.recv_type, c.callee, /*fan_out_derived=*/true);
    } else if (!c.qualifier.empty()) {
      cands = model.lookup(c.qualifier, c.callee, false);
    } else {
      const Method& caller = model.methods[c.method];
      if (!caller.cls.empty()) {
        cands = model.lookup(caller.cls, c.callee, true);
      }
      if (cands.empty()) {
        const auto it = model.by_name.find(c.callee);
        if (it != model.by_name.end()) {
          // Unique name, or unanimous must-use across all overloads.
          if (it->second.size() == 1) {
            cands = it->second;
          } else {
            bool unanimous = true;
            for (int mi2 : it->second) {
              unanimous &= must_use.count(ret_of(mi2)) != 0;
            }
            if (unanimous) cands = it->second;
          }
        }
      }
    }
    if (cands.empty()) continue;
    bool any = false, all = true;
    std::string ret;
    for (int mi2 : cands) {
      const std::string r = ret_of(mi2);
      const bool mu = must_use.count(r) != 0;
      any |= mu;
      all &= mu;
      if (mu) ret = r;
    }
    if (any && all) {
      findings.push_back(
          {files[c.file].path, c.line, "discarded-status",
           "result of '" + c.callee + "' (" + ret +
               ") dropped in statement position — check it, latch it, or "
               "cast through an explicit sink with a comment"});
    }
  }

  // Suppression filter + marker findings + stable order.
  std::map<std::string, int> file_index;
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    file_index[files[fi].path] = fi;
  }
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    const auto it = file_index.find(f.file);
    if (it != file_index.end() &&
        allowed(model.allows[it->second], f.line, f.rule)) {
      continue;
    }
    out.push_back(f);
  }
  for (const AllowTable& t : model.allows) {
    out.insert(out.end(), t.marker_findings.begin(), t.marker_findings.end());
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<Finding> run(const RunConfig& cfg, LockGraph* graph) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, fs::path>> paths;
  for (const std::string& dir : cfg.analyze_dirs) {
    const fs::path base = fs::path(cfg.root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      const std::string rel =
          entry.path().lexically_relative(cfg.root).generic_string();
      paths.emplace_back(rel, entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  for (const auto& [rel, full] : paths) {
    SourceFile f;
    f.path = rel;
    for (const std::string& det : cfg.det_dirs) {
      if (rel.rfind(det + "/", 0) == 0) {
        f.deterministic = true;
        break;
      }
    }
    std::ifstream in(full, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    f.content = buf.str();
    files.push_back(std::move(f));
  }
  return analyze(files, graph);
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace zdc::analyze
