// zdc_lint core: repo-specific determinism and hygiene rules as a plain
// file/token scanner (no libclang — it must build everywhere the project
// builds and run as an ordinary ctest).
//
// Determinism rules (deterministic code only: src/sim, src/consensus and the
// other sans-io protocol dirs — every simulator run must replay bit-for-bit
// from a seed):
//   wall-clock      std::chrono clock types (steady_clock, system_clock, ...)
//   wall-time       C time calls: time(), clock(), gettimeofday(), ...
//   raw-random      unseeded/global randomness: std::random_device, rand(),
//                   mt19937 & friends — use common::Rng
//   unordered-iter  iteration over std::unordered_map/set — iteration order
//                   is unspecified and breaks replayable schedules
//
// Hygiene rules (all of src/):
//   bare-assert     assert( — use ZDC_ASSERT (never compiled out, prints
//                   node/time context)
//   std-cout        std::cout — use zdc::log (leveled, thread-safe)
//
// Suppression: a line is exempt from rule R when it, or the line directly
// above, carries `// zdc-lint: allow(R): <justification>`. The justification
// is mandatory (allow-needs-reason) and the rule name must exist
// (unknown-allow); both are reported as violations themselves.
#pragma once

#include <string>
#include <vector>

namespace zdc::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Apply the determinism rules (wall-clock, wall-time, raw-random,
  /// unordered-iter) in addition to the always-on hygiene rules.
  bool determinism = false;
};

/// Lints one translation unit. `path` is only used for reporting.
std::vector<Violation> lint_source(const std::string& path,
                                   const std::string& content,
                                   const Options& opts);

struct RunConfig {
  /// Repository root; all dirs below are relative to it.
  std::string root = ".";
  /// Directories whose sources get the hygiene rules.
  std::vector<std::string> hygiene_dirs = {"src"};
  /// Directories whose sources additionally get the determinism rules.
  /// src/obs is included: the metrics registry must stay deterministic (the
  /// byte-identical-snapshot contract); only the runtime trace recorder reads
  /// a wall clock, behind an explicit allow marker. src/check is included
  /// because replay-file byte-identity rests on the checker itself being
  /// deterministic (swarm randomness goes through the seeded common::Rng).
  /// src/storage is included because recovery must be reproducible: the WAL
  /// scan and the FaultyEnv crash points may consult only bytes and scripted
  /// fault plans, never a clock or ambient randomness. src/recovery is
  /// included for the same reason — catch-up replay and snapshot install
  /// must depend only on storage bytes and peer messages (its one latency
  /// histogram reads an injected clock, not a wall clock).
  std::vector<std::string> det_dirs = {"src/sim",     "src/consensus",
                                       "src/abcast",  "src/wab",
                                       "src/core",    "src/fd",
                                       "src/obs",     "src/check",
                                       "src/storage", "src/recovery",
                                       "src/service", "src/fault"};
};

/// Walks the configured directories (sorted, so output order is stable) and
/// lints every .h/.hpp/.cc/.cpp file.
std::vector<Violation> run(const RunConfig& cfg);

/// "file:line: [rule] message" — one line per violation.
std::string format(const Violation& v);

}  // namespace zdc::lint
