// zdc_lint CLI: repo-specific determinism & hygiene linter (see lint_core.h
// for the rule table). Exit 0 when clean, 1 when violations were found,
// 2 on usage errors.
//
//   zdc_lint --root <repo-root>          lint the default directory set
//   zdc_lint --root <r> src/sim src/fd   lint only the named hygiene dirs
//
// Directories named on the command line replace the default hygiene set;
// determinism dirs stay the built-in list (a named dir gets the determinism
// rules iff it is one of them).
#include <cstdio>
#include <string>
#include <vector>

#include "lint_core.h"

int main(int argc, char** argv) {
  zdc::lint::RunConfig cfg;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "zdc_lint: --root needs a path\n");
        return 2;
      }
      cfg.root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: zdc_lint [--root <repo-root>] [dir...]\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "zdc_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (!dirs.empty()) cfg.hygiene_dirs = dirs;

  const std::vector<zdc::lint::Violation> violations = zdc::lint::run(cfg);
  for (const auto& v : violations) {
    std::fprintf(stdout, "%s\n", zdc::lint::format(v).c_str());
  }
  if (violations.empty()) {
    std::fprintf(stdout, "zdc_lint: clean\n");
    return 0;
  }
  std::fprintf(stdout, "zdc_lint: %zu violation(s)\n", violations.size());
  return 1;
}
