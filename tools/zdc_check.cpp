// zdc_check — schedule-space model checker CLI (src/check).
//
//   zdc_check explore --protocol p --n 4 --f 1 --proposals a,a,a,a
//             [--crashes K --leader-flips K --suspect-flips K]
//             [--crash-restarts K]
//             [--max-depth D --max-transitions T] [--out FILE]
//   zdc_check swarm   --protocol paxos --n 3 --f 1 --proposals x,y,z
//             --omega 0,0,2 [--seed S --runs R --max-steps K] [--out FILE]
//   zdc_check repro   tests/check_fixtures/paxos_ignore_accepted.replay
//
// explore exhausts the (bounded) schedule space by DFS with sleep-set
// reduction; swarm runs seeded random schedules. Both stop at the first
// invariant violation, minimize the trace with the delta-debugging shrinker
// and — with --out — write a replay file. repro re-runs a replay file after
// verifying it is byte-identically canonical. Exit codes: 0 = no violation
// (or successful repro), 1 = violation found (or failed repro), 2 = usage.
//
// Run with --help for the full flag reference; docs/CHECKING.md has the
// choice-point model and the replay grammar.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/replay.h"
#include "check/shrink.h"
#include "check/system.h"

namespace {

using namespace zdc;

struct Flags {
  std::map<std::string, std::string> values;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values.count(key) != 0;
  }
};

Flags parse_flags(int argc, char** argv, int first) {
  // Every flag any mode reads; a typo'd flag silently falling back to its
  // default would make a checking run lie about what it covered.
  static const std::set<std::string> kKnown = {
      "crash-restarts", "crashes",      "equivocations", "f",
      "flips",          "kind",         "leader-flips",  "max-depth",
      "max-steps",      "max-transitions", "mutant",     "n",
      "no-frame-crc",   "no-sleep-sets", "omega",        "oracle-subsets",
      "out",            "proposals",    "protocol",      "runs",
      "seed",           "submissions",  "suspect-flips", "threads"};
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    if (kKnown.count(key) == 0) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", key.c_str());
      std::exit(2);
    }
    if (eq != std::string::npos) {
      flags.values[key] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values[key] = argv[++i];
    } else {
      flags.values[key] = "1";
    }
  }
  return flags;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

check::ScenarioSpec parse_scenario(const Flags& flags) {
  check::ScenarioSpec spec;
  spec.kind = flags.get("kind", "consensus");
  if (spec.kind != "consensus" && spec.kind != "abcast") {
    std::fprintf(stderr, "--kind must be consensus or abcast\n");
    std::exit(2);
  }
  spec.protocol = flags.get("protocol", spec.kind == "consensus" ? "l" : "c-l");
  spec.mutant = flags.get("mutant", "");
  spec.frame_checksums = !flags.has("no-frame-crc");
  spec.group.n = static_cast<std::uint32_t>(flags.num("n", 4));
  spec.group.f = static_cast<std::uint32_t>(flags.num("f", 1));
  if (spec.group.n == 0 || spec.group.n > 31 || spec.group.f >= spec.group.n) {
    std::fprintf(stderr, "need 0 < n <= 31 and f < n\n");
    std::exit(2);
  }
  if (spec.kind == "consensus") {
    if (flags.has("proposals")) {
      spec.proposals = split(flags.get("proposals", ""), ',');
    } else {
      for (ProcessId p = 0; p < spec.group.n; ++p) {
        spec.proposals.push_back("v" + std::to_string(p));
      }
    }
    if (spec.proposals.size() != spec.group.n) {
      std::fprintf(stderr, "need exactly n=%u proposals\n", spec.group.n);
      std::exit(2);
    }
  } else if (flags.has("submissions")) {
    // --submissions 0:alpha,1:beta — sender:payload pairs.
    for (const std::string& entry : split(flags.get("submissions", ""), ',')) {
      const auto colon = entry.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "submission must be sender:payload\n");
        std::exit(2);
      }
      const auto sender =
          static_cast<ProcessId>(std::atoi(entry.substr(0, colon).c_str()));
      if (sender >= spec.group.n) {
        std::fprintf(stderr, "submission sender out of range\n");
        std::exit(2);
      }
      spec.submissions.emplace_back(sender, entry.substr(colon + 1));
    }
  }
  if (flags.has("omega")) {
    for (const std::string& entry : split(flags.get("omega", ""), ',')) {
      spec.omega.push_back(static_cast<ProcessId>(std::atoi(entry.c_str())));
    }
    if (spec.omega.size() != spec.group.n) {
      std::fprintf(stderr, "need exactly n=%u omega entries\n", spec.group.n);
      std::exit(2);
    }
    for (const ProcessId leader : spec.omega) {
      if (leader >= spec.group.n) {
        std::fprintf(stderr, "omega entries must name processes\n");
        std::exit(2);
      }
    }
  }
  return spec;
}

check::AdversaryBudgets parse_budgets(const Flags& flags) {
  check::AdversaryBudgets budgets;
  budgets.crashes = static_cast<std::uint32_t>(flags.num("crashes", 0));
  budgets.leader_flips =
      static_cast<std::uint32_t>(flags.num("leader-flips", 0));
  budgets.suspect_flips =
      static_cast<std::uint32_t>(flags.num("suspect-flips", 0));
  budgets.oracle_subsets = flags.has("oracle-subsets");
  budgets.crash_restarts =
      static_cast<std::uint32_t>(flags.num("crash-restarts", 0));
  budgets.flips = static_cast<std::uint32_t>(flags.num("flips", 0));
  budgets.equivocations =
      static_cast<std::uint32_t>(flags.num("equivocations", 0));
  return budgets;
}

/// Minimizes the violating trace, prints the result and optionally writes
/// the replay file. Returns the process exit code (always 1: a violation).
int report_violation(const check::ScenarioSpec& spec,
                     const check::SystemFactory& factory,
                     const check::Violation& violation,
                     const std::vector<check::Choice>& trace,
                     const Flags& flags) {
  std::printf("VIOLATION: %s — %s\n", violation.invariant.c_str(),
              violation.detail.c_str());
  std::printf("  trace (%zu choices): %s\n", trace.size(),
              check::format_trace(trace).c_str());
  check::ShrinkResult shrunk =
      check::shrink(factory, trace, violation.invariant);
  std::printf("  shrunk to %zu choices in %llu replays: %s\n",
              shrunk.trace.size(),
              static_cast<unsigned long long>(shrunk.replays),
              check::format_trace(shrunk.trace).c_str());
  std::printf("  minimized detail: %s\n", shrunk.violation.detail.c_str());
  if (flags.has("out")) {
    check::ReplayFile file;
    file.spec = spec;
    // Replay files pin the *explicit* initial omega even when the scenario
    // used the all-trust-p0 default, so a fixture is self-describing.
    if (file.spec.omega.empty()) {
      file.spec.omega.assign(spec.group.n, 0);
    }
    file.violation = shrunk.violation.invariant;
    file.trace = shrunk.trace;
    const std::string path = flags.get("out", "");
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      return 2;
    }
    out << check::serialize_replay(file);
    std::printf("  replay file written to %s\n", path.c_str());
  }
  return 1;
}

int run_explore(const Flags& flags) {
  const check::ScenarioSpec spec = parse_scenario(flags);
  const check::AdversaryBudgets budgets = parse_budgets(flags);
  const check::SystemFactory factory =
      check::make_system_factory(spec, budgets);
  check::ExploreConfig cfg;
  cfg.max_depth = static_cast<std::uint32_t>(flags.num("max-depth", 0));
  cfg.max_transitions =
      static_cast<std::uint64_t>(flags.num("max-transitions", 0));
  cfg.sleep_sets = !flags.has("no-sleep-sets");
  cfg.threads = static_cast<std::uint32_t>(flags.num("threads", 0));
  const check::ExploreResult res = check::explore(factory, cfg);
  std::printf(
      "explore %s/%s n=%u f=%u: %llu transitions, %llu paths, "
      "%llu depth cutoffs, %s\n",
      spec.kind.c_str(), spec.protocol.c_str(), spec.group.n, spec.group.f,
      static_cast<unsigned long long>(res.transitions),
      static_cast<unsigned long long>(res.paths),
      static_cast<unsigned long long>(res.depth_cutoffs),
      res.violation ? "stopped at first violation"
                    : (res.complete ? "space exhausted"
                                    : "budget exhausted (INCOMPLETE)"));
  if (!res.violation) {
    std::printf("no violation\n");
    return 0;
  }
  return report_violation(spec, factory, *res.violation, res.trace, flags);
}

int run_swarm(const Flags& flags) {
  const check::ScenarioSpec spec = parse_scenario(flags);
  const check::AdversaryBudgets budgets = parse_budgets(flags);
  const check::SystemFactory factory =
      check::make_system_factory(spec, budgets);
  check::SwarmConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  cfg.runs = static_cast<std::uint32_t>(flags.num("runs", 256));
  cfg.max_steps = static_cast<std::uint32_t>(flags.num("max-steps", 512));
  cfg.threads = static_cast<std::uint32_t>(flags.num("threads", 0));
  const check::SwarmResult res = check::swarm(factory, cfg);
  std::printf("swarm %s/%s n=%u f=%u seed=%llu: %llu runs, %llu transitions\n",
              spec.kind.c_str(), spec.protocol.c_str(), spec.group.n,
              spec.group.f, static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(res.runs),
              static_cast<unsigned long long>(res.transitions));
  if (!res.violation) {
    std::printf("no violation\n");
    return 0;
  }
  std::printf("failing run: %u\n", res.failing_run);
  return report_violation(spec, factory, *res.violation, res.trace, flags);
}

int run_repro(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: zdc_check repro FILE\n");
    return 2;
  }
  const char* path = argv[2];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  std::string error;
  const auto file = check::parse_replay(bytes, &error);
  if (!file) {
    std::fprintf(stderr, "%s: parse error: %s\n", path, error.c_str());
    return 2;
  }
  // Byte-identity: the file must be exactly what the serializer would write.
  // This rejects hand-edited fixtures before they can drift from the traces
  // they claim to pin.
  if (check::serialize_replay(*file) != bytes) {
    std::fprintf(stderr, "%s: not canonical (regenerate with --out)\n", path);
    return 1;
  }
  const check::SystemFactory factory =
      check::make_system_factory(file->spec, check::AdversaryBudgets{});
  const auto outcome = check::replay_strict(factory, file->trace);
  if (!outcome) {
    std::fprintf(stderr,
                 "%s: trace diverged (a recorded choice was disabled)\n",
                 path);
    return 1;
  }
  const std::string got =
      outcome->violation ? outcome->violation->invariant : "";
  if (got != file->violation) {
    std::fprintf(stderr, "%s: expected violation \"%s\", got \"%s\"\n", path,
                 file->violation.empty() ? "-" : file->violation.c_str(),
                 got.empty() ? "-" : got.c_str());
    return 1;
  }
  if (outcome->violation) {
    std::printf("%s: reproduced %s — %s\n", path, got.c_str(),
                outcome->violation->detail.c_str());
  } else {
    std::printf("%s: reproduced (no violation, as recorded)\n", path);
  }
  return 0;
}

void usage() {
  std::printf(
      "zdc_check — schedule-space model checker\n\n"
      "modes:\n"
      "  explore   bounded exhaustive DFS with sleep-set reduction\n"
      "  swarm     seeded random schedules with per-seed budgets\n"
      "  repro     re-run a replay file (byte-identity enforced)\n\n"
      "scenario flags (explore, swarm):\n"
      "  --kind K         consensus (default) | abcast\n"
      "  --protocol P     consensus: l p paxos ... | abcast: c-l c-p ...\n"
      "  --n N --f F      group size / tolerated crashes\n"
      "  --proposals a,b  one per process (consensus)\n"
      "  --submissions 0:x,1:y  scripted a_broadcasts (abcast)\n"
      "  --omega 0,0,2    initial leader per process (default: all 0)\n"
      "  --mutant M       skip-one-step-quorum (p) | ignore-accepted (paxos)\n"
      "                   | equivocating-sender (abcast)\n"
      "  --no-frame-crc   disable the per-frame CRC seal (corruption becomes\n"
      "                   undetectable; only the safety oracles catch it)\n\n"
      "adversary budgets (bound the search space, default all 0):\n"
      "  --crashes K --leader-flips K --suspect-flips K --oracle-subsets\n"
      "  --crash-restarts K  crash-during-delivery + reboot-from-storage\n"
      "                      (storage-backed protocols only: rec-paxos)\n"
      "  --flips K           corrupt-deliver byte-flipped frame copies\n"
      "  --equivocations K   divergent-duplicate (equivocating) deliveries\n\n"
      "explore flags:  --max-depth D  --max-transitions T  --no-sleep-sets\n"
      "                --threads T  deterministic parallel DFS (same\n"
      "                counterexample and totals for every thread count)\n"
      "swarm flags:    --seed S  --runs R  --max-steps K  --threads T\n"
      "output:         --out FILE   write minimized replay on violation\n\n"
      "exit codes: 0 no violation / repro ok, 1 violation / repro failed,\n"
      "            2 usage error\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    usage();
    return argc < 2 ? 2 : 0;
  }
  const std::string mode = argv[1];
  if (mode == "repro") return run_repro(argc, argv);
  const Flags flags = parse_flags(argc, argv, 2);
  if (mode == "explore") return run_explore(flags);
  if (mode == "swarm") return run_swarm(flags);
  usage();
  return 2;
}
