// Thread-safe metrics registry shared by the deterministic sim and the
// threaded runtime.
//
// Design constraints, in order:
//   * lock-free hot path — instrumented code holds a pre-registered
//     Counter*/Gauge*/Histogram* and updates it with relaxed atomics; the
//     registry mutex is touched only at registration and snapshot time;
//   * stable handles — metrics live in unique_ptrs inside the registry's
//     maps, so a handle obtained once stays valid for the registry's
//     lifetime regardless of later registrations;
//   * deterministic export — snapshot() walks std::maps keyed by family name
//     and canonical label string, so a fixed-seed sim run serializes to
//     byte-identical JSON (the determinism contract in docs/OBSERVABILITY.md);
//   * header-only — the sim library instruments itself against this header
//     without linking anything beyond zdc_common (the compiled exporters
//     live in zdc_obs).
//
// Instrumented code treats a null registry as "metrics off": harnesses keep
// nullable handle vectors and guard each update with a pointer check, which
// costs one predictable branch when disabled.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace zdc::obs {

/// Unordered (key, value) label pairs; canonicalized by the registry.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. inc() is a relaxed fetch_add — safe from any thread.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, window sizes).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: cumulative-style export, lock-free observe().
/// Bucket i counts samples <= bounds[i]; one overflow bucket catches the
/// rest. The bound vector is immutable after construction, so readers never
/// race with layout changes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    ZDC_ASSERT_MSG(
        std::is_sorted(bounds_.begin(), bounds_.end()),
        "histogram bucket bounds must be ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
  }

  void observe(double x) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() = overflow.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket layout (milliseconds): covers sub-δ LAN hops
/// through multi-second WAN degradations.
inline std::vector<double> default_latency_buckets_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,
          25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0};
}

enum class MetricKind { kCounter, kGauge, kHistogram };

inline const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Named metric families with label support. counter()/gauge()/histogram()
/// register-or-fetch: the first call under a (family, labels) key creates
/// the metric, later calls return the same handle. Family kinds are sticky —
/// re-registering a name under a different kind is a programming error and
/// asserts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {}) {
    common::MutexLock lock(mu_);
    Family& fam = family(name, MetricKind::kCounter);
    auto& slot = fam.counters[canonical_labels(labels)];
    if (!slot.metric) slot = {sorted(labels), std::make_unique<Counter>()};
    return *slot.metric;
  }

  Gauge& gauge(const std::string& name, const Labels& labels = {}) {
    common::MutexLock lock(mu_);
    Family& fam = family(name, MetricKind::kGauge);
    auto& slot = fam.gauges[canonical_labels(labels)];
    if (!slot.metric) slot = {sorted(labels), std::make_unique<Gauge>()};
    return *slot.metric;
  }

  /// The first registration of a family fixes its bucket layout; later calls
  /// may pass any bounds (ignored) — pass {} to fetch an existing histogram.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {}) {
    common::MutexLock lock(mu_);
    Family& fam = family(name, MetricKind::kHistogram);
    if (fam.bounds.empty()) {
      fam.bounds = bounds.empty() ? default_latency_buckets_ms()
                                  : std::move(bounds);
    }
    auto& slot = fam.histograms[canonical_labels(labels)];
    if (!slot.metric) {
      slot = {sorted(labels), std::make_unique<Histogram>(fam.bounds)};
    }
    return *slot.metric;
  }

  /// One exported point: the sorted label pairs plus the value fields of
  /// its kind (counter/gauge scalars or the full histogram state).
  struct Point {
    Labels labels;  ///< sorted by key; values are plain (no escaping needed)
    std::uint64_t counter = 0;
    double gauge = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< size bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  struct FamilySnapshot {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::vector<Point> points;
  };

  /// Families sorted by name, points sorted by canonical label string — the
  /// deterministic order every exporter relies on.
  using Snapshot = std::vector<FamilySnapshot>;

  [[nodiscard]] Snapshot snapshot() const {
    common::MutexLock lock(mu_);
    Snapshot out;
    out.reserve(families_.size());
    for (const auto& [name, fam] : families_) {
      FamilySnapshot fs;
      fs.name = name;
      fs.kind = fam.kind;
      for (const auto& [key, entry] : fam.counters) {
        Point pt;
        pt.labels = entry.labels;
        pt.counter = entry.metric->value();
        fs.points.push_back(std::move(pt));
      }
      for (const auto& [key, entry] : fam.gauges) {
        Point pt;
        pt.labels = entry.labels;
        pt.gauge = entry.metric->value();
        fs.points.push_back(std::move(pt));
      }
      for (const auto& [key, entry] : fam.histograms) {
        Point pt;
        pt.labels = entry.labels;
        pt.bounds = entry.metric->bounds();
        pt.buckets.reserve(pt.bounds.size() + 1);
        for (std::size_t i = 0; i <= pt.bounds.size(); ++i) {
          pt.buckets.push_back(entry.metric->bucket(i));
        }
        pt.count = entry.metric->count();
        pt.sum = entry.metric->sum();
        fs.points.push_back(std::move(pt));
      }
      out.push_back(std::move(fs));
    }
    return out;
  }

  /// Renders labels in canonical order: sorted by key, `k=v` joined by
  /// commas (no quoting — label values in this codebase are plain tokens).
  /// Points within a family export in this key's order.
  static std::string canonical_labels(const Labels& labels) {
    std::string out;
    for (const auto& [k, v] : sorted(labels)) {
      if (!out.empty()) out += ',';
      out += k;
      out += '=';
      out += v;
    }
    return out;
  }

 private:
  static Labels sorted(Labels labels) {
    std::sort(labels.begin(), labels.end());
    return labels;
  }

  template <typename T>
  struct Entry {
    Labels labels;
    std::unique_ptr<T> metric;
  };

  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;  ///< histogram families: shared layout
    std::map<std::string, Entry<Counter>> counters;
    std::map<std::string, Entry<Gauge>> gauges;
    std::map<std::string, Entry<Histogram>> histograms;
  };

  Family& family(const std::string& name, MetricKind kind)
      ZDC_REQUIRES(mu_) {
    auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
      it->second.kind = kind;
    } else {
      ZDC_ASSERT_MSG(it->second.kind == kind,
                     "metric family re-registered under a different kind");
    }
    return it->second;
  }

  mutable common::Mutex mu_;
  std::map<std::string, Family> families_ ZDC_GUARDED_BY(mu_);
};

/// Convenience: the per-process label every fabric uses.
inline Labels process_label(ProcessId p) {
  return {{"process", std::to_string(p)}};
}

}  // namespace zdc::obs
