// The shared run-options surface.
//
// Every harness — the sim worlds (ConsensusWorld / AbcastWorld /
// SequenceWorld) and the threaded runtime — used to duplicate the same
// group/network/failure-detector/seed block. RunOptions is that block,
// extracted once: sim run configs inherit it (so `cfg.group = ...` keeps
// working everywhere), the runtime maps it via
// RuntimeCluster::Config::from_options(), and the observability hooks
// (metrics registry, sim trace recorder) and the consolidated batching knobs
// ride along instead of accumulating as scattered per-protocol setters.
//
// The fluent with_*() mutators return *this, so configs build in one
// expression:
//
//   auto cfg = zdc::RunOptions{}
//                  .with_group(4, 1)
//                  .with_seed(42)
//                  .with_metrics(&registry);
//
// Note the builders return RunOptions& — derived configs (AbcastRunConfig
// etc.) use them for the shared block and set their own fields afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "abcast/batching.h"
#include "common/stable_storage.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/fd_sim.h"
#include "sim/lan_model.h"
#include "sim/trace.h"

namespace zdc {

/// Per-process stable-storage builder (see common/stable_storage.h).
/// Implementations: the in-memory default, or the WAL-backed
/// storage::DurableStableStorage (over a MemEnv for determinism, PosixEnv
/// for real disks, FaultyEnv for scripted crash points).
using StorageFactory = common::StorageFactory;

/// Service-layer knobs (src/service): client sessions with request dedup
/// and lease-protected read-index reads. Plain data here — the rsm layer
/// reads it off RunOptions; the sim fabric and raw runtime clusters ignore
/// it (from_options drops it deliberately, like the sim-only fields).
struct ServiceOptions {
  /// Frame commands in (client id, seqno) session envelopes with
  /// server-side dedup tables (retried commands apply exactly once).
  bool sessions = false;
  /// Serve reads from the lease-holding leader's applied state without a
  /// consensus round; unsafe leases downgrade to ordered reads.
  bool read_index = false;
  /// A leader's lease is fresh while its failure detector saw a majority
  /// of peers within this window; stale => block or downgrade the read.
  double lease_ms = 80.0;
};

struct RunOptions {
  GroupParams group{4, 1};
  sim::NetworkConfig net;
  sim::FdConfig fd;
  std::uint64_t seed = 1;

  /// Consolidated abcast batching knobs (defaults = legacy unbatched
  /// behaviour; the golden traces are pinned at these defaults).
  abcast::BatchingOptions batching;

  /// Optional metrics sink (owned by the caller, outlives the run).
  /// nullptr = metrics off; instrumented code pays one branch.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional structured run trace (owned by the caller, outlives the run).
  /// Sim worlds record simulated time; the runtime uses the wall-clock
  /// obs::RuntimeTraceRecorder instead (see obs/runtime_trace.h).
  sim::TraceRecorder* trace = nullptr;

  /// Optional per-process stable-storage factory for crash-recovery
  /// protocols (rec-paxos). Unset = in-memory storage, the legacy default;
  /// protocols never see the difference — only sync_count() and what
  /// survives a crash do.
  StorageFactory storage_factory;

  /// Service-layer knobs, consumed by rsm::ServiceGroup (src/service).
  ServiceOptions service;

  RunOptions& with_group(GroupParams g) {
    group = g;
    return *this;
  }
  RunOptions& with_group(std::uint32_t n, std::uint32_t f) {
    group = GroupParams{n, f};
    return *this;
  }
  RunOptions& with_net(const sim::NetworkConfig& c) {
    net = c;
    return *this;
  }
  RunOptions& with_fd(const sim::FdConfig& c) {
    fd = c;
    return *this;
  }
  RunOptions& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  RunOptions& with_batching(const abcast::BatchingOptions& b) {
    batching = b;
    return *this;
  }
  RunOptions& with_metrics(obs::MetricsRegistry* m) {
    metrics = m;
    return *this;
  }
  RunOptions& with_trace(sim::TraceRecorder* t) {
    trace = t;
    return *this;
  }
  RunOptions& with_storage(StorageFactory f) {
    storage_factory = std::move(f);
    return *this;
  }
  RunOptions& with_service(const ServiceOptions& s) {
    service = s;
    return *this;
  }
  RunOptions& with_sessions(bool on = true) {
    service.sessions = on;
    return *this;
  }
  RunOptions& with_read_index(bool on = true) {
    service.read_index = on;
    return *this;
  }
};

}  // namespace zdc
