#include "obs/runtime_trace.h"

#include <utility>

namespace zdc::obs {

namespace {

// The observability layer is the one legitimate wall-time reader in the
// deterministic-linted tree: runtime traces exist to timestamp real threaded
// executions. Everything else must go through the seeded sim clock.
// zdc-lint: allow(wall-clock): runtime tracing timestamps real threaded runs
using Clock = std::chrono::steady_clock;

std::chrono::nanoseconds now_ns() {
  // zdc-analyze: allow(wall-clock-alias): runtime tracing timestamps real threaded runs (same exemption as the zdc-lint wall-clock allow above)
  return Clock::now().time_since_epoch();
}

}  // namespace

RuntimeTraceRecorder::RuntimeTraceRecorder() : epoch_(now_ns()) {}

void RuntimeTraceRecorder::record(sim::TraceKind kind, ProcessId subject,
                                  ProcessId peer, std::string detail) {
  common::MutexLock lock(mu_);
  sim::TraceEvent ev;
  // Stamp under the lock: event times are monotone in vector order, so a
  // delivery recorded after its send can never appear to precede it.
  ev.time = std::chrono::duration<double, std::milli>(now_ns() - epoch_)
                .count();
  ev.kind = kind;
  ev.subject = subject;
  ev.peer = peer;
  ev.detail = std::move(detail);
  events_.push_back(std::move(ev));
}

std::size_t RuntimeTraceRecorder::size() const {
  common::MutexLock lock(mu_);
  return events_.size();
}

sim::TraceRecorder RuntimeTraceRecorder::freeze() const {
  common::MutexLock lock(mu_);
  sim::TraceRecorder out;
  for (const sim::TraceEvent& ev : events_) {
    out.record(ev.time, ev.kind, ev.subject, ev.peer, ev.detail);
  }
  return out;
}

}  // namespace zdc::obs
