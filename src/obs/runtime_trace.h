// Wall-clock trace recorder for the threaded runtime, emitting the existing
// sim::TraceEvent schema so the sim's diagnostics — render_spacetime() and
// the causal-consistency checker — work on real threaded runs.
//
// Timestamps are milliseconds on a monotonic clock since the recorder's
// construction, taken *under the recorder's mutex*: the event vector is
// time-ordered by construction, and a delivery recorded after its send (the
// happens-before chain send-record -> transport -> deliver-record) always
// carries a later-or-equal stamp, which is exactly what
// TraceRecorder::causally_consistent() checks.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/trace.h"

namespace zdc::obs {

class RuntimeTraceRecorder {
 public:
  RuntimeTraceRecorder();
  RuntimeTraceRecorder(const RuntimeTraceRecorder&) = delete;
  RuntimeTraceRecorder& operator=(const RuntimeTraceRecorder&) = delete;

  /// Appends one event stamped with the current run-relative wall time.
  /// Safe from any thread.
  void record(sim::TraceKind kind, ProcessId subject,
              ProcessId peer = kNoProcess, std::string detail = {});

  [[nodiscard]] std::size_t size() const;

  /// Copies the events recorded so far into a plain sim::TraceRecorder —
  /// the bridge to render_spacetime()/causally_consistent()/count().
  [[nodiscard]] sim::TraceRecorder freeze() const;

 private:
  /// Monotonic-clock nanoseconds at construction (opaque to keep wall-clock
  /// reads confined to the one allow-marked site in runtime_trace.cpp).
  const std::chrono::nanoseconds epoch_;

  mutable common::Mutex mu_;
  std::vector<sim::TraceEvent> events_ ZDC_GUARDED_BY(mu_);
};

}  // namespace zdc::obs
