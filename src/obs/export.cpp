#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace zdc::obs {
namespace {

// %.9g: exact for every bucket bound we emit, deterministic for everything
// else (same double, same text — the byte-identity contract only needs
// determinism, not round-tripping).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

void append_labels_json(std::string* out, const Labels& labels) {
  *out += "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) *out += ", ";
    *out += "\"" + labels[i].first + "\": \"" + labels[i].second + "\"";
  }
  *out += "}";
}

}  // namespace

std::string to_json(const MetricsRegistry::Snapshot& snap) {
  std::string out = "{\n  \"schema\": \"zdc-metrics-v1\",\n  \"families\": [\n";
  for (std::size_t fi = 0; fi < snap.size(); ++fi) {
    const auto& fam = snap[fi];
    out += "    {\"name\": \"" + fam.name + "\", \"type\": \"";
    out += metric_kind_name(fam.kind);
    out += "\", \"points\": [\n";
    for (std::size_t pi = 0; pi < fam.points.size(); ++pi) {
      const auto& pt = fam.points[pi];
      out += "      {\"labels\": ";
      append_labels_json(&out, pt.labels);
      switch (fam.kind) {
        case MetricKind::kCounter:
          out += ", \"value\": " + fmt_u64(pt.counter);
          break;
        case MetricKind::kGauge:
          out += ", \"value\": " + fmt_double(pt.gauge);
          break;
        case MetricKind::kHistogram: {
          out += ", \"count\": " + fmt_u64(pt.count);
          out += ", \"sum\": " + fmt_double(pt.sum);
          out += ", \"bounds\": [";
          for (std::size_t i = 0; i < pt.bounds.size(); ++i) {
            if (i != 0) out += ", ";
            out += fmt_double(pt.bounds[i]);
          }
          out += "], \"buckets\": [";
          for (std::size_t i = 0; i < pt.buckets.size(); ++i) {
            if (i != 0) out += ", ";
            out += fmt_u64(pt.buckets[i]);
          }
          out += "]";
          break;
        }
      }
      out += pi + 1 == fam.points.size() ? "}\n" : "},\n";
    }
    out += fi + 1 == snap.size() ? "    ]}\n" : "    ]},\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string to_prometheus(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  auto render_labels = [](const Labels& labels,
                          const std::string& extra) -> std::string {
    if (labels.empty() && extra.empty()) return "";
    std::string s = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i != 0) s += ",";
      s += labels[i].first + "=\"" + labels[i].second + "\"";
    }
    if (!extra.empty()) {
      if (!labels.empty()) s += ",";
      s += extra;
    }
    s += "}";
    return s;
  };

  for (const auto& fam : snap) {
    out += "# TYPE " + fam.name + " ";
    out += metric_kind_name(fam.kind);
    out += "\n";
    for (const auto& pt : fam.points) {
      switch (fam.kind) {
        case MetricKind::kCounter:
          out += fam.name + render_labels(pt.labels, "") + " " +
                 fmt_u64(pt.counter) + "\n";
          break;
        case MetricKind::kGauge:
          out += fam.name + render_labels(pt.labels, "") + " " +
                 fmt_double(pt.gauge) + "\n";
          break;
        case MetricKind::kHistogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < pt.buckets.size(); ++i) {
            cumulative += pt.buckets[i];
            const std::string le =
                i < pt.bounds.size() ? fmt_double(pt.bounds[i]) : "+Inf";
            out += fam.name + "_bucket" +
                   render_labels(pt.labels, "le=\"" + le + "\"") + " " +
                   fmt_u64(cumulative) + "\n";
          }
          out += fam.name + "_sum" + render_labels(pt.labels, "") + " " +
                 fmt_double(pt.sum) + "\n";
          out += fam.name + "_count" + render_labels(pt.labels, "") + " " +
                 fmt_u64(pt.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Validation: a minimal parser for the subset to_json emits, strict enough to
// catch truncated files, missing keys, arity mismatches and type confusion
// (the same discipline as bench_hotpath's BENCH_hotpath.json validator).

namespace {

struct JsonParser {
  const char* p;
  const char* end;
  bool fail = false;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    fail = true;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  std::string parse_string() {
    skip_ws();
    if (p >= end || *p != '"') {
      fail = true;
      return {};
    }
    ++p;
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        fail = true;  // the exporter never emits escapes
        return {};
      }
      s += *p++;
    }
    if (!consume('"')) return {};
    return s;
  }
  double parse_number() {
    skip_ws();
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) {
      fail = true;
      return 0;
    }
    p = after;
    return v;
  }
};

// Parses {"k": "v", ...}; returns false on malformed input.
bool parse_labels(JsonParser& j) {
  if (!j.consume('{')) return false;
  while (!j.peek('}')) {
    if (j.parse_string().empty()) return false;
    if (!j.consume(':')) return false;
    j.parse_string();
    if (j.fail) return false;
    if (!j.peek('}')) {
      if (!j.consume(',')) return false;
    }
  }
  return j.consume('}');
}

// Parses [n, n, ...] into `out`; empty arrays are accepted.
bool parse_number_array(JsonParser& j, std::vector<double>* out) {
  if (!j.consume('[')) return false;
  while (!j.peek(']')) {
    out->push_back(j.parse_number());
    if (j.fail) return false;
    if (!j.peek(']')) {
      if (!j.consume(',')) return false;
    }
  }
  return j.consume(']');
}

bool is_nonneg_integer(double v) {
  return v >= 0.0 && v == std::floor(v);
}

std::string validate_point(JsonParser& j, const std::string& type) {
  if (!j.consume('{')) return "point is not an object";
  bool saw_labels = false;
  bool saw_value = false;
  bool saw_count = false;
  bool saw_sum = false;
  double count = 0.0;
  std::vector<double> bounds;
  std::vector<double> buckets;
  while (!j.peek('}')) {
    const std::string key = j.parse_string();
    if (j.fail) return "bad point key";
    if (!j.consume(':')) return "point missing ':' after " + key;
    if (key == "labels") {
      if (!parse_labels(j)) return "malformed labels object";
      saw_labels = true;
    } else if (key == "value") {
      const double v = j.parse_number();
      if (type == "counter" && !is_nonneg_integer(v)) {
        return "counter value is not a non-negative integer";
      }
      saw_value = true;
    } else if (key == "count") {
      count = j.parse_number();
      if (!is_nonneg_integer(count)) return "count is not an integer";
      saw_count = true;
    } else if (key == "sum") {
      j.parse_number();
      saw_sum = true;
    } else if (key == "bounds") {
      if (!parse_number_array(j, &bounds)) return "malformed bounds array";
    } else if (key == "buckets") {
      if (!parse_number_array(j, &buckets)) return "malformed buckets array";
    } else {
      return "unknown point key '" + key + "'";
    }
    if (j.fail) return "bad value for point key " + key;
    if (!j.peek('}')) {
      if (!j.consume(',')) return "point missing ','";
    }
  }
  j.consume('}');
  if (!saw_labels) return "point missing labels";
  if (type == "histogram") {
    if (!saw_count || !saw_sum) return "histogram point missing count/sum";
    if (buckets.size() != bounds.size() + 1) {
      return "buckets arity != bounds + 1";
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      if (!(bounds[i - 1] < bounds[i])) return "bounds not ascending";
    }
    double total = 0.0;
    for (double b : buckets) {
      if (!is_nonneg_integer(b)) return "bucket count is not an integer";
      total += b;
    }
    if (total != count) return "bucket counts do not sum to count";
  } else {
    if (!saw_value) return "point missing value";
  }
  return {};
}

std::string validate_family(JsonParser& j) {
  if (!j.consume('{')) return "family is not an object";
  bool saw_name = false;
  std::string type;
  bool saw_points = false;
  while (!j.peek('}')) {
    const std::string key = j.parse_string();
    if (j.fail) return "bad family key";
    if (!j.consume(':')) return "family missing ':' after " + key;
    if (key == "name") {
      if (j.parse_string().empty()) return "empty family name";
      saw_name = true;
    } else if (key == "type") {
      type = j.parse_string();
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return "unknown family type '" + type + "'";
      }
    } else if (key == "points") {
      if (type.empty()) return "points before type";
      saw_points = true;
      if (!j.consume('[')) return "points is not an array";
      while (!j.peek(']')) {
        const std::string err = validate_point(j, type);
        if (!err.empty()) return err;
        if (!j.peek(']')) {
          if (!j.consume(',')) return "points missing ','";
        }
      }
      j.consume(']');
    } else {
      return "unknown family key '" + key + "'";
    }
    if (j.fail) return "parse failure after family key " + key;
    if (!j.peek('}')) {
      if (!j.consume(',')) return "family missing ','";
    }
  }
  j.consume('}');
  if (!saw_name) return "family missing name";
  if (type.empty()) return "family missing type";
  if (!saw_points) return "family missing points";
  return {};
}

}  // namespace

std::string validate_metrics_json(const std::string& text) {
  JsonParser j{text.data(), text.data() + text.size()};
  if (!j.consume('{')) return "not a JSON object";

  bool saw_schema = false;
  bool saw_families = false;
  std::size_t family_count = 0;
  for (;;) {
    const std::string key = j.parse_string();
    if (j.fail) return "bad key";
    if (!j.consume(':')) return "missing ':' after " + key;
    if (key == "schema") {
      const std::string v = j.parse_string();
      if (v != "zdc-metrics-v1") return "unknown schema '" + v + "'";
      saw_schema = true;
    } else if (key == "families") {
      saw_families = true;
      if (!j.consume('[')) return "families is not an array";
      while (!j.peek(']')) {
        const std::string err = validate_family(j);
        if (!err.empty()) return err;
        ++family_count;
        if (!j.peek(']')) {
          if (!j.consume(',')) return "families missing ','";
        }
      }
      j.consume(']');
    } else {
      return "unknown key '" + key + "'";
    }
    if (j.fail) return "parse failure after key " + key;
    if (j.peek('}')) break;
    if (!j.consume(',')) return "missing ',' between keys";
  }
  j.consume('}');
  j.skip_ws();
  if (j.p != j.end) return "trailing garbage";
  if (!saw_schema) return "missing schema";
  if (!saw_families) return "missing families";
  if (family_count == 0) return "families is empty";
  return {};
}

}  // namespace zdc::obs
