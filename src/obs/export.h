// Metric snapshot exporters: schema-validated JSON ("zdc-metrics-v1", same
// emit/validate discipline as bench's BENCH_hotpath.json) and Prometheus
// text exposition format.
//
// Both serializers are pure functions of a MetricsRegistry::Snapshot, whose
// family and point ordering is deterministic — a fixed-seed sim run therefore
// exports byte-identical text across runs (the contract scripts/check.sh's
// metrics stage enforces with cmp).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace zdc::obs {

/// Serializes a snapshot as a "zdc-metrics-v1" JSON document.
std::string to_json(const MetricsRegistry::Snapshot& snap);

/// Serializes a snapshot in Prometheus text exposition format (# TYPE
/// comments, cumulative _bucket{le=...}/_sum/_count histogram triples).
std::string to_prometheus(const MetricsRegistry::Snapshot& snap);

/// Validates a "zdc-metrics-v1" document: schema tag, per-family name/type/
/// points, histogram bucket/bound arity and count consistency. Returns an
/// empty string when `text` conforms, else a one-line diagnostic.
std::string validate_metrics_json(const std::string& text);

}  // namespace zdc::obs
