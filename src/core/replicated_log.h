// Append-only replicated log: the second state machine shipped with the
// library (the KV store shows last-writer-wins maps; the log shows
// result-bearing commands whose outcome depends on the total order —
// append returns the index the entry landed at, identical on every replica).
//
// Commands:
//   APPEND data          -> "idx:<n>"
//   READ   index         -> "data:<bytes>" or "out_of_range"
//   LEN                  -> "len:<n>"
//   TRIM   up_to_index   -> "ok" (drops entries below; indices stay stable)
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "core/rsm.h"

namespace zdc::core {

enum class LogOp : std::uint8_t { kAppend = 1, kRead = 2, kLen = 3, kTrim = 4 };

std::string log_append(const std::string& data);
std::string log_read(std::uint64_t index);
std::string log_len();
std::string log_trim(std::uint64_t up_to_index);

class ReplicatedLogStateMachine final : public StateMachine {
 public:
  std::string apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;

  /// Local (not linearizable) accessors.
  [[nodiscard]] std::uint64_t size() const { return next_index_; }
  [[nodiscard]] std::uint64_t first_index() const { return first_index_; }
  [[nodiscard]] std::optional<std::string> entry(std::uint64_t index) const;

 private:
  std::deque<std::string> entries_;
  std::uint64_t first_index_ = 0;  ///< index of entries_.front()
  std::uint64_t next_index_ = 0;   ///< index the next append receives
};

}  // namespace zdc::core
