// Append-only replicated log: the second state machine shipped with the
// library (the KV store shows last-writer-wins maps; the log shows
// result-bearing commands whose outcome depends on the total order —
// append returns the index the entry landed at, identical on every replica).
//
// Commands (reply grammar pinned by replicated_log_test):
//   APPEND data          -> "idx:<n>"
//   READ   index         -> "data:<bytes>" or "out_of_range"
//   LEN                  -> "len:<n>"
//   TRIM   up_to_index   -> "ok" (drops entries below; indices stay stable)
//
// Index contract: entries occupy the half-open window
// [first_index(), end_index()). APPEND assigns end_index() and advances it;
// TRIM advances first_index() without renumbering anything. READ replies
// "data:..." exactly for indices inside the window — first_index() is the
// oldest readable entry, end_index() (and anything trimmed away) is
// "out_of_range". LEN reports end_index(), the *logical* length: the total
// number of entries ever appended, deliberately unchanged by TRIM so that
// "idx:<n>" results stay meaningful against it. size() is the *live* count,
// end_index() - first_index(), i.e. how many entries READ can still serve.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "core/rsm.h"

namespace zdc::core {

enum class LogOp : std::uint8_t { kAppend = 1, kRead = 2, kLen = 3, kTrim = 4 };

std::string log_append(const std::string& data);
std::string log_read(std::uint64_t index);
std::string log_len();
std::string log_trim(std::uint64_t up_to_index);

class ReplicatedLogStateMachine final : public StateMachine {
 public:
  std::string apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] bool restore(const std::string& image) override;

  /// Local (not linearizable) accessors.
  /// Live entry count: end_index() - first_index() (shrinks on TRIM).
  [[nodiscard]] std::uint64_t size() const {
    return next_index_ - first_index_;
  }
  [[nodiscard]] std::uint64_t first_index() const { return first_index_; }
  /// Index the next APPEND receives; also the logical length LEN reports.
  [[nodiscard]] std::uint64_t end_index() const { return next_index_; }
  [[nodiscard]] std::optional<std::string> entry(std::uint64_t index) const;

 private:
  std::deque<std::string> entries_;
  std::uint64_t first_index_ = 0;  ///< index of entries_.front()
  std::uint64_t next_index_ = 0;   ///< index the next append receives
};

}  // namespace zdc::core
