#include "core/linearizability.h"

namespace zdc::core {

bool order_respects_real_time(const std::vector<ClientOp>& ops,
                              const std::vector<std::string>& order,
                              RealTimeViolation* violation) {
  std::map<std::string, const ClientOp*> by_id;
  for (const ClientOp& op : ops) by_id.emplace(op.id, &op);

  // Collect the timed operations in committed order.
  std::vector<const ClientOp*> timed;
  timed.reserve(order.size());
  for (const std::string& id : order) {
    const auto it = by_id.find(id);
    if (it != by_id.end()) timed.push_back(it->second);
  }

  // order[i] before order[j] is illegal iff order[j] completed before
  // order[i] was invoked.
  for (std::size_t i = 0; i < timed.size(); ++i) {
    for (std::size_t j = i + 1; j < timed.size(); ++j) {
      if (timed[j]->response_ms < timed[i]->invoke_ms) {
        if (violation != nullptr) {
          violation->earlier_in_order = timed[i]->id;
          violation->later_in_order = timed[j]->id;
        }
        return false;
      }
    }
  }
  return true;
}

bool order_respects_real_time_fast(const std::vector<ClientOp>& ops,
                                   const std::vector<std::string>& order,
                                   RealTimeViolation* violation) {
  std::map<std::string, const ClientOp*> by_id;
  for (const ClientOp& op : ops) by_id.emplace(op.id, &op);

  // One pass with the running max of invocation times: order[j] violates
  // real time iff it completed before SOME earlier-ordered op was invoked,
  // and only the latest such invocation matters. Same verdict as the
  // quadratic checker (the pair reported may differ — this one blames the
  // latest-invoked earlier op).
  const ClientOp* max_invoke = nullptr;
  for (const std::string& id : order) {
    const auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    const ClientOp* op = it->second;
    if (max_invoke != nullptr && op->response_ms < max_invoke->invoke_ms) {
      if (violation != nullptr) {
        violation->earlier_in_order = max_invoke->id;
        violation->later_in_order = op->id;
      }
      return false;
    }
    if (max_invoke == nullptr || op->invoke_ms > max_invoke->invoke_ms) {
      max_invoke = op;
    }
  }
  return true;
}

}  // namespace zdc::core
