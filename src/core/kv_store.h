// Replicated key-value store: the canonical StateMachine shipped with the
// library (used by the replicated_kv example and the integration tests).
//
// Commands are binary-encoded (key/value bytes are arbitrary, including NUL).
// Reply grammar (pinned by kv_rsm_test):
//   PUT key value        -> "ok"
//   GET key              -> "value:<bytes>" / "not_found"
//   DEL key              -> "ok" / "not_found"
//   CAS key expect value -> "ok" / "mismatch" / "not_found"
// Any command that fails to decode replies "error:malformed"; an undecodable
// opcode replies "error:unknown_op". GET going through the log gives
// linearizable reads (it is ordered against every write); lookup() reads the
// local replica without ordering.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/rsm.h"

namespace zdc::core {

enum class KvOp : std::uint8_t { kPut = 1, kGet = 2, kDel = 3, kCas = 4 };

/// Command constructors.
std::string kv_put(const std::string& key, const std::string& value);
std::string kv_get(const std::string& key);
std::string kv_del(const std::string& key);
std::string kv_cas(const std::string& key, const std::string& expect,
                   const std::string& value);

class KvStateMachine final : public StateMachine {
 public:
  std::string apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] bool restore(const std::string& image) override;
  /// Read-index serving: GET (and only GET) answered without ordering,
  /// byte-equal with what apply() would reply for the same command.
  [[nodiscard]] std::string apply_read(const std::string& query) const override;

  /// Local (not linearizable) read.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return data_.size(); }

 private:
  std::map<std::string, std::string> data_;
};

}  // namespace zdc::core
