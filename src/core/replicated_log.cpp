#include "core/replicated_log.h"

#include "common/codec.h"

namespace zdc::core {

namespace {

std::string make_command(LogOp op, const std::string& data, std::uint64_t num) {
  common::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(op));
  enc.put_string(data);
  enc.put_u64(num);
  return enc.take();
}

}  // namespace

std::string log_append(const std::string& data) {
  return make_command(LogOp::kAppend, data, 0);
}
std::string log_read(std::uint64_t index) {
  return make_command(LogOp::kRead, "", index);
}
std::string log_len() { return make_command(LogOp::kLen, "", 0); }
std::string log_trim(std::uint64_t up_to_index) {
  return make_command(LogOp::kTrim, "", up_to_index);
}

std::string ReplicatedLogStateMachine::apply(const std::string& command) {
  common::Decoder dec(command);
  const auto op = static_cast<LogOp>(dec.get_u8());
  const std::string data = dec.get_string();
  const std::uint64_t num = dec.get_u64();
  if (!dec.done()) return "error:malformed";

  switch (op) {
    case LogOp::kAppend:
      entries_.push_back(data);
      return "idx:" + std::to_string(next_index_++);
    case LogOp::kRead: {
      if (num < first_index_ || num >= next_index_) return "out_of_range";
      return "data:" + entries_[num - first_index_];
    }
    case LogOp::kLen:
      return "len:" + std::to_string(next_index_);
    case LogOp::kTrim: {
      while (first_index_ < num && !entries_.empty()) {
        entries_.pop_front();
        ++first_index_;
      }
      return "ok";
    }
  }
  return "error:unknown_op";
}

std::string ReplicatedLogStateMachine::snapshot() const {
  // Digest over live entries plus the index frame.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& entry : entries_) mix(entry);
  common::Encoder enc;
  enc.put_u64(h);
  enc.put_u64(first_index_);
  enc.put_u64(next_index_);
  return enc.take();
}

std::string ReplicatedLogStateMachine::serialize() const {
  // Canonical: the index window followed by the live entries in order.
  common::Encoder enc;
  enc.put_u64(first_index_);
  enc.put_u64(next_index_);
  for (const auto& entry : entries_) enc.put_string(entry);
  return enc.take();
}

bool ReplicatedLogStateMachine::restore(const std::string& image) {
  common::Decoder dec(image);
  const std::uint64_t first = dec.get_u64();
  const std::uint64_t next = dec.get_u64();
  if (!dec.ok() || next < first) return false;
  std::deque<std::string> entries;
  for (std::uint64_t i = first; i < next && dec.ok(); ++i) {
    entries.push_back(dec.get_string());
  }
  if (!dec.done() || entries.size() != next - first) return false;
  entries_ = std::move(entries);
  first_index_ = first;
  next_index_ = next;
  return true;
}

std::optional<std::string> ReplicatedLogStateMachine::entry(
    std::uint64_t index) const {
  if (index < first_index_ || index >= next_index_) return std::nullopt;
  return entries_[index - first_index_];
}

}  // namespace zdc::core
