#include "core/kv_store.h"

#include "common/codec.h"

namespace zdc::core {

namespace {

std::string make_command(KvOp op, const std::string& key,
                         const std::string& a = "", const std::string& b = "") {
  common::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(op));
  enc.put_string(key);
  enc.put_string(a);
  enc.put_string(b);
  return enc.take();
}

}  // namespace

std::string kv_put(const std::string& key, const std::string& value) {
  return make_command(KvOp::kPut, key, value);
}

std::string kv_get(const std::string& key) {
  return make_command(KvOp::kGet, key);
}

std::string kv_del(const std::string& key) {
  return make_command(KvOp::kDel, key);
}

std::string kv_cas(const std::string& key, const std::string& expect,
                   const std::string& value) {
  return make_command(KvOp::kCas, key, expect, value);
}

std::string KvStateMachine::apply(const std::string& command) {
  common::Decoder dec(command);
  const auto op = static_cast<KvOp>(dec.get_u8());
  const std::string key = dec.get_string();
  const std::string a = dec.get_string();
  const std::string b = dec.get_string();
  if (!dec.done()) return "error:malformed";

  switch (op) {
    case KvOp::kPut:
      data_[key] = a;
      return "ok";
    case KvOp::kGet: {
      const auto it = data_.find(key);
      return it == data_.end() ? "not_found" : "value:" + it->second;
    }
    case KvOp::kDel:
      return data_.erase(key) > 0 ? "ok" : "not_found";
    case KvOp::kCas: {
      const auto it = data_.find(key);
      if (it == data_.end()) return "not_found";
      if (it->second != a) return "mismatch";
      it->second = b;
      return "ok";
    }
  }
  return "error:unknown_op";
}

std::string KvStateMachine::snapshot() const {
  // FNV-1a over the sorted entries plus the size: replicas with equal state
  // produce equal digests, and (for these test-scale maps) vice versa.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& [k, v] : data_) {
    mix(k);
    mix(v);
  }
  common::Encoder enc;
  enc.put_u64(h);
  enc.put_u64(data_.size());
  return enc.take();
}

std::string KvStateMachine::serialize() const {
  // Canonical: entry count followed by the (key, value) pairs in key order
  // (std::map iteration order), so equal states serialize to equal bytes.
  common::Encoder enc;
  enc.put_u64(data_.size());
  for (const auto& [k, v] : data_) {
    enc.put_string(k);
    enc.put_string(v);
  }
  return enc.take();
}

bool KvStateMachine::restore(const std::string& image) {
  common::Decoder dec(image);
  const std::uint64_t count = dec.get_u64();
  std::map<std::string, std::string> next;
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    std::string key = dec.get_string();
    std::string value = dec.get_string();
    if (!dec.ok()) break;
    next.emplace(std::move(key), std::move(value));
  }
  if (!dec.done() || next.size() != count) return false;
  data_ = std::move(next);
  return true;
}

std::string KvStateMachine::apply_read(const std::string& query) const {
  common::Decoder dec(query);
  const auto op = static_cast<KvOp>(dec.get_u8());
  const std::string key = dec.get_string();
  const std::string a = dec.get_string();
  const std::string b = dec.get_string();
  if (!dec.done()) return "error:malformed";
  static_cast<void>(a);
  static_cast<void>(b);
  if (op != KvOp::kGet) return "error:unsupported_read";
  const auto it = data_.find(key);
  return it == data_.end() ? "not_found" : "value:" + it->second;
}

std::optional<std::string> KvStateMachine::lookup(const std::string& key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace zdc::core
