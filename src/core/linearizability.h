// Real-time order checking for replicated-state-machine histories.
//
// State-machine replication makes every command atomic at its position in
// the broadcast total order; the client-visible guarantee (linearizability)
// additionally requires that this order respect *real time*: if operation A
// completed (its submitter observed the result) before operation B was even
// invoked, A must precede B in the committed order. Semantic correctness of
// the outcomes is then just the deterministic state machine applied in that
// order — which replicas already cross-check via snapshot equality.
//
// The checker takes per-operation real-time intervals and the committed
// order, and reports the first violating pair (if any). Used by the runtime
// integration tests to validate the client-facing story end to end.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zdc::core {

struct ClientOp {
  std::string id;           ///< unique operation id
  double invoke_ms = 0.0;   ///< client submitted at this time
  double response_ms = 0.0; ///< client observed the result at this time
};

struct RealTimeViolation {
  std::string earlier_in_order;  ///< committed earlier...
  std::string later_in_order;    ///< ...than this op, which finished first
};

/// True iff the committed `order` respects the real-time precedence of
/// `ops`: no operation is ordered after one that was invoked only after it
/// had already completed. Operations appearing in `order` without timing
/// info are ignored; `violation` (optional) receives the first offending
/// pair. O(len(order)^2) — intended for test-scale histories.
bool order_respects_real_time(const std::vector<ClientOp>& ops,
                              const std::vector<std::string>& order,
                              RealTimeViolation* violation = nullptr);

/// Same verdict as order_respects_real_time in O(len(order) · log|ops|):
/// a single scan carrying the running max of invocation times (an op
/// violates real time iff it completed before the latest invocation among
/// ops ordered before it). Scales to the service simulator's 10^5+-session
/// histories; the reported pair may differ from the quadratic checker's
/// (this one blames the latest-invoked earlier op).
bool order_respects_real_time_fast(const std::vector<ClientOp>& ops,
                                   const std::vector<std::string>& order,
                                   RealTimeViolation* violation = nullptr);

}  // namespace zdc::core
