// State machine replication over atomic broadcast (Schneider's approach, the
// paper's motivating application: "Atomic broadcast, which is at the core of
// state machine replication, can be implemented as a sequence of consensus
// instances").
//
// A deterministic StateMachine is applied to the a-delivered command stream;
// because every replica applies the same commands in the same total order,
// replicas converge. The glue is transport-agnostic: bind it to a
// RuntimeNode, a simulator hook, or anything that can a-broadcast bytes and
// call back on delivery.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "abcast/abcast.h"

namespace zdc::core {

/// A deterministic application state machine. apply() must depend only on the
/// current state and the command (no clocks, no randomness), which is what
/// makes replica convergence a theorem instead of a hope.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  /// Executes one command; returns the command's result.
  virtual std::string apply(const std::string& command) = 0;
  /// Canonical digest of the full state; equal digests <=> equal state.
  [[nodiscard]] virtual std::string snapshot() const = 0;

  /// Full-state serialization for snapshot transfer and durable snapshots:
  /// restore(serialize()) on a fresh machine must reproduce a state with an
  /// equal snapshot() digest AND equal results for every subsequent apply()
  /// (the round-trip contract pinned by rsm_snapshot_test). The encoding is
  /// canonical — two machines with equal state serialize to equal bytes.
  [[nodiscard]] virtual std::string serialize() const = 0;
  /// Replaces the machine's entire state with a serialize() image. Returns
  /// false (leaving the state unspecified) on a malformed image; callers
  /// treat that as corruption, not as a state.
  [[nodiscard]] virtual bool restore(const std::string& image) = 0;

  /// Optional read-only query hook for read-index serving (rsm::ServiceGroup
  /// routes lease-protected reads here instead of through consensus). Must
  /// not mutate state, and for any query q, apply_read(q) must equal what
  /// apply(q) would return when q names a read-only command — that equality
  /// is what lets a service downgrade an unsafe lease read to a full
  /// consensus round without the client seeing a different answer. Machines
  /// that serve no reads keep the default.
  [[nodiscard]] virtual std::string apply_read(const std::string& query) const {
    static_cast<void>(query);
    return "error:unsupported_read";
  }
};

class ReplicatedStateMachine {
 public:
  /// How to hand a command to the atomic broadcast layer.
  using SubmitFn = std::function<void(std::string command)>;
  /// Observation hook, fired after each apply (id, command, result).
  using AppliedFn = std::function<void(const abcast::MsgId&, const std::string&,
                                       const std::string&)>;

  explicit ReplicatedStateMachine(std::unique_ptr<StateMachine> machine);

  void bind_submit(SubmitFn submit) { submit_ = std::move(submit); }
  void set_on_applied(AppliedFn fn) { on_applied_ = std::move(fn); }

  /// Replicates one command (any thread the bound submit function allows).
  void submit(std::string command);

  /// Wire this to the a-deliver callback; must be invoked in the delivery
  /// total order (single-threaded per replica).
  void on_delivered(const abcast::AppMessage& m);

  /// Safe to poll from any thread (progress monitoring); the machine state
  /// itself must only be read once the delivering thread has quiesced.
  [[nodiscard]] std::uint64_t applied_count() const {
    return applied_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const StateMachine& machine() const { return *machine_; }
  [[nodiscard]] StateMachine& machine() { return *machine_; }

 private:
  std::unique_ptr<StateMachine> machine_;
  SubmitFn submit_;
  AppliedFn on_applied_;
  std::atomic<std::uint64_t> applied_{0};
};

}  // namespace zdc::core
