#include "core/rsm.h"

#include "common/assert.h"

namespace zdc::core {

ReplicatedStateMachine::ReplicatedStateMachine(
    std::unique_ptr<StateMachine> machine)
    : machine_(std::move(machine)) {
  ZDC_ASSERT(machine_ != nullptr);
}

void ReplicatedStateMachine::submit(std::string command) {
  ZDC_ASSERT_MSG(submit_ != nullptr, "bind_submit() before submit()");
  submit_(std::move(command));
}

void ReplicatedStateMachine::on_delivered(const abcast::AppMessage& m) {
  const std::string result = machine_->apply(m.payload);
  applied_.fetch_add(1, std::memory_order_release);
  if (on_applied_) on_applied_(m.id, m.payload, result);
}

}  // namespace zdc::core
