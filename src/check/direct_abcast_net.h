// Direct-drive harness for atomic-broadcast protocols: like DirectNet for
// consensus, but with the oracle channel and per-process delivery histories —
// the caller controls exactly which transport message or oracle datagram
// arrives where and when. Moved from tests/direct_abcast_harness.h (which
// re-exports these names) so the schedule-space checker can drive it.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "abcast/abcast.h"
#include "check/invariants.h"
#include "common/types.h"
#include "fault/corrupt.h"
#include "fd/failure_detector.h"

namespace zdc::check {

class DirectAbcastNet {
 public:
  struct Fd {
    struct Omega final : fd::OmegaView {
      [[nodiscard]] ProcessId leader() const override { return value; }
      ProcessId value = 0;
    };
    struct Suspects final : fd::SuspectView {
      [[nodiscard]] bool suspects(ProcessId p) const override {
        return p < flags.size() && flags[p];
      }
      std::vector<bool> flags;
    };
    Omega omega;
    Suspects suspects;
  };

  using Factory = std::function<std::unique_ptr<abcast::AtomicBroadcast>(
      ProcessId self, GroupParams group, abcast::AbcastHost& host,
      const fd::OmegaView& omega, const fd::SuspectView& suspects)>;

  DirectAbcastNet(GroupParams group, const Factory& factory) : group_(group) {
    fds_.resize(group.n);
    hosts_.reserve(group.n);
    delivered_.resize(group.n);
    for (ProcessId p = 0; p < group.n; ++p) {
      fds_[p] = std::make_unique<Fd>();
      fds_[p]->suspects.flags.assign(group.n, false);
      hosts_.push_back(std::make_unique<Host>(*this, p));
    }
    for (ProcessId p = 0; p < group.n; ++p) {
      protocols_.push_back(factory(p, group, *hosts_[p], fds_[p]->omega,
                                   fds_[p]->suspects));
    }
  }

  [[nodiscard]] GroupParams group() const { return group_; }

  abcast::AtomicBroadcast& protocol(ProcessId p) { return *protocols_[p]; }
  Fd& fd(ProcessId p) { return *fds_[p]; }
  [[nodiscard]] const Fd& fd(ProcessId p) const { return *fds_[p]; }
  void set_leader_everywhere(ProcessId leader) {
    for (auto& fd : fds_) fd->omega.value = leader;
  }
  void notify_fd_change(ProcessId p) {
    if (!crashed(p)) protocols_[p]->on_fd_change();
  }
  void notify_fd_change_all() {
    for (ProcessId p = 0; p < group_.n; ++p) notify_fd_change(p);
  }

  abcast::MsgId a_broadcast(ProcessId p, std::string payload) {
    const abcast::MsgId id = protocols_[p]->a_broadcast(std::move(payload));
    submitted_.push_back(id);
    return id;
  }
  /// Every id handed out by a_broadcast — the ground truth for the
  /// No-creation invariant (check_no_creation / check_abcast).
  [[nodiscard]] const std::vector<abcast::MsgId>& submitted() const {
    return submitted_;
  }

  /// Delivery history at process p, in a-deliver order.
  [[nodiscard]] const std::vector<abcast::AppMessage>& delivered(
      ProcessId p) const {
    return delivered_[p];
  }
  [[nodiscard]] const std::vector<std::vector<abcast::AppMessage>>& histories()
      const {
    return delivered_;
  }

  [[nodiscard]] std::size_t pending(ProcessId from, ProcessId to) const {
    const auto it = edges_.find({from, to});
    return it == edges_.end() ? 0 : it->second.size();
  }

  bool deliver_one(ProcessId from, ProcessId to) {
    const auto it = edges_.find({from, to});
    if (it == edges_.end() || it->second.empty()) return false;
    std::string bytes = std::move(it->second.front());
    it->second.pop_front();
    if (!crashed(to)) protocols_[to]->on_message(from, bytes);
    return true;
  }

  /// Takes the oldest oracle datagram of `from` and delivers it to every
  /// process (spontaneous order), or only to `targets` if given. A partial
  /// delivery re-queues the datagram at the back: the WAB oracle's Validity
  /// property promises *eventual* delivery to every correct process, so an
  /// adversary may delay and reorder oracle traffic but not destroy it
  /// (duplicates are fine — Uniform Integrity is the receiver's problem and
  /// every consumer in this codebase is idempotent).
  bool deliver_wab(ProcessId from,
                   const std::vector<ProcessId>* targets = nullptr) {
    const auto it = wab_out_.find(from);
    if (it == wab_out_.end() || it->second.empty()) return false;
    auto datagram = it->second.front();
    it->second.pop_front();
    for (ProcessId to = 0; to < group_.n; ++to) {
      if (targets != nullptr &&
          std::find(targets->begin(), targets->end(), to) == targets->end()) {
        continue;
      }
      if (!crashed(to)) {
        protocols_[to]->on_w_deliver(datagram.first, from, datagram.second);
      }
    }
    if (targets != nullptr) it->second.push_back(std::move(datagram));
    return true;
  }

  [[nodiscard]] std::size_t pending_wab(ProcessId from) const {
    const auto it = wab_out_.find(from);
    return it == wab_out_.end() ? 0 : it->second.size();
  }

  /// Drains transport edges and oracle datagrams until quiescent.
  void settle() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (ProcessId from = 0; from < group_.n; ++from) {
        while (deliver_wab(from)) progressed = true;
        for (ProcessId to = 0; to < group_.n; ++to) {
          if (deliver_one(from, to)) progressed = true;
        }
      }
    }
  }

  /// Arms the equivocating-sender mutant: every transport broadcast by p
  /// delivers per-receiver *divergent* bytes — the last byte of each remote
  /// copy is flipped in a receiver-specific bit (the last byte of a
  /// PaxosAbcast p2a/p2b frame is payload tail, so divergent copies decode
  /// fine and smuggle different app payloads into the same slot). The
  /// sender's own copy stays clean. This is the planted byzantine fault the
  /// Uniform Total Order oracle must catch.
  void arm_equivocation(ProcessId p) { equivocating_ = p; }

  void crash(ProcessId p) { crashed_[p] = true; }
  [[nodiscard]] bool crashed(ProcessId p) const {
    const auto it = crashed_.find(p);
    return it != crashed_.end() && it->second;
  }
  void drop_edge(ProcessId from, ProcessId to) { edges_.erase({from, to}); }

  /// Pairwise prefix consistency of the delivery histories (Uniform Total
  /// Order), via the shared invariant library.
  [[nodiscard]] bool total_order_ok() const {
    return !check_total_order(delivered_).has_value();
  }

 private:
  struct Host final : abcast::AbcastHost {
    Host(DirectAbcastNet& net, ProcessId self) : net_(net), self_(self) {}
    void send(ProcessId to, std::string bytes) override {
      if (!net_.crashed(self_)) {
        net_.edges_[{self_, to}].push_back(std::move(bytes));
      }
    }
    void broadcast(std::string bytes) override {
      if (net_.crashed(self_)) return;
      const bool equivocate =
          net_.equivocating_ == self_ && !bytes.empty();
      for (ProcessId to = 0; to < net_.group_.n; ++to) {
        if (equivocate && to != self_) {
          net_.edges_[{self_, to}].push_back(fault::bit_flip_copy(
              bytes, bytes.size() - 1, to % 8u));
        } else {
          net_.edges_[{self_, to}].push_back(bytes);
        }
      }
    }
    void w_broadcast(InstanceId k, std::string payload) override {
      if (!net_.crashed(self_)) {
        net_.wab_out_[self_].emplace_back(k, std::move(payload));
      }
    }
    void a_deliver(const abcast::AppMessage& m) override {
      net_.delivered_[self_].push_back(m);
    }
    DirectAbcastNet& net_;
    ProcessId self_;
  };

  GroupParams group_;
  std::vector<std::unique_ptr<Fd>> fds_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<abcast::AtomicBroadcast>> protocols_;
  std::vector<std::vector<abcast::AppMessage>> delivered_;
  std::vector<abcast::MsgId> submitted_;
  std::map<std::pair<ProcessId, ProcessId>, std::deque<std::string>> edges_;
  std::map<ProcessId, std::deque<std::pair<InstanceId, std::string>>> wab_out_;
  std::map<ProcessId, bool> crashed_;
  /// kNoProcess = honest run; otherwise the armed equivocating sender.
  ProcessId equivocating_ = kNoProcess;
};

}  // namespace zdc::check
