#include "check/explorer.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "common/rng.h"

namespace zdc::check {
namespace {

struct Dfs {
  const SystemFactory& factory;
  const ExploreConfig& cfg;
  ExploreResult res;
  std::vector<Choice> path;
  bool aborted = false;  ///< transition budget exhausted

  bool budget_left() {
    return cfg.max_transitions == 0 || res.transitions < cfg.max_transitions;
  }

  /// Rebuilds a system positioned after `path` (stateless backtracking).
  std::unique_ptr<System> rebuild() {
    auto sys = factory();
    for (const Choice& c : path) {
      const bool ok = sys->apply(c);
      ZDC_ASSERT_MSG(ok, "re-execution diverged: prefix choice disabled");
      ++res.transitions;
    }
    return sys;
  }

  /// Explores all extensions of `path`; `sys` is positioned after `path` and
  /// is consumed (left at an arbitrary descendant state). `sleep` holds the
  /// choices provably covered by sibling subtrees. Returns true to abort the
  /// whole search (violation found or budget exhausted).
  bool visit(System& sys, const std::vector<Choice>& sleep) {
    if (auto v = sys.violation()) {
      res.violation = std::move(v);
      res.trace = path;
      return true;
    }
    const std::vector<Choice> enabled = sys.enabled();
    if (enabled.empty()) {
      ++res.paths;  // quiescent leaf
      return false;
    }
    std::vector<Choice> todo;
    todo.reserve(enabled.size());
    for (const Choice& c : enabled) {
      if (std::find(sleep.begin(), sleep.end(), c) == sleep.end()) {
        todo.push_back(c);
      }
    }
    if (todo.empty()) {
      // Everything enabled is asleep: each of these transitions was explored
      // from a sibling, and by independence leads to a state covered there.
      ++res.paths;
      return false;
    }
    if (cfg.max_depth != 0 && path.size() >= cfg.max_depth) {
      ++res.paths;
      ++res.depth_cutoffs;
      return false;
    }
    std::vector<Choice> done;  // siblings already fully explored
    for (std::size_t i = 0; i < todo.size(); ++i) {
      if (!budget_left()) {
        aborted = true;
        return true;
      }
      const Choice& t = todo[i];
      // Sleep set for the child: inherited + already-done siblings, kept
      // only while independent of t (a dependent t may re-enable new
      // behaviour of those choices).
      std::vector<Choice> child_sleep;
      if (cfg.sleep_sets) {
        for (const Choice& u : sleep) {
          if (choices_independent(u, t)) child_sleep.push_back(u);
        }
        for (const Choice& u : done) {
          if (choices_independent(u, t)) child_sleep.push_back(u);
        }
      }
      std::unique_ptr<System> rebuilt;
      System* cur = &sys;
      if (i != 0) {
        // `sys` was consumed by the first child; re-execute the prefix.
        rebuilt = rebuild();
        cur = rebuilt.get();
      }
      const bool ok = cur->apply(t);
      ZDC_ASSERT_MSG(ok, "enabled choice failed to apply");
      ++res.transitions;
      path.push_back(t);
      const bool abort = visit(*cur, child_sleep);
      path.pop_back();
      if (abort) return true;
      done.push_back(t);
    }
    return false;
  }
};

}  // namespace

ExploreResult explore(const SystemFactory& factory, const ExploreConfig& cfg) {
  Dfs dfs{factory, cfg, {}, {}, false};
  auto sys = factory();
  dfs.visit(*sys, {});
  // "Complete" = the whole bounded space was exhausted: neither stopped at a
  // violation nor out of transition budget.
  dfs.res.complete = !dfs.aborted && !dfs.res.violation.has_value();
  return std::move(dfs.res);
}

SwarmResult swarm(const SystemFactory& factory, const SwarmConfig& cfg) {
  SwarmResult res;
  for (std::uint32_t run = 0; run < cfg.runs; ++run) {
    common::Rng rng(common::mix_seed(cfg.seed, "zdc_check.swarm", 0.0, run));
    auto sys = factory();
    std::vector<Choice> trace;
    ++res.runs;
    for (std::uint32_t step = 0; step < cfg.max_steps; ++step) {
      if (auto v = sys->violation()) {
        res.violation = std::move(v);
        res.trace = std::move(trace);
        res.failing_run = run;
        return res;
      }
      const std::vector<Choice> enabled = sys->enabled();
      if (enabled.empty()) break;
      const Choice& c = enabled[rng.next_below(enabled.size())];
      const bool ok = sys->apply(c);
      ZDC_ASSERT_MSG(ok, "enabled choice failed to apply");
      trace.push_back(c);
      ++res.transitions;
    }
    if (auto v = sys->violation()) {
      res.violation = std::move(v);
      res.trace = std::move(trace);
      res.failing_run = run;
      return res;
    }
  }
  return res;
}

}  // namespace zdc::check
