#include "check/explorer.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace zdc::check {
namespace {

// Depth at which the parallel engine stops expanding and turns every
// remaining subtree into an independent work unit. A fixed constant — NOT a
// function of the thread count — so the task decomposition (and with it the
// transition totals, the reported violation and its trace) is byte-identical
// no matter how many workers execute it. Depth 3 with typical branching
// yields hundreds of units: plenty of load-balance slack for any core count.
constexpr std::size_t kSplitDepth = 3;

struct Dfs {
  const SystemFactory& factory;
  const ExploreConfig& cfg;
  ExploreResult res;
  std::vector<Choice> path;
  bool aborted = false;  ///< transition budget exhausted
  /// Transitions spent by *other* units (parallel mode); budget checks add
  /// it to the local count. nullptr in the classic sequential mode.
  const std::atomic<std::uint64_t>* spent_elsewhere = nullptr;

  bool budget_left() {
    if (cfg.max_transitions == 0) return true;
    const std::uint64_t other =
        spent_elsewhere == nullptr
            ? 0
            : spent_elsewhere->load(std::memory_order_relaxed);
    return other + res.transitions < cfg.max_transitions;
  }

  /// Rebuilds a system positioned after `path` (stateless backtracking).
  std::unique_ptr<System> rebuild() {
    auto sys = factory();
    for (const Choice& c : path) {
      const bool ok = sys->apply(c);
      ZDC_ASSERT_MSG(ok, "re-execution diverged: prefix choice disabled");
      ++res.transitions;
    }
    return sys;
  }

  /// Explores all extensions of `path`; `sys` is positioned after `path` and
  /// is consumed (left at an arbitrary descendant state). `sleep` holds the
  /// choices provably covered by sibling subtrees. Returns true to abort the
  /// whole search (violation found or budget exhausted).
  bool visit(System& sys, const std::vector<Choice>& sleep) {
    if (auto v = sys.violation()) {
      res.violation = std::move(v);
      res.trace = path;
      return true;
    }
    const std::vector<Choice> enabled = sys.enabled();
    if (enabled.empty()) {
      ++res.paths;  // quiescent leaf
      return false;
    }
    std::vector<Choice> todo;
    todo.reserve(enabled.size());
    for (const Choice& c : enabled) {
      if (std::find(sleep.begin(), sleep.end(), c) == sleep.end()) {
        todo.push_back(c);
      }
    }
    if (todo.empty()) {
      // Everything enabled is asleep: each of these transitions was explored
      // from a sibling, and by independence leads to a state covered there.
      ++res.paths;
      return false;
    }
    if (cfg.max_depth != 0 && path.size() >= cfg.max_depth) {
      ++res.paths;
      ++res.depth_cutoffs;
      return false;
    }
    std::vector<Choice> done;  // siblings already fully explored
    for (std::size_t i = 0; i < todo.size(); ++i) {
      if (!budget_left()) {
        aborted = true;
        return true;
      }
      const Choice& t = todo[i];
      // Sleep set for the child: inherited + already-done siblings, kept
      // only while independent of t (a dependent t may re-enable new
      // behaviour of those choices).
      std::vector<Choice> child_sleep;
      if (cfg.sleep_sets) {
        for (const Choice& u : sleep) {
          if (choices_independent(u, t)) child_sleep.push_back(u);
        }
        for (const Choice& u : done) {
          if (choices_independent(u, t)) child_sleep.push_back(u);
        }
      }
      std::unique_ptr<System> rebuilt;
      System* cur = &sys;
      if (i != 0) {
        // `sys` was consumed by the first child; re-execute the prefix.
        rebuilt = rebuild();
        cur = rebuilt.get();
      }
      const bool ok = cur->apply(t);
      ZDC_ASSERT_MSG(ok, "enabled choice failed to apply");
      ++res.transitions;
      path.push_back(t);
      const bool abort = visit(*cur, child_sleep);
      path.pop_back();
      if (abort) return true;
      done.push_back(t);
    }
    return false;
  }
};

// --- the parallel engine (cfg.threads >= 1) ---

/// One independent subtree: the choice prefix reaching its root and the
/// sleep set the sequential DFS would have carried there. `index` is the
/// root's DFS-preorder rank among all units — because DFS preorder nests,
/// everything inside unit j precedes everything inside unit k when j < k,
/// so "lowest unit index with a violation, that unit's DFS-first violation"
/// is exactly the violation the sequential search reports first.
struct Unit {
  std::size_t index = 0;
  std::vector<Choice> prefix;
  std::vector<Choice> sleep;
};

/// What executing one unit (or hitting a violating node during expansion)
/// produced. Units run to completion independently; results merge by index.
struct UnitOutcome {
  std::size_t index = 0;
  std::uint64_t transitions = 0;
  std::uint64_t paths = 0;
  std::uint64_t depth_cutoffs = 0;
  std::optional<Violation> violation;
  std::vector<Choice> trace;
  bool aborted = false;
};

/// Replays the sequential DFS — same sibling order, same sleep-set algebra,
/// same rebuild accounting — down to kSplitDepth, where each pending subtree
/// becomes a Unit instead of being descended into. Runs single-threaded
/// before the pool starts, so the unit list is one deterministic artifact.
struct Expander {
  const SystemFactory& factory;
  const ExploreConfig& cfg;
  std::vector<Unit> units;
  std::uint64_t transitions = 0;
  std::uint64_t paths = 0;
  std::uint64_t depth_cutoffs = 0;
  std::vector<Choice> path;

  std::unique_ptr<System> rebuild() {
    auto sys = factory();
    for (const Choice& c : path) {
      const bool ok = sys->apply(c);
      ZDC_ASSERT_MSG(ok, "re-execution diverged: prefix choice disabled");
      ++transitions;
    }
    return sys;
  }

  void expand(System& sys, const std::vector<Choice>& sleep) {
    if (path.size() >= kSplitDepth) {
      // Frontier: the unit's own DFS re-runs the violation / quiescence /
      // sleep / depth checks for this node, so hand it over untouched.
      units.push_back(Unit{units.size(), path, sleep});
      return;
    }
    if (auto v = sys.violation()) {
      // A violating shallow node is a zero-length unit: its subtree is never
      // entered (matching the sequential search), but siblings still run.
      UnitOutcome hit;
      hit.index = units.size();
      hit.violation = std::move(v);
      hit.trace = path;
      units.push_back(Unit{units.size(), {}, {}});
      shallow_hits.push_back(std::move(hit));
      return;
    }
    const std::vector<Choice> enabled = sys.enabled();
    if (enabled.empty()) {
      ++paths;
      return;
    }
    std::vector<Choice> todo;
    todo.reserve(enabled.size());
    for (const Choice& c : enabled) {
      if (std::find(sleep.begin(), sleep.end(), c) == sleep.end()) {
        todo.push_back(c);
      }
    }
    if (todo.empty()) {
      ++paths;
      return;
    }
    if (cfg.max_depth != 0 && path.size() >= cfg.max_depth) {
      ++paths;
      ++depth_cutoffs;
      return;
    }
    std::vector<Choice> done;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      const Choice& t = todo[i];
      std::vector<Choice> child_sleep;
      if (cfg.sleep_sets) {
        for (const Choice& u : sleep) {
          if (choices_independent(u, t)) child_sleep.push_back(u);
        }
        for (const Choice& u : done) {
          if (choices_independent(u, t)) child_sleep.push_back(u);
        }
      }
      std::unique_ptr<System> rebuilt;
      System* cur = &sys;
      if (i != 0) {
        rebuilt = rebuild();
        cur = rebuilt.get();
      }
      const bool ok = cur->apply(t);
      ZDC_ASSERT_MSG(ok, "enabled choice failed to apply");
      ++transitions;
      path.push_back(t);
      expand(*cur, child_sleep);
      path.pop_back();
      done.push_back(t);
    }
  }

  /// Violations found at shallow (pre-frontier) nodes, carrying the unit
  /// index reserved for them so they merge by preorder like everything else.
  std::vector<UnitOutcome> shallow_hits;
};

/// Executes one unit to completion: replay the prefix (counted — same rule
/// as backtrack re-execution), then the classic DFS seeded with the
/// inherited sleep set. The unit stops at its own first violation; other
/// units are unaffected (no cross-task cancellation — that is what makes
/// the result independent of execution order, hence of the thread count).
UnitOutcome run_unit(const SystemFactory& factory, const ExploreConfig& cfg,
                     const Unit& u,
                     std::atomic<std::uint64_t>& spent_total) {
  Dfs dfs{factory, cfg, {}, {}, false, &spent_total};
  dfs.path = u.prefix;
  auto sys = dfs.rebuild();
  dfs.visit(*sys, u.sleep);
  spent_total.fetch_add(dfs.res.transitions, std::memory_order_relaxed);
  UnitOutcome out;
  out.index = u.index;
  out.transitions = dfs.res.transitions;
  out.paths = dfs.res.paths;
  out.depth_cutoffs = dfs.res.depth_cutoffs;
  out.violation = std::move(dfs.res.violation);
  out.trace = std::move(dfs.res.trace);
  out.aborted = dfs.aborted;
  return out;
}

/// Work-stealing pool over a fixed unit list: units are dealt round-robin
/// into per-worker deques; an owner pops its own front (preserving rough
/// preorder locality), a thief steals another's back. No unit spawns more
/// units, so a worker finding every deque empty can simply retire.
void run_units_on_pool(const SystemFactory& factory, const ExploreConfig& cfg,
                       const std::vector<Unit>& units, std::uint32_t threads,
                       std::vector<UnitOutcome>& out) {
  std::atomic<std::uint64_t> spent_total{0};
  out.resize(units.size());
  const std::size_t workers = std::min<std::size_t>(
      threads == 0 ? 1 : threads, units.empty() ? 1 : units.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < units.size(); ++i) {
      out[i] = run_unit(factory, cfg, units[i], spent_total);
    }
    return;
  }
  struct WorkDeque {
    common::Mutex mu;
    std::deque<std::size_t> q ZDC_GUARDED_BY(mu);
  };
  std::vector<WorkDeque> deques(workers);
  for (std::size_t i = 0; i < units.size(); ++i) {
    deques[i % workers].q.push_back(i);
  }
  const auto worker = [&](std::size_t self) {
    for (;;) {
      std::size_t job = units.size();  // sentinel: nothing found
      {
        common::MutexLock lock(deques[self].mu);
        if (!deques[self].q.empty()) {
          job = deques[self].q.front();
          deques[self].q.pop_front();
        }
      }
      if (job == units.size()) {
        for (std::size_t v = 0; v < workers && job == units.size(); ++v) {
          if (v == self) continue;
          common::MutexLock lock(deques[v].mu);
          if (!deques[v].q.empty()) {
            job = deques[v].q.back();  // steal the cold end
            deques[v].q.pop_back();
          }
        }
      }
      if (job == units.size()) return;  // all deques drained: no more work
      // Distinct workers write distinct indices; no lock needed.
      out[job] = run_unit(factory, cfg, units[job], spent_total);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
}

ExploreResult explore_parallel(const SystemFactory& factory,
                               const ExploreConfig& cfg) {
  Expander exp{factory, cfg, {}, 0, 0, 0, {}, {}};
  {
    auto sys = factory();
    exp.expand(*sys, {});
  }
  std::vector<UnitOutcome> outcomes;
  run_units_on_pool(factory, cfg, exp.units, cfg.threads, outcomes);
  for (auto& hit : exp.shallow_hits) {
    // A shallow violation overwrites its placeholder unit's (empty) result.
    outcomes[hit.index] = std::move(hit);
  }
  ExploreResult res;
  res.transitions = exp.transitions;
  res.paths = exp.paths;
  res.depth_cutoffs = exp.depth_cutoffs;
  bool aborted = false;
  const UnitOutcome* first_violation = nullptr;
  for (const UnitOutcome& o : outcomes) {
    res.transitions += o.transitions;
    res.paths += o.paths;
    res.depth_cutoffs += o.depth_cutoffs;
    aborted = aborted || o.aborted;
    if (o.violation.has_value() &&
        (first_violation == nullptr || o.index < first_violation->index)) {
      first_violation = &o;
    }
  }
  if (first_violation != nullptr) {
    res.violation = first_violation->violation;
    res.trace = first_violation->trace;
  }
  res.complete = !aborted && !res.violation.has_value();
  return res;
}

/// One swarm run, fully determined by (factory, cfg.seed, run index).
struct SwarmRunOutcome {
  std::uint64_t transitions = 0;
  std::optional<Violation> violation;
  std::vector<Choice> trace;
};

SwarmRunOutcome swarm_run(const SystemFactory& factory, const SwarmConfig& cfg,
                          std::uint32_t run) {
  SwarmRunOutcome out;
  common::Rng rng(common::mix_seed(cfg.seed, "zdc_check.swarm", 0.0, run));
  auto sys = factory();
  std::vector<Choice> trace;
  for (std::uint32_t step = 0; step < cfg.max_steps; ++step) {
    if (auto v = sys->violation()) {
      out.violation = std::move(v);
      out.trace = std::move(trace);
      return out;
    }
    const std::vector<Choice> enabled = sys->enabled();
    if (enabled.empty()) break;
    const Choice& c = enabled[rng.next_below(enabled.size())];
    const bool ok = sys->apply(c);
    ZDC_ASSERT_MSG(ok, "enabled choice failed to apply");
    trace.push_back(c);
    ++out.transitions;
  }
  if (auto v = sys->violation()) {
    out.violation = std::move(v);
    out.trace = std::move(trace);
  }
  return out;
}

}  // namespace

ExploreResult explore(const SystemFactory& factory, const ExploreConfig& cfg) {
  if (cfg.threads >= 1) return explore_parallel(factory, cfg);
  Dfs dfs{factory, cfg, {}, {}, false, nullptr};
  auto sys = factory();
  dfs.visit(*sys, {});
  // "Complete" = the whole bounded space was exhausted: neither stopped at a
  // violation nor out of transition budget.
  dfs.res.complete = !dfs.aborted && !dfs.res.violation.has_value();
  return std::move(dfs.res);
}

SwarmResult swarm(const SystemFactory& factory, const SwarmConfig& cfg) {
  SwarmResult res;
  if (cfg.threads >= 1) {
    // Parallel mode runs ALL runs (each independently seeded by its run
    // index) and reports the lowest failing index — the same failure a
    // sequential sweep would stop at, independent of the thread count.
    std::vector<SwarmRunOutcome> outcomes(cfg.runs);
    std::atomic<std::uint32_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::uint32_t run =
            next.fetch_add(1, std::memory_order_relaxed);
        if (run >= cfg.runs) return;
        outcomes[run] = swarm_run(factory, cfg, run);
      }
    };
    const std::uint32_t workers =
        std::min(cfg.threads, cfg.runs == 0 ? 1u : cfg.runs);
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
    }
    res.runs = cfg.runs;
    for (std::uint32_t run = 0; run < cfg.runs; ++run) {
      res.transitions += outcomes[run].transitions;
      if (!res.violation.has_value() && outcomes[run].violation.has_value()) {
        res.violation = std::move(outcomes[run].violation);
        res.trace = std::move(outcomes[run].trace);
        res.failing_run = run;
      }
    }
    return res;
  }
  for (std::uint32_t run = 0; run < cfg.runs; ++run) {
    ++res.runs;
    SwarmRunOutcome out = swarm_run(factory, cfg, run);
    res.transitions += out.transitions;
    if (out.violation.has_value()) {
      res.violation = std::move(out.violation);
      res.trace = std::move(out.trace);
      res.failing_run = run;
      return res;
    }
  }
  return res;
}

}  // namespace zdc::check
