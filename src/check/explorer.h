// Schedule-space exploration over a System (src/check/system.h).
//
// Two modes:
//
//   explore() — bounded exhaustive DFS with sleep-set partial-order
//   reduction. Protocol instances are not copyable, so the search is
//   *stateless*: backtracking rebuilds a fresh system from the factory and
//   re-applies the choice prefix. Sound for state properties: sleep sets
//   only prune interleavings that provably reach an already-covered state
//   (see choices_independent and docs/CHECKING.md).
//
//   swarm() — seeded random walks, the budgeted fuzz mode for spaces DFS
//   cannot exhaust. Each run's schedule flows from one Rng seeded by
//   mix_seed(seed, "zdc_check.swarm", 0, run), so a failing run is
//   reproducible from (scenario, seed, run index) alone — and the recorded
//   trace makes even that unnecessary.
//
// Both stop at the first invariant violation and hand back the choice trace
// that reached it, ready for the shrinker (src/check/shrink.h).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "check/choice.h"
#include "check/invariants.h"
#include "check/system.h"

namespace zdc::check {

struct ExploreConfig {
  /// Paths longer than this are truncated (counted in depth_cutoffs);
  /// 0 = no depth bound.
  std::uint32_t max_depth = 0;
  /// Total apply() budget, including re-execution on backtrack; the search
  /// aborts with complete=false when it runs out. 0 = unbounded.
  std::uint64_t max_transitions = 0;
  /// Disable only to measure what the reduction saves.
  bool sleep_sets = true;
  /// 0 = classic in-place sequential DFS (stops at the first violation).
  /// >= 1 = the deterministic task-decomposed engine on that many worker
  /// threads: the tree is expanded in DFS preorder to a fixed split depth,
  /// every frontier subtree becomes an independent work unit, and ALL units
  /// run to completion on a work-stealing pool — so the transition total,
  /// the reported violation (the preorder-first one) and its trace are
  /// byte-identical for every thread count, 1 included. Unit prefix replay
  /// is counted in `transitions` (same rule as backtrack re-execution).
  /// max_transitions is enforced via a shared counter, so under threads > 1
  /// a budget-aborted search may overshoot slightly; determinism is
  /// guaranteed for searches that finish within the budget.
  std::uint32_t threads = 0;
};

struct ExploreResult {
  /// True when the DFS exhausted the (depth-bounded) space within the
  /// transition budget. A depth-truncated search can still be complete —
  /// complete *up to the depth bound*; depth_cutoffs says whether the bound
  /// ever bit.
  bool complete = false;
  std::uint64_t transitions = 0;  ///< apply() calls, re-execution included
  std::uint64_t paths = 0;        ///< maximal (or truncated) paths visited
  std::uint64_t depth_cutoffs = 0;
  std::optional<Violation> violation;
  /// Choice sequence from the initial state to the violating state.
  std::vector<Choice> trace;
};

ExploreResult explore(const SystemFactory& factory, const ExploreConfig& cfg);

struct SwarmConfig {
  std::uint64_t seed = 1;
  std::uint32_t runs = 256;
  /// Choices per run; a run also ends early at quiescence.
  std::uint32_t max_steps = 512;
  /// 0 = sequential (stops at the first failing run). >= 1 = run ALL runs
  /// on that many workers; each run's schedule depends only on (seed, run
  /// index), the reported failure is the lowest failing run index and
  /// `transitions` sums over every run — identical for every thread count.
  std::uint32_t threads = 0;
};

struct SwarmResult {
  std::uint64_t runs = 0;  ///< runs actually executed
  std::uint64_t transitions = 0;
  std::optional<Violation> violation;
  std::vector<Choice> trace;
  /// Run index (0-based) that violated, valid when `violation` is set.
  std::uint32_t failing_run = 0;
};

SwarmResult swarm(const SystemFactory& factory, const SwarmConfig& cfg);

}  // namespace zdc::check
