#include "check/replay.h"

#include <map>
#include <sstream>

#include "common/assert.h"

namespace zdc::check {
namespace {

constexpr const char* kMagic = "zdc-check-replay-v1";
/// Stand-in for an empty value — every field always has exactly one token,
/// which keeps the format canonical (no trailing spaces, no omitted lines).
constexpr const char* kNone = "-";

bool carryable(const std::string& s) {
  for (const char c : s) {
    if (c == ',' || c == ' ' || c == '\n' || c == '\r' || c == ':') {
      return false;
    }
  }
  return !s.empty();
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::optional<std::uint32_t> parse_u32(const std::string& s) {
  if (s.empty() || s.size() > 9) return std::nullopt;
  std::uint32_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return v;
}

std::optional<ReplayFile> fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return std::nullopt;
}

}  // namespace

std::string serialize_replay(const ReplayFile& file) {
  const ScenarioSpec& spec = file.spec;
  ZDC_ASSERT_MSG(spec.kind == "consensus" || spec.kind == "abcast",
                 "unknown scenario kind");
  std::ostringstream os;
  os << kMagic << "\n";
  os << "kind: " << spec.kind << "\n";
  os << "protocol: " << spec.protocol << "\n";
  os << "mutant: " << (spec.mutant.empty() ? kNone : spec.mutant) << "\n";
  // Emitted only when off: files from checksum-on runs (everything that
  // existed before the knob) stay byte-identical.
  if (!spec.frame_checksums) os << "checksums: off\n";
  os << "n: " << spec.group.n << "\n";
  os << "f: " << spec.group.f << "\n";
  if (spec.kind == "consensus") {
    ZDC_ASSERT_MSG(spec.proposals.size() == spec.group.n,
                   "need one proposal per process");
    os << "proposals: ";
    for (ProcessId p = 0; p < spec.group.n; ++p) {
      ZDC_ASSERT_MSG(carryable(spec.proposals[p]),
                     "proposal not representable in a replay file");
      os << (p == 0 ? "" : ",") << spec.proposals[p];
    }
    os << "\n";
  } else {
    os << "submissions: ";
    if (spec.submissions.empty()) {
      os << kNone;
    } else {
      for (std::size_t i = 0; i < spec.submissions.size(); ++i) {
        const auto& [sender, payload] = spec.submissions[i];
        ZDC_ASSERT_MSG(carryable(payload),
                       "payload not representable in a replay file");
        os << (i == 0 ? "" : ",") << sender << ":" << payload;
      }
    }
    os << "\n";
  }
  os << "omega: ";
  for (ProcessId p = 0; p < spec.group.n; ++p) {
    os << (p == 0 ? "" : ",") << spec.initial_leader_of(p);
  }
  os << "\n";
  os << "violation: " << (file.violation.empty() ? kNone : file.violation)
     << "\n";
  os << "trace: ";
  if (file.trace.empty()) {
    os << kNone;
  } else {
    os << format_trace(file.trace);
  }
  os << "\n";
  return os.str();
}

std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error) {
  std::vector<std::string> lines = split(text, '\n');
  // A canonical file ends in exactly one newline → one trailing empty entry.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty() || lines[0] != kMagic) {
    return fail(error, std::string("missing magic line \"") + kMagic + "\"");
  }
  std::map<std::string, std::string> fields;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t sep = lines[i].find(": ");
    if (sep == std::string::npos || sep == 0) {
      return fail(error, "malformed line " + std::to_string(i + 1) + ": \"" +
                             lines[i] + "\"");
    }
    const std::string key = lines[i].substr(0, sep);
    if (!fields.emplace(key, lines[i].substr(sep + 2)).second) {
      return fail(error, "duplicate field \"" + key + "\"");
    }
  }
  const auto field = [&](const std::string& key) -> std::optional<std::string> {
    const auto it = fields.find(key);
    if (it == fields.end()) return std::nullopt;
    return it->second;
  };

  ReplayFile out;
  const auto kind = field("kind");
  if (!kind || (*kind != "consensus" && *kind != "abcast")) {
    return fail(error, "kind must be \"consensus\" or \"abcast\"");
  }
  out.spec.kind = *kind;
  const auto protocol = field("protocol");
  if (!protocol || protocol->empty()) return fail(error, "missing protocol");
  out.spec.protocol = *protocol;
  const auto mutant = field("mutant");
  if (!mutant) return fail(error, "missing mutant (use \"-\" for none)");
  out.spec.mutant = *mutant == kNone ? "" : *mutant;
  const auto checksums = field("checksums");
  if (checksums) {
    if (*checksums != "off" && *checksums != "on") {
      return fail(error, "checksums must be \"on\" or \"off\"");
    }
    out.spec.frame_checksums = *checksums == "on";
  }

  const auto n = field("n");
  const auto f = field("f");
  const auto n_val = n ? parse_u32(*n) : std::nullopt;
  const auto f_val = f ? parse_u32(*f) : std::nullopt;
  if (!n_val || !f_val || *n_val == 0 || *n_val > 31 || *f_val >= *n_val) {
    return fail(error, "need 0 < n <= 31 and f < n");
  }
  out.spec.group = GroupParams{*n_val, *f_val};

  if (out.spec.kind == "consensus") {
    const auto proposals = field("proposals");
    if (!proposals) return fail(error, "consensus file needs proposals");
    out.spec.proposals = split(*proposals, ',');
    if (out.spec.proposals.size() != out.spec.group.n) {
      return fail(error, "need exactly n proposals");
    }
    for (const std::string& v : out.spec.proposals) {
      if (!carryable(v)) return fail(error, "empty or malformed proposal");
    }
  } else {
    const auto submissions = field("submissions");
    if (!submissions) {
      return fail(error, "abcast file needs submissions (\"-\" for none)");
    }
    if (*submissions != kNone) {
      for (const std::string& entry : split(*submissions, ',')) {
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos) {
          return fail(error, "submission must be sender:payload");
        }
        const auto sender = parse_u32(entry.substr(0, colon));
        const std::string payload = entry.substr(colon + 1);
        if (!sender || *sender >= out.spec.group.n || !carryable(payload)) {
          return fail(error, "malformed submission \"" + entry + "\"");
        }
        out.spec.submissions.emplace_back(*sender, payload);
      }
    }
  }

  const auto omega = field("omega");
  if (!omega) return fail(error, "missing omega");
  const std::vector<std::string> leaders = split(*omega, ',');
  if (leaders.size() != out.spec.group.n) {
    return fail(error, "need exactly n omega entries");
  }
  for (const std::string& l : leaders) {
    const auto leader = parse_u32(l);
    if (!leader || *leader >= out.spec.group.n) {
      return fail(error, "omega entries must name processes");
    }
    out.spec.omega.push_back(*leader);
  }

  const auto violation = field("violation");
  if (!violation) return fail(error, "missing violation (\"-\" for none)");
  out.violation = *violation == kNone ? "" : *violation;

  const auto trace = field("trace");
  if (!trace || trace->empty()) {
    return fail(error, "missing trace (\"-\" for empty)");
  }
  if (*trace != kNone) {
    for (const std::string& token : split(*trace, ' ')) {
      const auto choice = parse_choice(token);
      if (!choice) return fail(error, "malformed choice \"" + token + "\"");
      out.trace.push_back(*choice);
    }
  }
  return out;
}

}  // namespace zdc::check
