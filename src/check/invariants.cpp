#include "check/invariants.h"

#include <set>
#include <sstream>

namespace zdc::check {
namespace {

std::string step_detail(ProcessId p, const ProcessObs& proc,
                        std::uint32_t bound) {
  std::ostringstream os;
  os << "p" << p << " decided in " << proc.steps << " steps ("
     << (proc.path == consensus::DecisionPath::kForwarded ? "forwarded"
                                                          : "round path")
     << "), bound is " << bound;
  return os.str();
}

}  // namespace

StepBounds step_bounds_for(const std::string& protocol) {
  StepBounds b;
  if (protocol == "l") {
    b.one_step_on_equal = true;
    b.one_step_needs_stable = true;  // Theorem 1: Ω-based ⇒ not both
    b.two_step_stable = true;
  } else if (protocol == "p") {
    b.one_step_on_equal = true;  // ◇P-based: one-step in *every* run
    b.two_step_stable = true;
  } else if (protocol == "paxos" || protocol == "rec-paxos") {
    b.two_step_stable = true;  // ballot 0 skips phase 1
  }
  return b;
}

bool ConsensusObs::equal_proposals() const {
  for (std::size_t i = 1; i < proposals.size(); ++i) {
    if (proposals[i] != proposals[0]) return false;
  }
  return !proposals.empty();
}

std::optional<Violation> check_agreement(const ConsensusObs& obs) {
  // Uniform agreement: current incarnations and decisions handed to the
  // application by incarnations that later crash-restarted all must match.
  const Value* first = nullptr;
  std::string first_who;
  const auto visit = [&](const std::string& who,
                         const Value& decision) -> std::optional<Violation> {
    if (first == nullptr) {
      first = &decision;
      first_who = who;
    } else if (decision != *first) {
      return Violation{"agreement", first_who + " decided \"" + *first +
                                        "\" but " + who + " decided \"" +
                                        decision + "\""};
    }
    return std::nullopt;
  };
  for (const auto& [p, decision] : obs.prior_decisions) {
    if (auto v = visit("p" + std::to_string(p) + " (pre-crash incarnation)",
                       decision)) {
      return v;
    }
  }
  for (ProcessId p = 0; p < obs.procs.size(); ++p) {
    const ProcessObs& proc = obs.procs[p];
    if (!proc.decided) continue;
    if (auto v = visit("p" + std::to_string(p), proc.decision)) return v;
  }
  return std::nullopt;
}

std::optional<Violation> check_validity(const ConsensusObs& obs) {
  const auto was_proposed = [&obs](const Value& decision) {
    for (const Value& v : obs.proposals) {
      if (v == decision) return true;
    }
    return false;
  };
  for (ProcessId p = 0; p < obs.procs.size(); ++p) {
    const ProcessObs& proc = obs.procs[p];
    if (!proc.decided) continue;
    if (!was_proposed(proc.decision)) {
      return Violation{"validity", "p" + std::to_string(p) + " decided \"" +
                                       proc.decision +
                                       "\", which nobody proposed"};
    }
  }
  for (const auto& [p, decision] : obs.prior_decisions) {
    if (!was_proposed(decision)) {
      return Violation{"validity", "p" + std::to_string(p) +
                                       " (pre-crash incarnation) decided \"" +
                                       decision + "\", which nobody proposed"};
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_integrity(const ConsensusObs& obs) {
  for (ProcessId p = 0; p < obs.procs.size(); ++p) {
    const ProcessObs& proc = obs.procs[p];
    if (proc.decided && proc.decision_deliveries != 1) {
      return Violation{"integrity",
                       "p" + std::to_string(p) + " delivered its decision " +
                           std::to_string(proc.decision_deliveries) +
                           " times (must be exactly once)"};
    }
    if (!proc.decided && proc.decision_deliveries != 0) {
      return Violation{"integrity",
                       "p" + std::to_string(p) +
                           " delivered a decision without deciding"};
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_one_step(const ConsensusObs& obs,
                                        const StepBounds& bounds) {
  if (!bounds.one_step_on_equal || !obs.equal_proposals()) return std::nullopt;
  if (!obs.group.one_step_resilient()) return std::nullopt;
  if (bounds.one_step_needs_stable && !obs.stable) return std::nullopt;
  for (ProcessId p = 0; p < obs.procs.size(); ++p) {
    const ProcessObs& proc = obs.procs[p];
    if (!proc.decided) continue;
    const bool forwarded = proc.path == consensus::DecisionPath::kForwarded;
    const std::uint32_t bound = forwarded ? 2 : 1;
    // Round-path decisions must take *exactly* one step: a 0-step decision
    // would be as much a checker bug (or a protocol that decides without
    // communicating) as a 2-step one is a degradation.
    if (forwarded ? proc.steps > bound : proc.steps != bound) {
      return Violation{"one-step", step_detail(p, proc, bound)};
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_zero_degradation(const ConsensusObs& obs,
                                                const StepBounds& bounds) {
  if (!bounds.two_step_stable || !obs.stable) return std::nullopt;
  for (ProcessId p = 0; p < obs.procs.size(); ++p) {
    const ProcessObs& proc = obs.procs[p];
    if (!proc.decided) continue;
    const std::uint32_t bound =
        proc.path == consensus::DecisionPath::kForwarded ? 3 : 2;
    if (proc.steps > bound) {
      return Violation{"zero-degradation", step_detail(p, proc, bound)};
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_termination(const ConsensusObs& obs) {
  if (!obs.quiescent || !obs.stable) return std::nullopt;
  for (ProcessId p = 0; p < obs.procs.size(); ++p) {
    const ProcessObs& proc = obs.procs[p];
    if (proc.proposed && !proc.crashed && !proc.decided) {
      return Violation{"termination",
                       "quiescent stable run but p" + std::to_string(p) +
                           " proposed and never decided"};
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_consensus(const ConsensusObs& obs,
                                         const StepBounds& bounds) {
  if (auto v = check_agreement(obs)) return v;
  if (auto v = check_validity(obs)) return v;
  if (auto v = check_integrity(obs)) return v;
  if (auto v = check_one_step(obs, bounds)) return v;
  if (auto v = check_zero_degradation(obs, bounds)) return v;
  if (auto v = check_termination(obs)) return v;
  return std::nullopt;
}

std::optional<Violation> check_corruption(const CorruptionObs& obs) {
  if (!obs.checksums_enabled || !obs.all_on_sealed_channel) {
    return std::nullopt;
  }
  if (obs.corrupt_frames_dropped != obs.frames_corrupted) {
    std::ostringstream os;
    os << obs.frames_corrupted << " frame(s) corrupted on the wire but "
       << obs.corrupt_frames_dropped
       << " detected and dropped (every corruption must be a detectable "
          "drop when frame checksums are on)";
    return Violation{"undetected-corruption", os.str()};
  }
  return std::nullopt;
}

std::optional<Violation> check_convergence(const ConvergenceObs& obs) {
  if (obs.corrupt_injected == 0 || obs.legal_state) return std::nullopt;
  if (obs.steps_since_last_injection < obs.step_bound) return std::nullopt;
  std::ostringstream os;
  os << "system not back in a legal state "
     << obs.steps_since_last_injection << " step(s) after the last of "
     << obs.corrupt_injected << " transient corruption(s) (bound "
     << obs.step_bound << ")";
  return Violation{"convergence", os.str()};
}

std::optional<Violation> check_total_order(
    const std::vector<std::vector<abcast::AppMessage>>& histories) {
  for (std::size_t a = 0; a < histories.size(); ++a) {
    for (std::size_t b = a + 1; b < histories.size(); ++b) {
      const auto& ha = histories[a];
      const auto& hb = histories[b];
      const std::size_t len = std::min(ha.size(), hb.size());
      for (std::size_t i = 0; i < len; ++i) {
        if (!(ha[i] == hb[i])) {
          return Violation{
              "total-order",
              "histories of p" + std::to_string(a) + " and p" +
                  std::to_string(b) + " diverge at position " +
                  std::to_string(i) + " (\"" + ha[i].payload + "\" vs \"" +
                  hb[i].payload + "\")"};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_no_duplicates(
    const std::vector<std::vector<abcast::AppMessage>>& histories) {
  for (std::size_t p = 0; p < histories.size(); ++p) {
    std::set<abcast::MsgId> seen;
    for (const auto& m : histories[p]) {
      if (!seen.insert(m.id).second) {
        return Violation{"duplication",
                         "p" + std::to_string(p) + " delivered message (" +
                             std::to_string(m.id.sender) + "," +
                             std::to_string(m.id.seq) + ") twice"};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_no_creation(
    const std::vector<std::vector<abcast::AppMessage>>& histories,
    const std::vector<abcast::MsgId>& submitted) {
  const std::set<abcast::MsgId> valid(submitted.begin(), submitted.end());
  for (std::size_t p = 0; p < histories.size(); ++p) {
    for (const auto& m : histories[p]) {
      if (valid.count(m.id) == 0) {
        return Violation{"creation",
                         "p" + std::to_string(p) + " delivered message (" +
                             std::to_string(m.id.sender) + "," +
                             std::to_string(m.id.seq) +
                             "), which was never a-broadcast"};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_abcast(
    const std::vector<std::vector<abcast::AppMessage>>& histories,
    const std::vector<abcast::MsgId>& submitted) {
  if (auto v = check_total_order(histories)) return v;
  if (auto v = check_no_duplicates(histories)) return v;
  if (auto v = check_no_creation(histories, submitted)) return v;
  return std::nullopt;
}

}  // namespace zdc::check
