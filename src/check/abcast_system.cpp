#include "check/abcast_system.h"

#include "common/assert.h"
#include "sim/abcast_world.h"

namespace zdc::check {

DirectAbcastNet::Factory abcast_net_factory(const ScenarioSpec& spec) {
  // "equivocating-sender" is a *net*-level mutant (armed on the harness in
  // the AbcastSystem constructor), so any protocol factory serves it.
  ZDC_ASSERT_MSG(spec.mutant.empty() || spec.mutant == "equivocating-sender",
                 "unknown abcast mutant");
  return sim::abcast_factory_by_name(spec.protocol);
}

AbcastSystem::AbcastSystem(const ScenarioSpec& spec,
                           const AdversaryBudgets& budgets)
    : spec_(spec), budgets_(budgets), net_(spec.group, abcast_net_factory(spec)) {
  if (spec_.mutant == "equivocating-sender") net_.arm_equivocation(0);
  performed_.assign(spec_.submissions.size(), false);
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    net_.fd(p).omega.value = spec_.initial_leader_of(p);
  }
  for (const auto& [sender, payload] : spec_.submissions) {
    (void)payload;
    ZDC_ASSERT_MSG(sender < spec_.group.n, "submission by unknown process");
  }
}

std::optional<std::uint32_t> AbcastSystem::next_submission_of(
    ProcessId p) const {
  for (std::uint32_t i = 0; i < spec_.submissions.size(); ++i) {
    if (spec_.submissions[i].first == p && !performed_[i]) return i;
  }
  return std::nullopt;
}

std::vector<Choice> AbcastSystem::enabled() const {
  const ProcessId n = spec_.group.n;
  std::vector<Choice> out;
  for (ProcessId p = 0; p < n; ++p) {
    if (net_.crashed(p)) continue;
    if (const auto i = next_submission_of(p)) {
      // b carries the submitting process for the independence relation.
      out.push_back(Choice{ChoiceKind::kSubmit, *i, p, 0});
    }
  }
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (net_.pending(from, to) > 0 && !net_.crashed(to)) {
        out.push_back(Choice{ChoiceKind::kDeliver, from, to, 0});
      }
    }
  }
  const std::uint32_t full_mask = (1u << n) - 1u;
  for (ProcessId from = 0; from < n; ++from) {
    if (net_.pending_wab(from) == 0) continue;
    out.push_back(Choice{ChoiceKind::kOracle, from, 0, 0});
    if (budgets_.oracle_subsets) {
      for (std::uint32_t mask = 1; mask < full_mask; ++mask) {
        out.push_back(Choice{ChoiceKind::kOracleSubset, from, 0, mask});
      }
    }
  }
  const std::uint32_t crash_cap =
      budgets_.crashes < spec_.group.f ? budgets_.crashes : spec_.group.f;
  if (crashes_used_ < crash_cap) {
    for (ProcessId p = 0; p < n; ++p) {
      if (!net_.crashed(p)) out.push_back(Choice{ChoiceKind::kCrash, p, 0, 0});
    }
  }
  if (leader_flips_used_ < budgets_.leader_flips) {
    for (ProcessId p = 0; p < n; ++p) {
      if (net_.crashed(p)) continue;
      for (ProcessId leader = 0; leader < n; ++leader) {
        if (net_.fd(p).omega.value != leader) {
          out.push_back(Choice{ChoiceKind::kLeaderFlip, p, leader, 0});
        }
      }
    }
  }
  if (suspect_flips_used_ < budgets_.suspect_flips) {
    for (ProcessId p = 0; p < n; ++p) {
      if (net_.crashed(p)) continue;
      for (ProcessId q = 0; q < n; ++q) {
        if (q != p) out.push_back(Choice{ChoiceKind::kSuspectFlip, p, q, 0});
      }
    }
  }
  return out;
}

bool AbcastSystem::apply(const Choice& c) {
  const ProcessId n = spec_.group.n;
  switch (c.kind) {
    case ChoiceKind::kSubmit: {
      if (c.a >= spec_.submissions.size() || performed_[c.a]) return false;
      const auto& [sender, payload] = spec_.submissions[c.a];
      if (net_.crashed(sender)) return false;
      // Keep per-process script order even under lenient replay.
      const auto next = next_submission_of(sender);
      if (!next || *next != c.a) return false;
      submitted_.push_back(net_.a_broadcast(sender, payload));
      performed_[c.a] = true;
      return true;
    }
    case ChoiceKind::kDeliver:
      if (c.a >= n || c.b >= n || net_.crashed(c.b)) return false;
      return net_.deliver_one(c.a, c.b);
    case ChoiceKind::kOracle: return c.a < n && net_.deliver_wab(c.a);
    case ChoiceKind::kOracleSubset: {
      if (c.a >= n) return false;
      const std::uint32_t full_mask = (1u << n) - 1u;
      if (c.mask == 0 || c.mask >= full_mask) return false;
      std::vector<ProcessId> targets;
      for (ProcessId p = 0; p < n; ++p) {
        if ((c.mask >> p) & 1u) targets.push_back(p);
      }
      return net_.deliver_wab(c.a, &targets);
    }
    case ChoiceKind::kCrash:
      if (c.a >= n || net_.crashed(c.a)) return false;
      net_.crash(c.a);
      ++crashes_used_;
      return true;
    case ChoiceKind::kLeaderFlip:
      if (c.a >= n || c.b >= n || net_.crashed(c.a)) return false;
      if (net_.fd(c.a).omega.value == c.b) return false;
      net_.fd(c.a).omega.value = c.b;
      net_.notify_fd_change(c.a);
      ++leader_flips_used_;
      return true;
    case ChoiceKind::kSuspectFlip: {
      if (c.a >= n || c.b >= n || c.a == c.b || net_.crashed(c.a)) return false;
      auto& flags = net_.fd(c.a).suspects.flags;
      flags[c.b] = !flags[c.b];
      net_.notify_fd_change(c.a);
      ++suspect_flips_used_;
      return true;
    }
    // Crash-during-delivery needs storage-backed recovery; the abcast stack
    // runs over volatile consensus instances, so the choice is never enabled.
    case ChoiceKind::kCrashDeliver: return false;
    // Corruption choice points target the sealed consensus channel; abcast
    // scenarios model corruption via the equivocating-sender mutant instead.
    case ChoiceKind::kFlip:
    case ChoiceKind::kEquivocate: return false;
  }
  return false;
}

std::optional<Violation> AbcastSystem::violation() const {
  return check_abcast(net_.histories(), submitted_);
}

}  // namespace zdc::check
