#include "check/consensus_system.h"

#include <memory>

#include "common/assert.h"
#include "consensus/p_consensus.h"
#include "consensus/paxos.h"
#include "sim/consensus_world.h"

namespace zdc::check {

DirectNet::Factory consensus_net_factory(const ScenarioSpec& spec) {
  if (spec.mutant.empty()) {
    return sim::consensus_factory_by_name(spec.protocol);
  }
  if (spec.mutant == "skip-one-step-quorum") {
    ZDC_ASSERT_MSG(spec.protocol == "p",
                   "mutant skip-one-step-quorum applies to protocol \"p\"");
    return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
              const fd::OmegaView&, const fd::SuspectView& suspects) {
      consensus::PConsensus::Mutations m;
      m.skip_one_step_quorum = true;
      return std::make_unique<consensus::PConsensus>(self, group, host,
                                                     suspects, m);
    };
  }
  if (spec.mutant == "ignore-accepted") {
    ZDC_ASSERT_MSG(spec.protocol == "paxos",
                   "mutant ignore-accepted applies to protocol \"paxos\"");
    return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
              const fd::OmegaView& omega, const fd::SuspectView&) {
      consensus::PaxosConsensus::Mutations m;
      m.ignore_accepted = true;
      return std::make_unique<consensus::PaxosConsensus>(self, group, host,
                                                         omega, m);
    };
  }
  ZDC_ASSERT_MSG(false, "unknown mutant");
  return {};
}

ConsensusSystem::ConsensusSystem(const ScenarioSpec& spec,
                                 const AdversaryBudgets& budgets)
    : spec_(spec),
      budgets_(budgets),
      bounds_(step_bounds_for(spec.protocol)),
      net_(spec.group, consensus_net_factory(spec)) {
  ZDC_ASSERT_MSG(spec_.proposals.size() == spec_.group.n,
                 "need one proposal per process");
  // Pin the initial FD outputs *before* any proposal: protocols read their
  // views in start() (Paxos checks who leads).
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    net_.fd(p).omega.value = spec_.initial_leader_of(p);
    if (spec_.initial_leader_of(p) != spec_.initial_leader_of(0)) {
      stable_ = false;  // split Ω outputs: not a stable run from the start
    }
  }
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    net_.propose(p, spec_.proposals[p]);
  }
}

bool ConsensusSystem::delivery_matters(ProcessId to) const {
  if (net_.crashed(to)) return false;
  const consensus::Consensus& proto = net_.protocol(to);
  return !proto.decided() || proto.serves_after_decide();
}

bool ConsensusSystem::quiescent() const {
  const ProcessId n = spec_.group.n;
  for (ProcessId from = 0; from < n; ++from) {
    if (net_.pending_wab(from) > 0) return false;
    for (ProcessId to = 0; to < n; ++to) {
      if (net_.pending(from, to) > 0 && delivery_matters(to)) return false;
    }
  }
  return true;
}

std::vector<Choice> ConsensusSystem::enabled() const {
  const ProcessId n = spec_.group.n;
  std::vector<Choice> out;
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (net_.pending(from, to) > 0 && delivery_matters(to)) {
        out.push_back(Choice{ChoiceKind::kDeliver, from, to, 0});
      }
    }
  }
  const std::uint32_t full_mask = (1u << n) - 1u;
  for (ProcessId from = 0; from < n; ++from) {
    if (net_.pending_wab(from) == 0) continue;
    out.push_back(Choice{ChoiceKind::kOracle, from, 0, 0});
    if (budgets_.oracle_subsets) {
      for (std::uint32_t mask = 1; mask < full_mask; ++mask) {
        out.push_back(Choice{ChoiceKind::kOracleSubset, from, 0, mask});
      }
    }
  }
  const std::uint32_t crash_cap =
      budgets_.crashes < spec_.group.f ? budgets_.crashes : spec_.group.f;
  if (crashes_used_ < crash_cap) {
    for (ProcessId p = 0; p < n; ++p) {
      if (!net_.crashed(p)) out.push_back(Choice{ChoiceKind::kCrash, p, 0, 0});
    }
  }
  if (leader_flips_used_ < budgets_.leader_flips) {
    for (ProcessId p = 0; p < n; ++p) {
      if (net_.crashed(p)) continue;
      for (ProcessId leader = 0; leader < n; ++leader) {
        // "Flip to what it already is" would be a pure stutter; skip it.
        if (net_.fd(p).omega.value != leader) {
          out.push_back(Choice{ChoiceKind::kLeaderFlip, p, leader, 0});
        }
      }
    }
  }
  if (suspect_flips_used_ < budgets_.suspect_flips) {
    for (ProcessId p = 0; p < n; ++p) {
      if (net_.crashed(p)) continue;
      for (ProcessId q = 0; q < n; ++q) {
        if (q != p) out.push_back(Choice{ChoiceKind::kSuspectFlip, p, q, 0});
      }
    }
  }
  return out;
}

bool ConsensusSystem::apply(const Choice& c) {
  const ProcessId n = spec_.group.n;
  switch (c.kind) {
    case ChoiceKind::kDeliver:
      if (c.a >= n || c.b >= n || !delivery_matters(c.b)) return false;
      return net_.deliver_one(c.a, c.b);
    case ChoiceKind::kOracle:
      return c.a < n && net_.deliver_wab_broadcast(c.a);
    case ChoiceKind::kOracleSubset: {
      if (c.a >= n) return false;
      const std::uint32_t full_mask = (1u << n) - 1u;
      if (c.mask == 0 || c.mask >= full_mask) return false;
      std::vector<ProcessId> targets;
      for (ProcessId p = 0; p < n; ++p) {
        if ((c.mask >> p) & 1u) targets.push_back(p);
      }
      return net_.deliver_wab_to(c.a, targets);
    }
    case ChoiceKind::kCrash:
      if (c.a >= n || net_.crashed(c.a)) return false;
      net_.crash(c.a);
      ++crashes_used_;
      stable_ = false;
      return true;
    case ChoiceKind::kLeaderFlip:
      if (c.a >= n || c.b >= n || net_.crashed(c.a)) return false;
      if (net_.fd(c.a).omega.value == c.b) return false;
      net_.fd(c.a).omega.value = c.b;
      net_.notify_fd_change(c.a);
      ++leader_flips_used_;
      stable_ = false;
      return true;
    case ChoiceKind::kSuspectFlip: {
      if (c.a >= n || c.b >= n || c.a == c.b || net_.crashed(c.a)) return false;
      auto& flags = net_.fd(c.a).suspects.flags;
      flags[c.b] = !flags[c.b];
      net_.notify_fd_change(c.a);
      ++suspect_flips_used_;
      stable_ = false;
      return true;
    }
    case ChoiceKind::kSubmit: return false;  // abcast scenarios only
  }
  return false;
}

ConsensusObs ConsensusSystem::observe() const {
  ConsensusObs obs;
  obs.group = spec_.group;
  obs.proposals = spec_.proposals;
  obs.stable = stable_;
  obs.quiescent = quiescent();
  obs.procs.resize(spec_.group.n);
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    ProcessObs& proc = obs.procs[p];
    const consensus::Consensus& proto = net_.protocol(p);
    proc.crashed = net_.crashed(p);
    proc.proposed = proto.proposed();
    proc.decided = proto.decided();
    if (proc.decided) {
      proc.decision = proto.decision();
      proc.steps = proto.decision_steps();
      proc.path = proto.decision_path();
    }
    proc.decision_deliveries = net_.decision_deliveries(p);
  }
  return obs;
}

std::optional<Violation> ConsensusSystem::violation() const {
  return check_consensus(observe(), bounds_);
}

}  // namespace zdc::check
