#include "check/consensus_system.h"

#include <map>
#include <memory>
#include <string>

#include "common/assert.h"
#include "common/stable_storage.h"
#include "consensus/p_consensus.h"
#include "consensus/paxos.h"
#include "consensus/recovering_paxos.h"
#include "sim/consensus_world.h"

namespace zdc::check {

/// Deterministic stable storage for protocols under check: a plain map with
/// whole-state snapshot/restore. No mutex — the checker is single-threaded
/// and the state must be copyable so kCrashDeliver can revert a dying
/// handler's puts (m < 2: the write never became durable).
class CheckStorage final : public common::StableStorage {
 public:
  void put(const std::string& key, std::string bytes) override {
    data_[key] = std::move(bytes);
    ++syncs_;
  }
  [[nodiscard]] std::optional<std::string> get(
      const std::string& key) const override {
    const auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::uint64_t sync_count() const override { return syncs_; }

  [[nodiscard]] std::map<std::string, std::string> snapshot() const {
    return data_;
  }
  void restore(std::map<std::string, std::string> data) {
    data_ = std::move(data);
  }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t syncs_ = 0;
};

namespace {

/// rec-paxos under check: protocols read/write per-process CheckStorage that
/// outlives kCrashDeliver reboots. Fills `storages` (one per process) and
/// returns a factory whose closure co-owns them, so replace_protocol()
/// rebuilds an incarnation over the state its predecessor persisted.
DirectNet::Factory storage_backed_factory(
    GroupParams group, std::vector<std::shared_ptr<CheckStorage>>& storages) {
  storages.clear();
  storages.reserve(group.n);
  for (ProcessId p = 0; p < group.n; ++p) {
    storages.push_back(std::make_shared<CheckStorage>());
  }
  auto shared = storages;
  return [shared](ProcessId self, GroupParams g,
                  consensus::ConsensusHost& host, const fd::OmegaView& omega,
                  const fd::SuspectView&) {
    return std::make_unique<consensus::RecoveringPaxosConsensus>(
        self, g, host, omega, *shared[self]);
  };
}

}  // namespace

DirectNet::Factory consensus_net_factory(const ScenarioSpec& spec) {
  if (spec.mutant.empty()) {
    return sim::consensus_factory_by_name(spec.protocol);
  }
  if (spec.mutant == "skip-one-step-quorum") {
    ZDC_ASSERT_MSG(spec.protocol == "p",
                   "mutant skip-one-step-quorum applies to protocol \"p\"");
    return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
              const fd::OmegaView&, const fd::SuspectView& suspects) {
      consensus::PConsensus::Mutations m;
      m.skip_one_step_quorum = true;
      return std::make_unique<consensus::PConsensus>(self, group, host,
                                                     suspects, m);
    };
  }
  if (spec.mutant == "ignore-accepted") {
    ZDC_ASSERT_MSG(spec.protocol == "paxos",
                   "mutant ignore-accepted applies to protocol \"paxos\"");
    return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
              const fd::OmegaView& omega, const fd::SuspectView&) {
      consensus::PaxosConsensus::Mutations m;
      m.ignore_accepted = true;
      return std::make_unique<consensus::PaxosConsensus>(self, group, host,
                                                         omega, m);
    };
  }
  ZDC_ASSERT_MSG(false, "unknown mutant");
  return {};
}

ConsensusSystem::ConsensusSystem(const ScenarioSpec& spec,
                                 const AdversaryBudgets& budgets)
    : spec_(spec),
      budgets_(budgets),
      bounds_(step_bounds_for(spec.protocol)),
      factory_(spec.protocol == "rec-paxos" && spec.mutant.empty()
                   ? storage_backed_factory(spec.group, storages_)
                   : consensus_net_factory(spec)),
      net_(spec.group, factory_) {
  ZDC_ASSERT_MSG(spec_.proposals.size() == spec_.group.n,
                 "need one proposal per process");
  base_deliveries_.assign(spec_.group.n, 0);
  // Pin the initial FD outputs *before* any proposal: protocols read their
  // views in start() (Paxos checks who leads).
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    net_.fd(p).omega.value = spec_.initial_leader_of(p);
    if (spec_.initial_leader_of(p) != spec_.initial_leader_of(0)) {
      stable_ = false;  // split Ω outputs: not a stable run from the start
    }
  }
  // Checksum knob before any proposal: sealing is decided at send time, and
  // propose() sends.
  if (!spec_.frame_checksums) {
    for (ProcessId p = 0; p < spec_.group.n; ++p) {
      net_.protocol(p).set_frame_checksums(false);
    }
  }
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    net_.propose(p, spec_.proposals[p]);
  }
}

bool ConsensusSystem::delivery_matters(ProcessId to) const {
  if (net_.crashed(to)) return false;
  const consensus::Consensus& proto = net_.protocol(to);
  return !proto.decided() || proto.serves_after_decide();
}

bool ConsensusSystem::quiescent() const {
  const ProcessId n = spec_.group.n;
  for (ProcessId from = 0; from < n; ++from) {
    if (net_.pending_wab(from) > 0) return false;
    for (ProcessId to = 0; to < n; ++to) {
      if (net_.pending(from, to) > 0 && delivery_matters(to)) return false;
    }
  }
  return true;
}

std::vector<Choice> ConsensusSystem::enabled() const {
  const ProcessId n = spec_.group.n;
  std::vector<Choice> out;
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (net_.pending(from, to) > 0 && delivery_matters(to)) {
        out.push_back(Choice{ChoiceKind::kDeliver, from, to, 0});
      }
    }
  }
  const std::uint32_t full_mask = (1u << n) - 1u;
  for (ProcessId from = 0; from < n; ++from) {
    if (net_.pending_wab(from) == 0) continue;
    out.push_back(Choice{ChoiceKind::kOracle, from, 0, 0});
    if (budgets_.oracle_subsets) {
      for (std::uint32_t mask = 1; mask < full_mask; ++mask) {
        out.push_back(Choice{ChoiceKind::kOracleSubset, from, 0, mask});
      }
    }
  }
  const std::uint32_t crash_cap =
      budgets_.crashes < spec_.group.f ? budgets_.crashes : spec_.group.f;
  if (crashes_used_ < crash_cap) {
    for (ProcessId p = 0; p < n; ++p) {
      if (!net_.crashed(p)) out.push_back(Choice{ChoiceKind::kCrash, p, 0, 0});
    }
  }
  // Crash-during-delivery: only offered for storage-backed protocols (the
  // rebooted incarnation needs durable state to recover from). m=1
  // (mid-write) is not offered: an unsynced torn write is truncated by WAL
  // recovery, so its post-state is identical to m=0 — replay still accepts
  // m=1 as an alias that exercises the revert path.
  if (!storages_.empty() && crash_restarts_used_ < budgets_.crash_restarts) {
    for (ProcessId from = 0; from < n; ++from) {
      for (ProcessId to = 0; to < n; ++to) {
        if (net_.pending(from, to) == 0 || !delivery_matters(to)) continue;
        for (std::uint32_t m : {0u, 2u, 3u}) {
          out.push_back(Choice{ChoiceKind::kCrashDeliver, from, to, m});
        }
      }
    }
  }
  // Corruption choice points (budgets flips/equivocations): the adversary
  // may deliver a byte-flipped copy (three byte positions) or a divergent
  // equivocation duplicate of any queued frame. The clean original always
  // stays queued — corruption never destroys messages (detectable-drop
  // model), so liveness invariants are unaffected.
  if (flips_used_ < budgets_.flips) {
    for (ProcessId from = 0; from < n; ++from) {
      for (ProcessId to = 0; to < n; ++to) {
        if (net_.pending(from, to) == 0 || !delivery_matters(to)) continue;
        for (std::uint32_t m : {0u, 1u, 2u}) {
          out.push_back(Choice{ChoiceKind::kFlip, from, to, m});
        }
      }
    }
  }
  if (equivocations_used_ < budgets_.equivocations) {
    for (ProcessId from = 0; from < n; ++from) {
      for (ProcessId to = 0; to < n; ++to) {
        if (net_.pending(from, to) == 0 || !delivery_matters(to)) continue;
        out.push_back(Choice{ChoiceKind::kEquivocate, from, to, 0});
      }
    }
  }
  if (leader_flips_used_ < budgets_.leader_flips) {
    for (ProcessId p = 0; p < n; ++p) {
      if (net_.crashed(p)) continue;
      for (ProcessId leader = 0; leader < n; ++leader) {
        // "Flip to what it already is" would be a pure stutter; skip it.
        if (net_.fd(p).omega.value != leader) {
          out.push_back(Choice{ChoiceKind::kLeaderFlip, p, leader, 0});
        }
      }
    }
  }
  if (suspect_flips_used_ < budgets_.suspect_flips) {
    for (ProcessId p = 0; p < n; ++p) {
      if (net_.crashed(p)) continue;
      for (ProcessId q = 0; q < n; ++q) {
        if (q != p) out.push_back(Choice{ChoiceKind::kSuspectFlip, p, q, 0});
      }
    }
  }
  return out;
}

bool ConsensusSystem::apply(const Choice& c) {
  const ProcessId n = spec_.group.n;
  switch (c.kind) {
    case ChoiceKind::kDeliver:
      if (c.a >= n || c.b >= n || !delivery_matters(c.b)) return false;
      return net_.deliver_one(c.a, c.b);
    case ChoiceKind::kOracle:
      return c.a < n && net_.deliver_wab_broadcast(c.a);
    case ChoiceKind::kOracleSubset: {
      if (c.a >= n) return false;
      const std::uint32_t full_mask = (1u << n) - 1u;
      if (c.mask == 0 || c.mask >= full_mask) return false;
      std::vector<ProcessId> targets;
      for (ProcessId p = 0; p < n; ++p) {
        if ((c.mask >> p) & 1u) targets.push_back(p);
      }
      return net_.deliver_wab_to(c.a, targets);
    }
    case ChoiceKind::kCrash:
      if (c.a >= n || net_.crashed(c.a)) return false;
      net_.crash(c.a);
      ++crashes_used_;
      stable_ = false;
      return true;
    case ChoiceKind::kLeaderFlip:
      if (c.a >= n || c.b >= n || net_.crashed(c.a)) return false;
      if (net_.fd(c.a).omega.value == c.b) return false;
      net_.fd(c.a).omega.value = c.b;
      net_.notify_fd_change(c.a);
      ++leader_flips_used_;
      stable_ = false;
      return true;
    case ChoiceKind::kSuspectFlip: {
      if (c.a >= n || c.b >= n || c.a == c.b || net_.crashed(c.a)) return false;
      auto& flags = net_.fd(c.a).suspects.flags;
      flags[c.b] = !flags[c.b];
      net_.notify_fd_change(c.a);
      ++suspect_flips_used_;
      stable_ = false;
      return true;
    }
    case ChoiceKind::kCrashDeliver: {
      // b dies while receiving the next a→b message, then reboots from
      // stable storage and re-proposes. Sub-point c.mask: 0 = on arrival
      // (handler never ran, message consumed), 1 = mid-write (handler ran,
      // puts reverted, sends dropped — state-equal to 0, replay alias only),
      // 2 = between write and send (puts kept, sends dropped), 3 = after
      // send (everything kept, only the incarnation's volatile state dies).
      // Budgets gate enabled(), not apply() — replay files must re-apply
      // recorded crash restarts under the default (all-zero) budgets.
      if (storages_.empty() || c.a >= n || c.b >= n || c.mask > 3) {
        return false;
      }
      if (net_.pending(c.a, c.b) == 0 || !delivery_matters(c.b)) return false;
      const bool run_handler = c.mask != 0;
      const bool keep_puts = c.mask >= 2;
      const bool keep_sends = c.mask == 3;
      const bool decided_before = net_.protocol(c.b).decided();
      const Value decision_before =
          decided_before ? net_.protocol(c.b).decision() : Value{};
      std::map<std::string, std::string> storage_before;
      if (run_handler && !keep_puts) {
        storage_before = storages_[c.b]->snapshot();
      }
      std::vector<std::size_t> out_before;
      if (run_handler && !keep_sends) out_before = net_.out_sizes(c.b);
      const std::uint32_t deliveries_before = net_.decision_deliveries(c.b);
      if (run_handler) {
        net_.deliver_one(c.a, c.b);
      } else {
        net_.drop_one(c.a, c.b);
      }
      if (run_handler && !keep_puts) {
        storages_[c.b]->restore(std::move(storage_before));
      }
      if (!keep_sends) {
        if (run_handler) net_.trim_out(c.b, out_before);
        // The dying handler's own deliver_decision never reached the
        // application either; rewind it with the sends.
        net_.set_decision_deliveries(c.b, deliveries_before);
      }
      // A decision that escaped to the application before the crash binds
      // every later incarnation (Uniform Agreement / Validity quantify over
      // it). For m<3 that is anything decided before this event; at m=3 the
      // handler's own decision escaped too.
      if (keep_sends ? net_.protocol(c.b).decided() : decided_before) {
        prior_decisions_.emplace(c.b, keep_sends ? net_.protocol(c.b).decision()
                                                 : decision_before);
      }
      base_deliveries_[c.b] = net_.decision_deliveries(c.b);
      net_.replace_protocol(c.b, factory_);
      if (!spec_.frame_checksums) {
        net_.protocol(c.b).set_frame_checksums(false);
      }
      net_.propose(c.b, spec_.proposals[c.b]);
      ++crash_restarts_used_;
      stable_ = false;
      return true;
    }
    case ChoiceKind::kFlip: {
      // Byte position m ∈ {0,1,2} → first/middle/last byte of the frame.
      if (c.a >= n || c.b >= n || c.mask > 2 || !delivery_matters(c.b)) {
        return false;
      }
      const std::size_t len = net_.front_size(c.a, c.b);
      if (len == 0) return false;
      // m ∈ {0,1,2} → first/middle/last byte: byte = m·(len−1)/2.
      const std::uint64_t byte =
          (static_cast<std::uint64_t>(c.mask) * (len - 1)) / 2;
      const std::uint64_t before =
          net_.protocol(c.b).corrupt_frames_dropped();
      if (!net_.deliver_corrupt(c.a, c.b, byte, 0)) return false;
      ++flips_used_;
      ++frames_corrupted_;
      corrupt_frames_dropped_ +=
          net_.protocol(c.b).corrupt_frames_dropped() - before;
      return true;
    }
    case ChoiceKind::kEquivocate: {
      if (c.a >= n || c.b >= n || !delivery_matters(c.b)) return false;
      const std::uint64_t before =
          net_.protocol(c.b).corrupt_frames_dropped();
      // The divergent duplicate's flipped bit varies by receiver, so the
      // same equivocation towards two receivers yields different bytes.
      if (!net_.deliver_corrupt(c.a, c.b, fault::kMiddleByte, c.b % 8u)) {
        return false;
      }
      ++equivocations_used_;
      ++frames_corrupted_;
      corrupt_frames_dropped_ +=
          net_.protocol(c.b).corrupt_frames_dropped() - before;
      return true;
    }
    case ChoiceKind::kSubmit: return false;  // abcast scenarios only
  }
  return false;
}

ConsensusObs ConsensusSystem::observe() const {
  ConsensusObs obs;
  obs.group = spec_.group;
  obs.proposals = spec_.proposals;
  obs.stable = stable_;
  obs.quiescent = quiescent();
  obs.procs.resize(spec_.group.n);
  for (ProcessId p = 0; p < spec_.group.n; ++p) {
    ProcessObs& proc = obs.procs[p];
    const consensus::Consensus& proto = net_.protocol(p);
    proc.crashed = net_.crashed(p);
    proc.proposed = proto.proposed();
    proc.decided = proto.decided();
    if (proc.decided) {
      proc.decision = proto.decision();
      proc.steps = proto.decision_steps();
      proc.path = proto.decision_path();
    }
    // Integrity is per incarnation: deliveries charged to a crash-restarted
    // predecessor are subtracted (they are accounted as prior_decisions).
    proc.decision_deliveries = net_.decision_deliveries(p) -
                               base_deliveries_[p];
  }
  obs.prior_decisions.assign(prior_decisions_.begin(), prior_decisions_.end());
  return obs;
}

std::optional<Violation> ConsensusSystem::violation() const {
  const ConsensusObs obs = observe();
  if (auto v = check_consensus(obs, bounds_)) return v;
  if (obs.quiescent) {
    CorruptionObs corrupt;
    corrupt.frames_corrupted = frames_corrupted_;
    corrupt.corrupt_frames_dropped = corrupt_frames_dropped_;
    corrupt.checksums_enabled = spec_.frame_checksums;
    // Every corrupt-delivery here targets the sealed consensus channel.
    if (auto v = check_corruption(corrupt)) return v;
  }
  return std::nullopt;
}

}  // namespace zdc::check
