#include "check/system.h"

#include "check/abcast_system.h"
#include "check/consensus_system.h"
#include "common/assert.h"

namespace zdc::check {

SystemFactory make_system_factory(const ScenarioSpec& spec,
                                  const AdversaryBudgets& budgets) {
  if (spec.kind == "consensus") {
    return [spec, budgets] {
      return std::unique_ptr<System>(new ConsensusSystem(spec, budgets));
    };
  }
  ZDC_ASSERT_MSG(spec.kind == "abcast", "unknown scenario kind");
  return [spec, budgets] {
    return std::unique_ptr<System>(new AbcastSystem(spec, budgets));
  };
}

}  // namespace zdc::check
