#include "check/shrink.h"

#include <algorithm>
#include <cstddef>

#include "common/assert.h"

namespace zdc::check {

ReplayOutcome replay_lenient(const SystemFactory& factory,
                             const std::vector<Choice>& trace) {
  ReplayOutcome out;
  auto sys = factory();
  if (auto v = sys->violation()) {
    out.violation = std::move(v);
    return out;
  }
  for (const Choice& c : trace) {
    if (!sys->apply(c)) {
      ++out.skipped;
      continue;
    }
    out.applied.push_back(c);
    if (auto v = sys->violation()) {
      out.violation = std::move(v);
      return out;
    }
  }
  return out;
}

std::optional<ReplayOutcome> replay_strict(const SystemFactory& factory,
                                           const std::vector<Choice>& trace) {
  ReplayOutcome out;
  auto sys = factory();
  if (auto v = sys->violation()) {
    out.violation = std::move(v);
    return out;
  }
  for (const Choice& c : trace) {
    if (!sys->apply(c)) return std::nullopt;
    out.applied.push_back(c);
    if (!out.violation) {
      if (auto v = sys->violation()) out.violation = std::move(v);
    }
  }
  return out;
}

namespace {

/// Does `candidate` still (leniently) reproduce a violation of the target
/// invariant? On yes, *candidate is replaced by the applied prefix* — always
/// no longer than the input, often shorter, and strictly replayable.
bool still_fails(const SystemFactory& factory, std::vector<Choice>& candidate,
                 const std::string& target, Violation& violation,
                 std::uint64_t& replays) {
  ++replays;
  ReplayOutcome out = replay_lenient(factory, candidate);
  if (!out.violation || out.violation->invariant != target) return false;
  violation = std::move(*out.violation);
  candidate = std::move(out.applied);
  return true;
}

}  // namespace

ShrinkResult shrink(const SystemFactory& factory, std::vector<Choice> trace,
                    const std::string& target_invariant) {
  ShrinkResult res;
  Violation violation;
  const bool reproduces = still_fails(factory, trace, target_invariant,
                                      violation, res.replays);
  ZDC_ASSERT_MSG(reproduces, "shrink() input trace does not reproduce");

  // ddmin proper: try removing chunks of the trace, halving chunk size on a
  // failed round; trace is already ≤ the original thanks to prefix trimming.
  std::size_t granularity = 2;
  while (trace.size() >= 2) {
    const std::size_t chunk =
        (trace.size() + granularity - 1) / granularity;  // ceil
    bool reduced = false;
    for (std::size_t start = 0; start < trace.size(); start += chunk) {
      std::vector<Choice> candidate;
      candidate.reserve(trace.size());
      candidate.insert(candidate.end(), trace.begin(),
                       trace.begin() + static_cast<std::ptrdiff_t>(start));
      const std::size_t end = std::min(start + chunk, trace.size());
      candidate.insert(candidate.end(),
                       trace.begin() + static_cast<std::ptrdiff_t>(end),
                       trace.end());
      if (candidate.size() == trace.size()) continue;  // empty removal
      if (still_fails(factory, candidate, target_invariant, violation,
                      res.replays)) {
        trace = std::move(candidate);
        granularity = granularity > 2 ? granularity - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= trace.size()) break;  // 1-minimal
      granularity = std::min(granularity * 2, trace.size());
    }
  }

  res.trace = std::move(trace);
  res.violation = std::move(violation);
  return res;
}

}  // namespace zdc::check
