// Counterexample minimization: delta-debugging (ddmin, Zeller & Hildebrandt)
// over choice traces.
//
// The shrinker replays candidate subsequences *leniently* — a choice that is
// disabled in the state reached so far is skipped, and the replay stops at
// the first violation. Lenient semantics are what make ddmin effective here:
// removing one choice (say a crash) usually disables a few later ones (its
// follow-up deliveries), and skipping those lets a candidate still exhibit
// the violation instead of failing on a technicality.
//
// Skipped choices leave the state untouched, so the *applied* subsequence of
// a successful lenient replay is, by construction, strictly replayable:
// replaying exactly those choices applies every one of them and reaches the
// same violation. That applied subsequence is what the shrinker returns —
// the canonical minimized trace the replay fixtures pin byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/choice.h"
#include "check/invariants.h"
#include "check/system.h"

namespace zdc::check {

struct ReplayOutcome {
  std::optional<Violation> violation;  ///< first violation hit, if any
  std::vector<Choice> applied;         ///< choices actually applied, in order
  std::uint64_t skipped = 0;           ///< choices that were disabled
};

/// Lenient replay: apply the trace in order, skipping disabled choices,
/// stopping at the first violation (`applied` then holds the violating
/// prefix). With no violation, the full trace is attempted and the final
/// state discarded.
ReplayOutcome replay_lenient(const SystemFactory& factory,
                             const std::vector<Choice>& trace);

/// Strict replay: every choice must be enabled when its turn comes. Returns
/// nullopt if one is not (the byte-identity contract of `zdc_check repro`
/// treats that as a failed reproduction). On success, the violation state
/// after the step that first violated — or after the whole trace.
std::optional<ReplayOutcome> replay_strict(const SystemFactory& factory,
                                           const std::vector<Choice>& trace);

struct ShrinkResult {
  std::vector<Choice> trace;           ///< 1-minimal, strictly replayable
  Violation violation;                 ///< as produced by the final replay
  std::uint64_t replays = 0;           ///< lenient replays spent
};

/// ddmin: minimizes `trace` while it still (leniently) reproduces a
/// violation of the same invariant as `target` names. The input trace must
/// reproduce it (asserted). The result is 1-minimal — removing any single
/// remaining choice loses the violation.
ShrinkResult shrink(const SystemFactory& factory, std::vector<Choice> trace,
                    const std::string& target_invariant);

}  // namespace zdc::check
