// Replay files: the durable form of a counterexample.
//
// A replay file is a (scenario spec, choice trace, expected violation)
// triple in a line-oriented text format, magic `zdc-check-replay-v1`. The
// serializer is canonical — fixed field order, fixed separators, one
// trailing newline — so `serialize(parse(text)) == text` for any file the
// toolchain wrote. `zdc_check repro` verifies exactly that byte-identity
// before re-running the trace, which is what keeps the committed fixtures
// under tests/check_fixtures/ from drifting: regenerate or fail, never
// hand-edit. Full grammar in docs/CHECKING.md.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/choice.h"
#include "check/system.h"

namespace zdc::check {

struct ReplayFile {
  ScenarioSpec spec;
  /// Invariant the trace is expected to violate (stable name, see
  /// check::Violation); empty = the trace must complete with NO violation
  /// (useful for pinning known-good schedules).
  std::string violation;
  std::vector<Choice> trace;
};

/// Canonical text form. Aborts (ZDC_ASSERT) on values the format cannot
/// carry: proposals/payloads containing ',', ' ' or newlines.
std::string serialize_replay(const ReplayFile& file);

/// Parses a replay file; on failure returns nullopt and, if `error` is
/// non-null, a one-line description of what is wrong.
std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error = nullptr);

}  // namespace zdc::check
