// System-under-check adapter wrapping DirectNet: one consensus instance
// across n processes, with every delivery, crash and FD flip surfaced as an
// explicit Choice.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "check/direct_net.h"
#include "check/system.h"

namespace zdc::check {

/// Per-process stable storage for storage-backed protocols under check
/// (rec-paxos): a plain deterministic key/value map with whole-state
/// snapshot/restore, which is how kCrashDeliver reverts the puts of a dying
/// handler. Defined in consensus_system.cpp.
class CheckStorage;

class ConsensusSystem final : public System {
 public:
  ConsensusSystem(const ScenarioSpec& spec, const AdversaryBudgets& budgets);

  [[nodiscard]] std::vector<Choice> enabled() const override;
  bool apply(const Choice& c) override;
  [[nodiscard]] std::optional<Violation> violation() const override;

  /// The invariant library's view of the current state (exposed for tests
  /// and the CLI's violation reports).
  [[nodiscard]] ConsensusObs observe() const;

 private:
  /// Whether delivering to `to` can change anything: alive, and either
  /// undecided or a protocol that keeps serving after deciding. Deliveries
  /// failing this are pruned from enabled() — on_message drops them anyway,
  /// so the message may equivalently stay on the wire forever.
  [[nodiscard]] bool delivery_matters(ProcessId to) const;
  [[nodiscard]] bool quiescent() const;

  const ScenarioSpec spec_;
  const AdversaryBudgets budgets_;
  const StepBounds bounds_;
  /// Non-empty iff the protocol is storage-backed (rec-paxos): one storage
  /// per process, surviving kCrashDeliver reboots. Declared before net_ and
  /// factory_ — the factory closure captures the storages.
  std::vector<std::shared_ptr<CheckStorage>> storages_;
  /// The factory that built net_'s protocols; kCrashDeliver reuses it to
  /// build the rebooted incarnation over the surviving storage.
  DirectNet::Factory factory_;
  DirectNet net_;
  bool stable_ = true;
  std::uint32_t crashes_used_ = 0;
  std::uint32_t leader_flips_used_ = 0;
  std::uint32_t suspect_flips_used_ = 0;
  std::uint32_t crash_restarts_used_ = 0;
  std::uint32_t flips_used_ = 0;
  std::uint32_t equivocations_used_ = 0;
  /// Corruption accounting for the detectable-drop oracle
  /// (check_corruption): corrupted frames delivered vs frames the
  /// recipients' frame-CRC rejected, accumulated at apply() time so
  /// kCrashDeliver protocol replacement cannot lose counts.
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t corrupt_frames_dropped_ = 0;
  /// deliver_decision counts attributed to incarnations that crash-restarted
  /// (observe() reports the current incarnation's count).
  std::vector<std::uint32_t> base_deliveries_;
  /// Decisions delivered by pre-crash incarnations — a set (not a vector) so
  /// commuting kCrashDeliver interleavings reach identical states, which the
  /// sleep-set reduction relies on.
  std::set<std::pair<ProcessId, Value>> prior_decisions_;
};

/// The protocol factory for a scenario: the sim registry's factory for the
/// plain protocol, or a knobbed instance when `spec.mutant` is set
/// ("skip-one-step-quorum" on "p", "ignore-accepted" on "paxos"/"rec-paxos").
DirectNet::Factory consensus_net_factory(const ScenarioSpec& spec);

}  // namespace zdc::check
