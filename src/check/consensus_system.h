// System-under-check adapter wrapping DirectNet: one consensus instance
// across n processes, with every delivery, crash and FD flip surfaced as an
// explicit Choice.
#pragma once

#include <optional>
#include <vector>

#include "check/direct_net.h"
#include "check/system.h"

namespace zdc::check {

class ConsensusSystem final : public System {
 public:
  ConsensusSystem(const ScenarioSpec& spec, const AdversaryBudgets& budgets);

  [[nodiscard]] std::vector<Choice> enabled() const override;
  bool apply(const Choice& c) override;
  [[nodiscard]] std::optional<Violation> violation() const override;

  /// The invariant library's view of the current state (exposed for tests
  /// and the CLI's violation reports).
  [[nodiscard]] ConsensusObs observe() const;

 private:
  /// Whether delivering to `to` can change anything: alive, and either
  /// undecided or a protocol that keeps serving after deciding. Deliveries
  /// failing this are pruned from enabled() — on_message drops them anyway,
  /// so the message may equivalently stay on the wire forever.
  [[nodiscard]] bool delivery_matters(ProcessId to) const;
  [[nodiscard]] bool quiescent() const;

  const ScenarioSpec spec_;
  const AdversaryBudgets budgets_;
  const StepBounds bounds_;
  DirectNet net_;
  bool stable_ = true;
  std::uint32_t crashes_used_ = 0;
  std::uint32_t leader_flips_used_ = 0;
  std::uint32_t suspect_flips_used_ = 0;
};

/// The protocol factory for a scenario: the sim registry's factory for the
/// plain protocol, or a knobbed instance when `spec.mutant` is set
/// ("skip-one-step-quorum" on "p", "ignore-accepted" on "paxos"/"rec-paxos").
DirectNet::Factory consensus_net_factory(const ScenarioSpec& spec);

}  // namespace zdc::check
