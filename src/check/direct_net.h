// Direct-drive harness for consensus protocols: runs protocol instances with
// *manual* message delivery, so a caller controls exactly which process
// receives which round message in which order — the level of control the
// paper's Figure-1 run constructions assume, and the substrate the schedule-
// space model checker (src/check/explorer.h) enumerates.
//
// Unlike the simulator worlds (time-driven), messages here sit in per-edge
// queues until they are delivered explicitly. Every nondeterministic input —
// which pending message to deliver, which oracle datagram to release, who
// crashes, what the failure detectors say — is an explicit call, which is
// what makes each one a recordable choice point (src/check/choice.h).
//
// Historically this lived in tests/direct_harness.h; it moved here so the
// checking engine and the zdc_check CLI can drive it without reaching into
// the test tree. tests/direct_harness.h re-exports the old names.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "consensus/consensus.h"
#include "fault/corrupt.h"
#include "fd/failure_detector.h"

namespace zdc::check {

/// Settable failure-detector stubs, one pair per process.
struct StubFd {
  struct Omega final : fd::OmegaView {
    [[nodiscard]] ProcessId leader() const override { return value; }
    ProcessId value = 0;
  };
  struct Suspects final : fd::SuspectView {
    [[nodiscard]] bool suspects(ProcessId p) const override {
      return p < flags.size() && flags[p];
    }
    std::vector<bool> flags;
  };
  Omega omega;
  Suspects suspects;
};

class DirectNet {
 public:
  using Factory = std::function<std::unique_ptr<consensus::Consensus>(
      ProcessId self, GroupParams group, consensus::ConsensusHost& host,
      const fd::OmegaView& omega, const fd::SuspectView& suspects)>;

  DirectNet(GroupParams group, const Factory& factory) : group_(group) {
    fds_.resize(group.n);
    hosts_.reserve(group.n);
    decision_deliveries_.assign(group.n, 0);
    for (ProcessId p = 0; p < group.n; ++p) {
      fds_[p] = std::make_unique<StubFd>();
      fds_[p]->suspects.flags.assign(group.n, false);
      hosts_.push_back(std::make_unique<Host>(*this, p));
    }
    for (ProcessId p = 0; p < group.n; ++p) {
      protocols_.push_back(factory(p, group, *hosts_[p], fds_[p]->omega,
                                   fds_[p]->suspects));
    }
  }

  [[nodiscard]] GroupParams group() const { return group_; }

  consensus::Consensus& protocol(ProcessId p) { return *protocols_[p]; }
  [[nodiscard]] const consensus::Consensus& protocol(ProcessId p) const {
    return *protocols_[p];
  }
  StubFd& fd(ProcessId p) { return *fds_[p]; }
  [[nodiscard]] const StubFd& fd(ProcessId p) const { return *fds_[p]; }

  void set_leader_everywhere(ProcessId leader) {
    for (auto& fd : fds_) fd->omega.value = leader;
  }
  void notify_fd_change(ProcessId p) { protocols_[p]->on_fd_change(); }
  void notify_fd_change_all() {
    for (auto& proto : protocols_) proto->on_fd_change();
  }

  void propose(ProcessId p, Value v) { protocols_[p]->propose(std::move(v)); }

  /// Number of undelivered messages queued on edge from→to.
  [[nodiscard]] std::size_t pending(ProcessId from, ProcessId to) const {
    const auto it = edges_.find({from, to});
    return it == edges_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] std::size_t pending_total() const {
    std::size_t total = 0;
    for (const auto& [edge, q] : edges_) total += q.size();
    return total;
  }

  /// Delivers the oldest queued message from→to; returns false if none.
  bool deliver_one(ProcessId from, ProcessId to) {
    const auto it = edges_.find({from, to});
    if (it == edges_.end() || it->second.empty()) return false;
    std::string bytes = std::move(it->second.front());
    it->second.pop_front();
    if (!crashed(to)) protocols_[to]->on_message(from, bytes);
    return true;
  }

  /// Size of the oldest queued message on from→to (0 when the edge is
  /// empty) — lets a caller aim a byte flip at a frame position.
  [[nodiscard]] std::size_t front_size(ProcessId from, ProcessId to) const {
    const auto it = edges_.find({from, to});
    return it == edges_.end() || it->second.empty() ? 0
                                                    : it->second.front().size();
  }

  /// Delivers a byte-flipped COPY of the oldest queued message from→to; the
  /// clean original stays queued — the reliable channel's checksummed
  /// retransmission still carries the real bytes, so corruption can never
  /// destroy a message, only precede it with garbage. `byte` accepts
  /// fault::kMiddleByte; positions past the end are clamped by resolve.
  /// Returns false if the edge is empty or the recipient is crashed.
  bool deliver_corrupt(ProcessId from, ProcessId to, std::uint64_t byte,
                       std::uint32_t bit) {
    const auto it = edges_.find({from, to});
    if (it == edges_.end() || it->second.empty() || crashed(to)) return false;
    std::string copy = it->second.front();
    fault::bit_flip(copy, fault::resolve_flip_byte(byte, copy.size()), bit);
    protocols_[to]->on_message(from, copy);
    return true;
  }

  /// Delivers every queued message on from→to.
  void deliver_edge(ProcessId from, ProcessId to) {
    while (deliver_one(from, to)) {
    }
  }

  /// Drains everything (repeatedly, since deliveries generate new traffic).
  void deliver_all() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (ProcessId from = 0; from < group_.n; ++from) {
        for (ProcessId to = 0; to < group_.n; ++to) {
          if (deliver_one(from, to)) progressed = true;
        }
      }
    }
  }

  /// Discards all queued messages from `from` to `to`.
  void drop_edge(ProcessId from, ProcessId to) {
    edges_.erase({from, to});
  }

  /// Consumes the oldest message on from→to *without* running the handler —
  /// the recipient died on arrival (kCrashDeliver m=0). Returns false if
  /// the edge is empty.
  bool drop_one(ProcessId from, ProcessId to) {
    const auto it = edges_.find({from, to});
    if (it == edges_.end() || it->second.empty()) return false;
    it->second.pop_front();
    return true;
  }

  /// Snapshot of `from`'s outbound queue sizes (n transport edges, then the
  /// oracle queue) for trim_out() to restore.
  [[nodiscard]] std::vector<std::size_t> out_sizes(ProcessId from) const {
    std::vector<std::size_t> sizes(group_.n + 1, 0);
    for (ProcessId to = 0; to < group_.n; ++to) {
      sizes[to] = pending(from, to);
    }
    sizes[group_.n] = pending_wab(from);
    return sizes;
  }

  /// Pops the *back* of `from`'s outbound queues down to a prior out_sizes()
  /// snapshot: discards exactly what `from` sent since the snapshot (the
  /// dying event's output), leaving older traffic already on the wire
  /// intact. Front pops by concurrent deliveries cannot be confused with
  /// back pushes here because both happen under the single-threaded driver.
  void trim_out(ProcessId from, const std::vector<std::size_t>& sizes) {
    for (ProcessId to = 0; to < group_.n; ++to) {
      auto it = edges_.find({from, to});
      if (it == edges_.end()) continue;
      while (it->second.size() > sizes[to]) it->second.pop_back();
    }
    const auto wab = wab_out_.find(from);
    if (wab != wab_out_.end()) {
      while (wab->second.size() > sizes[group_.n]) wab->second.pop_back();
    }
  }

  // --- ordering-oracle channel (WabConsensus) ---

  /// Oracle datagrams queued by `from` (stage, payload), not yet delivered.
  [[nodiscard]] std::size_t pending_wab(ProcessId from) const {
    const auto it = wab_out_.find(from);
    return it == wab_out_.end() ? 0 : it->second.size();
  }

  /// Takes the oldest oracle datagram of `from` and delivers it only to
  /// `targets`; the datagram is re-queued at the back afterwards — the WAB
  /// oracle's Validity property lets an adversary delay and reorder oracle
  /// traffic but not destroy it (receivers are idempotent, so the eventual
  /// re-delivery duplicating at `targets` is harmless).
  bool deliver_wab_to(ProcessId from, const std::vector<ProcessId>& targets) {
    const auto it = wab_out_.find(from);
    if (it == wab_out_.end() || it->second.empty()) return false;
    auto datagram = it->second.front();
    it->second.pop_front();
    for (ProcessId to : targets) {
      if (to < group_.n && !crashed(to)) {
        protocols_[to]->on_w_deliver(datagram.first, from, datagram.second);
      }
    }
    it->second.push_back(std::move(datagram));
    return true;
  }

  /// Delivers the oldest oracle datagram of `from` to every process — the
  /// "spontaneous order holds" case.
  bool deliver_wab_broadcast(ProcessId from) {
    const auto it = wab_out_.find(from);
    if (it == wab_out_.end() || it->second.empty()) return false;
    auto [stage, payload] = it->second.front();
    it->second.pop_front();
    for (ProcessId to = 0; to < group_.n; ++to) {
      if (!crashed(to)) protocols_[to]->on_w_deliver(stage, from, payload);
    }
    return true;
  }

  /// The process stops participating; its queued outbound traffic survives
  /// unless dropped explicitly (messages already "on the wire").
  void crash(ProcessId p) { crashed_[p] = true; }

  [[nodiscard]] bool crashed(ProcessId p) const {
    const auto it = crashed_.find(p);
    return it != crashed_.end() && it->second;
  }

  /// Crash-recovery: replaces p's protocol with a fresh incarnation built by
  /// `factory` (which may re-inject durable state) and marks p alive again.
  /// Pending inbound traffic survives the restart (it is "on the wire").
  void replace_protocol(ProcessId p, const Factory& factory) {
    protocols_[p] = factory(p, group_, *hosts_[p], fds_[p]->omega,
                            fds_[p]->suspects);
    crashed_[p] = false;
  }

  [[nodiscard]] bool decided(ProcessId p) const {
    return protocols_[p]->decided();
  }
  [[nodiscard]] const Value& decision(ProcessId p) const {
    return protocols_[p]->decision();
  }

  /// How many times the host's deliver_decision fired at p — the Uniform
  /// Integrity probe (a correct protocol decides exactly once per
  /// incarnation; see check::check_integrity).
  [[nodiscard]] std::uint32_t decision_deliveries(ProcessId p) const {
    return decision_deliveries_[p];
  }

  /// Rewinds p's deliver_decision count to a snapshot — kCrashDeliver
  /// discards a dying handler's local decision delivery along with its
  /// sends (the process died before either escaped).
  void set_decision_deliveries(ProcessId p, std::uint32_t count) {
    decision_deliveries_[p] = count;
  }

 private:
  struct Host final : consensus::ConsensusHost {
    Host(DirectNet& net, ProcessId self) : net_(net), self_(self) {}
    void send(ProcessId to, std::string bytes) override {
      if (!net_.crashed(self_)) {
        net_.edges_[{self_, to}].push_back(std::move(bytes));
      }
    }
    void broadcast(std::string bytes) override {
      if (net_.crashed(self_)) return;
      for (ProcessId to = 0; to < net_.group_.n; ++to) {
        net_.edges_[{self_, to}].push_back(bytes);
      }
    }
    void deliver_decision(const Value&) override {
      ++net_.decision_deliveries_[self_];
    }
    void w_broadcast(std::uint64_t stage, std::string payload) override {
      if (!net_.crashed(self_)) {
        net_.wab_out_[self_].emplace_back(stage, std::move(payload));
      }
    }
    DirectNet& net_;
    ProcessId self_;
  };

  GroupParams group_;
  std::vector<std::unique_ptr<StubFd>> fds_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<consensus::Consensus>> protocols_;
  std::vector<std::uint32_t> decision_deliveries_;
  std::map<std::pair<ProcessId, ProcessId>, std::deque<std::string>> edges_;
  std::map<ProcessId, std::deque<std::pair<std::uint64_t, std::string>>>
      wab_out_;
  std::map<ProcessId, bool> crashed_;
};

}  // namespace zdc::check
