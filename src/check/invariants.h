// Shared invariant library: every correctness property this repo claims,
// phrased as a predicate over an *observation* of a run — so the same
// checkers serve the property tests, the schedule fuzzer, and the
// schedule-space model checker (src/check/explorer.h).
//
// Consensus (the paper's Sec. 3 problem statement):
//   - Agreement: no two processes decide differently.
//   - Validity:  every decision was proposed.
//   - Integrity: a process decides at most once (the host's
//     deliver_decision fires exactly once per decided process).
//   - Termination-at-quiescence: with no message in flight, no crash and a
//     correct constant FD, every proposer must have decided (a quiescent
//     undecided process can never make progress again — a real deadlock,
//     not a "not yet").
//
// Step bounds (the paper's quantitative claims, universally quantified over
// schedules — the whole reason the model checker exists):
//   - One-step (Definition 1): whenever all proposals are equal, every
//     round-path decision takes exactly 1 communication step (and a
//     forwarded DECIDE at most 2). P-Consensus promises this in every run,
//     L-Consensus only in stable runs (Theorem 1 forbids more for an
//     Ω-based protocol).
//   - Zero-degradation (Definition 2): in a stable run — failure detector
//     correct and constant — every round-path decision takes at most 2
//     steps (forwarded: 3).
//
// Atomic broadcast (Sec. 2 of the paper, Uniform variants):
//   - Uniform Total Order: delivery histories are pairwise prefix-consistent.
//   - Uniform Integrity: no message delivered twice at one process.
//   - No creation: every delivered message was a-broadcast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "abcast/abcast.h"
#include "common/types.h"
#include "consensus/consensus.h"

namespace zdc::check {

/// One violated invariant. `invariant` is a stable machine-readable name
/// ("agreement", "validity", "integrity", "one-step", "zero-degradation",
/// "termination", "total-order", "duplication", "creation") used by replay
/// files and --expect-violation; `detail` is for humans.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// What one process looked like at the observation point.
struct ProcessObs {
  bool crashed = false;
  bool proposed = false;
  bool decided = false;
  Value decision;
  std::uint32_t steps = 0;
  consensus::DecisionPath path = consensus::DecisionPath::kNone;
  /// deliver_decision() call count at the host (Integrity probe).
  std::uint32_t decision_deliveries = 0;
};

/// Which step-bound claims a protocol makes. Resolved from the protocol
/// name by step_bounds_for(); protocols without published bounds get the
/// all-false default (only the safety invariants apply).
struct StepBounds {
  bool one_step_on_equal = false;  ///< 1-step when all proposals equal
  bool one_step_needs_stable = false;  ///< ... but only in stable runs (L)
  bool two_step_stable = false;    ///< ≤2 steps in stable runs (zero-degr.)
};

/// "l"/"p"/"paxos"/"rec-paxos" carry the paper's published bounds; anything
/// else gets no step-bound checking.
StepBounds step_bounds_for(const std::string& protocol);

/// Snapshot of a consensus run, mid-flight or at quiescence.
struct ConsensusObs {
  GroupParams group;
  std::vector<Value> proposals;  ///< indexed by process, size n
  std::vector<ProcessObs> procs;
  /// True while the run is stable in the paper's sense: no crash has
  /// happened, no FD output has changed, and the initial FD output was
  /// correct (uniform leader, empty suspect sets).
  bool stable = true;
  /// True when no message or oracle datagram is in flight.
  bool quiescent = false;
  /// Decisions delivered by incarnations that subsequently crash-restarted
  /// (kCrashDeliver runs). Uniform Agreement and Validity quantify over
  /// them too: a decision handed to the application before the crash counts
  /// even though the process is now a fresh incarnation.
  std::vector<std::pair<ProcessId, Value>> prior_decisions;

  [[nodiscard]] bool equal_proposals() const;
};

std::optional<Violation> check_agreement(const ConsensusObs& obs);
std::optional<Violation> check_validity(const ConsensusObs& obs);
std::optional<Violation> check_integrity(const ConsensusObs& obs);
/// Applies only when `bounds.one_step_on_equal`, proposals are equal, the
/// group is one-step resilient, and (if `one_step_needs_stable`) the run is
/// stable. Round-path deciders must have steps == 1, forwarded ≤ 2.
std::optional<Violation> check_one_step(const ConsensusObs& obs,
                                        const StepBounds& bounds);
/// Applies only when `bounds.two_step_stable` and the run is stable.
/// Round-path deciders must have steps ≤ 2, forwarded ≤ 3.
std::optional<Violation> check_zero_degradation(const ConsensusObs& obs,
                                                const StepBounds& bounds);
/// Applies only at quiescence of a stable run: every proposer decided.
std::optional<Violation> check_termination(const ConsensusObs& obs);

/// All of the above in order, stopping at the first violation.
std::optional<Violation> check_consensus(const ConsensusObs& obs,
                                         const StepBounds& bounds);

// --- safety under corruption (the detectable-drop model) ---

/// Corruption accounting at quiescence. With frame checksums on, a byte
/// flipped on the wire must surface as a *detectable drop*: the receiver's
/// CRC rejects the frame and the reliable channel's retransmission carries
/// the clean bytes through. The observation counts both sides of that
/// contract.
struct CorruptionObs {
  /// Frames the fabric corrupted (flip/scorrupt budgets drawn down), plus
  /// per-receiver divergent equivocation copies put on the wire.
  std::uint64_t frames_corrupted = 0;
  /// Frames the protocols' frame-CRC verification rejected.
  std::uint64_t corrupt_frames_dropped = 0;
  /// False when the run deliberately disabled frame checksums (the mutant
  /// configuration: corruption is then *undetectable* and only the safety
  /// oracles can catch what it does).
  bool checksums_enabled = true;
  /// True when every corrupted frame targeted the sealed consensus channel
  /// (so the drop counter is expected to account for all of them). Runs
  /// that corrupt unsealed traffic (oracle datagrams, abcast-internal
  /// frames) must leave this false.
  bool all_on_sealed_channel = true;
};

/// At quiescence with checksums on and all corruption on the sealed channel:
/// every injected corruption must have been detected and dropped
/// ("undetected-corruption" otherwise). With checksums off this check is
/// vacuous — the agreement/validity/integrity oracles carry the burden.
std::optional<Violation> check_corruption(const CorruptionObs& obs);

/// Self-stabilization oracle: after the last transient corruption was
/// injected, the system must return to (and stay in) a legal state within a
/// bounded number of steps.
struct ConvergenceObs {
  /// Total transient corruptions injected so far.
  std::uint64_t corrupt_injected = 0;
  /// Steps (scheduler transitions / delivered messages — the caller picks
  /// the unit and keeps it consistent with `step_bound`) executed since the
  /// last injection.
  std::uint64_t steps_since_last_injection = 0;
  /// True when the system is back in a legal state: every safety oracle
  /// passes and no protocol instance is wedged (e.g. all correct proposers
  /// decided, or the service made progress past the burst).
  bool legal_state = false;
  /// Convergence bound, in the same unit as steps_since_last_injection.
  std::uint64_t step_bound = 0;
};

/// "convergence" violation iff corruption was injected, the bound has
/// elapsed, and the system still is not back in a legal state.
std::optional<Violation> check_convergence(const ConvergenceObs& obs);

// --- atomic broadcast ---

/// Uniform Total Order: pairwise prefix consistency of delivery histories.
std::optional<Violation> check_total_order(
    const std::vector<std::vector<abcast::AppMessage>>& histories);
/// Uniform Integrity: no (sender, seq) delivered twice at one process.
std::optional<Violation> check_no_duplicates(
    const std::vector<std::vector<abcast::AppMessage>>& histories);
/// No creation: every delivered message id was actually a-broadcast.
std::optional<Violation> check_no_creation(
    const std::vector<std::vector<abcast::AppMessage>>& histories,
    const std::vector<abcast::MsgId>& submitted);

std::optional<Violation> check_abcast(
    const std::vector<std::vector<abcast::AppMessage>>& histories,
    const std::vector<abcast::MsgId>& submitted);

}  // namespace zdc::check
