// System-under-check adapter wrapping DirectAbcastNet: atomic broadcast
// across n processes, with submissions, deliveries, crashes and FD flips as
// explicit Choices and the Uniform Total Order / Integrity / No-creation
// invariants checked after every transition.
#pragma once

#include <optional>
#include <vector>

#include "check/direct_abcast_net.h"
#include "check/system.h"

namespace zdc::check {

class AbcastSystem final : public System {
 public:
  AbcastSystem(const ScenarioSpec& spec, const AdversaryBudgets& budgets);

  [[nodiscard]] std::vector<Choice> enabled() const override;
  bool apply(const Choice& c) override;
  [[nodiscard]] std::optional<Violation> violation() const override;

  [[nodiscard]] const std::vector<std::vector<abcast::AppMessage>>& histories()
      const {
    return net_.histories();
  }

 private:
  /// Index of the next unperformed submission of process `p` in the
  /// scenario's script, or nullopt. A process submits in script order — the
  /// ordering an application issuing a_broadcast calls sequentially imposes.
  [[nodiscard]] std::optional<std::uint32_t> next_submission_of(
      ProcessId p) const;

  const ScenarioSpec spec_;
  const AdversaryBudgets budgets_;
  DirectAbcastNet net_;
  std::vector<bool> performed_;      ///< per scripted submission
  std::vector<abcast::MsgId> submitted_;
  std::uint32_t crashes_used_ = 0;
  std::uint32_t leader_flips_used_ = 0;
  std::uint32_t suspect_flips_used_ = 0;
};

/// The abcast factory for a scenario, via sim::abcast_factory_by_name
/// ("c-l", "c-p", "wabcast", "paxos"). Mutants are not plumbed through the
/// abcast layer (the seeded mutants live in the consensus protocols).
DirectAbcastNet::Factory abcast_net_factory(const ScenarioSpec& spec);

}  // namespace zdc::check
