// The choice-point model: every nondeterministic decision an asynchronous
// adversary can make against a direct-drive harness, reified as a small POD
// so schedules can be recorded, replayed, enumerated and shrunk.
//
// A run of a system under check is exactly (scenario spec, choice sequence):
// the spec fixes the deterministic part (protocol, group, proposals, initial
// FD outputs), the choice sequence fixes the nondeterminism. Replaying the
// same pair reproduces the run byte-identically — that is the contract the
// replay fixtures under tests/check_fixtures/ pin.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace zdc::check {

enum class ChoiceKind : std::uint8_t {
  /// Deliver the *oldest* pending transport message on edge a→b. "Oldest"
  /// makes the choice deterministic: the adversary picks the edge, never a
  /// position within an edge (per-edge FIFO is the channel model everywhere
  /// in this repo).
  kDeliver = 0,
  /// Deliver the oldest pending oracle datagram of process a to everybody
  /// (the WAB "spontaneous order holds" case).
  kOracle = 1,
  /// Deliver the oldest pending oracle datagram of process a to the subset
  /// encoded in `mask` (bit p set = process p receives it); the datagram is
  /// re-queued, matching the oracle's eventual-delivery Validity property.
  kOracleSubset = 2,
  /// Crash process a (stops participating; queued traffic stays on the wire).
  kCrash = 3,
  /// Set process a's Ω output to leader b and notify it.
  kLeaderFlip = 4,
  /// Toggle whether process a suspects process b (◇P output) and notify a.
  kSuspectFlip = 5,
  /// Perform the a-th scripted a_broadcast submission (abcast scenarios).
  /// `b` carries the submitting process — redundant with the scenario's
  /// submission table (and so not serialized) but needed so independence
  /// can see which process the submission touches.
  kSubmit = 6,
  /// Deliver the oldest message on edge a→b with the *recipient dying* at a
  /// scripted point inside the handler, then atomically rebooting from its
  /// stable storage and re-proposing (crash-recovery protocols only; budget
  /// crash_restarts). `mask` is the crash sub-point m:
  ///   m=0  die on arrival: the message is consumed, the handler never runs
  ///        (state-equivalent to dying mid-write — a torn or unsynced last
  ///        record is truncated by WAL recovery, so "wrote a bit of it"
  ///        recovers to "never wrote it"; m=1 is accepted in replays as an
  ///        alias that exercises the revert path);
  ///   m=1  die mid-write: handler runs, then every put it made is reverted
  ///        and every send it emitted is dropped;
  ///   m=2  die between write and send: puts survive (they were synced —
  ///        the write-ahead order), sends are dropped;
  ///   m=3  die after send: the full handler survives, then the process
  ///        reboots.
  /// The enumeration offers m ∈ {0, 2, 3}; see docs/CHECKING.md for the
  /// soundness argument (why the crash must interleave *inside* the handler
  /// rather than revert state between events).
  kCrashDeliver = 7,
  /// Deliver a byte-flipped COPY of the oldest message on edge a→b; the
  /// clean original stays queued (the reliable channel's checksummed
  /// retransmission still carries it). `mask` selects the flipped byte
  /// position m ∈ {0, 1, 2} — first, middle or last byte of the frame
  /// (byte = m·(len−1)/2), bit 0. With frame checksums on this must be a
  /// detectable drop; with --no-frame-crc it is silent wire corruption.
  kFlip = 8,
  /// Sender a equivocates towards b: deliver a divergent duplicate of the
  /// oldest a→b message (middle byte, bit b mod 8 — so duplicates to
  /// different receivers differ), original stays queued.
  kEquivocate = 9,
};

struct Choice {
  ChoiceKind kind = ChoiceKind::kDeliver;
  ProcessId a = 0;
  ProcessId b = 0;
  std::uint32_t mask = 0;  ///< kOracleSubset receiver set

  friend bool operator==(const Choice&, const Choice&) = default;
};

/// Canonical single-token text form, used in replay files and diagnostics:
///   d<a>-<b>   deliver on edge a→b        o<a>       oracle broadcast from a
///   s<a>m<m>   oracle subset (hex mask)   c<a>       crash a
///   l<a>-<b>   a's leader := b            f<a>-<b>   a flips suspicion of b
///   u<a>       submission #a              k<a>-<b>m<m>  deliver a→b, b dies
///                                                       at sub-point m
///   x<a>-<b>m<m>  corrupt-deliver a→b     e<a>-<b>   a equivocates to b
///                 (byte position m)
inline std::string format_choice(const Choice& c) {
  switch (c.kind) {
    case ChoiceKind::kDeliver:
      return "d" + std::to_string(c.a) + "-" + std::to_string(c.b);
    case ChoiceKind::kOracle: return "o" + std::to_string(c.a);
    case ChoiceKind::kOracleSubset:
      return "s" + std::to_string(c.a) + "m" + std::to_string(c.mask);
    case ChoiceKind::kCrash: return "c" + std::to_string(c.a);
    case ChoiceKind::kLeaderFlip:
      return "l" + std::to_string(c.a) + "-" + std::to_string(c.b);
    case ChoiceKind::kSuspectFlip:
      return "f" + std::to_string(c.a) + "-" + std::to_string(c.b);
    case ChoiceKind::kSubmit: return "u" + std::to_string(c.a);
    case ChoiceKind::kCrashDeliver:
      return "k" + std::to_string(c.a) + "-" + std::to_string(c.b) + "m" +
             std::to_string(c.mask);
    case ChoiceKind::kFlip:
      return "x" + std::to_string(c.a) + "-" + std::to_string(c.b) + "m" +
             std::to_string(c.mask);
    case ChoiceKind::kEquivocate:
      return "e" + std::to_string(c.a) + "-" + std::to_string(c.b);
  }
  return "?";
}

/// Parses one token produced by format_choice; nullopt on malformed input.
inline std::optional<Choice> parse_choice(const std::string& token) {
  if (token.empty()) return std::nullopt;
  const auto number = [](const std::string& s, std::size_t from,
                         std::size_t to) -> std::optional<std::uint64_t> {
    if (from >= to) return std::nullopt;
    std::uint64_t v = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (s[i] < '0' || s[i] > '9') return std::nullopt;
      v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
      if (v > 0xffffffffULL) return std::nullopt;
    }
    return v;
  };
  const auto pair = [&](ChoiceKind kind) -> std::optional<Choice> {
    const std::size_t dash = token.find('-');
    if (dash == std::string::npos) return std::nullopt;
    const auto a = number(token, 1, dash);
    const auto b = number(token, dash + 1, token.size());
    if (!a || !b) return std::nullopt;
    Choice c;
    c.kind = kind;
    c.a = static_cast<ProcessId>(*a);
    c.b = static_cast<ProcessId>(*b);
    return c;
  };
  const auto single = [&](ChoiceKind kind) -> std::optional<Choice> {
    const auto a = number(token, 1, token.size());
    if (!a) return std::nullopt;
    Choice c;
    c.kind = kind;
    c.a = static_cast<ProcessId>(*a);
    return c;
  };
  switch (token[0]) {
    case 'd': return pair(ChoiceKind::kDeliver);
    case 'o': return single(ChoiceKind::kOracle);
    case 'c': return single(ChoiceKind::kCrash);
    case 'l': return pair(ChoiceKind::kLeaderFlip);
    case 'f': return pair(ChoiceKind::kSuspectFlip);
    case 'u': return single(ChoiceKind::kSubmit);
    case 'e': return pair(ChoiceKind::kEquivocate);
    case 'x': {
      const std::size_t dash = token.find('-');
      const std::size_t m = token.find('m');
      if (dash == std::string::npos || m == std::string::npos || m < dash) {
        return std::nullopt;
      }
      const auto a = number(token, 1, dash);
      const auto b = number(token, dash + 1, m);
      const auto pos = number(token, m + 1, token.size());
      if (!a || !b || !pos || *pos > 2) return std::nullopt;
      Choice c;
      c.kind = ChoiceKind::kFlip;
      c.a = static_cast<ProcessId>(*a);
      c.b = static_cast<ProcessId>(*b);
      c.mask = static_cast<std::uint32_t>(*pos);
      return c;
    }
    case 'k': {
      const std::size_t dash = token.find('-');
      const std::size_t m = token.find('m');
      if (dash == std::string::npos || m == std::string::npos || m < dash) {
        return std::nullopt;
      }
      const auto a = number(token, 1, dash);
      const auto b = number(token, dash + 1, m);
      const auto mode = number(token, m + 1, token.size());
      if (!a || !b || !mode || *mode > 3) return std::nullopt;
      Choice c;
      c.kind = ChoiceKind::kCrashDeliver;
      c.a = static_cast<ProcessId>(*a);
      c.b = static_cast<ProcessId>(*b);
      c.mask = static_cast<std::uint32_t>(*mode);
      return c;
    }
    case 's': {
      const std::size_t m = token.find('m');
      if (m == std::string::npos) return std::nullopt;
      const auto a = number(token, 1, m);
      const auto mask = number(token, m + 1, token.size());
      if (!a || !mask) return std::nullopt;
      Choice c;
      c.kind = ChoiceKind::kOracleSubset;
      c.a = static_cast<ProcessId>(*a);
      c.mask = static_cast<std::uint32_t>(*mask);
      return c;
    }
    default: return std::nullopt;
  }
}

/// Conditional independence for the sleep-set reduction: two choices both
/// enabled in a state commute (either execution order reaches the same
/// state, with both staying enabled across the other) iff the process state
/// they touch is disjoint. A delivery touches only its *recipient* (the
/// sender's queue is popped, but per-edge queues are keyed by (from, to), so
/// deliveries with distinct recipients never race on a queue); a crash or FD
/// flip touches the process whose participation/output changes; an oracle
/// delivery touches every process at once and a submission touches its
/// sender (which immediately broadcasts). A crash-delivery touches only its
/// victim b by the same per-edge argument: the trims and re-sends it does
/// all act on b's own state and b's outbound back-of-queue, which commutes
/// with another process popping an older message off the front. See
/// docs/CHECKING.md for the commutation argument.
inline bool choices_independent(const Choice& x, const Choice& y) {
  const auto touches_all = [](const Choice& c) {
    return c.kind == ChoiceKind::kOracle ||
           c.kind == ChoiceKind::kOracleSubset;
  };
  if (touches_all(x) || touches_all(y)) return false;
  const auto touched = [](const Choice& c) -> ProcessId {
    switch (c.kind) {
      case ChoiceKind::kDeliver:
      case ChoiceKind::kCrashDeliver:
      // A corrupt-delivery/equivocation acts on the a→b queue front and b's
      // protocol state only — same per-edge commutation argument as kDeliver.
      case ChoiceKind::kFlip:
      case ChoiceKind::kEquivocate:
      case ChoiceKind::kSubmit: return c.b;
      case ChoiceKind::kCrash:
      case ChoiceKind::kLeaderFlip:
      case ChoiceKind::kSuspectFlip:
      default: return c.a;
    }
  };
  return touched(x) != touched(y);
}

inline std::string format_trace(const std::vector<Choice>& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += ' ';
    out += format_choice(trace[i]);
  }
  return out;
}

}  // namespace zdc::check
