// The system-under-check abstraction the explorer, swarm driver, shrinker
// and replayer all share: a deterministic state machine whose transitions
// are Choices (src/check/choice.h), built fresh from a ScenarioSpec.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/choice.h"
#include "check/invariants.h"
#include "common/types.h"

namespace zdc::check {

/// Everything deterministic about a run: which protocol, which group, what
/// everyone proposes, what the failure detectors initially say, and which
/// seeded mutant (if any) is armed. (scenario, choice trace) reproduces a
/// run exactly — this struct is the replay file's header.
struct ScenarioSpec {
  std::string kind = "consensus";  ///< "consensus" | "abcast"
  /// Consensus: "l", "p", "paxos", ... (sim::consensus_factory_by_name).
  /// Abcast: "c-l", "c-p", "wabcast", "paxos" (sim::abcast_factory_by_name).
  std::string protocol = "l";
  GroupParams group{4, 1};
  /// Consensus scenarios: proposal per process (size n).
  std::vector<Value> proposals;
  /// Initial Ω output per process (empty = everyone trusts p0). The spec
  /// pins the *initial* FD state; FD changes during the run are choices.
  std::vector<ProcessId> omega;
  /// Seeded protocol mutant to arm ("" = none): "skip-one-step-quorum"
  /// (P-Consensus decides on fewer than n−f equal values) or
  /// "ignore-accepted" (Paxos phase 1 ignores reported acceptances).
  /// Abcast scenarios accept "equivocating-sender": p0's broadcasts carry
  /// per-receiver divergent bytes — the total-order oracle's prey.
  std::string mutant;
  /// Abcast scenarios: scripted submissions, performed via kSubmit choices.
  std::vector<std::pair<ProcessId, std::string>> submissions;
  /// False disables the per-frame CRC seal on consensus wire frames (the
  /// --no-frame-crc mutant configuration): wire corruption is then
  /// *undetectable* and only the safety oracles can catch its effects.
  bool frame_checksums = true;

  [[nodiscard]] ProcessId initial_leader_of(ProcessId p) const {
    return p < omega.size() ? omega[p] : 0;
  }
};

/// Which adversary moves the enumeration offers beyond plain deliveries.
/// These bound the *search space*, not the replay semantics: a replayed
/// trace may contain any choice regardless of budgets.
struct AdversaryBudgets {
  std::uint32_t crashes = 0;        ///< ≤ min(crashes, group.f) kCrash moves
  std::uint32_t leader_flips = 0;   ///< total kLeaderFlip moves offered
  std::uint32_t suspect_flips = 0;  ///< total kSuspectFlip moves offered
  bool oracle_subsets = false;      ///< offer kOracleSubset (else broadcast only)
  /// Total kCrashDeliver moves offered: crash-during-delivery points where
  /// the recipient dies inside the handler and reboots from stable storage.
  /// Only storage-backed protocols (rec-paxos) offer them; a crash-restart
  /// does not count against `crashes` (the process comes back).
  std::uint32_t crash_restarts = 0;
  /// Total kFlip moves offered: corrupt-deliver a byte-flipped copy of a
  /// queued frame (three byte positions per pending edge).
  std::uint32_t flips = 0;
  /// Total kEquivocate moves offered: deliver a divergent duplicate of a
  /// queued frame (sender-equivocation towards one receiver).
  std::uint32_t equivocations = 0;
};

/// A system under check. Implementations are deterministic: the same
/// (spec, budgets, choice sequence) always reaches the same state.
class System {
 public:
  virtual ~System() = default;

  /// All choices enabled in the current state, in a canonical deterministic
  /// order. Empty means quiescent (a leaf).
  [[nodiscard]] virtual std::vector<Choice> enabled() const = 0;

  /// Applies one choice. Returns false (state unchanged) if the choice is
  /// not currently enabled — the lenient mode the shrinker relies on.
  virtual bool apply(const Choice& c) = 0;

  /// Checks every applicable invariant in the current state and returns the
  /// first violation, if any. Cheap enough to run after every transition.
  [[nodiscard]] virtual std::optional<Violation> violation() const = 0;
};

/// Builds a fresh system at its initial state (proposals made, nothing
/// delivered). Invoked once per explored path — construction must be cheap.
using SystemFactory = std::function<std::unique_ptr<System>()>;

/// Factory for a ScenarioSpec; aborts via ZDC_ASSERT on unknown protocol
/// names (same contract as the sim factories it wraps).
SystemFactory make_system_factory(const ScenarioSpec& spec,
                                  const AdversaryBudgets& budgets);

}  // namespace zdc::check
