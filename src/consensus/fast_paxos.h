// Fast Paxos (Lamport, MSR-TR-2005-112) — the protocol the paper positions
// itself against (Sec. 2) and whose coordinated-recovery idea P-Consensus
// borrows (Sec. 6). The paper's conclusion notes that the oracle Fast Paxos
// needs is strictly stronger than Ω; P-Consensus makes that concrete by
// achieving the same fast path from ◇P, and this implementation lets the
// benches compare the two head-to-head.
//
// Single-decree instantiation at the resilience point n = 3f+1, with all
// quorums of size n−f (then any classic quorum intersects any two fast
// quorums, the Fast-Paxos requirement):
//
//   round 0 (fast):  every acceptor votes its own proposal without waiting
//                    for a 2a ("any value" is pre-authorized); a learner
//                    decides on n−f equal round-0 votes — one step.
//   round 1 (coordinated recovery): the Ω leader, having seen n−f round-0
//                    votes with no unanimity, picks per rule O4 — the value
//                    voted >= n−2f times among the quorum it saw (unique and
//                    forced if any learner fast-decided), else its own — and
//                    sends 2a(1, v) directly: no explicit phase 1, because
//                    the broadcast round-0 votes double as the 1b quorum.
//   rounds >= 2 (classic): full phase 1a/1b with the generalized pick rule
//                    (value voted >= n−2f times in the highest voted round
//                    among the replies, else free), then 2a/votes; explicit
//                    NACKs carry the promised round so a live leader retries
//                    with a higher round (no timers; channels are reliable).
//
// Step counts: 1 on the fast path, 3 via coordinated recovery — against
// P-Consensus's 1 and 2: the measured content of the paper's remark that
// one-step + zero-degradation cannot be had from Ω (Theorem 1) but can from
// ◇P.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::consensus {

class FastPaxosConsensus final : public Consensus {
 public:
  FastPaxosConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                     const fd::OmegaView& omega);

  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "Fast-Paxos"; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  using RoundNo = std::uint64_t;
  static constexpr RoundNo kNoRound = ~RoundNo{0};

  static constexpr std::uint8_t kVoteTag = 1;
  static constexpr std::uint8_t kP1aTag = 2;
  static constexpr std::uint8_t kP1bTag = 3;
  static constexpr std::uint8_t kP2aTag = 4;
  static constexpr std::uint8_t kNackTag = 5;

  void handle_vote(ProcessId from, common::Decoder& dec);
  void handle_p1a(ProcessId from, common::Decoder& dec);
  void handle_p1b(ProcessId from, common::Decoder& dec);
  void handle_p2a(ProcessId from, common::Decoder& dec);
  void handle_nack(ProcessId from, common::Decoder& dec);

  void cast_vote(RoundNo round, const Value& v);
  void check_decision(RoundNo round);
  /// Leader-side: start recovery / a fresh classic round.
  void maybe_coordinate();
  void start_classic_round(RoundNo round);
  void send_p2a(RoundNo round, const Value& v);
  /// The O4-style pick over a quorum of (vrnd, vval) observations.
  [[nodiscard]] Value pick_value(
      const std::map<ProcessId, std::pair<RoundNo, Value>>& quorum) const;
  void note_round_seen(RoundNo r);

  const fd::OmegaView& omega_;
  std::optional<Value> my_value_;

  // Acceptor state.
  RoundNo promised_ = 0;         ///< will not vote or promise below this
  RoundNo voted_round_ = kNoRound;
  Value voted_value_;

  // Learner state: votes per round.
  std::map<RoundNo, std::map<ProcessId, Value>> votes_;

  // Coordinator state.
  bool coordinating_ = false;    ///< a 2a for active_round_ is out
  RoundNo active_round_ = kNoRound;
  std::map<ProcessId, std::pair<RoundNo, Value>> p1b_replies_;
  bool p2a_sent_ = false;

  RoundNo max_round_seen_ = 0;
  bool was_leader_ = false;
};

}  // namespace zdc::consensus
