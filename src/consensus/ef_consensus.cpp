#include "consensus/ef_consensus.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

class EfConsensus::InnerHost final : public ConsensusHost {
 public:
  explicit InnerHost(EfConsensus& outer) : outer_(outer) {}

  void send(ProcessId to, std::string bytes) override {
    outer_.send_counted(to, wrap(std::move(bytes)));
  }
  void broadcast(std::string bytes) override {
    outer_.broadcast_counted(wrap(std::move(bytes)));
  }
  void deliver_decision(const Value& v) override {
    const std::uint32_t inner_steps =
        outer_.inner_ != nullptr ? outer_.inner_->decision_steps() : 2;
    outer_.decide_from_round(v, 1 + inner_steps);
  }

 private:
  static std::string wrap(std::string bytes) {
    common::Encoder enc;
    enc.put_u8(kInnerTag);
    enc.put_raw(bytes);
    return enc.take();
  }

  EfConsensus& outer_;
};

EfConsensus::EfConsensus(ProcessId self, GroupParams group, std::uint32_t e,
                         ConsensusHost& host, ConsensusFactory underlying)
    : Consensus(self, group, host),
      e_(e),
      underlying_factory_(std::move(underlying)) {
  ZDC_ASSERT_MSG(group.n > 2 * e + group.f && group.n > 2 * group.f,
                 "(e,f) fast consensus requires n > max(2f, 2e+f)");
}

EfConsensus::~EfConsensus() = default;

std::string EfConsensus::name() const {
  return "EF-Consensus(e=" + std::to_string(e_) +
         ",f=" + std::to_string(group_.f) + ")";
}

void EfConsensus::start(Value proposal) {
  proposal_ = std::move(proposal);
  note_round_started();
  common::Encoder enc;
  enc.put_u8(kVoteTag);
  enc.put_string(proposal_);
  broadcast_counted(enc.take());
}

void EfConsensus::on_fd_change() {
  if (inner_ != nullptr && !decided()) inner_->on_fd_change();
}

void EfConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                 common::Decoder& dec) {
  if (tag == kVoteTag) {
    Value v = dec.get_string();
    if (!dec.done()) return note_malformed();
    auto [it, inserted] = votes_.emplace(from, std::move(v));
    if (!inserted) return;
    ++counts_[it->second];
    // The fast path stays armed forever: a late n−e-th equal value still
    // decides safely (see header).
    check_fast_decision();
    if (!decided()) maybe_commit_fallback();
    return;
  }
  if (tag == kInnerTag) {
    std::string inner_bytes = dec.get_rest();
    if (inner_ != nullptr) {
      inner_->on_message(from, inner_bytes);
    } else {
      inner_buffer_.emplace_back(from, std::move(inner_bytes));
    }
    return;
  }
  note_malformed();
}

void EfConsensus::check_fast_decision() {
  for (const auto& [v, c] : counts_) {
    if (c >= fast_threshold()) {
      decide_from_round(v, 1);
      return;
    }
  }
}

void EfConsensus::maybe_commit_fallback() {
  // Committed exactly once, at the n−f-th first-round value (the guaranteed
  // quorum). Over exactly n−f votes the n−e−f threshold admits at most one
  // value (2(n−e−f) > n−f follows from n > 2e+f).
  if (fallback_committed_ || votes_.size() != group_.quorum()) return;
  fallback_committed_ = true;
  const std::uint32_t echo = group_.n - e_ - group_.f;
  Value inner_proposal = proposal_;
  for (const auto& [v, c] : counts_) {
    if (c >= echo) {
      inner_proposal = v;
      break;
    }
  }
  start_inner(std::move(inner_proposal));
}

void EfConsensus::set_frame_checksums(bool on) {
  Consensus::set_frame_checksums(on);
  if (inner_ != nullptr) inner_->set_frame_checksums(on);
}

void EfConsensus::start_inner(Value proposal) {
  ZDC_ASSERT(inner_ == nullptr);
  inner_host_ = std::make_unique<InnerHost>(*this);
  inner_ = underlying_factory_(self_, group_, *inner_host_);
  inner_->set_frame_checksums(frame_checksums());
  inner_->propose(std::move(proposal));
  auto buffered = std::move(inner_buffer_);
  inner_buffer_.clear();
  for (auto& [from, bytes] : buffered) {
    if (decided()) break;
    inner_->on_message(from, bytes);
  }
}

}  // namespace zdc::consensus
