// Chandra & Toueg's ◇S rotating-coordinator consensus (JACM 1996) — the
// classic algorithm behind the CT atomic broadcast the paper's C-Abcast
// modifies ("Like the Chandra & Toueg Atomic Broadcast, C-Abcast reduces
// atomic broadcast to consensus", Sec. 7). Included as the canonical
// non-zero-degrading, never-one-step baseline for the recovery bench.
//
// Round r, coordinator c = (r-1) mod n:
//   phase 1: everyone sends (est, ts) to c
//   phase 2: c collects a majority, picks the estimate with the highest ts,
//            broadcasts PROPOSE(r, v)
//   phase 3: on PROPOSE: adopt (v, r), ACK to c; on suspecting c: NACK to c
//   phase 4: c decides v on a majority of ACKs and floods DECIDE (task T2);
//            a NACK among the first majority of replies aborts the round
//
// Latency: 3 communication steps at the coordinator in every stable run —
// one more than the zero-degrading protocols' 2, and never 1 (the protocol
// has no fast path). Resilience f < n/2.
//
// Safety sketch: a decision at round r requires a majority that adopted
// (v, r); any later coordinator reads a majority, which intersects that set,
// and ts = r entries can only carry v (one proposal per round), so the
// highest-ts pick re-proposes v — the classic locking argument.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::consensus {

class CtConsensus final : public Consensus {
 public:
  CtConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
              const fd::SuspectView& suspects);

  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "CT-Consensus"; }
  [[nodiscard]] Round current_round() const { return round_; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  static constexpr std::uint8_t kEstTag = 1;
  static constexpr std::uint8_t kProposeTag = 2;
  static constexpr std::uint8_t kAckTag = 3;
  static constexpr std::uint8_t kNackTag = 4;

  [[nodiscard]] ProcessId coordinator(Round r) const {
    return static_cast<ProcessId>((r - 1) % group_.n);
  }

  void drive();
  /// True if round `round_` finished (advanced or decided).
  bool step_round();
  void enter_round();

  const fd::SuspectView& suspects_;

  Round round_ = 0;
  Value est_;
  Round ts_ = 0;  ///< round in which est_ was last adopted (0 = initial)

  // Per-round progress flags for this process.
  bool sent_est_ = false;
  bool sent_vote_ = false;

  struct Estimate {
    Value est;
    Round ts = 0;
  };
  // Coordinator-side state, keyed by round (messages may arrive early).
  std::map<Round, std::map<ProcessId, Estimate>> estimates_;
  std::map<Round, bool> proposed_round_;
  std::map<Round, Value> proposal_sent_;
  struct Votes {
    std::uint32_t acks = 0;
    std::uint32_t nacks = 0;
  };
  std::map<Round, Votes> votes_;
  std::map<Round, bool> round_resolved_;  ///< coordinator finished phase 4

  // Participant-side: proposal received per round.
  std::map<Round, Value> proposals_;
};

}  // namespace zdc::consensus
