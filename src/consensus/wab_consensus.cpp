#include "consensus/wab_consensus.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

WabConsensus::WabConsensus(ProcessId self, GroupParams group,
                           ConsensusHost& host)
    : Consensus(self, group, host) {
  ZDC_ASSERT_MSG(group.one_step_resilient(), "WAB consensus requires f < n/3");
}

void WabConsensus::start(Value proposal) {
  est_ = std::move(proposal);
  stage_ = 1;
  note_round_started();
  // Stage 1 votes directly on the proposal: the enclosing layer (C-Abcast)
  // already consulted the ordering oracle to produce it.
  vote(est_);
  drive();
}

void WabConsensus::vote(const Value& candidate) {
  common::Encoder enc;
  enc.put_u8(kVoteTag);
  enc.put_u64(stage_);
  enc.put_string(candidate);
  broadcast_counted(enc.take());
  voted_this_stage_ = true;
}

void WabConsensus::on_w_deliver(std::uint64_t stage, ProcessId origin,
                                const std::string& payload) {
  (void)origin;
  if (decided() || stage == 0) return;
  first_estimate_.emplace(stage, payload);
  if (proposed() && stage == stage_ && !voted_this_stage_) {
    vote(first_estimate_.at(stage_));
    drive();
  }
}

void WabConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                  common::Decoder& dec) {
  if (tag != kVoteTag) {
    note_malformed();
    return;
  }
  const Round s = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done() || s == 0) {
    note_malformed();
    return;
  }
  if (s < stage_) return;
  votes_[s].emplace(from, std::move(v));
  drive();
}

void WabConsensus::drive() {
  while (!decided() && try_complete_stage()) {
  }
}

bool WabConsensus::try_complete_stage() {
  const auto it = votes_.find(stage_);
  if (it == votes_.end()) return false;
  const auto& stage_votes = it->second;
  if (stage_votes.size() < group_.quorum()) return false;

  std::map<Value, std::uint32_t> counts;
  for (const auto& [from, v] : stage_votes) ++counts[v];

  // n−f identical votes decide.
  for (const auto& [v, c] : counts) {
    if (c >= group_.quorum()) {
      decide_from_round(v, steps_for_stage(stage_));
      return true;
    }
  }
  // Strict majority among the received votes updates the estimate; this is
  // the adoption rule the agreement argument in the header rests on.
  bool updated = false;
  for (const auto& [v, c] : counts) {
    if (c > stage_votes.size() / 2) {
      est_ = v;
      updated = true;
      break;
    }
  }
  if (!updated) note_wasted_round();

  // Advance: consult the oracle for the next stage's candidate. Everyone
  // w-broadcasts its estimate; the first w-delivery of the new sub-stage is
  // the vote candidate (it may already have arrived from a faster process).
  votes_.erase(it);
  ++stage_;
  voted_this_stage_ = false;
  note_round_started();
  host_w_broadcast(stage_, est_);
  const auto fit = first_estimate_.find(stage_);
  if (fit != first_estimate_.end()) {
    vote(fit->second);
  }
  return true;
}

}  // namespace zdc::consensus
