// WAB-based consensus (reconstruction of the voting core of Pedone, Schiper,
// Urbán & Cavin, "Solving agreement problems with weak ordering oracles",
// EDCC 2002) — used to build the WABCast baseline of Figure 2 and Table 1.
//
// The protocol has no failure detector; termination relies exclusively on the
// ordering oracle's Spontaneous Order property. Stage 1 votes directly on the
// proposal (which C-Abcast seeds from the oracle, so absent collisions all
// proposals are equal and one vote step of n² messages decides — 2δ
// end-to-end). When a stage fails, every process w-broadcasts its estimate in
// a fresh oracle sub-stage, takes the *first* w-delivered estimate of that
// sub-stage as the next vote candidate, and votes again (2δ per extra stage).
// Under persistent collisions (the oracle keeps showing different firsts to
// different processes) stages repeat without bound — the ∞ entries of
// Table 1.
//
// Agreement (Brasileiro-style argument): a decision v at stage s means
// >= n−f processes voted v, so at most f voters voted anything else; in any
// vote set of size x >= n−f, v occurs >= x−f > x/2 times (f < n/3), hence
// every process finishing stage s adopts est = v by the strict-majority rule,
// every stage-(s+1) estimate w-broadcast carries v, every candidate equals v
// and stage s+1 decides v. Validity holds because candidates are always some
// process's estimate and estimates start as proposals.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "consensus/consensus.h"

namespace zdc::consensus {

class WabConsensus final : public Consensus {
 public:
  /// The host must provide the ordering oracle (ConsensusHost::w_broadcast).
  WabConsensus(ProcessId self, GroupParams group, ConsensusHost& host);

  void on_w_deliver(std::uint64_t stage, ProcessId origin,
                    const std::string& payload) override;

  [[nodiscard]] std::string name() const override { return "WAB-Consensus"; }
  [[nodiscard]] Round current_stage() const { return stage_; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  static constexpr std::uint8_t kVoteTag = 1;

  void vote(const Value& candidate);
  void drive();
  /// True if the current stage finished (decision or stage advance).
  bool try_complete_stage();

  Round stage_ = 0;
  Value est_;
  bool voted_this_stage_ = false;
  /// First estimate w-delivered per oracle sub-stage — the vote candidate.
  std::map<Round, Value> first_estimate_;
  std::map<Round, std::map<ProcessId, Value>> votes_;

  /// Latency accounting: stage 1 costs one step (vote only); every further
  /// stage costs two (oracle w-broadcast + vote).
  [[nodiscard]] std::uint32_t steps_for_stage(Round s) const {
    return static_cast<std::uint32_t>(1 + 2 * (s - 1));
  }
};

}  // namespace zdc::consensus
