// Crash-recovery Paxos: single-decree Paxos whose acceptor state survives
// process restarts — the crash-recovery direction the paper's related work
// points at (Sec. 2: Paxos-like protocols "allow for the recovery of crashed
// processes", citing Aguilera et al.).
//
// The acceptor's promise and its accepted (ballot, value) are written to
// stable storage *before* the corresponding 1b/2b leaves the process
// (write-ahead); a restarting instance reloads them in its constructor. This
// is exactly the discipline that makes restart safe: a recovered acceptor
// can never un-promise or forget a vote, so the quorum-intersection
// arguments hold across incarnations. The companion test suite also
// demonstrates the converse — an "amnesiac" restart (plain Paxos with fresh
// state) reneges on its promise and can be driven into an agreement
// violation.
//
// Scope: acceptor durability (the safety-critical part). Proposer state is
// not persisted: a recovered proposer simply starts a fresh ballot, which is
// always safe.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/stable_storage.h"
#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::consensus {

class RecoveringPaxosConsensus final : public Consensus {
 public:
  /// `storage` must outlive the instance and persist across the process's
  /// simulated incarnations (the same object is handed to the replacement
  /// instance on restart).
  RecoveringPaxosConsensus(ProcessId self, GroupParams group,
                           ConsensusHost& host, const fd::OmegaView& omega,
                           common::StableStorage& storage);

  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "Rec-Paxos"; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

  /// Deciding quietly ends the proposer role, not the acceptor role: a peer
  /// that was down during the decisive 2b exchange recovers by driving a new
  /// ballot, and that ballot stalls forever unless decided acceptors keep
  /// answering 1a/2a. Proposer-side handlers below gate on decided() instead.
  [[nodiscard]] bool serves_after_decide() const override { return true; }

 private:
  using Ballot = std::uint64_t;
  static constexpr Ballot kNoBallot = ~Ballot{0};

  static constexpr std::uint8_t kP1aTag = 1;
  static constexpr std::uint8_t kP1bTag = 2;
  static constexpr std::uint8_t kP2aTag = 3;
  static constexpr std::uint8_t kP2bTag = 4;
  static constexpr std::uint8_t kNackTag = 5;

  [[nodiscard]] ProcessId ballot_owner(Ballot b) const {
    return static_cast<ProcessId>(b % group_.n);
  }
  [[nodiscard]] Ballot next_owned_ballot(Ballot floor) const;

  void recover_from_storage();
  void persist_acceptor_state();

  void maybe_lead();
  void start_ballot(Ballot b);
  void send_p2a(const Value& v);
  void note_ballot_seen(Ballot b);

  void handle_p1a(ProcessId from, common::Decoder& dec);
  void handle_p1b(ProcessId from, common::Decoder& dec);
  void handle_p2a(ProcessId from, common::Decoder& dec);
  void handle_p2b(ProcessId from, common::Decoder& dec);
  void handle_nack(ProcessId from, common::Decoder& dec);

  const fd::OmegaView& omega_;
  common::StableStorage& storage_;

  // Proposer state (volatile: a fresh ballot after restart is always safe).
  std::optional<Value> my_value_;
  Ballot active_ballot_ = kNoBallot;
  bool p2a_sent_ = false;
  struct Promise {
    Ballot accepted_ballot = kNoBallot;
    Value accepted_value;
  };
  std::map<ProcessId, Promise> promises_;

  // Acceptor state (durable, write-ahead).
  Ballot promised_ = 0;
  Ballot accepted_ballot_ = kNoBallot;
  Value accepted_value_;

  // Learner state (volatile; the decision is re-learnable from acceptors).
  std::map<Ballot, std::set<ProcessId>> p2b_votes_;
  std::map<Ballot, Value> p2b_values_;

  Ballot max_ballot_seen_ = 0;
  bool was_leader_ = false;
};

}  // namespace zdc::consensus
